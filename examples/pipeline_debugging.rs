//! Pipeline debugging — the Fig. 3 hands-on flow:
//! visualize the hiring preprocessing pipeline, run it with fine-grained
//! provenance, compute Datascope importance of the *source* letters, and
//! measure the effect of removing the lowest-ranked source tuples.
//!
//! Run with: `cargo run --release --example pipeline_debugging`

use nde::api::inject_label_errors;
use nde::scenario::load_recommendation_letters;
use nde::workflows::debug::{run, DebugConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scenario = load_recommendation_letters(500, 43);
    // Ten percent of the source labels are wrong before the pipeline runs.
    let report = inject_label_errors(&mut scenario.train, 0.10, 9)?;
    println!(
        "Injected {} label errors into the pipeline's source letters.\n",
        report.affected.len()
    );

    let outcome = run(&scenario, &DebugConfig::default())?;

    println!("Pipeline query plan:\n{}", outcome.plan);
    println!(
        "The pipeline's filter and joins kept {} of {} source letters.",
        outcome.pipeline_rows,
        scenario.train.n_rows()
    );
    println!(
        "Accuracy with the dirty sources:      {:.3}",
        outcome.acc_before
    );
    println!(
        "Accuracy after removing {} tuples:     {:.3}",
        outcome.removed_rows.len(),
        outcome.acc_after
    );
    println!(
        "Removal changed accuracy by {:+.3}.",
        outcome.accuracy_delta
    );

    // How many of the removed source tuples were actually injected errors?
    let truth: std::collections::HashSet<usize> = report.affected.iter().copied().collect();
    let hits = outcome
        .removed_rows
        .iter()
        .filter(|r| truth.contains(r))
        .count();
    println!(
        "{hits} of the {} removed source tuples carried injected label errors.",
        outcome.removed_rows.len()
    );
    Ok(())
}
