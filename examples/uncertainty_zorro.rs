//! Learning from imperfect data — the Fig. 4 hands-on flow:
//! inject MNAR missing values into `employer_rating` at 5–25%, train the
//! Zorro-style symbolic model, and print the maximum worst-case loss curve
//! next to a mean-imputation baseline.
//!
//! Run with: `cargo run --release --example uncertainty_zorro`

use nde::scenario::load_recommendation_letters;
use nde::workflows::learn::{run, LearnConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = load_recommendation_letters(400, 44);
    let config = LearnConfig::default();
    println!(
        "Evaluating {:?}% missing values in `{}` (mechanism: MNAR)...\n",
        config.percentages, config.feature
    );

    let outcome = run(&scenario, &config)?;

    println!("missing % | max worst-case loss | baseline (imputed) MSE");
    println!("----------+---------------------+-----------------------");
    for p in &outcome.points {
        println!(
            "{:>8}% | {:>19.4} | {:>22.4}",
            p.percentage, p.max_worst_case_loss, p.baseline_mse
        );
    }
    let max_width = outcome
        .points
        .iter()
        .map(|p| p.max_worst_case_loss)
        .fold(0.0_f64, f64::max);
    println!("\nASCII rendering of the Fig. 4 curve:");
    for p in &outcome.points {
        let bar = (p.max_worst_case_loss / max_width * 50.0).round() as usize;
        println!("{:>5}% | {}", p.percentage, "#".repeat(bar.max(1)));
    }
    println!(
        "\nThe worst-case bound grows monotonically with missingness: {}",
        outcome.is_monotone()
    );
    println!(
        "The point baseline stays far below the bound — a single imputation \
         hides how bad things *could* be."
    );
    Ok(())
}
