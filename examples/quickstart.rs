//! Quickstart — the Fig. 2 hands-on flow, end to end:
//! load the synthetic recommendation letters, inject label errors, watch
//! accuracy drop, find the culprits with KNN-Shapley, clean them with the
//! oracle, and watch accuracy recover.
//!
//! Run with: `cargo run --release --example quickstart`

use nde::api;
use nde::scenario::load_recommendation_letters;
use nde::workflows::identify::{run, IdentifyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = load_recommendation_letters(500, 42);
    println!(
        "Loaded {} train / {} valid / {} test recommendation letters.\n",
        scenario.train.n_rows(),
        scenario.valid.n_rows(),
        scenario.test.n_rows()
    );
    println!("A peek at the training data:");
    println!("{}", api::pretty_print(&scenario.train, 4));

    let config = IdentifyConfig {
        error_fraction: 0.10,
        clean_count: 25,
        seed: 7,
    };
    let outcome = run(&scenario, &config)?;

    println!("Accuracy on clean data:        {:.3}", outcome.acc_clean);
    println!(
        "Accuracy with data errors:     {:.3}   ({} labels flipped)",
        outcome.acc_dirty, outcome.injected
    );
    println!(
        "Accuracy after cleaning {:>3}:   {:.3}   (detection precision {:.2})",
        outcome.cleaned_rows.len(),
        outcome.acc_cleaned,
        outcome.detection_precision
    );
    println!(
        "\nCleaning some records improved accuracy from {:.2} to {:.2}.",
        outcome.acc_dirty, outcome.acc_cleaned
    );
    Ok(())
}
