//! Fault tolerance in practice: budgets that degrade gracefully,
//! checkpoint/resume that is bit-identical, panic-isolated pipeline
//! operators, and retries that ride out a flaky cleaning oracle.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use nde_cleaning::{
    prioritized_cleaning_robust, FlakyOracle, LabelOracle, MaintenanceMode, Strategy,
};
use nde_data::generate::blobs::two_gaussians;
use nde_importance::{tmc_shapley, ImportanceRun, TmcParams};
use nde_ml::dataset::Dataset;
use nde_ml::models::knn::KnnClassifier;
use nde_pipeline::exec::{Executor, PanicPolicy};
use nde_pipeline::plan::Plan;
use nde_robust::chaos::panicking_projection;
use nde_robust::{FaultSchedule, McCheckpoint, RetryPolicy, RunBudget};

fn main() {
    let nd = two_gaussians(120, 3, 1.8, 77);
    let all = Dataset::try_from(&nd).unwrap();
    let train = all.subset(&(0..90).collect::<Vec<_>>());
    let valid = all.subset(&(90..120).collect::<Vec<_>>());
    let params = TmcParams {
        permutations: 40,
        truncation_tolerance: 0.0,
    };
    let knn = KnnClassifier::new(3);

    // 1. Budgeted run that trips on utility calls, then resume from a
    // checkpoint persisted to disk (simulated crash).
    let partial = tmc_shapley(
        &ImportanceRun::new(5).with_budget(RunBudget::unlimited().with_max_utility_calls(60)),
        &knn,
        &train,
        &valid,
        &params,
    )
    .unwrap();
    let partial_ckpt = partial.report.checkpoint.unwrap();
    let partial_diag = partial.report.diagnostics.unwrap();
    println!(
        "partial: cursor={} exhausted={:?} max_se={:?}",
        partial_ckpt.cursor, partial_diag.exhausted, partial_diag.max_marginal_std_error
    );
    let ckpt_path = std::env::temp_dir().join("ft_probe.ckpt.json");
    partial_ckpt.save(&ckpt_path).unwrap();
    let restored = McCheckpoint::load(&ckpt_path).unwrap();
    let resumed = tmc_shapley(
        &ImportanceRun::new(5).with_checkpoint(&restored),
        &knn,
        &train,
        &valid,
        &params,
    )
    .unwrap();
    let full = tmc_shapley(&ImportanceRun::new(5), &knn, &train, &valid, &params).unwrap();
    println!(
        "resume bit-identical to uninterrupted: {}",
        resumed.scores.values == full.scores.values
    );

    // Probe: corrupt the checkpoint file on disk, then reload.
    std::fs::write(&ckpt_path, "{not json").unwrap();
    println!(
        "tampered checkpoint load: {:?}",
        McCheckpoint::load(&ckpt_path).err()
    );
    std::fs::remove_file(&ckpt_path).ok();

    // Probe: resume into a run with a different seed.
    let err = tmc_shapley(
        &ImportanceRun::new(6).with_checkpoint(&partial_ckpt),
        &knn,
        &train,
        &valid,
        &params,
    )
    .unwrap_err();
    println!("wrong-seed resume: {err}");

    // 2. Panic-isolated pipeline operator, skip-and-record.
    let s = nde_data::generate::hiring::HiringScenario::generate(30, 9);
    let mut plan = Plan::new();
    let src = plan.source("train_df");
    let p = plan.project(src, "boom", panicking_projection(4));
    let out = Executor::new()
        .with_provenance(true)
        .with_panic_policy(PanicPolicy::SkipAndRecord)
        .run(&plan, p, &[("train_df", &s.letters)])
        .unwrap();
    println!(
        "quarantined {} tuple(s); first: node={} op={} row={} sources={:?}",
        out.quarantined.len(),
        out.quarantined[0].node,
        out.quarantined[0].operator,
        out.quarantined[0].row,
        out.quarantined[0].sources
    );
    println!(
        "pipeline completed with {} of {} rows",
        out.table.n_rows(),
        s.letters.n_rows()
    );
    let fail = Executor::new().run(&plan, p, &[("train_df", &s.letters)]);
    println!("fail-fast: {}", fail.unwrap_err());

    // 3. Flaky oracle ridden out by retries.
    let mut dirty = train.clone();
    let truth = dirty.y.clone();
    for f in [3, 11, 27, 40, 66] {
        dirty.y[f] = 1 - dirty.y[f];
    }
    let flaky = FlakyOracle::new(LabelOracle::new(truth), FaultSchedule::every_nth(2));
    let run = prioritized_cleaning_robust(
        &knn,
        &dirty,
        &flaky,
        &valid,
        &Strategy::Random { seed: 2 },
        10,
        3,
        false,
        MaintenanceMode::Rerun,
        &RunBudget::unlimited(),
        &RetryPolicy::immediate(3),
    )
    .unwrap();
    println!(
        "cleaning under flaky oracle: cleaned={:?} retries={} acc {:.3} -> {:.3}",
        run.run.cleaned,
        run.oracle_retries,
        run.run.dirty_accuracy(),
        run.run.final_accuracy()
    );
}
