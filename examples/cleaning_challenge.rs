//! The data debugging challenge (paper §3.2): a dirty training set, a
//! cleaning budget of 25 tuples, a hidden test set behind an oracle, and a
//! live leaderboard. Three "participants" compete: random cleaning,
//! AUM-guided cleaning, and KNN-Shapley-guided cleaning.
//!
//! The challenge runs under `MaintenanceMode::Incremental`: each submission
//! patches only the labels it changes into a cached evaluator instead of
//! refitting from scratch — bit-identical scores (verified against a
//! rerun-mode replay at the end), just faster.
//!
//! Run with: `cargo run --release --example cleaning_challenge`

use nde::cleaning::challenge::DebugChallenge;
use nde::cleaning::oracle::LabelOracle;
use nde::cleaning::strategy::Strategy;
use nde::cleaning::MaintenanceMode;
use nde::data::generate::blobs::two_gaussians;
use nde::importance::aum::AumConfig;
use nde::ml::dataset::Dataset;
use nde::ml::models::knn::KnnClassifier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the hidden challenge data: 240 train / 80 valid / 80 test points
    // with 15% label noise in the training part.
    let nd = two_gaussians(400, 4, 3.5, 2025);
    let all = Dataset::try_from(&nd)?;
    let mut train = all.subset(&(0..240).collect::<Vec<_>>());
    let valid = all.subset(&(240..320).collect::<Vec<_>>());
    let test = all.subset(&(320..400).collect::<Vec<_>>());
    let truth = train.y.clone();
    for i in 0..train.len() {
        if i % 7 == 3 {
            // ~14% systematic label corruption, unknown to participants.
            train.y[i] = 1 - train.y[i];
        }
    }

    let budget = 25;
    let mut challenge = DebugChallenge::new(
        KnnClassifier::new(3),
        train.clone(),
        LabelOracle::new(truth.clone()),
        test.clone(),
        budget,
    )?
    .with_maintenance(MaintenanceMode::Incremental);
    println!(
        "Challenge: {} dirty training points, budget {} repairs, hidden test set.",
        train.len(),
        budget
    );
    println!("Baseline (no cleaning): {:.4}\n", challenge.baseline()?);

    // Each participant picks which tuples to clean, using only train + valid.
    let participants: Vec<(&str, Strategy)> = vec![
        ("random-rita", Strategy::Random { seed: 11 }),
        ("aum-ahmed", Strategy::Aum(AumConfig::default())),
        ("shapley-shen", Strategy::KnnShapley { k: 3 }),
    ];
    let mut picks_by_name: Vec<(&str, Vec<usize>)> = Vec::new();
    for (name, strategy) in participants {
        let order = strategy.rank(challenge.dirty_data(), &valid)?;
        let picks: Vec<usize> = order.into_iter().take(budget).collect();
        let score = challenge.submit(name, &picks)?;
        println!("{name:<14} cleaned {budget} tuples -> hidden-test accuracy {score:.4}");
        picks_by_name.push((name, picks));
    }

    // Incremental scoring is an optimization, never a different answer:
    // replay every submission under rerun-mode maintenance and check the
    // scores agree bit for bit.
    let mut replay = DebugChallenge::new(
        KnnClassifier::new(3),
        train.clone(),
        LabelOracle::new(truth),
        test,
        budget,
    )?;
    for (name, picks) in &picks_by_name {
        replay.submit(name, picks)?;
    }
    assert_eq!(challenge.leaderboard(), replay.leaderboard());
    println!("\n(incremental scores verified bit-identical to rerun-mode replay)");

    println!("\nFinal leaderboard:\n{}", challenge.leaderboard().render());
    println!("Leaderboard JSON:\n{}", challenge.leaderboard().to_json()?);
    Ok(())
}
