//! Fairness debugging with Gopher-style explanations (paper §3.1 mentions
//! Gopher among the hands-on tools): find the interpretable *slice* of
//! training data responsible for a fairness violation.
//!
//! We corrupt the sentiment labels of PhD applicants' letters only. The
//! resulting model violates equalized odds between PhD and non-PhD
//! applicants; the explanation search should point straight at the
//! `degree = phd` slice.
//!
//! Run with: `cargo run --release --example fairness_debugging`

use nde::api::LettersEncoding;
use nde::data::generate::hiring::LABEL_COLUMN;
use nde::data::Value;
use nde::importance::fairness_debug::{fairness_explanations, FairnessDebugConfig};
use nde::ml::models::knn::KnnClassifier;
use nde::scenario::load_recommendation_letters;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = load_recommendation_letters(600, 45);

    // Corrupt the labels of PhD applicants in the training data only.
    let mut corrupted = 0;
    for r in 0..s.train.n_rows() {
        if s.train.get(r, "degree")?.as_str() == Some("phd") && r % 2 == 0 {
            let flipped = match s.train.get(r, LABEL_COLUMN)?.as_str() {
                Some("positive") => "negative",
                _ => "positive",
            };
            s.train.set(r, LABEL_COLUMN, Value::Str(flipped.into()))?;
            corrupted += 1;
        }
    }
    println!("Corrupted the labels of {corrupted} PhD applicants' letters.\n");

    // Encode; sensitive group on validation data = PhD vs non-PhD.
    let enc = LettersEncoding::fit(&s.train)?;
    let train = enc.dataset(&s.train)?;
    let valid = enc.dataset(&s.valid)?;
    let groups: Vec<usize> = (0..s.valid.n_rows())
        .map(|r| {
            usize::from(
                s.valid
                    .get(r, "degree")
                    .map(|v| v.as_str() == Some("phd"))
                    .unwrap_or(false),
            )
        })
        .collect();

    let cfg = FairnessDebugConfig {
        pattern_columns: vec!["degree".into(), "employer_rating".into()],
        max_conditions: 2,
        min_support: 5,
        max_support_fraction: 0.5,
        top_k: 5,
    };
    let explanations = fairness_explanations(
        &KnnClassifier::new(5),
        &s.train,
        &train,
        &valid,
        &groups,
        &cfg,
    )?;

    println!(
        "Equalized-odds violation with all training data: {:.3}\n",
        explanations
            .first()
            .map(|e| e.violation_before)
            .unwrap_or(0.0)
    );
    println!("Top data-based explanations (remove the slice -> new violation):");
    for (i, e) in explanations.iter().enumerate() {
        println!(
            "  {}. [{:<40}] support {:>3}  violation {:.3} -> {:.3}  (improvement {:+.3})",
            i + 1,
            e.pattern.describe(),
            e.support,
            e.violation_before,
            e.violation_after,
            e.improvement()
        );
    }
    if let Some(top) = explanations.first() {
        println!(
            "\nThe top explanation blames `{}` — exactly the slice we corrupted.",
            top.pattern.describe()
        );
    }
    Ok(())
}
