//! Zorro-style symbolic training under missing-value uncertainty
//! (Zhu, Feng, Glavic & Salimi: "Learning from Uncertain Data: From Possible
//! Worlds to Possible Models", NeurIPS'24).
//!
//! Zorro trains a linear model while propagating the uncertainty of missing
//! cells *symbolically* through every gradient step, producing a set of
//! **possible models** that over-approximates the models reachable under any
//! imputation. From it we obtain sound **prediction ranges** and
//! **worst-case loss bounds** (the Fig. 4 quantity). The original uses
//! zonotopes; we use interval abstraction — coarser but equally sound, and
//! sufficient to reproduce the qualitative behaviour (bounds grow
//! monotonically with the amount of missingness).

use crate::interval::{interval_dot, Interval};
use crate::symbolic::SymbolicMatrix;
use crate::{Result, UncertainError};
use nde_ml::linalg::Matrix;
use nde_robust::{ConvergenceDiagnostics, RunBudget};

/// Hyperparameters for symbolic (and matching concrete) gradient descent.
#[derive(Debug, Clone)]
pub struct ZorroConfig {
    /// Full-batch gradient steps.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization.
    pub l2: f64,
    /// Abort when any weight bound exceeds this magnitude.
    pub divergence_threshold: f64,
}

impl Default for ZorroConfig {
    fn default() -> Self {
        ZorroConfig {
            epochs: 60,
            learning_rate: 0.1,
            l2: 1e-3,
            divergence_threshold: 1e6,
        }
    }
}

/// A linear regressor trained symbolically over interval features.
#[derive(Debug, Clone)]
pub struct ZorroRegressor {
    /// Training configuration.
    pub config: ZorroConfig,
    weights: Option<Vec<Interval>>, // d + 1, bias last
}

impl ZorroRegressor {
    /// Create an unfitted symbolic regressor.
    pub fn new(config: ZorroConfig) -> ZorroRegressor {
        ZorroRegressor {
            config,
            weights: None,
        }
    }

    /// Train by interval batch gradient descent on symbolic features `x`
    /// and concrete targets `y`.
    pub fn fit(&mut self, x: &SymbolicMatrix, y: &[f64]) -> Result<()> {
        let targets: Vec<Interval> = y.iter().map(|&v| Interval::point(v)).collect();
        self.fit_uncertain(x, &targets)
    }

    /// [`Self::fit`] under a [`RunBudget`]: runs at most the budgeted number
    /// of epochs (each epoch is one budget iteration) and keeps the
    /// best-so-far weights when a limit trips. See
    /// [`Self::fit_uncertain_budgeted`].
    pub fn fit_budgeted(
        &mut self,
        x: &SymbolicMatrix,
        y: &[f64],
        budget: &RunBudget,
    ) -> Result<ConvergenceDiagnostics> {
        let targets: Vec<Interval> = y.iter().map(|&v| Interval::point(v)).collect();
        self.fit_uncertain_budgeted(x, &targets, budget)
    }

    /// Train with **uncertain labels** as well: every target is itself an
    /// interval (Fig. 4's hands-on session injects "synthetic missing
    /// attributes *and uncertain labels*"). Point targets recover [`Self::fit`].
    pub fn fit_uncertain(&mut self, x: &SymbolicMatrix, y: &[Interval]) -> Result<()> {
        self.fit_uncertain_budgeted(x, y, &RunBudget::unlimited())
            .map(|_| ())
    }

    /// [`Self::fit_uncertain`] under a [`RunBudget`].
    ///
    /// The budget is checked at **epoch boundaries**: when it trips, training
    /// stops and the weights after the last completed epoch are kept as a
    /// best-so-far model (the returned [`ConvergenceDiagnostics`] records how
    /// many epochs ran and which limit tripped). Divergence still fails with
    /// [`UncertainError::Diverged`] — a diverged model is not worth keeping.
    pub fn fit_uncertain_budgeted(
        &mut self,
        x: &SymbolicMatrix,
        y: &[Interval],
        budget: &RunBudget,
    ) -> Result<ConvergenceDiagnostics> {
        if x.is_empty() {
            return Err(UncertainError::InvalidArgument("empty training set".into()));
        }
        if x.len() != y.len() {
            return Err(UncertainError::InvalidArgument(format!(
                "{} rows but {} targets",
                x.len(),
                y.len()
            )));
        }
        if self.config.epochs == 0 || self.config.learning_rate <= 0.0 {
            return Err(UncertainError::InvalidArgument(
                "epochs must be > 0 and learning_rate > 0".into(),
            ));
        }
        let n = x.len() as f64;
        let d = x.cols();
        let mut w = vec![Interval::point(0.0); d + 1];
        let mut grad = vec![Interval::point(0.0); d + 1];
        let mut clock = budget.start();

        for _epoch in 0..self.config.epochs {
            if clock.exhausted().is_some() {
                break; // keep the best-so-far weights
            }
            for g in grad.iter_mut() {
                *g = Interval::point(0.0);
            }
            for (row, &target) in x.iter_rows().zip(y) {
                // err = w·x + b − y (all intervals).
                let mut err = interval_dot(&w[..d], row) + w[d];
                err = err - target;
                for j in 0..d {
                    grad[j] = grad[j] + err * row[j];
                }
                grad[d] = grad[d] + err;
            }
            for (j, wj) in w.iter_mut().enumerate() {
                let mut g = grad[j].scale(1.0 / n);
                g = g + wj.scale(self.config.l2);
                *wj = *wj - g.scale(self.config.learning_rate);
                if wj.abs_max() > self.config.divergence_threshold {
                    return Err(UncertainError::Diverged(format!(
                        "weight {j} reached magnitude {:.3e}",
                        wj.abs_max()
                    )));
                }
            }
            clock.record_iteration();
        }
        self.weights = Some(w);
        Ok(clock.diagnostics(None))
    }

    /// The learned weight intervals (`d + 1`, bias last), if fitted.
    pub fn weight_intervals(&self) -> Option<&[Interval]> {
        self.weights.as_deref()
    }

    /// Sound range of predictions for a concrete feature vector.
    pub fn predict_range(&self, x: &[f64]) -> Result<Interval> {
        let w = self
            .weights
            .as_ref()
            .ok_or_else(|| UncertainError::InvalidArgument("model not fitted".into()))?;
        if x.len() + 1 != w.len() {
            return Err(UncertainError::InvalidArgument(format!(
                "expected {} features, got {}",
                w.len() - 1,
                x.len()
            )));
        }
        // Accumulate features first, bias last — the same association order
        // as the concrete predictor, so point intervals reproduce concrete
        // predictions bit-exactly.
        let mut out = Interval::point(0.0);
        for (wi, &xi) in w.iter().zip(x) {
            out = out + wi.scale(xi);
        }
        Ok(out + w[x.len()])
    }

    /// Per-example interval of the squared loss on a concrete test set.
    pub fn squared_loss_ranges(&self, x: &Matrix, y: &[f64]) -> Result<Vec<Interval>> {
        if x.rows() != y.len() {
            return Err(UncertainError::InvalidArgument(format!(
                "{} rows but {} targets",
                x.rows(),
                y.len()
            )));
        }
        x.iter_rows()
            .zip(y)
            .map(|(row, &target)| {
                let pred = self.predict_range(row)?;
                Ok((pred - Interval::point(target)).square())
            })
            .collect()
    }

    /// The **maximum worst-case loss** over a test set: the largest upper
    /// bound of any example's squared-loss interval (Fig. 4's y-axis).
    pub fn max_worst_case_loss(&self, x: &Matrix, y: &[f64]) -> Result<f64> {
        Ok(self
            .squared_loss_ranges(x, y)?
            .iter()
            .map(|i| i.hi)
            .fold(0.0, f64::max))
    }

    /// Mean worst-case loss: the average squared-loss upper bound.
    pub fn mean_worst_case_loss(&self, x: &Matrix, y: &[f64]) -> Result<f64> {
        let ranges = self.squared_loss_ranges(x, y)?;
        if ranges.is_empty() {
            return Ok(0.0);
        }
        Ok(ranges.iter().map(|i| i.hi).sum::<f64>() / ranges.len() as f64)
    }
}

/// Reference concrete trainer: identical batch GD on a concrete matrix.
/// Any world drawn from the symbolic matrix and trained with this routine
/// yields weights inside the symbolic weight intervals (soundness).
pub fn train_concrete_gd(x: &Matrix, y: &[f64], config: &ZorroConfig) -> Result<Vec<f64>> {
    if x.rows() == 0 || x.rows() != y.len() {
        return Err(UncertainError::InvalidArgument(
            "empty training set or row/target mismatch".into(),
        ));
    }
    let n = x.rows() as f64;
    let d = x.cols();
    let mut w = vec![0.0; d + 1];
    let mut grad = vec![0.0; d + 1];
    for _ in 0..config.epochs {
        grad.iter_mut().for_each(|g| *g = 0.0);
        for (row, &target) in x.iter_rows().zip(y) {
            let err = row.iter().zip(&w).map(|(xi, wi)| xi * wi).sum::<f64>() + w[d] - target;
            for (g, xi) in grad.iter_mut().zip(row) {
                *g += err * xi;
            }
            grad[d] += err;
        }
        for (j, wj) in w.iter_mut().enumerate() {
            // `* (1.0 / n)` (not `/ n`) to match the symbolic trainer's
            // `scale(1.0 / n)` bit-for-bit on point inputs.
            *wj -= config.learning_rate * (grad[j] * (1.0 / n) + config.l2 * *wj);
        }
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::column_bounds_from_observed;
    use nde_data::generate::blobs::linear_regression;
    use nde_data::rng::Rng;
    use nde_data::rng::{sample_indices, seeded};

    fn regression_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let (xs, ys, _, _) = linear_regression(n, 2, 0.05, seed);
        (Matrix::from_rows(xs).unwrap(), ys)
    }

    #[test]
    fn no_missing_matches_concrete_gd_exactly() {
        let (x, y) = regression_data(60, 1);
        let cfg = ZorroConfig::default();
        let sym = SymbolicMatrix::from_exact(&x);
        let mut zorro = ZorroRegressor::new(cfg.clone());
        zorro.fit(&sym, &y).unwrap();
        let concrete = train_concrete_gd(&x, &y, &cfg).unwrap();
        for (iv, c) in zorro.weight_intervals().unwrap().iter().zip(&concrete) {
            assert!(iv.is_point(), "point inputs must give point weights");
            assert!((iv.lo - c).abs() < 1e-12);
        }
    }

    #[test]
    fn soundness_sampled_worlds_stay_inside_bounds() {
        let (x, y) = regression_data(40, 2);
        let bounds = column_bounds_from_observed(&x);
        let mut rng = seeded(3);
        let missing: Vec<(usize, usize)> = sample_indices(40, 8, &mut rng)
            .into_iter()
            .map(|r| (r, rng.gen_range(0..2)))
            .collect();
        let cfg = ZorroConfig {
            epochs: 40,
            ..Default::default()
        };
        let sym = SymbolicMatrix::from_matrix_with_missing(&x, &missing, &bounds).unwrap();
        let mut zorro = ZorroRegressor::new(cfg.clone());
        zorro.fit(&sym, &y).unwrap();
        let w_iv = zorro.weight_intervals().unwrap().to_vec();

        // Sample 10 worlds: impute each missing cell uniformly in its bound,
        // train concretely, check weight containment and prediction ranges.
        for world in 0..10 {
            let mut wx = x.clone();
            let mut wrng = seeded(100 + world);
            for &(r, c) in &missing {
                let b = bounds[c];
                wx.set(r, c, b.lo + wrng.gen::<f64>() * b.width());
            }
            let w = train_concrete_gd(&wx, &y, &cfg).unwrap();
            for (iv, wc) in w_iv.iter().zip(&w) {
                assert!(
                    iv.lo - 1e-9 <= *wc && *wc <= iv.hi + 1e-9,
                    "world {world}: weight {wc} outside [{}, {}]",
                    iv.lo,
                    iv.hi
                );
            }
            // Prediction containment on a probe point.
            let probe = [0.3, -0.4];
            let concrete_pred = probe.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + w[2];
            let range = zorro.predict_range(&probe).unwrap();
            assert!(range.contains(concrete_pred) || (concrete_pred - range.hi).abs() < 1e-9);
        }
    }

    #[test]
    fn worst_case_loss_grows_with_missingness() {
        let (x, y) = regression_data(80, 4);
        let (tx, ty) = regression_data(30, 5);
        let bounds = column_bounds_from_observed(&x);
        let cfg = ZorroConfig {
            epochs: 30,
            ..Default::default()
        };
        let mut losses = Vec::new();
        for pct in [0usize, 5, 10, 20] {
            let k = 80 * pct / 100;
            let mut rng = seeded(6);
            let missing: Vec<(usize, usize)> = sample_indices(80, k, &mut rng)
                .into_iter()
                .map(|r| (r, 0))
                .collect();
            let sym = SymbolicMatrix::from_matrix_with_missing(&x, &missing, &bounds).unwrap();
            let mut zorro = ZorroRegressor::new(cfg.clone());
            zorro.fit(&sym, &y).unwrap();
            losses.push(zorro.max_worst_case_loss(&tx, &ty).unwrap());
        }
        for w in losses.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "worst-case loss not monotone: {losses:?}"
            );
        }
        assert!(
            losses[3] > losses[0],
            "20% missing should strictly exceed 0%: {losses:?}"
        );
    }

    #[test]
    fn uncertain_labels_widen_bounds_and_stay_sound() {
        let (x, y) = regression_data(50, 12);
        let cfg = ZorroConfig {
            epochs: 30,
            ..Default::default()
        };
        let sym = SymbolicMatrix::from_exact(&x);
        // Point labels.
        let mut point_model = ZorroRegressor::new(cfg.clone());
        point_model.fit(&sym, &y).unwrap();
        // Labels uncertain by ±0.2 on ten rows.
        let targets: Vec<Interval> = y
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i < 10 {
                    Interval::new(v - 0.2, v + 0.2)
                } else {
                    Interval::point(v)
                }
            })
            .collect();
        let mut uncertain_model = ZorroRegressor::new(cfg.clone());
        uncertain_model.fit_uncertain(&sym, &targets).unwrap();
        // Every weight interval of the point model is contained in the
        // uncertain model's (the uncertain family is a superset).
        for (p, u) in point_model
            .weight_intervals()
            .unwrap()
            .iter()
            .zip(uncertain_model.weight_intervals().unwrap())
        {
            assert!(
                u.lo <= p.lo + 1e-12 && p.hi <= u.hi + 1e-12,
                "{p:?} vs {u:?}"
            );
        }
        // Prediction ranges widen.
        let probe = [0.1, -0.2];
        let pw = point_model.predict_range(&probe).unwrap().width();
        let uw = uncertain_model.predict_range(&probe).unwrap().width();
        assert!(uw >= pw);
        assert!(uw > 0.0);

        // Soundness: training concretely on any label choice within the
        // intervals stays inside the uncertain model's bounds.
        let mut shifted = y.clone();
        for s in shifted.iter_mut().take(10) {
            *s += 0.2;
        }
        let w = train_concrete_gd(&x, &shifted, &cfg).unwrap();
        for (iv, wc) in uncertain_model.weight_intervals().unwrap().iter().zip(&w) {
            assert!(iv.lo - 1e-9 <= *wc && *wc <= iv.hi + 1e-9);
        }
    }

    #[test]
    fn budgeted_fit_with_unlimited_budget_matches_fit() {
        let (x, y) = regression_data(40, 10);
        let cfg = ZorroConfig::default();
        let sym = SymbolicMatrix::from_exact(&x);
        let mut plain = ZorroRegressor::new(cfg.clone());
        plain.fit(&sym, &y).unwrap();
        let mut budgeted = ZorroRegressor::new(cfg);
        let diag = budgeted
            .fit_budgeted(&sym, &y, &RunBudget::unlimited())
            .unwrap();
        assert!(diag.completed());
        assert_eq!(diag.iterations, 60);
        assert_eq!(
            budgeted.weight_intervals().unwrap(),
            plain.weight_intervals().unwrap()
        );
    }

    #[test]
    fn budget_exhaustion_keeps_best_so_far_weights() {
        let (x, y) = regression_data(40, 11);
        let sym = SymbolicMatrix::from_exact(&x);
        // 60 configured epochs, budget for 10: must stop at 10 with the
        // exact weights a 10-epoch run produces.
        let mut budgeted = ZorroRegressor::new(ZorroConfig::default());
        let diag = budgeted
            .fit_budgeted(&sym, &y, &RunBudget::unlimited().with_max_iterations(10))
            .unwrap();
        assert_eq!(diag.iterations, 10);
        assert_eq!(diag.exhausted, Some(nde_robust::Exhaustion::Iterations));
        let mut short = ZorroRegressor::new(ZorroConfig {
            epochs: 10,
            ..Default::default()
        });
        short.fit(&sym, &y).unwrap();
        assert_eq!(
            budgeted.weight_intervals().unwrap(),
            short.weight_intervals().unwrap()
        );
        // An immediately-exhausted budget still yields a usable (zero) model.
        let mut instant = ZorroRegressor::new(ZorroConfig::default());
        let diag = instant
            .fit_budgeted(
                &sym,
                &y,
                &RunBudget::unlimited().with_wall_clock(std::time::Duration::ZERO),
            )
            .unwrap();
        assert_eq!(diag.iterations, 0);
        assert!(!diag.completed());
        assert!(instant.predict_range(&[0.0, 0.0]).unwrap().is_point());
    }

    #[test]
    fn divergence_detected_with_huge_learning_rate() {
        let (x, y) = regression_data(20, 7);
        let sym = SymbolicMatrix::from_exact(&x);
        let cfg = ZorroConfig {
            epochs: 200,
            learning_rate: 50.0,
            ..Default::default()
        };
        let mut zorro = ZorroRegressor::new(cfg);
        assert!(matches!(
            zorro.fit(&sym, &y),
            Err(UncertainError::Diverged(_))
        ));
    }

    #[test]
    fn validates_arguments() {
        let (x, y) = regression_data(10, 8);
        let sym = SymbolicMatrix::from_exact(&x);
        let mut zorro = ZorroRegressor::new(ZorroConfig {
            epochs: 0,
            ..Default::default()
        });
        assert!(zorro.fit(&sym, &y).is_err());
        let mut zorro = ZorroRegressor::new(ZorroConfig::default());
        assert!(zorro.fit(&sym, &y[..5]).is_err());
        assert!(zorro.predict_range(&[0.0, 0.0]).is_err()); // not fitted
        zorro.fit(&sym, &y).unwrap();
        assert!(zorro.predict_range(&[0.0]).is_err()); // wrong dim
        assert!(zorro.squared_loss_ranges(&x, &y[..3]).is_err());
    }

    #[test]
    fn loss_ranges_cover_point_model_loss() {
        let (x, y) = regression_data(50, 9);
        let cfg = ZorroConfig::default();
        let sym = SymbolicMatrix::from_exact(&x);
        let mut zorro = ZorroRegressor::new(cfg.clone());
        zorro.fit(&sym, &y).unwrap();
        let w = train_concrete_gd(&x, &y, &cfg).unwrap();
        let ranges = zorro.squared_loss_ranges(&x, &y).unwrap();
        for ((row, &target), range) in x.iter_rows().zip(&y).zip(&ranges) {
            let pred = row.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + w[2];
            let loss = (pred - target) * (pred - target);
            assert!(range.contains(loss) || (loss - range.hi).abs() < 1e-9);
        }
    }
}
