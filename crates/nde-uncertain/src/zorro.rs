//! Zorro-style symbolic training under missing-value uncertainty
//! (Zhu, Feng, Glavic & Salimi: "Learning from Uncertain Data: From Possible
//! Worlds to Possible Models", NeurIPS'24).
//!
//! Zorro trains a linear model while propagating the uncertainty of missing
//! cells *symbolically* through every gradient step, producing a set of
//! **possible models** that over-approximates the models reachable under any
//! imputation. From it we obtain sound **prediction ranges** and
//! **worst-case loss bounds** (the Fig. 4 quantity). The original uses
//! zonotopes; we use interval abstraction — coarser but equally sound, and
//! sufficient to reproduce the qualitative behaviour (bounds grow
//! monotonically with the amount of missingness).

use crate::interval::{interval_dot, Interval};
use crate::soa::{self, IntervalMatrix, IntervalVec};
use crate::symbolic::SymbolicMatrix;
use crate::{Result, UncertainError};
use nde_data::json::{Json, ToJson};
use nde_data::par::{tree_reduce, CostHint, WorkerFailure};
use nde_data::pool::WorkerPool;
use nde_ml::linalg::Matrix;
use nde_robust::{ConvergenceDiagnostics, RunBudget};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Rows per gradient block. Every trainer in this module — the SoA engine,
/// the AoS reference, and the concrete GD — accumulates per-block partial
/// gradients over blocks of exactly this many rows and folds them through
/// the canonical [`tree_reduce`] shape. The shape depends only on the row
/// count, so results are bit-identical at every thread count, and the three
/// trainers stay bit-comparable to each other (point intervals degenerate
/// to the concrete scalar computation op-for-op).
pub const GRADIENT_BLOCK: usize = 128;

/// Hyperparameters for symbolic (and matching concrete) gradient descent.
#[derive(Debug, Clone)]
pub struct ZorroConfig {
    /// Full-batch gradient steps.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization.
    pub l2: f64,
    /// Abort when any weight bound exceeds this magnitude.
    pub divergence_threshold: f64,
    /// Worker threads for the per-epoch gradient blocks. Output is
    /// bit-identical for every value (see [`GRADIENT_BLOCK`]).
    pub threads: usize,
    /// Worker pool the gradient blocks run on; `None` uses the resident
    /// process-wide pool ([`WorkerPool::shared`]). Scheduling only — the
    /// pool can never affect the fitted weights.
    pub pool: Option<Arc<WorkerPool>>,
}

impl Default for ZorroConfig {
    fn default() -> Self {
        ZorroConfig {
            epochs: 60,
            learning_rate: 0.1,
            l2: 1e-3,
            divergence_threshold: 1e6,
            threads: 1,
            pool: None,
        }
    }
}

impl ZorroConfig {
    /// Set the gradient worker thread count.
    pub fn with_threads(mut self, threads: usize) -> ZorroConfig {
        self.threads = threads;
        self
    }

    /// Run gradient blocks on a dedicated pool instead of the shared one.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> ZorroConfig {
        self.pool = Some(pool);
        self
    }

    /// The pool gradient blocks run on.
    fn pool(&self) -> Arc<WorkerPool> {
        self.pool.clone().unwrap_or_else(WorkerPool::shared)
    }
}

/// Durable snapshot of an interrupted [`ZorroRegressor`] fit: the weight
/// planes after `epochs_done` completed full-batch epochs. Training is
/// deterministic, so resuming from the snapshot via
/// [`ZorroRegressor::fit_uncertain_resumable`] is bit-identical to never
/// stopping. Converts to and from a [`Json`] payload so budgeted fits
/// checkpoint through the same durable [`RunStore`](nde_robust::RunStore)
/// records as the importance estimators.
#[derive(Debug, Clone, PartialEq)]
pub struct ZorroCheckpoint {
    /// Completed full-batch epochs.
    pub epochs_done: u64,
    /// Lower weight plane (`d + 1`, bias last).
    pub lo: Vec<f64>,
    /// Upper weight plane (`d + 1`, bias last).
    pub hi: Vec<f64>,
}

impl ZorroCheckpoint {
    /// Internal consistency: matching plane lengths, finite floats, and
    /// ordered bounds — the same hardening contract as the Monte-Carlo
    /// checkpoints (a `1e999` smuggled into a weight plane must fail
    /// parsing, never poison a resumed fit).
    pub fn validate(&self) -> Result<()> {
        if self.lo.is_empty() || self.lo.len() != self.hi.len() {
            return Err(UncertainError::Checkpoint(format!(
                "weight planes have lengths {} and {}",
                self.lo.len(),
                self.hi.len()
            )));
        }
        for (i, (&lo, &hi)) in self.lo.iter().zip(&self.hi).enumerate() {
            if !lo.is_finite() || !hi.is_finite() {
                return Err(UncertainError::Checkpoint(format!(
                    "weight {i} bounds are not finite"
                )));
            }
            if lo > hi {
                return Err(UncertainError::Checkpoint(format!(
                    "weight {i} bounds are inverted: [{lo}, {hi}]"
                )));
            }
        }
        Ok(())
    }

    /// The snapshot as a durable-store payload.
    pub fn to_payload(&self) -> Json {
        Json::Obj(vec![
            ("method".into(), Json::Str("zorro-fit".into())),
            ("epochs_done".into(), Json::UInt(self.epochs_done)),
            ("lo".into(), self.lo.to_json()),
            ("hi".into(), self.hi.to_json()),
        ])
    }

    /// Reconstruct and validate a snapshot from a durable-store payload.
    pub fn from_payload(doc: &Json) -> Result<ZorroCheckpoint> {
        let method = doc
            .get("method")
            .and_then(Json::as_str)
            .ok_or_else(|| UncertainError::Checkpoint("missing `method` tag".into()))?;
        if method != "zorro-fit" {
            return Err(UncertainError::Checkpoint(format!(
                "snapshot written by `{method}`, expected `zorro-fit`"
            )));
        }
        let epochs_done = doc
            .get("epochs_done")
            .and_then(Json::as_u64)
            .ok_or_else(|| UncertainError::Checkpoint("`epochs_done` is not an integer".into()))?;
        let plane = |name: &str| -> Result<Vec<f64>> {
            doc.get(name)
                .and_then(Json::as_arr)
                .ok_or_else(|| UncertainError::Checkpoint(format!("`{name}` is not an array")))?
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| {
                        UncertainError::Checkpoint(format!("`{name}` holds a non-number"))
                    })
                })
                .collect()
        };
        let ckpt = ZorroCheckpoint {
            epochs_done,
            lo: plane("lo")?,
            hi: plane("hi")?,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }
}

/// A linear regressor trained symbolically over interval features.
#[derive(Debug, Clone)]
pub struct ZorroRegressor {
    /// Training configuration.
    pub config: ZorroConfig,
    weights: Option<Vec<Interval>>, // d + 1, bias last
}

impl ZorroRegressor {
    /// Create an unfitted symbolic regressor.
    pub fn new(config: ZorroConfig) -> ZorroRegressor {
        ZorroRegressor {
            config,
            weights: None,
        }
    }

    /// Train by interval batch gradient descent on symbolic features `x`
    /// and concrete targets `y`.
    pub fn fit(&mut self, x: &SymbolicMatrix, y: &[f64]) -> Result<()> {
        let targets: Vec<Interval> = y.iter().map(|&v| Interval::point(v)).collect();
        self.fit_uncertain(x, &targets)
    }

    /// [`Self::fit`] under a [`RunBudget`]: runs at most the budgeted number
    /// of epochs (each epoch is one budget iteration) and keeps the
    /// best-so-far weights when a limit trips. See
    /// [`Self::fit_uncertain_budgeted`].
    pub fn fit_budgeted(
        &mut self,
        x: &SymbolicMatrix,
        y: &[f64],
        budget: &RunBudget,
    ) -> Result<ConvergenceDiagnostics> {
        let targets: Vec<Interval> = y.iter().map(|&v| Interval::point(v)).collect();
        self.fit_uncertain_budgeted(x, &targets, budget)
    }

    /// Train with **uncertain labels** as well: every target is itself an
    /// interval (Fig. 4's hands-on session injects "synthetic missing
    /// attributes *and uncertain labels*"). Point targets recover [`Self::fit`].
    pub fn fit_uncertain(&mut self, x: &SymbolicMatrix, y: &[Interval]) -> Result<()> {
        self.fit_uncertain_budgeted(x, y, &RunBudget::unlimited())
            .map(|_| ())
    }

    /// [`Self::fit_uncertain`] under a [`RunBudget`].
    ///
    /// This is the **SoA engine** path: the symbolic matrix is re-laid into
    /// contiguous `lo`/`hi` planes once, each epoch's gradient is
    /// accumulated per [`GRADIENT_BLOCK`]-row block with the fused
    /// [`soa::dot`] / [`soa::axpy`] kernels — blocks run on
    /// `config.threads` workers — and the partials fold through the
    /// canonical [`tree_reduce`] shape, so the weights are bit-identical at
    /// every thread count and to the AoS reference
    /// ([`Self::fit_uncertain_reference`]).
    ///
    /// The budget is checked at **epoch boundaries**: when it trips, training
    /// stops and the weights after the last completed epoch are kept as a
    /// best-so-far model (the returned [`ConvergenceDiagnostics`] records how
    /// many epochs ran and which limit tripped). Divergence still fails with
    /// [`UncertainError::Diverged`] — a diverged model is not worth keeping.
    pub fn fit_uncertain_budgeted(
        &mut self,
        x: &SymbolicMatrix,
        y: &[Interval],
        budget: &RunBudget,
    ) -> Result<ConvergenceDiagnostics> {
        self.fit_uncertain_resumable(x, y, budget, None)
            .map(|(diag, _)| diag)
    }

    /// [`Self::fit_uncertain_budgeted`] that can also **resume** a fit cut
    /// short by an earlier budget trip (or crash): pass the
    /// [`ZorroCheckpoint`] the interrupted call returned and training
    /// continues at the next epoch, bit-identical to an uninterrupted run.
    /// A snapshot with the wrong weight dimension or more epochs than this
    /// configuration allows is rejected with
    /// [`UncertainError::Checkpoint`].
    pub fn fit_uncertain_resumable(
        &mut self,
        x: &SymbolicMatrix,
        y: &[Interval],
        budget: &RunBudget,
        resume: Option<&ZorroCheckpoint>,
    ) -> Result<(ConvergenceDiagnostics, ZorroCheckpoint)> {
        validate_fit_args(x, y, &self.config)?;
        let n = x.len() as f64;
        let d = x.cols();
        let sx = IntervalMatrix::from_symbolic(x);
        let sy = IntervalVec::from_intervals(y);
        let (mut w, done) = match resume {
            Some(cp) => {
                cp.validate()?;
                if cp.lo.len() != d + 1 {
                    return Err(UncertainError::Checkpoint(format!(
                        "snapshot holds {} weights but this run needs {}",
                        cp.lo.len(),
                        d + 1
                    )));
                }
                if cp.epochs_done as usize > self.config.epochs {
                    return Err(UncertainError::Checkpoint(format!(
                        "snapshot at epoch {} exceeds configured epochs {}",
                        cp.epochs_done, self.config.epochs
                    )));
                }
                let w = IntervalVec {
                    lo: cp.lo.clone(),
                    hi: cp.hi.clone(),
                };
                (w, cp.epochs_done)
            }
            None => (IntervalVec::zeros(d + 1), 0),
        };
        let mut clock = budget.resume(done, 0);
        let pool = self.config.pool();

        for _epoch in done as usize..self.config.epochs {
            if clock.exhausted().is_some() {
                break; // keep the best-so-far weights
            }
            let grad = epoch_gradient_soa(&sx, &sy, &w, self.config.threads, &pool)?;
            update_weights(&mut w, &grad, n, &self.config)?;
            clock.record_iteration();
        }
        let checkpoint = ZorroCheckpoint {
            epochs_done: clock.iterations(),
            lo: w.lo.clone(),
            hi: w.hi.clone(),
        };
        self.weights = Some(w.to_intervals());
        Ok((clock.diagnostics(None), checkpoint))
    }

    /// The AoS **reference trainer**: scalar [`Interval`] arithmetic over
    /// the symbolic rows, sequential, but with the same
    /// [`GRADIENT_BLOCK`]/[`tree_reduce`] accumulation shape as the SoA
    /// engine — so its weights must be bit-identical to
    /// [`Self::fit_uncertain_budgeted`] at every thread count. Kept (like
    /// the provenance engine's recursive `ProvExpr`) as the cross-check
    /// the property tests compare the optimized path against.
    pub fn fit_uncertain_reference(&mut self, x: &SymbolicMatrix, y: &[Interval]) -> Result<()> {
        validate_fit_args(x, y, &self.config)?;
        let n = x.len() as f64;
        let d = x.cols();
        let mut w = IntervalVec::zeros(d + 1);

        for _epoch in 0..self.config.epochs {
            let partials: Vec<IntervalVec> = (0..x.len())
                .step_by(GRADIENT_BLOCK)
                .map(|start| {
                    let end = (start + GRADIENT_BLOCK).min(x.len());
                    let mut grad = vec![Interval::point(0.0); d + 1];
                    let w_iv = w.to_intervals();
                    #[allow(clippy::needless_range_loop)] // r indexes both x and y
                    for r in start..end {
                        let row = x.row(r);
                        // err = w·x + b − y (all intervals).
                        let mut err = interval_dot(&w_iv[..d], row) + w_iv[d];
                        err = err - y[r];
                        for j in 0..d {
                            grad[j] = grad[j] + err * row[j];
                        }
                        grad[d] = grad[d] + err;
                    }
                    IntervalVec::from_intervals(&grad)
                })
                .collect();
            let grad = reduce_gradients(partials, d);
            update_weights(&mut w, &grad, n, &self.config)?;
        }
        self.weights = Some(w.to_intervals());
        Ok(())
    }

    /// The learned weight intervals (`d + 1`, bias last), if fitted.
    pub fn weight_intervals(&self) -> Option<&[Interval]> {
        self.weights.as_deref()
    }

    /// Sound range of predictions for a concrete feature vector.
    pub fn predict_range(&self, x: &[f64]) -> Result<Interval> {
        let w = self
            .weights
            .as_ref()
            .ok_or_else(|| UncertainError::InvalidArgument("model not fitted".into()))?;
        if x.len() + 1 != w.len() {
            return Err(UncertainError::InvalidArgument(format!(
                "expected {} features, got {}",
                w.len() - 1,
                x.len()
            )));
        }
        // Accumulate features first, bias last — the same association order
        // as the concrete predictor, so point intervals reproduce concrete
        // predictions bit-exactly.
        let mut out = Interval::point(0.0);
        for (wi, &xi) in w.iter().zip(x) {
            out = out + wi.scale(xi);
        }
        Ok(out + w[x.len()])
    }

    /// Per-example interval of the squared loss on a concrete test set.
    pub fn squared_loss_ranges(&self, x: &Matrix, y: &[f64]) -> Result<Vec<Interval>> {
        if x.rows() != y.len() {
            return Err(UncertainError::InvalidArgument(format!(
                "{} rows but {} targets",
                x.rows(),
                y.len()
            )));
        }
        x.iter_rows()
            .zip(y)
            .map(|(row, &target)| {
                let pred = self.predict_range(row)?;
                Ok((pred - Interval::point(target)).square())
            })
            .collect()
    }

    /// The **maximum worst-case loss** over a test set: the largest upper
    /// bound of any example's squared-loss interval (Fig. 4's y-axis).
    pub fn max_worst_case_loss(&self, x: &Matrix, y: &[f64]) -> Result<f64> {
        Ok(self
            .squared_loss_ranges(x, y)?
            .iter()
            .map(|i| i.hi)
            .fold(0.0, f64::max))
    }

    /// Mean worst-case loss: the average squared-loss upper bound.
    pub fn mean_worst_case_loss(&self, x: &Matrix, y: &[f64]) -> Result<f64> {
        let ranges = self.squared_loss_ranges(x, y)?;
        if ranges.is_empty() {
            return Ok(0.0);
        }
        Ok(ranges.iter().map(|i| i.hi).sum::<f64>() / ranges.len() as f64)
    }
}

fn validate_fit_args(x: &SymbolicMatrix, y: &[Interval], config: &ZorroConfig) -> Result<()> {
    if x.is_empty() {
        return Err(UncertainError::InvalidArgument("empty training set".into()));
    }
    if x.len() != y.len() {
        return Err(UncertainError::InvalidArgument(format!(
            "{} rows but {} targets",
            x.len(),
            y.len()
        )));
    }
    if config.epochs == 0 || config.learning_rate <= 0.0 {
        return Err(UncertainError::InvalidArgument(
            "epochs must be > 0 and learning_rate > 0".into(),
        ));
    }
    Ok(())
}

/// One epoch's full gradient over the SoA planes: per-[`GRADIENT_BLOCK`]
/// partials computed by `threads` workers, folded through the canonical
/// [`tree_reduce`] shape.
fn epoch_gradient_soa(
    sx: &IntervalMatrix,
    sy: &IntervalVec,
    w: &IntervalVec,
    threads: usize,
    pool: &WorkerPool,
) -> Result<IntervalVec> {
    let rows = sx.rows();
    let d = sx.cols();
    let n_blocks = rows.div_ceil(GRADIENT_BLOCK);
    let stop = AtomicBool::new(false);
    // Interval ops per block scale with the feature count; the hint keeps
    // narrow small fits sequential and skips the timing probe per epoch.
    let cost = CostHint::PerItemNanos((GRADIENT_BLOCK * (d + 1)) as u64 * 30);
    let partials = pool
        .map_indexed::<IntervalVec, UncertainError, _>(
            threads,
            0..n_blocks as u64,
            &stop,
            cost,
            |b| {
                let start = b as usize * GRADIENT_BLOCK;
                let end = (start + GRADIENT_BLOCK).min(rows);
                let mut grad = IntervalVec::zeros(d + 1);
                for r in start..end {
                    let (x_lo, x_hi) = (sx.row_lo(r), sx.row_hi(r));
                    // err = w·x + b − y, fused over the planes in the exact
                    // operation order of the AoS reference path.
                    let (mut e_lo, mut e_hi) = soa::dot(&w.lo[..d], &w.hi[..d], x_lo, x_hi);
                    e_lo += w.lo[d];
                    e_hi += w.hi[d];
                    let err_lo = e_lo - sy.hi[r];
                    let err_hi = e_hi - sy.lo[r];
                    soa::axpy(
                        err_lo,
                        err_hi,
                        x_lo,
                        x_hi,
                        &mut grad.lo[..d],
                        &mut grad.hi[..d],
                    );
                    grad.lo[d] += err_lo;
                    grad.hi[d] += err_hi;
                }
                Ok(grad)
            },
        )
        .map_err(|fail| match fail {
            WorkerFailure::Err(_, e) => e,
            WorkerFailure::Panic(b, msg) => panic!("gradient worker panicked at block {b}: {msg}"),
        })?;
    Ok(reduce_gradients(
        partials.into_iter().map(|(_, g)| g).collect(),
        d,
    ))
}

/// Fold per-block partial gradients through the canonical [`tree_reduce`]
/// shape with plane-wise adds (the same `lo + lo` / `hi + hi` as
/// `Interval::add`, so the AoS and SoA paths reduce bit-identically).
fn reduce_gradients(partials: Vec<IntervalVec>, d: usize) -> IntervalVec {
    tree_reduce(partials, |mut a, b| {
        for j in 0..=d {
            a.lo[j] += b.lo[j];
            a.hi[j] += b.hi[j];
        }
        a
    })
    .unwrap_or_else(|| IntervalVec::zeros(d + 1))
}

/// The per-epoch weight update shared by the SoA engine and the AoS
/// reference: `w ← w − lr · (∇/n + l2·w)` in scalar [`Interval`] ops
/// (d + 1 of them — never the hot path), with the divergence check.
fn update_weights(
    w: &mut IntervalVec,
    grad: &IntervalVec,
    n: f64,
    config: &ZorroConfig,
) -> Result<()> {
    for j in 0..w.len() {
        let mut g = grad.get(j).scale(1.0 / n);
        g = g + w.get(j).scale(config.l2);
        let wj = w.get(j) - g.scale(config.learning_rate);
        if wj.abs_max() > config.divergence_threshold {
            return Err(UncertainError::Diverged(format!(
                "weight {j} reached magnitude {:.3e}",
                wj.abs_max()
            )));
        }
        w.set(j, wj);
    }
    Ok(())
}

/// Reference concrete trainer: identical batch GD on a concrete matrix.
/// Any world drawn from the symbolic matrix and trained with this routine
/// yields weights inside the symbolic weight intervals (soundness). Uses
/// the same [`GRADIENT_BLOCK`]/[`tree_reduce`] accumulation shape as the
/// symbolic trainers, so point-interval symbolic runs match it bit-exactly.
pub fn train_concrete_gd(x: &Matrix, y: &[f64], config: &ZorroConfig) -> Result<Vec<f64>> {
    if x.rows() == 0 || x.rows() != y.len() {
        return Err(UncertainError::InvalidArgument(
            "empty training set or row/target mismatch".into(),
        ));
    }
    let n = x.rows() as f64;
    let d = x.cols();
    let mut w = vec![0.0; d + 1];
    for _ in 0..config.epochs {
        let partials: Vec<Vec<f64>> = (0..x.rows())
            .step_by(GRADIENT_BLOCK)
            .map(|start| {
                let end = (start + GRADIENT_BLOCK).min(x.rows());
                let mut grad = vec![0.0; d + 1];
                #[allow(clippy::needless_range_loop)] // r indexes both x and y
                for r in start..end {
                    let row = x.row(r);
                    let err = row.iter().zip(&w).map(|(xi, wi)| xi * wi).sum::<f64>() + w[d] - y[r];
                    for (g, xi) in grad.iter_mut().zip(row) {
                        *g += err * xi;
                    }
                    grad[d] += err;
                }
                grad
            })
            .collect();
        let grad = tree_reduce(partials, |mut a, b| {
            for (ga, &gb) in a.iter_mut().zip(&b) {
                *ga += gb;
            }
            a
        })
        .expect("validated non-empty");
        for (j, wj) in w.iter_mut().enumerate() {
            // `* (1.0 / n)` (not `/ n`) to match the symbolic trainer's
            // `scale(1.0 / n)` bit-for-bit on point inputs.
            *wj -= config.learning_rate * (grad[j] * (1.0 / n) + config.l2 * *wj);
        }
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::column_bounds_from_observed;
    use nde_data::generate::blobs::linear_regression;
    use nde_data::rng::Rng;
    use nde_data::rng::{sample_indices, seeded};

    fn regression_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let (xs, ys, _, _) = linear_regression(n, 2, 0.05, seed);
        (Matrix::from_rows(xs).unwrap(), ys)
    }

    #[test]
    fn no_missing_matches_concrete_gd_exactly() {
        let (x, y) = regression_data(60, 1);
        let cfg = ZorroConfig::default();
        let sym = SymbolicMatrix::from_exact(&x);
        let mut zorro = ZorroRegressor::new(cfg.clone());
        zorro.fit(&sym, &y).unwrap();
        let concrete = train_concrete_gd(&x, &y, &cfg).unwrap();
        for (iv, c) in zorro.weight_intervals().unwrap().iter().zip(&concrete) {
            assert!(iv.is_point(), "point inputs must give point weights");
            assert!((iv.lo - c).abs() < 1e-12);
        }
    }

    #[test]
    fn soundness_sampled_worlds_stay_inside_bounds() {
        let (x, y) = regression_data(40, 2);
        let bounds = column_bounds_from_observed(&x);
        let mut rng = seeded(3);
        let missing: Vec<(usize, usize)> = sample_indices(40, 8, &mut rng)
            .into_iter()
            .map(|r| (r, rng.gen_range(0..2)))
            .collect();
        let cfg = ZorroConfig {
            epochs: 40,
            ..Default::default()
        };
        let sym = SymbolicMatrix::from_matrix_with_missing(&x, &missing, &bounds).unwrap();
        let mut zorro = ZorroRegressor::new(cfg.clone());
        zorro.fit(&sym, &y).unwrap();
        let w_iv = zorro.weight_intervals().unwrap().to_vec();

        // Sample 10 worlds: impute each missing cell uniformly in its bound,
        // train concretely, check weight containment and prediction ranges.
        for world in 0..10 {
            let mut wx = x.clone();
            let mut wrng = seeded(100 + world);
            for &(r, c) in &missing {
                let b = bounds[c];
                wx.set(r, c, b.lo + wrng.gen::<f64>() * b.width());
            }
            let w = train_concrete_gd(&wx, &y, &cfg).unwrap();
            for (iv, wc) in w_iv.iter().zip(&w) {
                assert!(
                    iv.lo - 1e-9 <= *wc && *wc <= iv.hi + 1e-9,
                    "world {world}: weight {wc} outside [{}, {}]",
                    iv.lo,
                    iv.hi
                );
            }
            // Prediction containment on a probe point.
            let probe = [0.3, -0.4];
            let concrete_pred = probe.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + w[2];
            let range = zorro.predict_range(&probe).unwrap();
            assert!(range.contains(concrete_pred) || (concrete_pred - range.hi).abs() < 1e-9);
        }
    }

    #[test]
    fn worst_case_loss_grows_with_missingness() {
        let (x, y) = regression_data(80, 4);
        let (tx, ty) = regression_data(30, 5);
        let bounds = column_bounds_from_observed(&x);
        let cfg = ZorroConfig {
            epochs: 30,
            ..Default::default()
        };
        let mut losses = Vec::new();
        for pct in [0usize, 5, 10, 20] {
            let k = 80 * pct / 100;
            let mut rng = seeded(6);
            let missing: Vec<(usize, usize)> = sample_indices(80, k, &mut rng)
                .into_iter()
                .map(|r| (r, 0))
                .collect();
            let sym = SymbolicMatrix::from_matrix_with_missing(&x, &missing, &bounds).unwrap();
            let mut zorro = ZorroRegressor::new(cfg.clone());
            zorro.fit(&sym, &y).unwrap();
            losses.push(zorro.max_worst_case_loss(&tx, &ty).unwrap());
        }
        for w in losses.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "worst-case loss not monotone: {losses:?}"
            );
        }
        assert!(
            losses[3] > losses[0],
            "20% missing should strictly exceed 0%: {losses:?}"
        );
    }

    #[test]
    fn uncertain_labels_widen_bounds_and_stay_sound() {
        let (x, y) = regression_data(50, 12);
        let cfg = ZorroConfig {
            epochs: 30,
            ..Default::default()
        };
        let sym = SymbolicMatrix::from_exact(&x);
        // Point labels.
        let mut point_model = ZorroRegressor::new(cfg.clone());
        point_model.fit(&sym, &y).unwrap();
        // Labels uncertain by ±0.2 on ten rows.
        let targets: Vec<Interval> = y
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i < 10 {
                    Interval::new(v - 0.2, v + 0.2)
                } else {
                    Interval::point(v)
                }
            })
            .collect();
        let mut uncertain_model = ZorroRegressor::new(cfg.clone());
        uncertain_model.fit_uncertain(&sym, &targets).unwrap();
        // Every weight interval of the point model is contained in the
        // uncertain model's (the uncertain family is a superset).
        for (p, u) in point_model
            .weight_intervals()
            .unwrap()
            .iter()
            .zip(uncertain_model.weight_intervals().unwrap())
        {
            assert!(
                u.lo <= p.lo + 1e-12 && p.hi <= u.hi + 1e-12,
                "{p:?} vs {u:?}"
            );
        }
        // Prediction ranges widen.
        let probe = [0.1, -0.2];
        let pw = point_model.predict_range(&probe).unwrap().width();
        let uw = uncertain_model.predict_range(&probe).unwrap().width();
        assert!(uw >= pw);
        assert!(uw > 0.0);

        // Soundness: training concretely on any label choice within the
        // intervals stays inside the uncertain model's bounds.
        let mut shifted = y.clone();
        for s in shifted.iter_mut().take(10) {
            *s += 0.2;
        }
        let w = train_concrete_gd(&x, &shifted, &cfg).unwrap();
        for (iv, wc) in uncertain_model.weight_intervals().unwrap().iter().zip(&w) {
            assert!(iv.lo - 1e-9 <= *wc && *wc <= iv.hi + 1e-9);
        }
    }

    #[test]
    fn soa_engine_matches_aos_reference_at_every_thread_count() {
        let (x, y) = regression_data(300, 21);
        let bounds = column_bounds_from_observed(&x);
        let mut rng = seeded(22);
        let missing: Vec<(usize, usize)> = sample_indices(300, 40, &mut rng)
            .into_iter()
            .map(|r| (r, rng.gen_range(0..2)))
            .collect();
        let sym = SymbolicMatrix::from_matrix_with_missing(&x, &missing, &bounds).unwrap();
        let targets: Vec<Interval> = y
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i % 7 == 0 {
                    Interval::new(v - 0.1, v + 0.1)
                } else {
                    Interval::point(v)
                }
            })
            .collect();
        let cfg = ZorroConfig {
            epochs: 25,
            ..Default::default()
        };
        let mut reference = ZorroRegressor::new(cfg.clone());
        reference.fit_uncertain_reference(&sym, &targets).unwrap();
        let expect = reference.weight_intervals().unwrap().to_vec();
        for threads in [1usize, 2, 4, 7] {
            let mut engine = ZorroRegressor::new(cfg.clone().with_threads(threads));
            engine.fit_uncertain(&sym, &targets).unwrap();
            assert_eq!(
                engine.weight_intervals().unwrap(),
                &expect[..],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn budgeted_fit_with_unlimited_budget_matches_fit() {
        let (x, y) = regression_data(40, 10);
        let cfg = ZorroConfig::default();
        let sym = SymbolicMatrix::from_exact(&x);
        let mut plain = ZorroRegressor::new(cfg.clone());
        plain.fit(&sym, &y).unwrap();
        let mut budgeted = ZorroRegressor::new(cfg);
        let diag = budgeted
            .fit_budgeted(&sym, &y, &RunBudget::unlimited())
            .unwrap();
        assert!(diag.completed());
        assert_eq!(diag.iterations, 60);
        assert_eq!(
            budgeted.weight_intervals().unwrap(),
            plain.weight_intervals().unwrap()
        );
    }

    #[test]
    fn budget_exhaustion_keeps_best_so_far_weights() {
        let (x, y) = regression_data(40, 11);
        let sym = SymbolicMatrix::from_exact(&x);
        // 60 configured epochs, budget for 10: must stop at 10 with the
        // exact weights a 10-epoch run produces.
        let mut budgeted = ZorroRegressor::new(ZorroConfig::default());
        let diag = budgeted
            .fit_budgeted(&sym, &y, &RunBudget::unlimited().with_max_iterations(10))
            .unwrap();
        assert_eq!(diag.iterations, 10);
        assert_eq!(diag.exhausted, Some(nde_robust::Exhaustion::Iterations));
        let mut short = ZorroRegressor::new(ZorroConfig {
            epochs: 10,
            ..Default::default()
        });
        short.fit(&sym, &y).unwrap();
        assert_eq!(
            budgeted.weight_intervals().unwrap(),
            short.weight_intervals().unwrap()
        );
        // An immediately-exhausted budget still yields a usable (zero) model.
        let mut instant = ZorroRegressor::new(ZorroConfig::default());
        let diag = instant
            .fit_budgeted(
                &sym,
                &y,
                &RunBudget::unlimited().with_wall_clock(std::time::Duration::ZERO),
            )
            .unwrap();
        assert_eq!(diag.iterations, 0);
        assert!(!diag.completed());
        assert!(instant.predict_range(&[0.0, 0.0]).unwrap().is_point());
    }

    #[test]
    fn resumable_fit_cut_and_resume_is_bit_identical() {
        let (x, y) = regression_data(50, 14);
        let sym = SymbolicMatrix::from_exact(&x);
        let targets: Vec<Interval> = y.iter().map(|&v| Interval::point(v)).collect();
        let cfg = ZorroConfig {
            epochs: 30,
            ..Default::default()
        };
        let mut plain = ZorroRegressor::new(cfg.clone());
        plain.fit_uncertain(&sym, &targets).unwrap();

        // Cut at epoch 12, round-trip the snapshot through its durable
        // payload text, resume to completion: bit-identical weights.
        let mut cut = ZorroRegressor::new(cfg.clone());
        let (diag, ckpt) = cut
            .fit_uncertain_resumable(
                &sym,
                &targets,
                &RunBudget::unlimited().with_max_iterations(12),
                None,
            )
            .unwrap();
        assert_eq!(diag.iterations, 12);
        assert_eq!(ckpt.epochs_done, 12);
        let text = ckpt.to_payload().to_string_pretty();
        let back = ZorroCheckpoint::from_payload(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ckpt);
        let mut resumed = ZorroRegressor::new(cfg.clone());
        let (diag, done) = resumed
            .fit_uncertain_resumable(&sym, &targets, &RunBudget::unlimited(), Some(&back))
            .unwrap();
        assert!(diag.completed());
        assert_eq!(diag.iterations, 30);
        assert_eq!(done.epochs_done, 30);
        assert_eq!(
            resumed.weight_intervals().unwrap(),
            plain.weight_intervals().unwrap()
        );

        // Shape and bound mismatches are rejected, torn payloads fail to
        // parse, and a smuggled `1e999` cannot poison a resumed fit.
        let mut wrong = back.clone();
        wrong.lo.push(0.0);
        assert!(wrong.validate().is_err());
        let mut wrong = back.clone();
        wrong.epochs_done = 99;
        assert!(matches!(
            ZorroRegressor::new(cfg.clone()).fit_uncertain_resumable(
                &sym,
                &targets,
                &RunBudget::unlimited(),
                Some(&wrong)
            ),
            Err(UncertainError::Checkpoint(_))
        ));
        let mut wrong = back.clone();
        wrong.lo[0] = wrong.hi[0] + 1.0;
        assert!(wrong.validate().is_err());
        for cut in 0..text.len() {
            assert!(Json::parse(&text[..cut])
                .map(|doc| ZorroCheckpoint::from_payload(&doc))
                .map_or(true, |r| r.is_err()));
        }
        let inf = text.replacen(&format!("{}", back.lo[0]), "1e999", 1);
        assert_ne!(inf, text);
        assert!(ZorroCheckpoint::from_payload(&Json::parse(&inf).unwrap()).is_err());
    }

    #[test]
    fn divergence_detected_with_huge_learning_rate() {
        let (x, y) = regression_data(20, 7);
        let sym = SymbolicMatrix::from_exact(&x);
        let cfg = ZorroConfig {
            epochs: 200,
            learning_rate: 50.0,
            ..Default::default()
        };
        let mut zorro = ZorroRegressor::new(cfg);
        assert!(matches!(
            zorro.fit(&sym, &y),
            Err(UncertainError::Diverged(_))
        ));
    }

    #[test]
    fn validates_arguments() {
        let (x, y) = regression_data(10, 8);
        let sym = SymbolicMatrix::from_exact(&x);
        let mut zorro = ZorroRegressor::new(ZorroConfig {
            epochs: 0,
            ..Default::default()
        });
        assert!(zorro.fit(&sym, &y).is_err());
        let mut zorro = ZorroRegressor::new(ZorroConfig::default());
        assert!(zorro.fit(&sym, &y[..5]).is_err());
        assert!(zorro.predict_range(&[0.0, 0.0]).is_err()); // not fitted
        zorro.fit(&sym, &y).unwrap();
        assert!(zorro.predict_range(&[0.0]).is_err()); // wrong dim
        assert!(zorro.squared_loss_ranges(&x, &y[..3]).is_err());
    }

    #[test]
    fn loss_ranges_cover_point_model_loss() {
        let (x, y) = regression_data(50, 9);
        let cfg = ZorroConfig::default();
        let sym = SymbolicMatrix::from_exact(&x);
        let mut zorro = ZorroRegressor::new(cfg.clone());
        zorro.fit(&sym, &y).unwrap();
        let w = train_concrete_gd(&x, &y, &cfg).unwrap();
        let ranges = zorro.squared_loss_ranges(&x, &y).unwrap();
        for ((row, &target), range) in x.iter_rows().zip(&y).zip(&ranges) {
            let pred = row.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + w[2];
            let loss = (pred - target) * (pred - target);
            assert!(range.contains(loss) || (loss - range.hi).abs() < 1e-9);
        }
    }
}
