//! Closed-interval arithmetic over `f64`.
//!
//! The symbolic substrate for Zorro-style uncertainty propagation: every
//! arithmetic operation returns an interval guaranteed to contain all results
//! obtainable from any choice of operands within the input intervals
//! (soundness). No outward rounding is performed — floating-point error is
//! far below the uncertainty widths we model.

use std::ops::{Add, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` with `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// A degenerate point interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// An interval from bounds: out-of-order bounds are normalized by
    /// swapping, NaN bounds are **rejected** with a panic.
    ///
    /// A NaN bound used to slip through the old swap-only normalization
    /// (`NaN <= hi` is false, so `new(NaN, 5.0)` produced `[5.0, NaN]`) and
    /// then silently corrupted downstream hulls — `f64::max(x, NaN)`
    /// *ignores* the NaN, so a poisoned bound could vanish into a
    /// plausible-looking but unsound interval. Use [`Interval::try_new`]
    /// when the inputs are untrusted.
    ///
    /// # Panics
    ///
    /// Panics if either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Interval {
        Interval::try_new(lo, hi)
            .unwrap_or_else(|| panic!("Interval::new: NaN bound (lo={lo}, hi={hi})"))
    }

    /// Fallible constructor: `None` if either bound is NaN, otherwise the
    /// normalized (sorted-bounds) interval.
    pub fn try_new(lo: f64, hi: f64) -> Option<Interval> {
        if lo.is_nan() || hi.is_nan() {
            return None;
        }
        Some(if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        })
    }

    /// Width `hi − lo`.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn mid(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// `true` iff `v` lies in the interval.
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` iff this is a point interval.
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// Smallest interval containing both operands.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Interval of `x²` for `x` in `self` (tighter than `self * self`,
    /// which ignores the correlation between the two factors).
    pub fn square(self) -> Interval {
        let (a, b) = (self.lo.abs(), self.hi.abs());
        let hi = (a * a).max(b * b);
        let lo = if self.contains(0.0) {
            0.0
        } else {
            (a * a).min(b * b)
        };
        Interval { lo, hi }
    }

    /// Scale by a scalar.
    pub fn scale(self, c: f64) -> Interval {
        if c >= 0.0 {
            Interval {
                lo: self.lo * c,
                hi: self.hi * c,
            }
        } else {
            Interval {
                lo: self.hi * c,
                hi: self.lo * c,
            }
        }
    }

    /// Largest absolute value in the interval.
    pub fn abs_max(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        }
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let candidates = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let mut lo = candidates[0];
        let mut hi = candidates[0];
        for &c in &candidates[1..] {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval { lo, hi }
    }
}

/// Interval dot product `Σ a_i · b_i`.
pub fn interval_dot(a: &[Interval], b: &[Interval]) -> Interval {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .fold(Interval::point(0.0), |acc, (&x, &y)| acc + x * y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(3.0, 1.0);
        assert_eq!((i.lo, i.hi), (1.0, 3.0));
        assert_eq!(i.width(), 2.0);
        assert_eq!(i.mid(), 2.0);
        assert!(i.contains(1.0) && i.contains(3.0) && !i.contains(3.1));
        assert!(Interval::point(5.0).is_point());
        assert_eq!(i.abs_max(), 3.0);
        assert_eq!(Interval::new(-4.0, 2.0).abs_max(), 4.0);
    }

    #[test]
    fn try_new_normalizes_and_rejects_nan() {
        assert_eq!(Interval::try_new(3.0, 1.0), Some(Interval::new(1.0, 3.0)));
        assert_eq!(Interval::try_new(1.0, 1.0), Some(Interval::point(1.0)));
        assert_eq!(Interval::try_new(f64::NAN, 1.0), None);
        assert_eq!(Interval::try_new(1.0, f64::NAN), None);
        assert_eq!(Interval::try_new(f64::NAN, f64::NAN), None);
        // Infinities are legal bounds (e.g. an unconstrained domain).
        let inf = Interval::try_new(f64::INFINITY, f64::NEG_INFINITY).unwrap();
        assert_eq!((inf.lo, inf.hi), (f64::NEG_INFINITY, f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "NaN bound")]
    fn new_rejects_nan_lo() {
        let _ = Interval::new(f64::NAN, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN bound")]
    fn new_rejects_nan_hi() {
        let _ = Interval::new(0.0, f64::NAN);
    }

    #[test]
    fn add_sub_neg() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 3.0);
        assert_eq!(a + b, Interval::new(0.0, 5.0));
        assert_eq!(a - b, Interval::new(-2.0, 3.0));
        assert_eq!(-a, Interval::new(-2.0, -1.0));
    }

    #[test]
    fn mul_sign_cases() {
        let pos = Interval::new(2.0, 3.0);
        let neg = Interval::new(-3.0, -2.0);
        let mixed = Interval::new(-1.0, 2.0);
        assert_eq!(pos * pos, Interval::new(4.0, 9.0));
        assert_eq!(pos * neg, Interval::new(-9.0, -4.0));
        assert_eq!(neg * neg, Interval::new(4.0, 9.0));
        assert_eq!(mixed * pos, Interval::new(-3.0, 6.0));
        assert_eq!(mixed * mixed, Interval::new(-2.0, 4.0));
    }

    #[test]
    fn square_is_tighter_than_self_mul() {
        let m = Interval::new(-1.0, 2.0);
        assert_eq!(m.square(), Interval::new(0.0, 4.0));
        // Naive self-multiplication loses the x==x correlation.
        assert_eq!(m * m, Interval::new(-2.0, 4.0));
        assert_eq!(Interval::new(2.0, 3.0).square(), Interval::new(4.0, 9.0));
        assert_eq!(Interval::new(-3.0, -2.0).square(), Interval::new(4.0, 9.0));
    }

    #[test]
    fn soundness_by_sampling() {
        // Every sampled concrete computation must land inside the interval one.
        let a = Interval::new(-1.5, 0.5);
        let b = Interval::new(0.2, 2.0);
        let sum = a + b;
        let prod = a * b;
        let diff = a - b;
        for i in 0..=10 {
            for j in 0..=10 {
                let x = a.lo + a.width() * i as f64 / 10.0;
                let y = b.lo + b.width() * j as f64 / 10.0;
                assert!(sum.contains(x + y));
                assert!(prod.contains(x * y));
                assert!(diff.contains(x - y));
                assert!(a.square().contains(x * x));
            }
        }
    }

    #[test]
    fn scale_and_hull_and_dot() {
        let a = Interval::new(1.0, 2.0);
        assert_eq!(a.scale(2.0), Interval::new(2.0, 4.0));
        assert_eq!(a.scale(-1.0), Interval::new(-2.0, -1.0));
        assert_eq!(a.hull(Interval::new(5.0, 6.0)), Interval::new(1.0, 6.0));
        let d = interval_dot(
            &[Interval::point(1.0), Interval::new(0.0, 1.0)],
            &[Interval::point(2.0), Interval::point(3.0)],
        );
        assert_eq!(d, Interval::new(2.0, 5.0));
    }
}
