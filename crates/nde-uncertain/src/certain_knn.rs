//! Certain predictions for nearest-neighbor classifiers over incomplete data
//! (Karlaš et al., "Nearest Neighbor Classifiers over Incomplete
//! Information: From Certain Answers to Certain Predictions", VLDB'20).
//!
//! A prediction is **certain** when it is identical in *every* possible
//! world, i.e. under every imputation of the missing training cells. Because
//! each training row's missing cells are imputed independently, certainty of
//! a 1-NN prediction has an exact characterization via per-row distance
//! bounds — no world enumeration needed.

use crate::interval::Interval;
use crate::soa::{self, IntervalMatrix};
use crate::symbolic::SymbolicMatrix;
use crate::{Result, UncertainError};
use nde_data::par::{CostHint, WorkerFailure};
use nde_data::pool::WorkerPool;
use nde_ml::linalg::Matrix;
use std::sync::atomic::AtomicBool;

/// Outcome of a certain-prediction query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertainOutcome {
    /// The same label wins in every possible world.
    Certain(usize),
    /// Different worlds can produce different labels; the payload is the
    /// label of the midpoint world (a best guess, *not* certain).
    Uncertain(usize),
}

impl CertainOutcome {
    /// The label, certain or not.
    pub fn label(self) -> usize {
        match self {
            CertainOutcome::Certain(l) | CertainOutcome::Uncertain(l) => l,
        }
    }

    /// `true` iff the prediction is certain.
    pub fn is_certain(self) -> bool {
        matches!(self, CertainOutcome::Certain(_))
    }
}

/// A reusable certain-1-NN classifier over SoA distance planes: the hot
/// path behind [`certain_coverage`].
///
/// Construction re-lays the symbolic training matrix into contiguous
/// `lo`/`hi` planes once; each [`CertainKnnIndex::classify`] then runs a
/// single streaming scan with **candidate pruning** — a row whose running
/// distance *lower* bound exceeds the best distance *upper* bound seen so
/// far is skipped mid-row ([`soa::sq_dist_bounds_pruned`]).
///
/// # Why pruning is exact
///
/// The best upper bound `best_hi` only decreases during the scan, so a
/// pruned row's final lower bound is **strictly** above the final
/// `best_hi`. Such a row can neither own the smallest upper bound (it
/// cannot be the candidate) nor have `d.lo ≤ best_hi` (it cannot break
/// certainty, whose test is `best_hi < min_other_dmin`). Every verdict is
/// therefore identical to the unpruned scan — and to the AoS reference
/// [`certain_prediction_1nn`] — which the property tests assert.
///
/// The scan also tracks the two smallest lower bounds over *distinct
/// labels* (`lo1` with its label, and `lo2` over rows labeled differently
/// from `lo1`'s owner), which yields the exact
/// `min_other_dmin = if lo1_label == candidate { lo2 } else { lo1 }`
/// without a second pass. The midpoint-world guess needs a full unpruned
/// scan, so it is computed lazily — only for uncertain outcomes.
#[derive(Debug, Clone)]
pub struct CertainKnnIndex {
    planes: IntervalMatrix,
    labels: Vec<usize>,
}

impl CertainKnnIndex {
    /// Build the SoA planes for a symbolic training set.
    pub fn new(train: &SymbolicMatrix, labels: &[usize]) -> Result<CertainKnnIndex> {
        if train.is_empty() {
            return Err(UncertainError::InvalidArgument("empty training set".into()));
        }
        if train.len() != labels.len() {
            return Err(UncertainError::InvalidArgument(format!(
                "{} rows but {} labels",
                train.len(),
                labels.len()
            )));
        }
        Ok(CertainKnnIndex {
            planes: IntervalMatrix::from_symbolic(train),
            labels: labels.to_vec(),
        })
    }

    /// Number of training rows.
    pub fn len(&self) -> usize {
        self.planes.rows()
    }

    /// `true` iff the index holds no rows (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }

    /// Certain-prediction verdict for one query (pruned scan).
    pub fn classify(&self, query: &[f64]) -> Result<CertainOutcome> {
        self.classify_inner(query, true)
    }

    /// [`CertainKnnIndex::classify`] without pruning: every row's full
    /// distance bounds are computed. Same verdicts, kept as the
    /// cross-check for the pruned scan.
    pub fn classify_unpruned(&self, query: &[f64]) -> Result<CertainOutcome> {
        self.classify_inner(query, false)
    }

    fn classify_inner(&self, query: &[f64], prune: bool) -> Result<CertainOutcome> {
        if self.planes.cols() != query.len() {
            return Err(UncertainError::InvalidArgument(format!(
                "query has {} features, training data has {}",
                query.len(),
                self.planes.cols()
            )));
        }
        let mut best_hi = f64::INFINITY;
        let mut best_label = usize::MAX;
        let mut lo1 = f64::INFINITY;
        let mut lo1_label = usize::MAX;
        let mut lo2 = f64::INFINITY;
        for r in 0..self.planes.rows() {
            let (x_lo, x_hi) = (self.planes.row_lo(r), self.planes.row_hi(r));
            let bounds = if prune {
                soa::sq_dist_bounds_pruned(query, x_lo, x_hi, best_hi)
            } else {
                Some(soa::sq_dist_bounds(query, x_lo, x_hi))
            };
            let Some((d_lo, d_hi)) = bounds else {
                continue; // pruned: d_lo > best_hi, provably irrelevant
            };
            let label = self.labels[r];
            if d_hi < best_hi {
                best_hi = d_hi;
                best_label = label;
            }
            if d_lo < lo1 {
                if label != lo1_label {
                    lo2 = lo1;
                }
                lo1 = d_lo;
                lo1_label = label;
            } else if label != lo1_label && d_lo < lo2 {
                lo2 = d_lo;
            }
        }
        let min_other_dmin = if lo1_label != best_label { lo1 } else { lo2 };
        if best_hi < min_other_dmin {
            return Ok(CertainOutcome::Certain(best_label));
        }
        // Uncertain: compute the midpoint-world guess with a full scan
        // (cold path — certainty already failed for this query).
        let mut guess = usize::MAX;
        let mut best_mid = f64::INFINITY;
        for r in 0..self.planes.rows() {
            let (d_lo, d_hi) =
                soa::sq_dist_bounds(query, self.planes.row_lo(r), self.planes.row_hi(r));
            let mid = 0.5 * (d_lo + d_hi);
            if mid < best_mid {
                best_mid = mid;
                guess = self.labels[r];
            }
        }
        Ok(CertainOutcome::Uncertain(guess))
    }

    /// Classify a batch of queries on `threads` workers. Queries are
    /// independent, so the outcome vector is bit-identical at every thread
    /// count (the pooled map returns results sorted by query index).
    pub fn classify_batch(&self, queries: &Matrix, threads: usize) -> Result<Vec<CertainOutcome>> {
        let stop = AtomicBool::new(false);
        // Each query scans every symbolic training row.
        let cost = CostHint::PerItemNanos(self.labels.len().max(1) as u64 * 100);
        let out = WorkerPool::shared()
            .map_indexed::<CertainOutcome, UncertainError, _>(
                threads,
                0..queries.rows() as u64,
                &stop,
                cost,
                |q| self.classify(queries.row(q as usize)),
            )
            .map_err(|fail| match fail {
                WorkerFailure::Err(_, e) => e,
                WorkerFailure::Panic(q, msg) => {
                    panic!("certain-KNN worker panicked at query {q}: {msg}")
                }
            })?;
        Ok(out.into_iter().map(|(_, o)| o).collect())
    }

    /// Fraction of queries with a certain verdict, plus per-query outcomes.
    pub fn coverage(&self, queries: &Matrix, threads: usize) -> Result<(f64, Vec<CertainOutcome>)> {
        let outcomes = self.classify_batch(queries, threads)?;
        if outcomes.is_empty() {
            return Ok((0.0, outcomes));
        }
        let certain = outcomes.iter().filter(|o| o.is_certain()).count();
        Ok((certain as f64 / outcomes.len() as f64, outcomes))
    }
}

/// Interval of possible squared distances between a concrete query and a
/// symbolic (interval) training row.
fn distance_interval(query: &[f64], row: &[Interval]) -> Interval {
    debug_assert_eq!(query.len(), row.len());
    let mut d = Interval::point(0.0);
    for (&q, &iv) in query.iter().zip(row) {
        d = d + (iv - Interval::point(q)).square();
    }
    d
}

/// Certain-prediction check for a 1-NN classifier over incomplete training
/// data. `labels[i]` is the label of symbolic training row `i`.
///
/// The check is **exact** (sound and complete) for 1-NN: the prediction is
/// certain with label `L` iff the smallest *max*-distance among rows labeled
/// `L` is strictly below the smallest *min*-distance among rows with any
/// other label. (If some wrong-label row can get at least as close as every
/// right-label row must be, there is a world where it wins.)
pub fn certain_prediction_1nn(
    train: &SymbolicMatrix,
    labels: &[usize],
    query: &[f64],
) -> Result<CertainOutcome> {
    if train.is_empty() {
        return Err(UncertainError::InvalidArgument("empty training set".into()));
    }
    if train.len() != labels.len() {
        return Err(UncertainError::InvalidArgument(format!(
            "{} rows but {} labels",
            train.len(),
            labels.len()
        )));
    }
    if train.cols() != query.len() {
        return Err(UncertainError::InvalidArgument(format!(
            "query has {} features, training data has {}",
            query.len(),
            train.cols()
        )));
    }

    let dists: Vec<Interval> = train
        .iter_rows()
        .map(|row| distance_interval(query, row))
        .collect();

    // Midpoint-world best guess.
    let guess = dists
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.mid()
                .partial_cmp(&b.1.mid())
                .expect("finite distances")
                .then(a.0.cmp(&b.0))
        })
        .map(|(i, _)| labels[i])
        .expect("non-empty");

    // Candidate label: owner of the globally smallest max-distance. Only its
    // label can possibly be certain — any other label loses in the world
    // where this row sits at its max distance... wait, the candidate is the
    // row guaranteed to be within `candidate_dmax` in every world.
    let (cand_idx, cand_dmax) = dists
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.hi
                .partial_cmp(&b.1.hi)
                .expect("finite distances")
                .then(a.0.cmp(&b.0))
        })
        .map(|(i, d)| (i, d.hi))
        .expect("non-empty");
    let label = labels[cand_idx];

    // Tightest guaranteed radius for the candidate label.
    let best_same_dmax = dists
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l == label)
        .map(|(d, _)| d.hi)
        .fold(f64::INFINITY, f64::min);
    debug_assert!((best_same_dmax - cand_dmax).abs() < 1e-12);

    // Can any differently-labeled row ever get at least as close?
    let min_other_dmin = dists
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l != label)
        .map(|(d, _)| d.lo)
        .fold(f64::INFINITY, f64::min);

    if best_same_dmax < min_other_dmin {
        Ok(CertainOutcome::Certain(label))
    } else {
        Ok(CertainOutcome::Uncertain(guess))
    }
}

/// Fraction of queries whose 1-NN prediction is certain (the "coverage"
/// metric of the CP paper), plus per-query outcomes.
///
/// Builds a [`CertainKnnIndex`] and runs the pruned SoA scan sequentially;
/// use the index directly to reuse the planes across batches or to spread
/// queries over threads. Verdicts are identical to calling
/// [`certain_prediction_1nn`] per query (the training set is now validated
/// even when `queries` is empty).
pub fn certain_coverage(
    train: &SymbolicMatrix,
    labels: &[usize],
    queries: &Matrix,
) -> Result<(f64, Vec<CertainOutcome>)> {
    CertainKnnIndex::new(train, labels)?.coverage(queries, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::column_bounds_from_observed;
    use nde_ml::linalg::Matrix;

    fn exact_train() -> (SymbolicMatrix, Vec<usize>) {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]]).unwrap();
        (SymbolicMatrix::from_exact(&x), vec![0, 0, 1, 1])
    }

    #[test]
    fn complete_data_is_always_certain() {
        let (train, labels) = exact_train();
        let out = certain_prediction_1nn(&train, &labels, &[0.4]).unwrap();
        assert_eq!(out, CertainOutcome::Certain(0));
        let out = certain_prediction_1nn(&train, &labels, &[10.6]).unwrap();
        assert_eq!(out, CertainOutcome::Certain(1));
    }

    #[test]
    fn wide_uncertainty_breaks_certainty() {
        // Row 1 (label 0) has an interval spanning the whole axis: it could
        // sit right next to the query or far away — but it shares the
        // candidate label, so certainty survives. Make a *label-1* row wide
        // instead: then the prediction near the 0-cluster becomes uncertain.
        let rows = vec![
            vec![Interval::point(0.0)],
            vec![Interval::point(1.0)],
            vec![Interval::new(-20.0, 20.0)], // label 1, could come anywhere
            vec![Interval::point(11.0)],
        ];
        let train = SymbolicMatrix::from_rows(rows).unwrap();
        let labels = vec![0, 0, 1, 1];
        let out = certain_prediction_1nn(&train, &labels, &[0.4]).unwrap();
        assert!(!out.is_certain());
        // Far from everything but closest to the certain 1-cluster, and the
        // wide row is also label 1 ⇒ certain.
        let out = certain_prediction_1nn(&train, &labels, &[11.2]).unwrap();
        assert_eq!(out, CertainOutcome::Certain(1));
    }

    #[test]
    fn same_label_uncertainty_is_harmless() {
        // A wide interval on a row that shares the winning label cannot
        // change the prediction.
        let rows = vec![
            vec![Interval::point(0.0)],
            vec![Interval::new(-50.0, 50.0)], // label 0, wide
            vec![Interval::point(10.0)],
        ];
        let train = SymbolicMatrix::from_rows(rows).unwrap();
        let labels = vec![0, 0, 1];
        let out = certain_prediction_1nn(&train, &labels, &[0.3]).unwrap();
        assert_eq!(out, CertainOutcome::Certain(0));
    }

    #[test]
    fn coverage_decreases_with_missing_fraction() {
        // 40 points, two clusters; progressively widen more rows.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            rows.push(vec![i as f64 * 0.05]);
            labels.push(0);
            rows.push(vec![10.0 + i as f64 * 0.05]);
            labels.push(1);
        }
        let x = Matrix::from_rows(rows).unwrap();
        let bounds = column_bounds_from_observed(&x);
        let queries = Matrix::from_rows((0..10).map(|i| vec![i as f64 * 1.1]).collect()).unwrap();
        let mut coverages = Vec::new();
        for k in [0usize, 8, 20, 36] {
            let missing: Vec<(usize, usize)> = (0..k).map(|r| (r, 0)).collect();
            let sym = SymbolicMatrix::from_matrix_with_missing(&x, &missing, &bounds).unwrap();
            let (cov, outcomes) = certain_coverage(&sym, &labels, &queries).unwrap();
            assert_eq!(outcomes.len(), 10);
            coverages.push(cov);
        }
        assert_eq!(coverages[0], 1.0);
        for w in coverages.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "coverage not decreasing: {coverages:?}"
            );
        }
        assert!(coverages[3] < 1.0);
    }

    #[test]
    fn certainty_check_is_exact_vs_grid_enumeration() {
        // One missing cell: enumerate a fine grid of worlds and verify the
        // analytic verdict matches brute force.
        let rows = vec![
            vec![Interval::point(0.0)],
            vec![Interval::new(0.0, 6.0)], // label 1, uncertain cell
            vec![Interval::point(10.0)],
        ];
        let train = SymbolicMatrix::from_rows(rows.clone()).unwrap();
        let labels = vec![0, 1, 1];
        for q in [1.0f64, 4.0, 8.0] {
            let verdict = certain_prediction_1nn(&train, &labels, &[q]).unwrap();
            // Brute force over the single uncertain cell.
            let mut seen = std::collections::HashSet::new();
            for step in 0..=600 {
                let v = 6.0 * step as f64 / 600.0;
                let dists = [
                    (q - 0.0) * (q - 0.0),
                    (q - v) * (q - v),
                    (q - 10.0) * (q - 10.0),
                ];
                let mut best = 0;
                for i in 1..3 {
                    if dists[i] < dists[best] {
                        best = i;
                    }
                }
                seen.insert(labels[best]);
            }
            assert_eq!(
                verdict.is_certain(),
                seen.len() == 1,
                "query {q}: verdict {verdict:?}, brute-force labels {seen:?}"
            );
        }
    }

    #[test]
    fn validates_arguments() {
        let (train, labels) = exact_train();
        assert!(certain_prediction_1nn(&train, &labels[..2], &[0.0]).is_err());
        assert!(certain_prediction_1nn(&train, &labels, &[0.0, 1.0]).is_err());
        let empty = SymbolicMatrix::from_rows(vec![]).unwrap();
        assert!(certain_prediction_1nn(&empty, &[], &[0.0]).is_err());
        // The index validates the same things.
        assert!(CertainKnnIndex::new(&train, &labels[..2]).is_err());
        assert!(CertainKnnIndex::new(&empty, &[]).is_err());
        let index = CertainKnnIndex::new(&train, &labels).unwrap();
        assert_eq!(index.len(), 4);
        assert!(!index.is_empty());
        assert!(index.classify(&[0.0, 1.0]).is_err());
    }

    /// Random two-cluster data with missing cells widened to intervals.
    fn random_symbolic(
        rows: usize,
        dims: usize,
        missing: usize,
        seed: u64,
    ) -> (SymbolicMatrix, Vec<usize>, Matrix) {
        use nde_data::rng::{sample_indices, seeded, Rng};
        let mut rng = seeded(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..rows {
            let center = if i % 2 == 0 { -1.0 } else { 1.0 };
            data.push(
                (0..dims)
                    .map(|_| center + rng.gen_range(-0.8..0.8))
                    .collect::<Vec<f64>>(),
            );
            labels.push(i % 2);
        }
        let x = Matrix::from_rows(data).unwrap();
        let bounds = column_bounds_from_observed(&x);
        let cells: Vec<(usize, usize)> = sample_indices(rows, missing, &mut rng)
            .into_iter()
            .map(|r| (r, rng.gen_range(0..dims)))
            .collect();
        let sym = SymbolicMatrix::from_matrix_with_missing(&x, &cells, &bounds).unwrap();
        let queries = Matrix::from_rows(
            (0..40)
                .map(|_| (0..dims).map(|_| rng.gen_range(-2.0..2.0)).collect())
                .collect(),
        )
        .unwrap();
        (sym, labels, queries)
    }

    #[test]
    fn index_matches_aos_reference_pruned_and_unpruned() {
        for (missing, seed) in [(0usize, 31), (10, 32), (40, 33)] {
            let (sym, labels, queries) = random_symbolic(120, 4, missing, seed);
            let index = CertainKnnIndex::new(&sym, &labels).unwrap();
            let mut some_certain = false;
            for q in queries.iter_rows() {
                let reference = certain_prediction_1nn(&sym, &labels, q).unwrap();
                assert_eq!(index.classify(q).unwrap(), reference);
                assert_eq!(index.classify_unpruned(q).unwrap(), reference);
                some_certain |= reference.is_certain();
            }
            assert!(some_certain, "degenerate test data (missing={missing})");
        }
    }

    #[test]
    fn batch_is_thread_invariant_and_matches_coverage() {
        let (sym, labels, queries) = random_symbolic(100, 3, 25, 41);
        let index = CertainKnnIndex::new(&sym, &labels).unwrap();
        let seq = index.classify_batch(&queries, 1).unwrap();
        assert_eq!(seq.len(), queries.rows());
        for threads in [2usize, 4, 7] {
            assert_eq!(
                index.classify_batch(&queries, threads).unwrap(),
                seq,
                "threads={threads}"
            );
        }
        let (cov, outcomes) = certain_coverage(&sym, &labels, &queries).unwrap();
        assert_eq!(outcomes, seq);
        let certain = seq.iter().filter(|o| o.is_certain()).count();
        assert!((cov - certain as f64 / seq.len() as f64).abs() < 1e-15);
        assert!(cov > 0.0 && cov < 1.0, "coverage {cov} not discriminative");
    }
}
