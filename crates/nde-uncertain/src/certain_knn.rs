//! Certain predictions for nearest-neighbor classifiers over incomplete data
//! (Karlaš et al., "Nearest Neighbor Classifiers over Incomplete
//! Information: From Certain Answers to Certain Predictions", VLDB'20).
//!
//! A prediction is **certain** when it is identical in *every* possible
//! world, i.e. under every imputation of the missing training cells. Because
//! each training row's missing cells are imputed independently, certainty of
//! a 1-NN prediction has an exact characterization via per-row distance
//! bounds — no world enumeration needed.

use crate::interval::Interval;
use crate::symbolic::SymbolicMatrix;
use crate::{Result, UncertainError};

/// Outcome of a certain-prediction query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertainOutcome {
    /// The same label wins in every possible world.
    Certain(usize),
    /// Different worlds can produce different labels; the payload is the
    /// label of the midpoint world (a best guess, *not* certain).
    Uncertain(usize),
}

impl CertainOutcome {
    /// The label, certain or not.
    pub fn label(self) -> usize {
        match self {
            CertainOutcome::Certain(l) | CertainOutcome::Uncertain(l) => l,
        }
    }

    /// `true` iff the prediction is certain.
    pub fn is_certain(self) -> bool {
        matches!(self, CertainOutcome::Certain(_))
    }
}

/// Interval of possible squared distances between a concrete query and a
/// symbolic (interval) training row.
fn distance_interval(query: &[f64], row: &[Interval]) -> Interval {
    debug_assert_eq!(query.len(), row.len());
    let mut d = Interval::point(0.0);
    for (&q, &iv) in query.iter().zip(row) {
        d = d + (iv - Interval::point(q)).square();
    }
    d
}

/// Certain-prediction check for a 1-NN classifier over incomplete training
/// data. `labels[i]` is the label of symbolic training row `i`.
///
/// The check is **exact** (sound and complete) for 1-NN: the prediction is
/// certain with label `L` iff the smallest *max*-distance among rows labeled
/// `L` is strictly below the smallest *min*-distance among rows with any
/// other label. (If some wrong-label row can get at least as close as every
/// right-label row must be, there is a world where it wins.)
pub fn certain_prediction_1nn(
    train: &SymbolicMatrix,
    labels: &[usize],
    query: &[f64],
) -> Result<CertainOutcome> {
    if train.is_empty() {
        return Err(UncertainError::InvalidArgument("empty training set".into()));
    }
    if train.len() != labels.len() {
        return Err(UncertainError::InvalidArgument(format!(
            "{} rows but {} labels",
            train.len(),
            labels.len()
        )));
    }
    if train.cols() != query.len() {
        return Err(UncertainError::InvalidArgument(format!(
            "query has {} features, training data has {}",
            query.len(),
            train.cols()
        )));
    }

    let dists: Vec<Interval> = train
        .iter_rows()
        .map(|row| distance_interval(query, row))
        .collect();

    // Midpoint-world best guess.
    let guess = dists
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.mid()
                .partial_cmp(&b.1.mid())
                .expect("finite distances")
                .then(a.0.cmp(&b.0))
        })
        .map(|(i, _)| labels[i])
        .expect("non-empty");

    // Candidate label: owner of the globally smallest max-distance. Only its
    // label can possibly be certain — any other label loses in the world
    // where this row sits at its max distance... wait, the candidate is the
    // row guaranteed to be within `candidate_dmax` in every world.
    let (cand_idx, cand_dmax) = dists
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.hi
                .partial_cmp(&b.1.hi)
                .expect("finite distances")
                .then(a.0.cmp(&b.0))
        })
        .map(|(i, d)| (i, d.hi))
        .expect("non-empty");
    let label = labels[cand_idx];

    // Tightest guaranteed radius for the candidate label.
    let best_same_dmax = dists
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l == label)
        .map(|(d, _)| d.hi)
        .fold(f64::INFINITY, f64::min);
    debug_assert!((best_same_dmax - cand_dmax).abs() < 1e-12);

    // Can any differently-labeled row ever get at least as close?
    let min_other_dmin = dists
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l != label)
        .map(|(d, _)| d.lo)
        .fold(f64::INFINITY, f64::min);

    if best_same_dmax < min_other_dmin {
        Ok(CertainOutcome::Certain(label))
    } else {
        Ok(CertainOutcome::Uncertain(guess))
    }
}

/// Fraction of queries whose 1-NN prediction is certain (the "coverage"
/// metric of the CP paper), plus per-query outcomes.
pub fn certain_coverage(
    train: &SymbolicMatrix,
    labels: &[usize],
    queries: &nde_ml::linalg::Matrix,
) -> Result<(f64, Vec<CertainOutcome>)> {
    let outcomes: Result<Vec<CertainOutcome>> = queries
        .iter_rows()
        .map(|q| certain_prediction_1nn(train, labels, q))
        .collect();
    let outcomes = outcomes?;
    if outcomes.is_empty() {
        return Ok((0.0, outcomes));
    }
    let certain = outcomes.iter().filter(|o| o.is_certain()).count();
    Ok((certain as f64 / outcomes.len() as f64, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::column_bounds_from_observed;
    use nde_ml::linalg::Matrix;

    fn exact_train() -> (SymbolicMatrix, Vec<usize>) {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]]).unwrap();
        (SymbolicMatrix::from_exact(&x), vec![0, 0, 1, 1])
    }

    #[test]
    fn complete_data_is_always_certain() {
        let (train, labels) = exact_train();
        let out = certain_prediction_1nn(&train, &labels, &[0.4]).unwrap();
        assert_eq!(out, CertainOutcome::Certain(0));
        let out = certain_prediction_1nn(&train, &labels, &[10.6]).unwrap();
        assert_eq!(out, CertainOutcome::Certain(1));
    }

    #[test]
    fn wide_uncertainty_breaks_certainty() {
        // Row 1 (label 0) has an interval spanning the whole axis: it could
        // sit right next to the query or far away — but it shares the
        // candidate label, so certainty survives. Make a *label-1* row wide
        // instead: then the prediction near the 0-cluster becomes uncertain.
        let rows = vec![
            vec![Interval::point(0.0)],
            vec![Interval::point(1.0)],
            vec![Interval::new(-20.0, 20.0)], // label 1, could come anywhere
            vec![Interval::point(11.0)],
        ];
        let train = SymbolicMatrix::from_rows(rows).unwrap();
        let labels = vec![0, 0, 1, 1];
        let out = certain_prediction_1nn(&train, &labels, &[0.4]).unwrap();
        assert!(!out.is_certain());
        // Far from everything but closest to the certain 1-cluster, and the
        // wide row is also label 1 ⇒ certain.
        let out = certain_prediction_1nn(&train, &labels, &[11.2]).unwrap();
        assert_eq!(out, CertainOutcome::Certain(1));
    }

    #[test]
    fn same_label_uncertainty_is_harmless() {
        // A wide interval on a row that shares the winning label cannot
        // change the prediction.
        let rows = vec![
            vec![Interval::point(0.0)],
            vec![Interval::new(-50.0, 50.0)], // label 0, wide
            vec![Interval::point(10.0)],
        ];
        let train = SymbolicMatrix::from_rows(rows).unwrap();
        let labels = vec![0, 0, 1];
        let out = certain_prediction_1nn(&train, &labels, &[0.3]).unwrap();
        assert_eq!(out, CertainOutcome::Certain(0));
    }

    #[test]
    fn coverage_decreases_with_missing_fraction() {
        // 40 points, two clusters; progressively widen more rows.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            rows.push(vec![i as f64 * 0.05]);
            labels.push(0);
            rows.push(vec![10.0 + i as f64 * 0.05]);
            labels.push(1);
        }
        let x = Matrix::from_rows(rows).unwrap();
        let bounds = column_bounds_from_observed(&x);
        let queries = Matrix::from_rows((0..10).map(|i| vec![i as f64 * 1.1]).collect()).unwrap();
        let mut coverages = Vec::new();
        for k in [0usize, 8, 20, 36] {
            let missing: Vec<(usize, usize)> = (0..k).map(|r| (r, 0)).collect();
            let sym = SymbolicMatrix::from_matrix_with_missing(&x, &missing, &bounds).unwrap();
            let (cov, outcomes) = certain_coverage(&sym, &labels, &queries).unwrap();
            assert_eq!(outcomes.len(), 10);
            coverages.push(cov);
        }
        assert_eq!(coverages[0], 1.0);
        for w in coverages.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "coverage not decreasing: {coverages:?}"
            );
        }
        assert!(coverages[3] < 1.0);
    }

    #[test]
    fn certainty_check_is_exact_vs_grid_enumeration() {
        // One missing cell: enumerate a fine grid of worlds and verify the
        // analytic verdict matches brute force.
        let rows = vec![
            vec![Interval::point(0.0)],
            vec![Interval::new(0.0, 6.0)], // label 1, uncertain cell
            vec![Interval::point(10.0)],
        ];
        let train = SymbolicMatrix::from_rows(rows.clone()).unwrap();
        let labels = vec![0, 1, 1];
        for q in [1.0f64, 4.0, 8.0] {
            let verdict = certain_prediction_1nn(&train, &labels, &[q]).unwrap();
            // Brute force over the single uncertain cell.
            let mut seen = std::collections::HashSet::new();
            for step in 0..=600 {
                let v = 6.0 * step as f64 / 600.0;
                let dists = [
                    (q - 0.0) * (q - 0.0),
                    (q - v) * (q - v),
                    (q - 10.0) * (q - 10.0),
                ];
                let mut best = 0;
                for i in 1..3 {
                    if dists[i] < dists[best] {
                        best = i;
                    }
                }
                seen.insert(labels[best]);
            }
            assert_eq!(
                verdict.is_certain(),
                seen.len() == 1,
                "query {q}: verdict {verdict:?}, brute-force labels {seen:?}"
            );
        }
    }

    #[test]
    fn validates_arguments() {
        let (train, labels) = exact_train();
        assert!(certain_prediction_1nn(&train, &labels[..2], &[0.0]).is_err());
        assert!(certain_prediction_1nn(&train, &labels, &[0.0, 1.0]).is_err());
        let empty = SymbolicMatrix::from_rows(vec![]).unwrap();
        assert!(certain_prediction_1nn(&empty, &[], &[0.0]).is_err());
    }
}
