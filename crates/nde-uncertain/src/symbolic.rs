//! Symbolic feature matrices: missing cells become domain intervals.
//!
//! This is the tutorial's `encode_symbolic` step (Fig. 4): instead of
//! imputing a missing value with a point guess, the cell is replaced by an
//! interval spanning the value's plausible domain, and downstream training
//! propagates that uncertainty symbolically.

use crate::interval::Interval;
use crate::{Result, UncertainError};
use nde_ml::linalg::Matrix;

/// A matrix of intervals, one row per example.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicMatrix {
    rows: Vec<Vec<Interval>>,
    cols: usize,
}

impl SymbolicMatrix {
    /// Wrap explicit interval rows (all must have equal length).
    pub fn from_rows(rows: Vec<Vec<Interval>>) -> Result<SymbolicMatrix> {
        let cols = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != cols) {
            return Err(UncertainError::InvalidArgument(
                "ragged symbolic matrix".into(),
            ));
        }
        Ok(SymbolicMatrix { rows, cols })
    }

    /// Lift a concrete matrix: every cell becomes a point interval.
    pub fn from_exact(x: &Matrix) -> SymbolicMatrix {
        SymbolicMatrix {
            rows: x
                .iter_rows()
                .map(|r| r.iter().map(|&v| Interval::point(v)).collect())
                .collect(),
            cols: x.cols(),
        }
    }

    /// Lift a concrete matrix and replace the cells listed in `missing`
    /// (row, col) with the corresponding column's domain interval.
    ///
    /// `column_bounds[c]` is the plausible domain of column `c`; derive it
    /// with [`column_bounds_from_observed`] when not known a priori.
    pub fn from_matrix_with_missing(
        x: &Matrix,
        missing: &[(usize, usize)],
        column_bounds: &[Interval],
    ) -> Result<SymbolicMatrix> {
        if column_bounds.len() != x.cols() {
            return Err(UncertainError::InvalidArgument(format!(
                "{} column bounds for {} columns",
                column_bounds.len(),
                x.cols()
            )));
        }
        let mut sym = SymbolicMatrix::from_exact(x);
        for &(r, c) in missing {
            if r >= x.rows() || c >= x.cols() {
                return Err(UncertainError::InvalidArgument(format!(
                    "missing cell ({r}, {c}) out of bounds for {}x{} matrix",
                    x.rows(),
                    x.cols()
                )));
            }
            sym.rows[r][c] = column_bounds[c];
        }
        Ok(sym)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[Interval] {
        &self.rows[i]
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[Interval]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// Total uncertainty: sum of cell widths.
    pub fn total_width(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| r.iter().map(|i| i.width()))
            .sum()
    }

    /// The concrete midpoint matrix (one possible world: every cell at its
    /// interval center — equivalent to midpoint imputation).
    pub fn midpoint_world(&self) -> Matrix {
        let mut m = Matrix::zeros(self.len(), self.cols);
        for (i, row) in self.rows.iter().enumerate() {
            for (j, iv) in row.iter().enumerate() {
                m.set(i, j, iv.mid());
            }
        }
        m
    }
}

/// Per-column `[min, max]` over the observed values of a matrix — the
/// default domain for missing cells.
#[allow(clippy::needless_range_loop)] // column-major scan of a row-major matrix
pub fn column_bounds_from_observed(x: &Matrix) -> Vec<Interval> {
    let mut bounds = vec![Interval::point(0.0); x.cols()];
    for c in 0..x.cols() {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in 0..x.rows() {
            let v = x.get(r, c);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        bounds[c] = if lo <= hi {
            Interval::new(lo, hi)
        } else {
            Interval::point(0.0)
        };
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Matrix {
        Matrix::from_rows(vec![vec![1.0, -2.0], vec![3.0, 0.0], vec![2.0, 2.0]]).unwrap()
    }

    #[test]
    fn exact_lift_is_all_points() {
        let sym = SymbolicMatrix::from_exact(&matrix());
        assert_eq!(sym.len(), 3);
        assert_eq!(sym.cols(), 2);
        assert!(sym.iter_rows().all(|r| r.iter().all(|i| i.is_point())));
        assert_eq!(sym.total_width(), 0.0);
    }

    #[test]
    fn missing_cells_get_column_bounds() {
        let x = matrix();
        let bounds = column_bounds_from_observed(&x);
        assert_eq!(bounds[0], Interval::new(1.0, 3.0));
        assert_eq!(bounds[1], Interval::new(-2.0, 2.0));
        let sym = SymbolicMatrix::from_matrix_with_missing(&x, &[(0, 1), (2, 0)], &bounds).unwrap();
        assert_eq!(sym.row(0)[1], Interval::new(-2.0, 2.0));
        assert_eq!(sym.row(2)[0], Interval::new(1.0, 3.0));
        assert!(sym.row(1)[0].is_point());
        assert_eq!(sym.total_width(), 4.0 + 2.0);
    }

    #[test]
    fn midpoint_world_is_midpoint_imputation() {
        let x = matrix();
        let bounds = column_bounds_from_observed(&x);
        let sym = SymbolicMatrix::from_matrix_with_missing(&x, &[(0, 0)], &bounds).unwrap();
        let world = sym.midpoint_world();
        assert_eq!(world.get(0, 0), 2.0); // mid of [1, 3]
        assert_eq!(world.get(1, 0), 3.0); // observed value untouched
    }

    #[test]
    fn validates_inputs() {
        let x = matrix();
        let bounds = column_bounds_from_observed(&x);
        assert!(SymbolicMatrix::from_matrix_with_missing(&x, &[(9, 0)], &bounds).is_err());
        assert!(SymbolicMatrix::from_matrix_with_missing(&x, &[(0, 9)], &bounds).is_err());
        assert!(SymbolicMatrix::from_matrix_with_missing(&x, &[], &bounds[..1]).is_err());
        assert!(SymbolicMatrix::from_rows(vec![
            vec![Interval::point(0.0)],
            vec![Interval::point(0.0), Interval::point(1.0)]
        ])
        .is_err());
    }

    #[test]
    fn empty_matrix_bounds_are_safe() {
        let empty = Matrix::zeros(0, 2);
        let bounds = column_bounds_from_observed(&empty);
        assert_eq!(bounds.len(), 2);
        assert!(bounds.iter().all(|b| b.is_point()));
    }
}
