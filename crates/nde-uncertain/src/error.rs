//! Error type for the uncertain-data crate.

use std::fmt;

/// Errors from symbolic encoding, interval training and certainty checks.
#[derive(Debug, Clone, PartialEq)]
pub enum UncertainError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// Interval training diverged (bounds grew unbounded).
    Diverged(String),
    /// Too many uncertain cells/labels for exact enumeration.
    TooManyWorlds {
        /// Number of uncertain items requested.
        requested: usize,
        /// Enumeration limit.
        limit: usize,
    },
    /// A wrapped ML-substrate error.
    Ml(String),
}

impl fmt::Display for UncertainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UncertainError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            UncertainError::Diverged(m) => write!(f, "interval training diverged: {m}"),
            UncertainError::TooManyWorlds { requested, limit } => write!(
                f,
                "{requested} uncertain items exceed the exact-enumeration limit of {limit}"
            ),
            UncertainError::Ml(m) => write!(f, "ml error: {m}"),
        }
    }
}

impl std::error::Error for UncertainError {}

impl From<nde_ml::MlError> for UncertainError {
    fn from(e: nde_ml::MlError) -> Self {
        UncertainError::Ml(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = UncertainError::TooManyWorlds {
            requested: 40,
            limit: 20,
        };
        assert!(e.to_string().contains("40"));
        let e: UncertainError = nde_ml::MlError::NotFitted.into();
        assert!(matches!(e, UncertainError::Ml(_)));
    }
}
