//! Error type for the uncertain-data crate.

use std::fmt;

/// Errors from symbolic encoding, interval training and certainty checks.
#[derive(Debug, Clone, PartialEq)]
pub enum UncertainError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// Interval training diverged (bounds grew unbounded).
    Diverged(String),
    /// Too many uncertain cells/labels for exact enumeration.
    TooManyWorlds {
        /// Number of uncertain items requested.
        requested: usize,
        /// Enumeration limit.
        limit: usize,
    },
    /// A wrapped ML-substrate error.
    Ml(String),
    /// A checkpoint did not match the run it was resumed into.
    Checkpoint(String),
    /// A durable run-store operation failed (filesystem or record layer).
    Store(String),
}

impl fmt::Display for UncertainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UncertainError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            UncertainError::Diverged(m) => write!(f, "interval training diverged: {m}"),
            UncertainError::TooManyWorlds { requested, limit } => write!(
                f,
                "{requested} uncertain items exceed the exact-enumeration limit of {limit}"
            ),
            UncertainError::Ml(m) => write!(f, "ml error: {m}"),
            UncertainError::Checkpoint(m) => write!(f, "checkpoint mismatch: {m}"),
            UncertainError::Store(m) => write!(f, "durable store error: {m}"),
        }
    }
}

impl std::error::Error for UncertainError {}

impl From<nde_ml::MlError> for UncertainError {
    fn from(e: nde_ml::MlError) -> Self {
        UncertainError::Ml(e.to_string())
    }
}

impl From<nde_robust::RobustError> for UncertainError {
    fn from(e: nde_robust::RobustError) -> Self {
        match e {
            nde_robust::RobustError::Checkpoint(m) => UncertainError::Checkpoint(m),
            nde_robust::RobustError::InvalidArgument(m) => UncertainError::InvalidArgument(m),
            e => UncertainError::Store(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = UncertainError::TooManyWorlds {
            requested: 40,
            limit: 20,
        };
        assert!(e.to_string().contains("40"));
        let e: UncertainError = nde_ml::MlError::NotFitted.into();
        assert!(matches!(e, UncertainError::Ml(_)));
    }
}
