//! # nde-uncertain
//!
//! Learning from uncertain and incomplete data (paper §2.3, Fig. 4):
//!
//! * [`interval`] — interval arithmetic, the symbolic substrate;
//! * [`symbolic`] — symbolic feature matrices where missing cells become
//!   intervals over their column domain (`encode_symbolic` in the tutorial);
//! * [`zorro`] — Zorro-style symbolic training of linear models under
//!   missing-value uncertainty, yielding **worst-case loss bounds** and
//!   **prediction ranges** (Zhu et al., NeurIPS'24);
//! * [`certain_knn`] — certain predictions for nearest-neighbor classifiers
//!   over incomplete data (Karlaš et al., VLDB'20);
//! * [`certain_models`] — certain / approximately-certain model checks
//!   (Zhen et al., SIGMOD'24);
//! * [`multiplicity`] — the dataset-multiplicity problem for uncertain
//!   labels (Meyer et al., FAccT'23);
//! * [`worlds`] — possible-worlds sampling and robust (abstaining)
//!   aggregation;
//! * [`soa`] — structure-of-arrays interval kernels (`lo`/`hi` planes,
//!   fused dot/axpy/distance-bound loops), the engine behind the Zorro and
//!   certain-KNN hot paths. The scalar [`Interval`] paths survive as the
//!   cross-checked reference representation.

pub mod certain_knn;
pub mod certain_models;
pub mod error;
pub mod interval;
pub mod multiplicity;
pub mod soa;
pub mod symbolic;
pub mod worlds;
pub mod zorro;

pub use error::UncertainError;
pub use interval::Interval;
pub use soa::{IntervalMatrix, IntervalVec};
pub use symbolic::SymbolicMatrix;
pub use zorro::{ZorroCheckpoint, ZorroConfig, ZorroRegressor};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, UncertainError>;
