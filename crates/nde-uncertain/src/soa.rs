//! Structure-of-arrays interval kernels: the Learn pillar's hot-path
//! engine.
//!
//! [`Interval`] is a fine abstraction for building symbolic computations,
//! but an array-of-structs `Vec<Vec<Interval>>` matrix interleaves `lo` and
//! `hi` in memory and hides the loops behind per-row `Vec` indirection, so
//! the optimizer cannot vectorize the epoch loops of
//! [`crate::zorro::ZorroRegressor`] or the distance scans of
//! [`crate::certain_knn`]. This module stores the same data as two
//! contiguous planes — [`IntervalVec`] / [`IntervalMatrix`] hold all the
//! `lo` bounds in one slice and all the `hi` bounds in another — and
//! provides fused kernels ([`dot`], [`axpy`], [`sq_dist_bounds`],
//! [`sq_dist_bounds_pruned`]) written as straight-line loops over those
//! planes.
//!
//! # Bit-identity contract
//!
//! Every kernel performs **exactly the floating-point operations, in
//! exactly the order**, of the equivalent scalar [`Interval`] expression
//! (`interval_dot`, `acc + a * x`, `(iv - point(q)).square()` folds). Only
//! the memory layout changes, so results are bit-identical to the AoS
//! reference path — the property tests in `tests/tests/uncertain_soa.rs`
//! assert this across random matrices, and the reference implementations
//! stay in the tree as the cross-check (the same pattern the provenance
//! arena uses with the recursive `ProvExpr`).

use crate::interval::Interval;
use crate::symbolic::SymbolicMatrix;

/// A vector of intervals stored as two contiguous planes.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalVec {
    /// Lower bounds.
    pub lo: Vec<f64>,
    /// Upper bounds.
    pub hi: Vec<f64>,
}

impl IntervalVec {
    /// `n` point-zero intervals.
    pub fn zeros(n: usize) -> IntervalVec {
        IntervalVec {
            lo: vec![0.0; n],
            hi: vec![0.0; n],
        }
    }

    /// Split an AoS interval slice into planes.
    pub fn from_intervals(ivs: &[Interval]) -> IntervalVec {
        IntervalVec {
            lo: ivs.iter().map(|i| i.lo).collect(),
            hi: ivs.iter().map(|i| i.hi).collect(),
        }
    }

    /// Materialize the AoS representation.
    pub fn to_intervals(&self) -> Vec<Interval> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&lo, &hi)| Interval { lo, hi })
            .collect()
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.lo.len()
    }

    /// `true` if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// The `i`-th interval.
    pub fn get(&self, i: usize) -> Interval {
        Interval {
            lo: self.lo[i],
            hi: self.hi[i],
        }
    }

    /// Overwrite the `i`-th interval.
    pub fn set(&mut self, i: usize, iv: Interval) {
        self.lo[i] = iv.lo;
        self.hi[i] = iv.hi;
    }

    /// Reset every element to the point-zero interval.
    pub fn clear_to_zero(&mut self) {
        self.lo.iter_mut().for_each(|v| *v = 0.0);
        self.hi.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// A row-major matrix of intervals stored as two contiguous planes.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalMatrix {
    lo: Vec<f64>,
    hi: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl IntervalMatrix {
    /// Re-lay a [`SymbolicMatrix`] (AoS rows) into separate planes. Cell
    /// order is row-major, matching `SymbolicMatrix::iter_rows`.
    pub fn from_symbolic(x: &SymbolicMatrix) -> IntervalMatrix {
        let (rows, cols) = (x.len(), x.cols());
        let mut lo = Vec::with_capacity(rows * cols);
        let mut hi = Vec::with_capacity(rows * cols);
        for row in x.iter_rows() {
            for iv in row {
                lo.push(iv.lo);
                hi.push(iv.hi);
            }
        }
        IntervalMatrix { lo, hi, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Lower-bound plane of row `r`.
    pub fn row_lo(&self, r: usize) -> &[f64] {
        &self.lo[r * self.cols..(r + 1) * self.cols]
    }

    /// Upper-bound plane of row `r`.
    pub fn row_hi(&self, r: usize) -> &[f64] {
        &self.hi[r * self.cols..(r + 1) * self.cols]
    }

    /// The interval at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> Interval {
        Interval {
            lo: self.lo[r * self.cols + c],
            hi: self.hi[r * self.cols + c],
        }
    }
}

/// Product bounds of `[a_lo, a_hi] * [b_lo, b_hi]`, with the exact
/// candidate fold order of `Interval::mul`.
#[inline]
fn mul_bounds(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64) -> (f64, f64) {
    let c0 = a_lo * b_lo;
    let c1 = a_lo * b_hi;
    let c2 = a_hi * b_lo;
    let c3 = a_hi * b_hi;
    (c0.min(c1).min(c2).min(c3), c0.max(c1).max(c2).max(c3))
}

/// Fused interval dot product `Σ_j w_j · x_j` over planes: bit-identical to
/// `interval_dot` on the AoS representation (same per-element candidate
/// folds, same left-to-right accumulation).
#[inline]
pub fn dot(w_lo: &[f64], w_hi: &[f64], x_lo: &[f64], x_hi: &[f64]) -> (f64, f64) {
    debug_assert!(w_lo.len() == x_lo.len() && w_hi.len() == x_hi.len());
    let mut acc_lo = 0.0;
    let mut acc_hi = 0.0;
    for j in 0..w_lo.len() {
        let (p_lo, p_hi) = mul_bounds(w_lo[j], w_hi[j], x_lo[j], x_hi[j]);
        acc_lo += p_lo;
        acc_hi += p_hi;
    }
    (acc_lo, acc_hi)
}

/// Fused interval axpy `y_j += a · x_j` (scalar interval `a`, vector `x`),
/// the Zorro gradient-accumulate kernel: bit-identical to
/// `y[j] = y[j] + a * x[j]` with AoS intervals.
#[inline]
pub fn axpy(a_lo: f64, a_hi: f64, x_lo: &[f64], x_hi: &[f64], y_lo: &mut [f64], y_hi: &mut [f64]) {
    debug_assert!(x_lo.len() == y_lo.len() && x_hi.len() == y_hi.len());
    for j in 0..x_lo.len() {
        let (p_lo, p_hi) = mul_bounds(a_lo, a_hi, x_lo[j], x_hi[j]);
        y_lo[j] += p_lo;
        y_hi[j] += p_hi;
    }
}

/// One squared-distance term `((x - q)²)` as `(lo, hi)` bounds, with the
/// exact operation order of `(iv - Interval::point(q)).square()`.
#[inline]
fn sq_term(q: f64, x_lo: f64, x_hi: f64) -> (f64, f64) {
    let d_lo = x_lo - q;
    let d_hi = x_hi - q;
    let a = d_lo.abs();
    let b = d_hi.abs();
    let aa = a * a;
    let bb = b * b;
    let t_hi = aa.max(bb);
    let t_lo = if d_lo <= 0.0 && 0.0 <= d_hi {
        0.0
    } else {
        aa.min(bb)
    };
    (t_lo, t_hi)
}

/// Squared-distance bounds between a concrete `query` and an interval row
/// given as planes: `(lower_bound, upper_bound)` of `Σ_j (x_j − q_j)²`.
/// Bit-identical to the AoS fold `d = d + (iv − point(q)).square()`.
#[inline]
pub fn sq_dist_bounds(query: &[f64], x_lo: &[f64], x_hi: &[f64]) -> (f64, f64) {
    debug_assert!(query.len() == x_lo.len() && query.len() == x_hi.len());
    let mut d_lo = 0.0;
    let mut d_hi = 0.0;
    for j in 0..query.len() {
        let (t_lo, t_hi) = sq_term(query[j], x_lo[j], x_hi[j]);
        d_lo += t_lo;
        d_hi += t_hi;
    }
    (d_lo, d_hi)
}

/// [`sq_dist_bounds`] with candidate pruning: returns `None` as soon as the
/// running **lower** bound strictly exceeds `cutoff` (the current best
/// upper bound in a nearest-neighbor scan). Per-dimension terms are
/// non-negative, so the partial lower bound is monotone and the early exit
/// never misprunes; for rows that survive, the returned bounds are
/// bit-identical to the unpruned kernel.
#[inline]
pub fn sq_dist_bounds_pruned(
    query: &[f64],
    x_lo: &[f64],
    x_hi: &[f64],
    cutoff: f64,
) -> Option<(f64, f64)> {
    debug_assert!(query.len() == x_lo.len() && query.len() == x_hi.len());
    let mut d_lo = 0.0;
    let mut d_hi = 0.0;
    for j in 0..query.len() {
        let (t_lo, t_hi) = sq_term(query[j], x_lo[j], x_hi[j]);
        d_lo += t_lo;
        d_hi += t_hi;
        if d_lo > cutoff {
            return None;
        }
    }
    Some((d_lo, d_hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::interval_dot;
    use nde_data::rng::{seeded, Rng};

    fn random_intervals(n: usize, rng: &mut impl Rng) -> Vec<Interval> {
        (0..n)
            .map(|i| {
                let a = rng.gen_range(-3.0..3.0);
                if i % 3 == 0 {
                    Interval::point(a)
                } else {
                    let w: f64 = rng.gen_range(0.0..2.0);
                    Interval::new(a, a + w)
                }
            })
            .collect()
    }

    #[test]
    fn interval_vec_roundtrips() {
        let mut rng = seeded(1);
        let ivs = random_intervals(13, &mut rng);
        let v = IntervalVec::from_intervals(&ivs);
        assert_eq!(v.len(), 13);
        assert!(!v.is_empty());
        assert_eq!(v.to_intervals(), ivs);
        assert_eq!(v.get(4), ivs[4]);
        let mut v2 = v.clone();
        v2.set(0, Interval::new(-9.0, 9.0));
        assert_eq!(v2.get(0), Interval::new(-9.0, 9.0));
        v2.clear_to_zero();
        assert_eq!(v2, IntervalVec::zeros(13));
    }

    #[test]
    fn interval_matrix_matches_symbolic_layout() {
        let mut rng = seeded(2);
        let rows: Vec<Vec<Interval>> = (0..5).map(|_| random_intervals(3, &mut rng)).collect();
        let sym = SymbolicMatrix::from_rows(rows.clone()).unwrap();
        let m = IntervalMatrix::from_symbolic(&sym);
        assert_eq!((m.rows(), m.cols()), (5, 3));
        assert!(!m.is_empty());
        for (r, row) in rows.iter().enumerate() {
            for (c, &iv) in row.iter().enumerate() {
                assert_eq!(m.get(r, c), iv);
                assert_eq!(m.row_lo(r)[c], iv.lo);
                assert_eq!(m.row_hi(r)[c], iv.hi);
            }
        }
    }

    #[test]
    fn dot_kernel_is_bit_identical_to_aos_dot() {
        let mut rng = seeded(3);
        for n in [0usize, 1, 2, 7, 33] {
            let a = random_intervals(n, &mut rng);
            let b = random_intervals(n, &mut rng);
            let (av, bv) = (
                IntervalVec::from_intervals(&a),
                IntervalVec::from_intervals(&b),
            );
            let (lo, hi) = dot(&av.lo, &av.hi, &bv.lo, &bv.hi);
            let reference = interval_dot(&a, &b);
            assert_eq!((lo, hi), (reference.lo, reference.hi), "n={n}");
        }
    }

    #[test]
    fn axpy_kernel_is_bit_identical_to_aos_fold() {
        let mut rng = seeded(4);
        for n in [1usize, 5, 24] {
            let a = random_intervals(1, &mut rng)[0];
            let x = random_intervals(n, &mut rng);
            let y0 = random_intervals(n, &mut rng);
            // AoS reference: y[j] = y[j] + a * x[j].
            let expect: Vec<Interval> = y0.iter().zip(&x).map(|(&y, &xi)| y + a * xi).collect();
            let xv = IntervalVec::from_intervals(&x);
            let mut yv = IntervalVec::from_intervals(&y0);
            axpy(a.lo, a.hi, &xv.lo, &xv.hi, &mut yv.lo, &mut yv.hi);
            assert_eq!(yv.to_intervals(), expect, "n={n}");
        }
    }

    #[test]
    fn sq_dist_kernels_match_aos_distance_and_each_other() {
        let mut rng = seeded(5);
        for n in [1usize, 4, 11] {
            let row = random_intervals(n, &mut rng);
            let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            // AoS reference: d = Σ (iv − point(q)).square().
            let mut reference = Interval::point(0.0);
            for (&iv, &qj) in row.iter().zip(&q) {
                reference = reference + (iv - Interval::point(qj)).square();
            }
            let rv = IntervalVec::from_intervals(&row);
            let (lo, hi) = sq_dist_bounds(&q, &rv.lo, &rv.hi);
            assert_eq!((lo, hi), (reference.lo, reference.hi), "n={n}");
            // Unreachable cutoff: pruned variant returns identical bounds.
            assert_eq!(
                sq_dist_bounds_pruned(&q, &rv.lo, &rv.hi, f64::INFINITY),
                Some((lo, hi))
            );
            // A cutoff below the final lower bound prunes the row.
            if lo > 0.0 {
                assert_eq!(sq_dist_bounds_pruned(&q, &rv.lo, &rv.hi, lo * 0.5), None);
            }
        }
    }
}
