//! The dataset multiplicity problem (Meyer, Albarghouthi & D'Antoni,
//! FAccT'23): when some training *labels* are unreliable, a whole family of
//! datasets — and therefore models — is consistent with what we know. A test
//! point's prediction is *robust* when every model in the family agrees.

use crate::{Result, UncertainError};
use nde_data::rng::Rng;
use nde_ml::dataset::Dataset;
use nde_ml::linalg::Matrix;
use nde_ml::model::Classifier;

/// Hard limit on exact world enumeration (`2^k` models are trained).
pub const EXACT_LIMIT: usize = 16;

/// Per-test-point multiplicity verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiplicityVerdict {
    /// Fraction of worlds predicting each class.
    pub class_shares: Vec<f64>,
    /// `true` iff every world agrees on this point's prediction.
    pub robust: bool,
}

/// Result of a multiplicity analysis over a test set.
#[derive(Debug, Clone)]
pub struct MultiplicityReport {
    /// One verdict per test point.
    pub verdicts: Vec<MultiplicityVerdict>,
    /// Number of worlds evaluated.
    pub worlds: usize,
}

impl MultiplicityReport {
    /// Fraction of test points whose prediction flips across worlds.
    pub fn flip_rate(&self) -> f64 {
        if self.verdicts.is_empty() {
            return 0.0;
        }
        let flips = self.verdicts.iter().filter(|v| !v.robust).count();
        flips as f64 / self.verdicts.len() as f64
    }
}

/// Exact dataset-multiplicity analysis: enumerate all `2^k` assignments of
/// the binary labels at `uncertain` (indices into `train`), retrain a fresh
/// clone of `template` per world and tally test predictions.
///
/// Requires binary labels and `uncertain.len() <= EXACT_LIMIT`.
pub fn multiplicity_exact<C: Classifier>(
    template: &C,
    train: &Dataset,
    uncertain: &[usize],
    test_x: &Matrix,
) -> Result<MultiplicityReport> {
    if train.n_classes != 2 {
        return Err(UncertainError::InvalidArgument(
            "dataset multiplicity implemented for binary labels".into(),
        ));
    }
    if uncertain.len() > EXACT_LIMIT {
        return Err(UncertainError::TooManyWorlds {
            requested: uncertain.len(),
            limit: EXACT_LIMIT,
        });
    }
    for &i in uncertain {
        if i >= train.len() {
            return Err(UncertainError::InvalidArgument(format!(
                "uncertain index {i} out of bounds"
            )));
        }
    }
    let worlds = 1usize << uncertain.len();
    run_worlds(template, train, uncertain, test_x, (0..worlds).map(Some))
}

/// Sampled multiplicity analysis for larger `k`: draw `samples` random label
/// assignments instead of enumerating all `2^k`.
pub fn multiplicity_sampled<C: Classifier>(
    template: &C,
    train: &Dataset,
    uncertain: &[usize],
    test_x: &Matrix,
    samples: usize,
    seed: u64,
) -> Result<MultiplicityReport> {
    if train.n_classes != 2 {
        return Err(UncertainError::InvalidArgument(
            "dataset multiplicity implemented for binary labels".into(),
        ));
    }
    if samples == 0 {
        return Err(UncertainError::InvalidArgument(
            "samples must be > 0".into(),
        ));
    }
    let mut rng = nde_data::rng::seeded(seed);
    let masks: Vec<Option<usize>> = (0..samples)
        .map(|_| {
            let mut m = 0usize;
            for b in 0..uncertain.len().min(63) {
                if rng.gen::<bool>() {
                    m |= 1 << b;
                }
            }
            Some(m)
        })
        .collect();
    run_worlds(template, train, uncertain, test_x, masks.into_iter())
}

fn run_worlds<C: Classifier>(
    template: &C,
    train: &Dataset,
    uncertain: &[usize],
    test_x: &Matrix,
    masks: impl Iterator<Item = Option<usize>>,
) -> Result<MultiplicityReport> {
    let mut counts: Vec<[usize; 2]> = vec![[0, 0]; test_x.rows()];
    let mut worlds = 0usize;
    let mut world_train = train.clone();
    for mask in masks.flatten() {
        for (b, &i) in uncertain.iter().enumerate() {
            world_train.y[i] = if mask & (1 << b) != 0 {
                1 - train.y[i]
            } else {
                train.y[i]
            };
        }
        let mut model = template.clone();
        model.fit(&world_train)?;
        for (t, row) in test_x.iter_rows().enumerate() {
            counts[t][model.predict_one(row).min(1)] += 1;
        }
        worlds += 1;
    }
    let verdicts = counts
        .into_iter()
        .map(|c| {
            let total = (c[0] + c[1]).max(1) as f64;
            MultiplicityVerdict {
                class_shares: vec![c[0] as f64 / total, c[1] as f64 / total],
                robust: c[0] == 0 || c[1] == 0,
            }
        })
        .collect();
    Ok(MultiplicityReport { verdicts, worlds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_ml::models::knn::KnnClassifier;

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![vec![0.0], vec![0.5], vec![10.0], vec![10.5]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn no_uncertainty_means_everything_robust() {
        let train = toy();
        let test = Matrix::from_rows(vec![vec![0.2], vec![10.2]]).unwrap();
        let report = multiplicity_exact(&KnnClassifier::new(1), &train, &[], &test).unwrap();
        assert_eq!(report.worlds, 1);
        assert_eq!(report.flip_rate(), 0.0);
        assert!(report.verdicts.iter().all(|v| v.robust));
    }

    #[test]
    fn uncertain_label_near_test_point_causes_flip() {
        let train = toy();
        // Label of the point at 0.0 is unreliable; a query at 0.1 will flip,
        // a query at 10.2 will not.
        let test = Matrix::from_rows(vec![vec![0.1], vec![10.2]]).unwrap();
        let report = multiplicity_exact(&KnnClassifier::new(1), &train, &[0], &test).unwrap();
        assert_eq!(report.worlds, 2);
        assert!(!report.verdicts[0].robust);
        assert!(report.verdicts[1].robust);
        assert_eq!(report.flip_rate(), 0.5);
        assert_eq!(report.verdicts[0].class_shares, vec![0.5, 0.5]);
    }

    #[test]
    fn flip_rate_grows_with_more_uncertain_labels() {
        let train = Dataset::from_rows(
            (0..12).map(|i| vec![i as f64]).collect(),
            vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1],
            2,
        )
        .unwrap();
        let test = Matrix::from_rows((0..12).map(|i| vec![i as f64 + 0.3]).collect()).unwrap();
        let few = multiplicity_exact(&KnnClassifier::new(1), &train, &[2], &test).unwrap();
        let many =
            multiplicity_exact(&KnnClassifier::new(1), &train, &[1, 2, 8, 9], &test).unwrap();
        assert!(many.flip_rate() >= few.flip_rate());
        assert!(many.flip_rate() > 0.0);
    }

    #[test]
    fn sampled_agrees_with_exact_on_robustness_direction() {
        let train = toy();
        let test = Matrix::from_rows(vec![vec![0.1], vec![10.2]]).unwrap();
        let exact = multiplicity_exact(&KnnClassifier::new(1), &train, &[0, 1], &test).unwrap();
        let sampled =
            multiplicity_sampled(&KnnClassifier::new(1), &train, &[0, 1], &test, 64, 7).unwrap();
        assert_eq!(sampled.worlds, 64);
        // Point 1 (far cluster) is robust in both analyses.
        assert!(exact.verdicts[1].robust);
        assert!(sampled.verdicts[1].robust);
        // Point 0 is non-robust in both.
        assert!(!exact.verdicts[0].robust);
        assert!(!sampled.verdicts[0].robust);
    }

    #[test]
    fn validates_arguments() {
        let train = toy();
        let test = Matrix::from_rows(vec![vec![0.0]]).unwrap();
        let too_many: Vec<usize> = (0..17).collect();
        assert!(matches!(
            multiplicity_exact(&KnnClassifier::new(1), &train, &too_many, &test),
            Err(UncertainError::TooManyWorlds { .. })
        ));
        assert!(multiplicity_exact(&KnnClassifier::new(1), &train, &[99], &test).is_err());
        assert!(multiplicity_sampled(&KnnClassifier::new(1), &train, &[0], &test, 0, 0).is_err());
        let three =
            Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![0, 1, 2], 3).unwrap();
        assert!(multiplicity_exact(&KnnClassifier::new(1), &three, &[0], &test).is_err());
    }
}
