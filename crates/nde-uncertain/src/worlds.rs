//! Possible-worlds sampling for missing *features*: impute, retrain,
//! aggregate, and make robust (abstaining) predictions.

use crate::soa::IntervalMatrix;
use crate::symbolic::SymbolicMatrix;
use crate::{Result, UncertainError};
use nde_data::par::{CostHint, WorkerFailure};
use nde_data::pool::WorkerPool;
use nde_data::rng::{child_seed, seeded, Rng};
use nde_ml::dataset::Dataset;
use nde_ml::linalg::Matrix;
use nde_ml::model::Classifier;
use std::sync::atomic::AtomicBool;

/// Aggregated predictions across sampled worlds.
#[derive(Debug, Clone)]
pub struct WorldEnsemble {
    /// `shares[t][c]`: fraction of worlds predicting class `c` for test `t`.
    pub shares: Vec<Vec<f64>>,
    /// Number of sampled worlds.
    pub worlds: usize,
}

impl WorldEnsemble {
    /// Robust prediction for test point `t`: the majority class if its world
    /// share reaches `threshold`, otherwise `None` (abstain).
    pub fn robust_prediction(&self, t: usize, threshold: f64) -> Option<usize> {
        let shares = &self.shares[t];
        let (best, &share) = shares
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite").then(b.0.cmp(&a.0)))?;
        (share >= threshold).then_some(best)
    }

    /// Fraction of test points with a robust prediction at `threshold`.
    pub fn coverage(&self, threshold: f64) -> f64 {
        if self.shares.is_empty() {
            return 0.0;
        }
        let covered = (0..self.shares.len())
            .filter(|&t| self.robust_prediction(t, threshold).is_some())
            .count();
        covered as f64 / self.shares.len() as f64
    }
}

/// Sample `worlds` imputations of the symbolic training features (uniform
/// within each cell's interval), retrain a fresh clone of `template` per
/// world, and aggregate predictions on `test_x`.
pub fn sample_worlds<C>(
    template: &C,
    train_x: &SymbolicMatrix,
    train_y: &[usize],
    n_classes: usize,
    test_x: &Matrix,
    worlds: usize,
    seed: u64,
) -> Result<WorldEnsemble>
where
    C: Classifier + Send + Sync,
{
    sample_worlds_par(
        template, train_x, train_y, n_classes, test_x, worlds, seed, 1,
    )
}

/// [`sample_worlds`] parallelized over worlds.
///
/// Each world's imputation stream is `child_seed(seed, w)` and the
/// per-world vote counts are integers summed over the sorted world indices,
/// so the ensemble is bit-identical for every thread count.
#[allow(clippy::too_many_arguments)]
pub fn sample_worlds_par<C>(
    template: &C,
    train_x: &SymbolicMatrix,
    train_y: &[usize],
    n_classes: usize,
    test_x: &Matrix,
    worlds: usize,
    seed: u64,
    threads: usize,
) -> Result<WorldEnsemble>
where
    C: Classifier + Send + Sync,
{
    if worlds == 0 {
        return Err(UncertainError::InvalidArgument("worlds must be > 0".into()));
    }
    if train_x.len() != train_y.len() {
        return Err(UncertainError::InvalidArgument(format!(
            "{} rows but {} labels",
            train_x.len(),
            train_y.len()
        )));
    }
    let stop = AtomicBool::new(false);
    // A world samples a full matrix and fits a model: always way past the
    // sequential cutoff, so hint "expensive" rather than probing.
    let cost = CostHint::PerItemNanos(1_000_000);
    // Re-lay the symbolic matrix into SoA planes once, outside the world
    // loop: every world then samples from two contiguous slices per row
    // instead of chasing per-row `Vec<Interval>` pointers. Cell order (and
    // hence the per-world RNG stream) is unchanged — row-major, one draw
    // per non-point cell.
    let planes = IntervalMatrix::from_symbolic(train_x);
    let per_world = WorkerPool::shared()
        .map_indexed_scratch(
            threads,
            0..worlds as u64,
            &stop,
            cost,
            || Matrix::zeros(train_x.len(), train_x.cols()),
            |world_x, w| {
                let mut rng = seeded(child_seed(seed, w));
                for r in 0..planes.rows() {
                    let (lo, hi) = (planes.row_lo(r), planes.row_hi(r));
                    for c in 0..planes.cols() {
                        let v = if lo[c] == hi[c] {
                            lo[c]
                        } else {
                            lo[c] + rng.gen::<f64>() * (hi[c] - lo[c])
                        };
                        world_x.set(r, c, v);
                    }
                }
                let data = Dataset::new(world_x.clone(), train_y.to_vec(), n_classes)?;
                let mut model = template.clone();
                model.fit(&data)?;
                // Flat per-world vote counts: `votes[t * n_classes + p]`.
                let mut votes = vec![0usize; test_x.rows() * n_classes];
                for (t, row) in test_x.iter_rows().enumerate() {
                    let p = model.predict_one(row);
                    if p < n_classes {
                        votes[t * n_classes + p] += 1;
                    }
                }
                Ok::<_, UncertainError>(votes)
            },
        )
        .map_err(|fail| match fail {
            WorkerFailure::Err(_, e) => e,
            WorkerFailure::Panic(_, msg) => {
                UncertainError::InvalidArgument(format!("world sampling worker panicked: {msg}"))
            }
        })?;

    let mut counts = vec![vec![0usize; n_classes]; test_x.rows()];
    for (_, votes) in &per_world {
        for t in 0..test_x.rows() {
            for c in 0..n_classes {
                counts[t][c] += votes[t * n_classes + c];
            }
        }
    }
    let shares = counts
        .into_iter()
        .map(|c| c.into_iter().map(|v| v as f64 / worlds as f64).collect())
        .collect();
    Ok(WorldEnsemble { shares, worlds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use nde_ml::models::knn::KnnClassifier;

    fn symbolic_train() -> (SymbolicMatrix, Vec<usize>) {
        // Two clusters; one label-1 row has a feature spanning both clusters.
        let rows = vec![
            vec![Interval::point(0.0)],
            vec![Interval::point(0.5)],
            vec![Interval::point(10.0)],
            vec![Interval::new(-2.0, 12.0)],
        ];
        (SymbolicMatrix::from_rows(rows).unwrap(), vec![0, 0, 1, 1])
    }

    #[test]
    fn point_worlds_are_deterministic() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![10.0]]).unwrap();
        let sym = SymbolicMatrix::from_exact(&x);
        let test = Matrix::from_rows(vec![vec![0.1], vec![9.9]]).unwrap();
        let ens = sample_worlds(&KnnClassifier::new(1), &sym, &[0, 1], 2, &test, 8, 1).unwrap();
        assert_eq!(ens.shares[0], vec![1.0, 0.0]);
        assert_eq!(ens.shares[1], vec![0.0, 1.0]);
        assert_eq!(ens.coverage(1.0), 1.0);
    }

    #[test]
    fn uncertain_row_splits_world_votes() {
        let (sym, y) = symbolic_train();
        let test = Matrix::from_rows(vec![vec![0.2], vec![9.8]]).unwrap();
        let ens = sample_worlds(&KnnClassifier::new(1), &sym, &y, 2, &test, 200, 2).unwrap();
        // Query near the 0-cluster: the wide label-1 row sometimes lands
        // closer, so votes split.
        // The wide row lands within 0.2 of the query with probability
        // 0.4 / 14 ≈ 3%, so a small-but-nonzero vote share is expected.
        assert!(ens.shares[0][1] > 0.005, "{:?}", ens.shares[0]);
        assert!(ens.shares[0][0] > 0.5, "{:?}", ens.shares[0]);
        // Robust at 0.5, abstains at 0.99.
        assert_eq!(ens.robust_prediction(0, 0.5), Some(0));
        assert_eq!(ens.robust_prediction(0, 0.99), None);
        // Far query is stable.
        assert_eq!(ens.robust_prediction(1, 0.95), Some(1));
        assert!(ens.coverage(0.99) < 1.0);
        assert_eq!(ens.coverage(0.5), 1.0);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let (sym, y) = symbolic_train();
        let test = Matrix::from_rows(vec![vec![0.2], vec![9.8]]).unwrap();
        let seq = sample_worlds(&KnnClassifier::new(1), &sym, &y, 2, &test, 100, 7).unwrap();
        for threads in [2, 4, 7] {
            let par =
                sample_worlds_par(&KnnClassifier::new(1), &sym, &y, 2, &test, 100, 7, threads)
                    .unwrap();
            assert_eq!(seq.shares, par.shares, "threads={threads}");
        }
    }

    #[test]
    fn deterministic_by_seed_and_validated() {
        let (sym, y) = symbolic_train();
        let test = Matrix::from_rows(vec![vec![0.2]]).unwrap();
        let a = sample_worlds(&KnnClassifier::new(1), &sym, &y, 2, &test, 50, 3).unwrap();
        let b = sample_worlds(&KnnClassifier::new(1), &sym, &y, 2, &test, 50, 3).unwrap();
        assert_eq!(a.shares, b.shares);
        assert!(sample_worlds(&KnnClassifier::new(1), &sym, &y, 2, &test, 0, 0).is_err());
        assert!(sample_worlds(&KnnClassifier::new(1), &sym, &y[..2], 2, &test, 5, 0).is_err());
    }
}
