//! Certain and approximately-certain models (Zhen, Aryal, Termehchy &
//! Chabada, SIGMOD'24): *do we even need to impute?*
//!
//! A **certain model** exists when one parameter vector is optimal for every
//! imputation of the missing cells — then imputation (and cleaning) is
//! provably unnecessary. We implement:
//!
//! * an **exact certificate** for ridge regression in the special case where
//!   rows with missing features have zero residual under the model trained
//!   on the complete rows (the paper's key sufficient condition: if the
//!   complete-data model fits every incomplete row perfectly regardless of
//!   the missing values — possible when the missing feature's weight is 0 —
//!   the model is certain);
//! * a **corner-sampling refutation/diameter check** for the general case:
//!   training on extreme imputations either *disproves* certainty (models
//!   disagree) or bounds the parameter diameter, certifying an
//!   **approximately-certain model** within tolerance `eps`.

use crate::interval::Interval;
use crate::symbolic::SymbolicMatrix;
use crate::{Result, UncertainError};
use nde_data::rng::seeded;
use nde_data::rng::Rng;
use nde_ml::linalg::Matrix;
use nde_ml::models::linreg::RidgeRegression;

/// Verdict of the certain-model check.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelCertainty {
    /// One model is provably optimal for all imputations.
    Certain {
        /// The certain parameter vector (weights then intercept).
        params: Vec<f64>,
    },
    /// All sampled corner imputations agree within `diameter <= eps`.
    ApproximatelyCertain {
        /// Maximum pairwise L∞ parameter distance observed.
        diameter: f64,
        /// Midpoint-imputation parameters (a representative model).
        params: Vec<f64>,
    },
    /// Two imputations provably yield different models.
    NotCertain {
        /// Maximum pairwise L∞ parameter distance observed.
        diameter: f64,
    },
}

impl ModelCertainty {
    /// `true` unless the verdict is [`ModelCertainty::NotCertain`].
    pub fn usable_without_imputation(&self) -> bool {
        !matches!(self, ModelCertainty::NotCertain { .. })
    }
}

/// Configuration for the certain-model check.
#[derive(Debug, Clone)]
pub struct CertainModelConfig {
    /// Ridge regularization.
    pub lambda: f64,
    /// Tolerance for the approximately-certain verdict (L∞ on parameters).
    pub eps: f64,
    /// Number of random corner imputations sampled (besides lo/hi/mid).
    pub corner_samples: usize,
    /// RNG seed for corner sampling.
    pub seed: u64,
    /// Residual tolerance for the exact certificate.
    pub residual_tol: f64,
}

impl Default for CertainModelConfig {
    fn default() -> Self {
        CertainModelConfig {
            lambda: 1e-6,
            eps: 1e-3,
            corner_samples: 8,
            seed: 0,
            residual_tol: 1e-8,
        }
    }
}

/// Check whether a (approximately) certain ridge-regression model exists for
/// symbolic features `x` and concrete targets `y`.
pub fn certain_model_check(
    x: &SymbolicMatrix,
    y: &[f64],
    config: &CertainModelConfig,
) -> Result<ModelCertainty> {
    if x.is_empty() || x.len() != y.len() {
        return Err(UncertainError::InvalidArgument(
            "empty data or row/target mismatch".into(),
        ));
    }

    // Partition rows into complete and incomplete.
    let complete: Vec<usize> = (0..x.len())
        .filter(|&i| x.row(i).iter().all(|iv| iv.is_point()))
        .collect();
    let incomplete: Vec<usize> = (0..x.len()).filter(|&i| !complete.contains(&i)).collect();

    // Fast path: no uncertainty at all.
    if incomplete.is_empty() {
        let (m, t) = materialize(x, y, &|_r, _c, iv| iv.lo);
        let params = fit(&m, &t, config.lambda)?;
        return Ok(ModelCertainty::Certain { params });
    }

    // Exact certificate: train on the complete rows only. If that model has
    // weight ~0 on every uncertain feature of every incomplete row AND fits
    // each incomplete row's target exactly (residual ≤ tol for any choice of
    // the missing values), it is optimal for the full data in every world.
    if !complete.is_empty() {
        let rows: Vec<Vec<f64>> = complete
            .iter()
            .map(|&i| x.row(i).iter().map(|iv| iv.lo).collect())
            .collect();
        let targets: Vec<f64> = complete.iter().map(|&i| y[i]).collect();
        let m = Matrix::from_rows(rows).map_err(|e| UncertainError::Ml(e.to_string()))?;
        let params = fit(&m, &targets, config.lambda)?;
        if certifies(x, y, &incomplete, &params, config.residual_tol) {
            return Ok(ModelCertainty::Certain { params });
        }
    }

    // General case: corner sampling. Deterministic corners first (all-lo,
    // all-hi, mid), then random corners.
    let mut models: Vec<Vec<f64>> = Vec::new();
    for choice in [CornerChoice::Lo, CornerChoice::Hi, CornerChoice::Mid] {
        let (m, t) = materialize(x, y, &|_r, _c, iv| choice.pick(iv));
        models.push(fit(&m, &t, config.lambda)?);
    }
    let mid_params = models[2].clone();
    let mut rng = seeded(config.seed);
    for _ in 0..config.corner_samples {
        let picks: Vec<bool> = (0..x.len() * x.cols()).map(|_| rng.gen()).collect();
        let cols = x.cols();
        let (m, t) = materialize(x, y, &|r, c, iv| {
            if picks[r * cols + c] {
                iv.hi
            } else {
                iv.lo
            }
        });
        models.push(fit(&m, &t, config.lambda)?);
    }

    let mut diameter = 0.0f64;
    for i in 0..models.len() {
        for j in i + 1..models.len() {
            let dist = models[i]
                .iter()
                .zip(&models[j])
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            diameter = diameter.max(dist);
        }
    }
    if diameter <= config.eps {
        Ok(ModelCertainty::ApproximatelyCertain {
            diameter,
            params: mid_params,
        })
    } else {
        Ok(ModelCertainty::NotCertain { diameter })
    }
}

#[derive(Clone, Copy)]
enum CornerChoice {
    Lo,
    Hi,
    Mid,
}

impl CornerChoice {
    fn pick(self, iv: &Interval) -> f64 {
        match self {
            CornerChoice::Lo => iv.lo,
            CornerChoice::Hi => iv.hi,
            CornerChoice::Mid => iv.mid(),
        }
    }
}

fn materialize(
    x: &SymbolicMatrix,
    y: &[f64],
    pick: &dyn Fn(usize, usize, &Interval) -> f64,
) -> (Matrix, Vec<f64>) {
    let mut m = Matrix::zeros(x.len(), x.cols());
    for (r, row) in x.iter_rows().enumerate() {
        for (c, iv) in row.iter().enumerate() {
            m.set(r, c, pick(r, c, iv));
        }
    }
    (m, y.to_vec())
}

fn fit(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    let mut model = RidgeRegression::new(lambda);
    model.fit(x, y)?;
    let (w, b) = model.coefficients().expect("just fitted");
    let mut params = w.to_vec();
    params.push(b);
    Ok(params)
}

/// Does `params` (trained on complete rows) provably stay optimal in every
/// world? Sufficient condition: every incomplete row has (a) weight ≤ tol on
/// each of its uncertain features and (b) residual ≤ tol at interval bounds.
fn certifies(
    x: &SymbolicMatrix,
    y: &[f64],
    incomplete: &[usize],
    params: &[f64],
    tol: f64,
) -> bool {
    let d = x.cols();
    for &i in incomplete {
        let row = x.row(i);
        // Residual as an interval.
        let mut pred = Interval::point(params[d]);
        for (iv, &w) in row.iter().zip(params) {
            pred = pred + iv.scale(w);
        }
        let resid = pred - Interval::point(y[i]);
        if resid.abs_max() > tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y depends only on feature 0; feature 1 is irrelevant (weight 0).
    fn irrelevant_feature_data() -> (SymbolicMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let x0 = i as f64 * 0.1;
            let x1 = (i % 5) as f64;
            rows.push(vec![Interval::point(x0), Interval::point(x1)]);
            y.push(2.0 * x0 + 1.0);
        }
        // Two rows with the *irrelevant* feature missing.
        rows[3][1] = Interval::new(-10.0, 10.0);
        rows[7][1] = Interval::new(-10.0, 10.0);
        (SymbolicMatrix::from_rows(rows).unwrap(), y)
    }

    #[test]
    fn no_missing_is_trivially_certain() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let sym = SymbolicMatrix::from_exact(&x);
        let verdict =
            certain_model_check(&sym, &[1.0, 3.0, 5.0], &CertainModelConfig::default()).unwrap();
        assert!(matches!(verdict, ModelCertainty::Certain { .. }));
    }

    #[test]
    fn missing_irrelevant_feature_is_approximately_certain() {
        let (sym, y) = irrelevant_feature_data();
        let cfg = CertainModelConfig {
            eps: 1e-2,
            ..Default::default()
        };
        let verdict = certain_model_check(&sym, &y, &cfg).unwrap();
        assert!(
            verdict.usable_without_imputation(),
            "verdict was {verdict:?}"
        );
    }

    #[test]
    fn missing_relevant_feature_is_not_certain() {
        // y = 2 x0 + 1 with x0 missing on rows that matter.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let x0 = i as f64 * 0.1;
            rows.push(vec![Interval::point(x0)]);
            y.push(2.0 * x0 + 1.0);
        }
        rows[0][0] = Interval::new(-5.0, 5.0);
        rows[10][0] = Interval::new(-5.0, 5.0);
        let sym = SymbolicMatrix::from_rows(rows).unwrap();
        let verdict = certain_model_check(&sym, &y, &CertainModelConfig::default()).unwrap();
        assert!(matches!(verdict, ModelCertainty::NotCertain { .. }));
        if let ModelCertainty::NotCertain { diameter } = verdict {
            assert!(diameter > 0.01);
        }
    }

    #[test]
    fn exact_certificate_fires_for_zero_weight_feature() {
        // Targets depend only on x0; the model trained on complete rows has
        // ~0 weight on x1, and incomplete rows' residuals stay ~0 for any x1.
        let (sym, y) = irrelevant_feature_data();
        let cfg = CertainModelConfig {
            lambda: 1e-9,
            residual_tol: 1e-4,
            ..Default::default()
        };
        let verdict = certain_model_check(&sym, &y, &cfg).unwrap();
        assert!(
            matches!(verdict, ModelCertainty::Certain { .. }),
            "expected the exact certificate, got {verdict:?}"
        );
        if let ModelCertainty::Certain { params } = verdict {
            assert!((params[0] - 2.0).abs() < 1e-3);
            assert!(params[1].abs() < 1e-3);
        }
    }

    #[test]
    fn validates_arguments() {
        let sym = SymbolicMatrix::from_rows(vec![vec![Interval::point(0.0)]]).unwrap();
        assert!(certain_model_check(&sym, &[], &CertainModelConfig::default()).is_err());
    }
}
