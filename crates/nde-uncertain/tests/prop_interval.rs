//! Randomized soundness tests for interval arithmetic: any concrete
//! computation with operands drawn from the intervals must land inside the
//! interval result. This is the load-bearing invariant behind every Zorro
//! bound. Cases are drawn from a seeded PRNG so failures reproduce exactly.

use nde_data::rng::{seeded, Rng, StdRng};
use nde_uncertain::interval::{interval_dot, Interval};

const CASES: usize = 300;

fn random_interval(rng: &mut StdRng) -> Interval {
    let lo = rng.gen_range(-50.0..50.0);
    let w = rng.gen_range(0.0..20.0);
    Interval::new(lo, lo + w)
}

/// A point inside an interval, parameterized by `t ∈ [0, 1]`.
fn at(iv: Interval, t: f64) -> f64 {
    iv.lo + t * iv.width()
}

#[test]
fn add_sub_mul_are_sound() {
    let mut rng = seeded(11);
    for _ in 0..CASES {
        let a = random_interval(&mut rng);
        let b = random_interval(&mut rng);
        let x = at(a, rng.gen::<f64>());
        let y = at(b, rng.gen::<f64>());
        assert!((a + b).contains(x + y));
        assert!((a - b).contains(x - y));
        let prod = a * b;
        // Multiplication is exact at corner points but floating-point error
        // can land epsilon outside; allow a tiny tolerance.
        assert!(
            prod.lo - 1e-9 <= x * y && x * y <= prod.hi + 1e-9,
            "{x} * {y} = {} outside [{}, {}]",
            x * y,
            prod.lo,
            prod.hi
        );
        assert!((-a).contains(-x));
    }
}

#[test]
fn square_is_sound_and_tighter() {
    let mut rng = seeded(12);
    for _ in 0..CASES {
        let a = random_interval(&mut rng);
        let x = at(a, rng.gen::<f64>());
        let sq = a.square();
        assert!(sq.lo - 1e-9 <= x * x && x * x <= sq.hi + 1e-9);
        assert!(sq.lo >= 0.0);
        // square() never exceeds the naive product's bounds.
        let naive = a * a;
        assert!(sq.lo >= naive.lo - 1e-9);
        assert!(sq.hi <= naive.hi + 1e-9);
    }
}

#[test]
fn scale_and_hull_are_sound() {
    let mut rng = seeded(13);
    for _ in 0..CASES {
        let a = random_interval(&mut rng);
        let b = random_interval(&mut rng);
        let c = rng.gen_range(-10.0..10.0);
        let x = at(a, rng.gen::<f64>());
        let scaled = a.scale(c);
        assert!(scaled.lo - 1e-9 <= c * x && c * x <= scaled.hi + 1e-9);
        let h = a.hull(b);
        assert!(h.contains(a.lo) && h.contains(a.hi));
        assert!(h.contains(b.lo) && h.contains(b.hi));
    }
}

#[test]
fn interval_dot_is_sound() {
    let mut rng = seeded(14);
    for _ in 0..CASES {
        let n = rng.gen_range(1..6usize);
        let a: Vec<Interval> = (0..n).map(|_| random_interval(&mut rng)).collect();
        let b: Vec<Interval> = (0..n).map(|_| random_interval(&mut rng)).collect();
        let xs: Vec<f64> = a.iter().map(|iv| at(*iv, rng.gen::<f64>())).collect();
        let ys: Vec<f64> = b.iter().map(|iv| at(*iv, rng.gen::<f64>())).collect();
        let d = interval_dot(&a, &b);
        let concrete: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        assert!(
            d.lo - 1e-6 <= concrete && concrete <= d.hi + 1e-6,
            "dot {concrete} outside [{}, {}]",
            d.lo,
            d.hi
        );
    }
}

#[test]
fn width_mid_invariants() {
    let mut rng = seeded(15);
    for _ in 0..CASES {
        let a = random_interval(&mut rng);
        assert!(a.width() >= 0.0);
        assert!(a.contains(a.mid()));
        assert!(a.contains(a.lo) && a.contains(a.hi));
        assert!(a.abs_max() >= 0.0);
        assert!(a.abs_max() >= a.mid().abs() - 1e-12);
    }
}

#[test]
fn point_intervals_behave_like_scalars() {
    let mut rng = seeded(16);
    for _ in 0..CASES {
        let x = rng.gen_range(-100.0..100.0);
        let y = rng.gen_range(-100.0..100.0);
        let px = Interval::point(x);
        let py = Interval::point(y);
        assert_eq!((px + py).lo, x + y);
        assert_eq!((px * py).lo, x * y);
        assert!((px * py).is_point());
        assert!((px - py).is_point());
    }
}
