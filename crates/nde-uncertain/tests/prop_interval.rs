//! Property-based soundness tests for interval arithmetic: any concrete
//! computation with operands drawn from the intervals must land inside the
//! interval result. This is the load-bearing invariant behind every Zorro
//! bound.

use nde_uncertain::interval::{interval_dot, Interval};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    ((-50.0f64..50.0), (0.0f64..20.0)).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

/// A point inside an interval, parameterized by `t ∈ [0, 1]`.
fn at(iv: Interval, t: f64) -> f64 {
    iv.lo + t * iv.width()
}

proptest! {
    #[test]
    fn add_sub_mul_are_sound(
        a in interval_strategy(),
        b in interval_strategy(),
        ta in 0.0f64..1.0,
        tb in 0.0f64..1.0,
    ) {
        let x = at(a, ta);
        let y = at(b, tb);
        prop_assert!((a + b).contains(x + y));
        prop_assert!((a - b).contains(x - y));
        let prod = a * b;
        // Multiplication is exact at corner points but floating-point error
        // can land epsilon outside; allow a tiny tolerance.
        prop_assert!(
            prod.lo - 1e-9 <= x * y && x * y <= prod.hi + 1e-9,
            "{x} * {y} = {} outside [{}, {}]", x * y, prod.lo, prod.hi
        );
        prop_assert!((-a).contains(-x));
    }

    #[test]
    fn square_is_sound_and_tighter(
        a in interval_strategy(),
        t in 0.0f64..1.0,
    ) {
        let x = at(a, t);
        let sq = a.square();
        prop_assert!(sq.lo - 1e-9 <= x * x && x * x <= sq.hi + 1e-9);
        prop_assert!(sq.lo >= 0.0);
        // square() never exceeds the naive product's bounds.
        let naive = a * a;
        prop_assert!(sq.lo >= naive.lo - 1e-9);
        prop_assert!(sq.hi <= naive.hi + 1e-9);
    }

    #[test]
    fn scale_and_hull_are_sound(
        a in interval_strategy(),
        b in interval_strategy(),
        c in -10.0f64..10.0,
        t in 0.0f64..1.0,
    ) {
        let x = at(a, t);
        let scaled = a.scale(c);
        prop_assert!(scaled.lo - 1e-9 <= c * x && c * x <= scaled.hi + 1e-9);
        let h = a.hull(b);
        prop_assert!(h.contains(a.lo) && h.contains(a.hi));
        prop_assert!(h.contains(b.lo) && h.contains(b.hi));
    }

    #[test]
    fn interval_dot_is_sound(
        pairs in prop::collection::vec(
            (interval_strategy(), interval_strategy(), 0.0f64..1.0, 0.0f64..1.0),
            1..6
        ),
    ) {
        let a: Vec<Interval> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<Interval> = pairs.iter().map(|p| p.1).collect();
        let xs: Vec<f64> = pairs.iter().map(|p| at(p.0, p.2)).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| at(p.1, p.3)).collect();
        let d = interval_dot(&a, &b);
        let concrete: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        prop_assert!(
            d.lo - 1e-6 <= concrete && concrete <= d.hi + 1e-6,
            "dot {concrete} outside [{}, {}]", d.lo, d.hi
        );
    }

    #[test]
    fn width_mid_invariants(a in interval_strategy()) {
        prop_assert!(a.width() >= 0.0);
        prop_assert!(a.contains(a.mid()));
        prop_assert!(a.contains(a.lo) && a.contains(a.hi));
        prop_assert!(a.abs_max() >= 0.0);
        prop_assert!(a.abs_max() >= a.mid().abs() - 1e-12);
    }

    #[test]
    fn point_intervals_behave_like_scalars(
        x in -100.0f64..100.0,
        y in -100.0f64..100.0,
    ) {
        let px = Interval::point(x);
        let py = Interval::point(y);
        prop_assert_eq!((px + py).lo, x + y);
        prop_assert_eq!((px * py).lo, x * y);
        prop_assert!((px * py).is_point());
        prop_assert!((px - py).is_point());
    }
}
