//! # nde-ml
//!
//! From-scratch machine-learning substrate for the *navigating-data-errors*
//! toolkit: dense linear algebra, classic classifiers (KNN, logistic
//! regression, naive Bayes, decision trees), feature encoders that turn
//! [`nde_data::Table`]s into numeric matrices (including a hashed text
//! embedding standing in for the tutorial's sentence encoder), and the
//! quality-metric suite from Fig. 1 of the paper (correctness, fairness and
//! stability metrics).
//!
//! ```
//! use nde_ml::dataset::Dataset;
//! use nde_ml::models::knn::KnnClassifier;
//! use nde_ml::model::Classifier;
//!
//! let x = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0], vec![5.1, 5.0]];
//! let data = Dataset::from_rows(x, vec![0, 0, 1, 1], 2).unwrap();
//! let mut knn = KnnClassifier::new(1);
//! knn.fit(&data).unwrap();
//! assert_eq!(knn.predict_one(&[4.9, 5.2]), 1);
//! ```

pub mod batch;
pub mod dataset;
pub mod encode;
pub mod error;
pub mod linalg;
pub mod metrics;
pub mod model;
pub mod models;

pub use dataset::Dataset;
pub use error::MlError;
pub use model::Classifier;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MlError>;
