//! Correctness metrics: accuracy, confusion matrix, precision/recall/F1.

use super::check_same_len;
use crate::Result;

/// Fraction of predictions equal to the true label.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> Result<f64> {
    check_same_len(y_true.len(), y_pred.len())?;
    let correct = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    Ok(correct as f64 / y_true.len() as f64)
}

/// Confusion matrix `m[true][pred]` over `n_classes`.
pub fn confusion_matrix(
    y_true: &[usize],
    y_pred: &[usize],
    n_classes: usize,
) -> Result<Vec<Vec<usize>>> {
    check_same_len(y_true.len(), y_pred.len())?;
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        if t >= n_classes || p >= n_classes {
            return Err(crate::MlError::InvalidLabel {
                label: t.max(p),
                n_classes,
            });
        }
        m[t][p] += 1;
    }
    Ok(m)
}

/// Precision and recall of class `positive` (one-vs-rest).
/// Undefined ratios (no predicted / no actual positives) default to 0.
pub fn precision_recall(y_true: &[usize], y_pred: &[usize], positive: usize) -> Result<(f64, f64)> {
    check_same_len(y_true.len(), y_pred.len())?;
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fn_ = 0.0;
    for (&t, &p) in y_true.iter().zip(y_pred) {
        match (t == positive, p == positive) {
            (true, true) => tp += 1.0,
            (false, true) => fp += 1.0,
            (true, false) => fn_ += 1.0,
            (false, false) => {}
        }
    }
    let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
    Ok((precision, recall))
}

/// F1 score of class `positive` (harmonic mean of precision and recall).
pub fn f1_score(y_true: &[usize], y_pred: &[usize], positive: usize) -> Result<f64> {
    let (p, r) = precision_recall(y_true, y_pred, positive)?;
    Ok(if p + r > 0.0 {
        2.0 * p * r / (p + r)
    } else {
        0.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]).unwrap(), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]).unwrap(), 1.0);
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn confusion_counts_cells() {
        let m = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2).unwrap();
        assert_eq!(m, vec![vec![1, 1], vec![0, 2]]);
        assert!(confusion_matrix(&[0, 5], &[0, 0], 2).is_err());
    }

    #[test]
    fn precision_recall_f1() {
        // TP=2, FP=1, FN=1 for class 1.
        let y_true = vec![1, 1, 1, 0, 0];
        let y_pred = vec![1, 1, 0, 1, 0];
        let (p, r) = precision_recall(&y_true, &y_pred, 1).unwrap();
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
        let f1 = f1_score(&y_true, &y_pred, 1).unwrap();
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_default_to_zero() {
        // Nothing predicted positive.
        let (p, r) = precision_recall(&[1, 1], &[0, 0], 1).unwrap();
        assert_eq!((p, r), (0.0, 0.0));
        assert_eq!(f1_score(&[1, 1], &[0, 0], 1).unwrap(), 0.0);
        // No actual positives.
        let (p, r) = precision_recall(&[0, 0], &[1, 0], 1).unwrap();
        assert_eq!(p, 0.0);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn perfect_classifier() {
        let y = vec![0, 1, 0, 1];
        assert_eq!(accuracy(&y, &y).unwrap(), 1.0);
        assert_eq!(f1_score(&y, &y, 1).unwrap(), 1.0);
    }
}
