//! Quality metrics for predictive queries.
//!
//! Fig. 1 of the paper evaluates pipelines with three metric families:
//! *correctness* (accuracy, F1), *fairness* (equalized odds, predictive
//! parity) and *stability* (prediction entropy). This module implements all
//! of them plus regression metrics and calibration error.

pub mod calibration;
pub mod classification;
pub mod fairness;
pub mod ranking;
pub mod regression;
pub mod stability;

pub use calibration::expected_calibration_error;
pub use classification::{accuracy, confusion_matrix, f1_score, precision_recall};
pub use fairness::{demographic_parity_diff, equalized_odds, predictive_parity};
pub use ranking::roc_auc;
pub use regression::{mean_absolute_error, mean_squared_error, r2_score};
pub use stability::prediction_entropy;

/// The Fig. 1 metric bundle computed in one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Classification accuracy.
    pub accuracy: f64,
    /// F1 score of the positive class (class 1).
    pub f1: f64,
    /// Equalized-odds *score* in `[0,1]`: 1 minus the max TPR/FPR gap between groups.
    pub equalized_odds: f64,
    /// Predictive-parity score in `[0,1]`: 1 minus the max precision gap.
    pub predictive_parity: f64,
    /// Mean prediction entropy (normalized to `[0,1]`).
    pub entropy: f64,
}

/// Compute the full Fig. 1 metric bundle.
///
/// `probas` are per-example class distributions, `groups` assigns each
/// example to a sensitive group (e.g. a demographic attribute).
pub fn quality_report(
    y_true: &[usize],
    y_pred: &[usize],
    probas: &[Vec<f64>],
    groups: &[usize],
) -> crate::Result<QualityReport> {
    Ok(QualityReport {
        accuracy: accuracy(y_true, y_pred)?,
        f1: f1_score(y_true, y_pred, 1)?,
        equalized_odds: equalized_odds(y_true, y_pred, groups)?,
        predictive_parity: predictive_parity(y_true, y_pred, groups)?,
        entropy: prediction_entropy(probas)?,
    })
}

pub(crate) fn check_same_len(a: usize, b: usize) -> crate::Result<()> {
    if a != b {
        return Err(crate::MlError::DimensionMismatch {
            expected: a,
            got: b,
        });
    }
    if a == 0 {
        return Err(crate::MlError::InvalidArgument(
            "metrics need at least one example".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_report_bundles_metrics() {
        let y_true = vec![1, 0, 1, 0];
        let y_pred = vec![1, 0, 0, 0];
        let probas = vec![
            vec![0.1, 0.9],
            vec![0.8, 0.2],
            vec![0.6, 0.4],
            vec![0.9, 0.1],
        ];
        let groups = vec![0, 0, 1, 1];
        let r = quality_report(&y_true, &y_pred, &probas, &groups).unwrap();
        assert_eq!(r.accuracy, 0.75);
        assert!(r.f1 > 0.0 && r.f1 < 1.0);
        assert!((0.0..=1.0).contains(&r.equalized_odds));
        assert!((0.0..=1.0).contains(&r.predictive_parity));
        assert!((0.0..=1.0).contains(&r.entropy));
    }
}
