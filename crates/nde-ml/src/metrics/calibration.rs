//! Calibration metrics.

use super::check_same_len;
use crate::{MlError, Result};

/// Expected calibration error (ECE) with equal-width confidence bins.
///
/// For each example the *confidence* is the probability assigned to the
/// predicted (argmax) class; ECE is the bin-weighted mean absolute gap
/// between confidence and empirical accuracy.
pub fn expected_calibration_error(
    y_true: &[usize],
    probas: &[Vec<f64>],
    n_bins: usize,
) -> Result<f64> {
    check_same_len(y_true.len(), probas.len())?;
    if n_bins == 0 {
        return Err(MlError::InvalidArgument("n_bins must be > 0".into()));
    }
    let mut bin_conf = vec![0.0; n_bins];
    let mut bin_acc = vec![0.0; n_bins];
    let mut bin_count = vec![0usize; n_bins];
    for (&t, p) in y_true.iter().zip(probas) {
        if p.is_empty() {
            return Err(MlError::InvalidArgument("empty probability row".into()));
        }
        let (pred, &conf) = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        let bin = ((conf * n_bins as f64) as usize).min(n_bins - 1);
        bin_conf[bin] += conf;
        bin_acc[bin] += if pred == t { 1.0 } else { 0.0 };
        bin_count[bin] += 1;
    }
    let n = y_true.len() as f64;
    let mut ece = 0.0;
    for b in 0..n_bins {
        if bin_count[b] == 0 {
            continue;
        }
        let c = bin_count[b] as f64;
        ece += (c / n) * (bin_acc[b] / c - bin_conf[b] / c).abs();
    }
    Ok(ece)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_and_correct() {
        let y = vec![1, 0];
        let p = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let ece = expected_calibration_error(&y, &p, 10).unwrap();
        assert!(ece.abs() < 1e-12);
    }

    #[test]
    fn confident_but_wrong_has_high_ece() {
        let y = vec![0, 0];
        let p = vec![vec![0.05, 0.95], vec![0.05, 0.95]];
        let ece = expected_calibration_error(&y, &p, 10).unwrap();
        assert!((ece - 0.95).abs() < 1e-12);
    }

    #[test]
    fn halfway_confidence_with_half_accuracy_is_calibrated() {
        // Confidence 0.6, accuracy 0.5 → gap 0.1.
        let y = vec![1, 0];
        let p = vec![vec![0.4, 0.6], vec![0.4, 0.6]];
        let ece = expected_calibration_error(&y, &p, 5).unwrap();
        assert!((ece - 0.1).abs() < 1e-12);
    }

    #[test]
    fn validates_inputs() {
        assert!(expected_calibration_error(&[0], &[vec![1.0]], 0).is_err());
        assert!(expected_calibration_error(&[0, 1], &[vec![1.0]], 5).is_err());
        assert!(expected_calibration_error(&[0], &[vec![]], 5).is_err());
    }
}
