//! Ranking metrics: ROC-AUC.

use super::check_same_len;
use crate::{MlError, Result};

/// Area under the ROC curve for binary classification, from positive-class
/// scores. Computed via the Mann–Whitney statistic with midrank handling of
/// ties: `AUC = (R⁺ − n⁺(n⁺+1)/2) / (n⁺ n⁻)`.
pub fn roc_auc(y_true: &[usize], positive_scores: &[f64]) -> Result<f64> {
    check_same_len(y_true.len(), positive_scores.len())?;
    if y_true.iter().any(|&y| y > 1) {
        return Err(MlError::InvalidArgument(
            "roc_auc requires binary labels (0/1)".into(),
        ));
    }
    let n_pos = y_true.iter().filter(|&&y| y == 1).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(MlError::InvalidArgument(
            "roc_auc requires both classes present".into(),
        ));
    }
    // Midranks over the scores.
    let mut order: Vec<usize> = (0..y_true.len()).collect();
    order.sort_by(|&a, &b| {
        positive_scores[a]
            .partial_cmp(&positive_scores[b])
            .expect("finite scores")
    });
    let mut ranks = vec![0.0; y_true.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && positive_scores[order[j + 1]] == positive_scores[order[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 share the midrank.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = y_true
        .iter()
        .zip(&ranks)
        .filter(|(&y, _)| y == 1)
        .map(|(_, &r)| r)
        .sum();
    let auc =
        (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64);
    Ok(auc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_one() {
        let y = vec![0, 0, 1, 1];
        let s = vec![0.1, 0.2, 0.8, 0.9];
        assert_eq!(roc_auc(&y, &s).unwrap(), 1.0);
    }

    #[test]
    fn inverted_ranking_gives_zero() {
        let y = vec![1, 1, 0, 0];
        let s = vec![0.1, 0.2, 0.8, 0.9];
        assert_eq!(roc_auc(&y, &s).unwrap(), 0.0);
    }

    #[test]
    fn random_constant_scores_give_half() {
        let y = vec![0, 1, 0, 1, 0, 1];
        let s = vec![0.5; 6];
        assert!((roc_auc(&y, &s).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_intermediate_value() {
        // One inverted (pos, neg) pair among 2x2: AUC = 3/4.
        let y = vec![0, 1, 0, 1];
        let s = vec![0.1, 0.3, 0.35, 0.8];
        assert!((roc_auc(&y, &s).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn validates_inputs() {
        assert!(roc_auc(&[0, 0], &[0.1, 0.2]).is_err());
        assert!(roc_auc(&[1, 1], &[0.1, 0.2]).is_err());
        assert!(roc_auc(&[0, 2], &[0.1, 0.2]).is_err());
        assert!(roc_auc(&[0, 1], &[0.1]).is_err());
    }
}
