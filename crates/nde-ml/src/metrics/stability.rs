//! Stability metrics: prediction entropy.

use crate::{MlError, Result};

/// Mean Shannon entropy of the per-example class distributions, normalized by
/// `ln(n_classes)` so the result lies in `[0, 1]`. Low entropy = confident,
/// stable predictions (the Fig. 1 table reports `entropy 0.16`).
pub fn prediction_entropy(probas: &[Vec<f64>]) -> Result<f64> {
    if probas.is_empty() {
        return Err(MlError::InvalidArgument(
            "entropy needs at least one distribution".into(),
        ));
    }
    let k = probas[0].len();
    if k < 2 {
        return Err(MlError::InvalidArgument(
            "entropy needs at least two classes".into(),
        ));
    }
    let norm = (k as f64).ln();
    let mut total = 0.0;
    for (i, p) in probas.iter().enumerate() {
        if p.len() != k {
            return Err(MlError::DimensionMismatch {
                expected: k,
                got: p.len(),
            });
        }
        let sum: f64 = p.iter().sum();
        if (sum - 1.0).abs() > 1e-6 || p.iter().any(|&v| v < -1e-12) {
            return Err(MlError::InvalidArgument(format!(
                "row {i} is not a probability distribution (sum={sum})"
            )));
        }
        let h: f64 = p.iter().filter(|&&v| v > 0.0).map(|&v| -v * v.ln()).sum();
        total += h / norm;
    }
    Ok(total / probas.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_has_zero_entropy() {
        let p = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(prediction_entropy(&p).unwrap(), 0.0);
    }

    #[test]
    fn uniform_has_entropy_one() {
        let p = vec![vec![0.5, 0.5], [0.25, 0.25, 0.25, 0.25].to_vec()];
        // Mixed widths are a dimension error; test them separately.
        assert!(prediction_entropy(&p).is_err());
        let u2 = vec![vec![0.5, 0.5]];
        assert!((prediction_entropy(&u2).unwrap() - 1.0).abs() < 1e-12);
        let u4 = vec![vec![0.25; 4]];
        assert!((prediction_entropy(&u4).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intermediate_entropy_monotone_in_confidence() {
        let confident = prediction_entropy(&[vec![0.9, 0.1]]).unwrap();
        let unsure = prediction_entropy(&[vec![0.6, 0.4]]).unwrap();
        assert!(confident < unsure);
    }

    #[test]
    fn invalid_distributions_rejected() {
        assert!(prediction_entropy(&[]).is_err());
        assert!(prediction_entropy(&[vec![1.0]]).is_err());
        assert!(prediction_entropy(&[vec![0.7, 0.7]]).is_err());
        assert!(prediction_entropy(&[vec![-0.2, 1.2]]).is_err());
    }
}
