//! Regression metrics.

use super::check_same_len;
use crate::Result;

/// Mean squared error.
pub fn mean_squared_error(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check_same_len(y_true.len(), y_pred.len())?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64)
}

/// Mean absolute error.
pub fn mean_absolute_error(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check_same_len(y_true.len(), y_pred.len())?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64)
}

/// Coefficient of determination R². A constant true vector yields 0 when
/// predictions are also perfect, else can be negative.
pub fn r2_score(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check_same_len(y_true.len(), y_pred.len())?;
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    if ss_tot < 1e-24 {
        return Ok(if ss_res < 1e-24 { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(mean_squared_error(&y, &y).unwrap(), 0.0);
        assert_eq!(mean_absolute_error(&y, &y).unwrap(), 0.0);
        assert_eq!(r2_score(&y, &y).unwrap(), 1.0);
    }

    #[test]
    fn known_values() {
        let t = vec![0.0, 0.0];
        let p = vec![1.0, -1.0];
        assert_eq!(mean_squared_error(&t, &p).unwrap(), 1.0);
        assert_eq!(mean_absolute_error(&t, &p).unwrap(), 1.0);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let t = vec![1.0, 2.0, 3.0];
        let p = vec![2.0, 2.0, 2.0];
        assert!(r2_score(&t, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn r2_constant_target_edge_case() {
        let t = vec![5.0, 5.0];
        assert_eq!(r2_score(&t, &[5.0, 5.0]).unwrap(), 1.0);
        assert_eq!(r2_score(&t, &[4.0, 6.0]).unwrap(), 0.0);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(mean_squared_error(&[1.0], &[1.0, 2.0]).is_err());
        assert!(r2_score(&[], &[]).is_err());
    }
}
