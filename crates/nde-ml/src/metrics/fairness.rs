//! Group-fairness metrics (paper Fig. 1: equalized odds, predictive parity).
//!
//! All metrics return a *score* in `[0, 1]` where `1` means perfectly fair
//! (zero gap between groups) — the orientation used by the Fig. 1 table.

use super::check_same_len;
use crate::{MlError, Result};

/// Per-group rates needed by the fairness metrics.
struct GroupRates {
    tpr: f64,
    fpr: f64,
    ppv: f64,
    positive_rate: f64,
    n: usize,
}

fn group_rates(y_true: &[usize], y_pred: &[usize], groups: &[usize]) -> Result<Vec<GroupRates>> {
    check_same_len(y_true.len(), y_pred.len())?;
    check_same_len(y_true.len(), groups.len())?;
    let n_groups = groups.iter().copied().max().unwrap_or(0) + 1;
    if n_groups < 2 {
        return Err(MlError::InvalidArgument(
            "fairness metrics need at least two groups".into(),
        ));
    }
    let mut out = Vec::with_capacity(n_groups);
    for g in 0..n_groups {
        let (mut tp, mut fp, mut tn, mut fn_) = (0.0, 0.0, 0.0, 0.0);
        let mut n = 0usize;
        for ((&t, &p), &gr) in y_true.iter().zip(y_pred).zip(groups) {
            if gr != g {
                continue;
            }
            n += 1;
            match (t == 1, p == 1) {
                (true, true) => tp += 1.0,
                (false, true) => fp += 1.0,
                (false, false) => tn += 1.0,
                (true, false) => fn_ += 1.0,
            }
        }
        let safe = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        out.push(GroupRates {
            tpr: safe(tp, tp + fn_),
            fpr: safe(fp, fp + tn),
            ppv: safe(tp, tp + fp),
            positive_rate: safe(tp + fp, n as f64),
            n,
        });
    }
    Ok(out)
}

/// Maximum pairwise gap of a per-group statistic, over non-empty groups.
fn max_gap(rates: &[GroupRates], f: impl Fn(&GroupRates) -> f64) -> f64 {
    let vals: Vec<f64> = rates.iter().filter(|r| r.n > 0).map(f).collect();
    if vals.len() < 2 {
        return 0.0;
    }
    let max = vals.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let min = vals.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    max - min
}

/// Equalized-odds score: `1 - max(TPR gap, FPR gap)` across groups.
/// Treats class 1 as the positive class.
pub fn equalized_odds(y_true: &[usize], y_pred: &[usize], groups: &[usize]) -> Result<f64> {
    let rates = group_rates(y_true, y_pred, groups)?;
    let gap = max_gap(&rates, |r| r.tpr).max(max_gap(&rates, |r| r.fpr));
    Ok(1.0 - gap)
}

/// Predictive-parity score: `1 - max precision (PPV) gap` across groups.
pub fn predictive_parity(y_true: &[usize], y_pred: &[usize], groups: &[usize]) -> Result<f64> {
    let rates = group_rates(y_true, y_pred, groups)?;
    Ok(1.0 - max_gap(&rates, |r| r.ppv))
}

/// Demographic-parity difference: max gap in positive-prediction rates
/// (0 = perfectly equal rates; this one is a *difference*, not a score).
pub fn demographic_parity_diff(
    y_true: &[usize],
    y_pred: &[usize],
    groups: &[usize],
) -> Result<f64> {
    let rates = group_rates(y_true, y_pred, groups)?;
    Ok(max_gap(&rates, |r| r.positive_rate))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_fair_classifier_scores_one() {
        // Identical behaviour in both groups.
        let y_true = vec![1, 0, 1, 0];
        let y_pred = vec![1, 0, 1, 0];
        let groups = vec![0, 0, 1, 1];
        assert_eq!(equalized_odds(&y_true, &y_pred, &groups).unwrap(), 1.0);
        assert_eq!(predictive_parity(&y_true, &y_pred, &groups).unwrap(), 1.0);
        assert_eq!(
            demographic_parity_diff(&y_true, &y_pred, &groups).unwrap(),
            0.0
        );
    }

    #[test]
    fn maximally_unfair_tpr_gap() {
        // Group 0: TPR 1; group 1: TPR 0.
        let y_true = vec![1, 1, 1, 1];
        let y_pred = vec![1, 1, 0, 0];
        let groups = vec![0, 0, 1, 1];
        assert_eq!(equalized_odds(&y_true, &y_pred, &groups).unwrap(), 0.0);
    }

    #[test]
    fn predictive_parity_uses_precision() {
        // Group 0: predictions all correct (PPV 1). Group 1: half wrong (PPV 0.5).
        let y_true = vec![1, 1, 1, 0];
        let y_pred = vec![1, 1, 1, 1];
        let groups = vec![0, 0, 1, 1];
        let pp = predictive_parity(&y_true, &y_pred, &groups).unwrap();
        assert!((pp - 0.5).abs() < 1e-12);
    }

    #[test]
    fn demographic_parity_counts_prediction_rates() {
        // Group 0 predicted positive 100%, group 1 never.
        let y_true = vec![0, 0, 0, 0];
        let y_pred = vec![1, 1, 0, 0];
        let groups = vec![0, 0, 1, 1];
        assert_eq!(
            demographic_parity_diff(&y_true, &y_pred, &groups).unwrap(),
            1.0
        );
    }

    #[test]
    fn single_group_rejected_and_empty_groups_skipped() {
        let y = vec![1, 0];
        assert!(equalized_odds(&y, &y, &[0, 0]).is_err());
        // Group ids 0 and 2 present, 1 empty: empty group ignored.
        let y_true = vec![1, 0, 1, 0];
        let y_pred = vec![1, 0, 1, 0];
        let groups = vec![0, 0, 2, 2];
        assert_eq!(equalized_odds(&y_true, &y_pred, &groups).unwrap(), 1.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(equalized_odds(&[1, 0], &[1], &[0, 1]).is_err());
        assert!(predictive_parity(&[1, 0], &[1, 0], &[0]).is_err());
    }
}
