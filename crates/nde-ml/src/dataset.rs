//! Numeric classification datasets and label encoding.

use crate::linalg::Matrix;
use crate::{MlError, Result};
use nde_data::generate::blobs::NumericDataset;
use nde_data::Table;

/// A fully-numeric classification dataset: features plus integer labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix, one row per example.
    pub x: Matrix,
    /// Labels in `0..n_classes`, one per example.
    pub y: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl Dataset {
    /// Build from row-major feature vectors and labels.
    pub fn from_rows(features: Vec<Vec<f64>>, y: Vec<usize>, n_classes: usize) -> Result<Dataset> {
        let x = Matrix::from_rows(features)?;
        Dataset::new(x, y, n_classes)
    }

    /// Build from a feature matrix and labels, validating label range.
    pub fn new(x: Matrix, y: Vec<usize>, n_classes: usize) -> Result<Dataset> {
        if x.rows() != y.len() {
            return Err(MlError::DimensionMismatch {
                expected: x.rows(),
                got: y.len(),
            });
        }
        if n_classes < 2 {
            return Err(MlError::InvalidArgument(format!(
                "need at least 2 classes, got {n_classes}"
            )));
        }
        if let Some(&bad) = y.iter().find(|&&l| l >= n_classes) {
            return Err(MlError::InvalidLabel {
                label: bad,
                n_classes,
            });
        }
        Ok(Dataset { x, y, n_classes })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` if the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// New dataset with the selected examples (repeats/reorder allowed).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.take_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// The first `(row, col)` holding a NaN or infinite feature value, in
    /// row-major order — `None` when every cell is finite. Long-running
    /// estimators validate with this before spending their budget.
    pub fn first_non_finite(&self) -> Option<(usize, usize)> {
        for (row, values) in self.x.iter_rows().enumerate() {
            if let Some(col) = values.iter().position(|v| !v.is_finite()) {
                return Some((row, col));
            }
        }
        None
    }

    /// New dataset with one example removed (for leave-one-out).
    pub fn without(&self, index: usize) -> Dataset {
        let keep: Vec<usize> = (0..self.len()).filter(|&i| i != index).collect();
        self.subset(&keep)
    }

    /// A 64-bit content fingerprint over shape, feature bits, labels, and
    /// class count. Two datasets fingerprint equal iff they are bit-for-bit
    /// identical, so the value is a safe durable-store key for "same data
    /// as the run that wrote this checkpoint" (NaN payload differences
    /// included: hashing `to_bits` distinguishes them).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = nde_data::fxhash::FxHasher::default();
        h.write_usize(self.x.rows());
        h.write_usize(self.x.cols());
        for row in self.x.iter_rows() {
            for v in row {
                h.write_u64(v.to_bits());
            }
        }
        for &label in &self.y {
            h.write_usize(label);
        }
        h.write_usize(self.n_classes);
        h.finish()
    }

    /// The majority class (ties broken toward the smaller class id).
    pub fn majority_class(&self) -> usize {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.y {
            counts[l] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl TryFrom<&NumericDataset> for Dataset {
    type Error = MlError;

    fn try_from(nd: &NumericDataset) -> Result<Dataset> {
        Dataset::from_rows(nd.features.clone(), nd.labels.clone(), nd.n_classes)
    }
}

/// Maps string class labels to dense integer ids (sorted lexicographically,
/// so the mapping is deterministic and seed-independent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelEncoder {
    classes: Vec<String>,
}

impl LabelEncoder {
    /// Fit an encoder over the distinct non-null string values of a column.
    pub fn fit(table: &Table, column: &str) -> Result<LabelEncoder> {
        let mut classes: Vec<String> = table
            .value_counts(column)?
            .into_iter()
            .filter_map(|(v, _)| v.as_str().map(str::to_owned))
            .collect();
        classes.sort();
        if classes.len() < 2 {
            return Err(MlError::InvalidArgument(format!(
                "label column `{column}` has {} distinct classes; need >= 2",
                classes.len()
            )));
        }
        Ok(LabelEncoder { classes })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The class names, in id order.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Encode one label string.
    pub fn encode(&self, label: &str) -> Result<usize> {
        self.classes
            .iter()
            .position(|c| c == label)
            .ok_or_else(|| MlError::InvalidArgument(format!("unseen label `{label}`")))
    }

    /// Decode a class id back to its name.
    pub fn decode(&self, id: usize) -> Result<&str> {
        self.classes
            .get(id)
            .map(String::as_str)
            .ok_or(MlError::InvalidLabel {
                label: id,
                n_classes: self.classes.len(),
            })
    }

    /// Encode a whole label column (nulls are rejected).
    ///
    /// On the columnar backend each *distinct* label is looked up once
    /// through a lazy per-dictionary-code memo; rows then copy encoded ids.
    /// Errors (null label, unseen label) surface at the same row as the
    /// per-row path, since codes are memoized in row order.
    pub fn encode_column(&self, table: &Table, column: &str) -> Result<Vec<usize>> {
        let mut out = Vec::with_capacity(table.n_rows());
        if let Some(p) = table.col_str(column) {
            let mut memo: Vec<Option<usize>> = vec![None; p.dict().len()];
            for row in 0..table.n_rows() {
                if p.nulls.get(row) {
                    return Err(MlError::InvalidArgument(format!(
                        "null or non-string label at row {row}"
                    )));
                }
                let code = p.codes[row] as usize;
                let id = match memo[code] {
                    Some(id) => id,
                    None => {
                        let id = self.encode(p.dict().value(code as u32))?;
                        memo[code] = Some(id);
                        id
                    }
                };
                out.push(id);
            }
            return Ok(out);
        }
        for row in 0..table.n_rows() {
            let v = table.get_ref(row, column)?;
            let s = v.as_str().ok_or_else(|| {
                MlError::InvalidArgument(format!("null or non-string label at row {row}"))
            })?;
            out.push(self.encode(s)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;
    use nde_data::generate::hiring::{HiringScenario, LABEL_COLUMN};

    #[test]
    fn construction_validates() {
        assert!(Dataset::from_rows(vec![vec![1.0]], vec![0, 1], 2).is_err());
        assert!(Dataset::from_rows(vec![vec![1.0]], vec![5], 2).is_err());
        assert!(Dataset::from_rows(vec![vec![1.0]], vec![0], 1).is_err());
        let d = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![0, 1], 2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 1);
    }

    #[test]
    fn subset_and_without() {
        let d =
            Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![0, 1, 0], 2).unwrap();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.y, vec![0, 0]);
        assert_eq!(s.x.row(0), &[2.0]);
        let w = d.without(1);
        assert_eq!(w.len(), 2);
        assert_eq!(w.y, vec![0, 0]);
    }

    #[test]
    fn majority_class_breaks_ties_low() {
        let d = Dataset::from_rows(vec![vec![0.0], vec![1.0]], vec![0, 1], 2).unwrap();
        assert_eq!(d.majority_class(), 0);
        let d2 =
            Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1, 1, 0], 2).unwrap();
        assert_eq!(d2.majority_class(), 1);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let d = Dataset::from_rows(vec![vec![0.5, 1.0], vec![2.0, 3.0]], vec![0, 1], 2).unwrap();
        assert_eq!(d.fingerprint(), d.clone().fingerprint());
        let mut flipped = d.clone();
        flipped.y[0] = 1;
        assert_ne!(d.fingerprint(), flipped.fingerprint());
        let mut nudged = d.clone();
        nudged.x = Matrix::from_rows(vec![vec![0.5, 1.0], vec![2.0, 3.0 + 1e-12]]).unwrap();
        assert_ne!(d.fingerprint(), nudged.fingerprint());
        // Shape is part of the key: a transposed-looking flat layout with
        // the same bytes must not collide.
        let wide = Dataset::from_rows(vec![vec![0.5, 1.0, 2.0, 3.0]], vec![0], 2);
        assert!(wide.is_err() || wide.unwrap().fingerprint() != d.fingerprint());
    }

    #[test]
    fn from_numeric_dataset() {
        let nd = two_gaussians(20, 2, 3.0, 1);
        let d = Dataset::try_from(&nd).unwrap();
        assert_eq!(d.len(), 20);
        assert_eq!(d.n_classes, 2);
    }

    #[test]
    fn label_encoder_roundtrip() {
        let t = HiringScenario::generate(50, 1).letters;
        let enc = LabelEncoder::fit(&t, LABEL_COLUMN).unwrap();
        assert_eq!(enc.n_classes(), 2);
        assert_eq!(
            enc.classes(),
            &["negative".to_string(), "positive".to_string()]
        );
        assert_eq!(enc.encode("negative").unwrap(), 0);
        assert_eq!(enc.decode(1).unwrap(), "positive");
        assert!(enc.encode("meh").is_err());
        assert!(enc.decode(5).is_err());
        let ys = enc.encode_column(&t, LABEL_COLUMN).unwrap();
        assert_eq!(ys.len(), 50);
        assert!(ys.iter().all(|&y| y < 2));
    }

    #[test]
    fn label_encoder_rejects_single_class_and_nulls() {
        let t = HiringScenario::generate(200, 2).letters;
        assert!(LabelEncoder::fit(&t, "letter_text").is_ok()); // many classes is fine
                                                               // degree has nulls: encode_column must reject them.
        assert!(t.column("degree").unwrap().null_count() > 0);
        let enc = LabelEncoder::fit(&t, "degree").unwrap();
        assert!(enc.encode_column(&t, "degree").is_err());
    }
}
