//! Missing-value imputation for numeric and categorical columns.

use crate::{MlError, Result};

/// Strategy for filling missing numeric values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericImputation {
    /// Fill with the training mean.
    Mean,
    /// Fill with the training median.
    Median,
    /// Fill with a constant.
    Constant(f64),
}

/// A fitted numeric imputer.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericImputer {
    strategy: NumericImputation,
    fill: Option<f64>,
}

impl NumericImputer {
    /// Create an unfitted imputer.
    pub fn new(strategy: NumericImputation) -> NumericImputer {
        NumericImputer {
            strategy,
            fill: None,
        }
    }

    /// Learn the fill value from training values.
    pub fn fit(&mut self, values: &[Option<f64>]) -> Result<()> {
        let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
        let fill = match self.strategy {
            NumericImputation::Constant(c) => c,
            _ if present.is_empty() => {
                return Err(MlError::InvalidArgument(
                    "cannot impute a column with no observed values".into(),
                ))
            }
            NumericImputation::Mean => present.iter().sum::<f64>() / present.len() as f64,
            NumericImputation::Median => {
                let mut sorted = present.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let mid = sorted.len() / 2;
                if sorted.len().is_multiple_of(2) {
                    0.5 * (sorted[mid - 1] + sorted[mid])
                } else {
                    sorted[mid]
                }
            }
        };
        self.fill = Some(fill);
        Ok(())
    }

    /// The learned fill value.
    pub fn fill_value(&self) -> Result<f64> {
        self.fill.ok_or(MlError::NotFitted)
    }

    /// Impute a single optional value.
    pub fn transform_one(&self, v: Option<f64>) -> Result<f64> {
        Ok(v.unwrap_or(self.fill_value()?))
    }

    /// Impute a whole column.
    pub fn transform(&self, values: &[Option<f64>]) -> Result<Vec<f64>> {
        let fill = self.fill_value()?;
        Ok(values.iter().map(|v| v.unwrap_or(fill)).collect())
    }
}

/// A fitted categorical imputer (mode or constant fill).
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalImputer {
    constant: Option<String>,
    fill: Option<String>,
}

impl CategoricalImputer {
    /// Impute with the most frequent training category.
    pub fn mode() -> CategoricalImputer {
        CategoricalImputer {
            constant: None,
            fill: None,
        }
    }

    /// Impute with a fixed category (e.g. `"missing"`), which also works for
    /// columns that are entirely null.
    pub fn constant(value: impl Into<String>) -> CategoricalImputer {
        CategoricalImputer {
            constant: Some(value.into()),
            fill: None,
        }
    }

    /// Learn the fill category from training values.
    pub fn fit(&mut self, values: &[Option<String>]) -> Result<()> {
        if let Some(c) = &self.constant {
            self.fill = Some(c.clone());
            return Ok(());
        }
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for v in values.iter().flatten() {
            *counts.entry(v.as_str()).or_insert(0) += 1;
        }
        let mode = counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
            .map(|(v, _)| v.to_owned())
            .ok_or_else(|| {
                MlError::InvalidArgument(
                    "cannot mode-impute a column with no observed values".into(),
                )
            })?;
        self.fill = Some(mode);
        Ok(())
    }

    /// The learned fill category.
    pub fn fill_value(&self) -> Result<&str> {
        self.fill.as_deref().ok_or(MlError::NotFitted)
    }

    /// Impute a single optional category.
    pub fn transform_one<'a>(&'a self, v: Option<&'a str>) -> Result<&'a str> {
        Ok(v.unwrap_or(self.fill_value()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median() {
        let values = vec![Some(1.0), None, Some(3.0), Some(100.0)];
        let mut mean = NumericImputer::new(NumericImputation::Mean);
        mean.fit(&values).unwrap();
        assert!((mean.fill_value().unwrap() - 104.0 / 3.0).abs() < 1e-12);

        let mut median = NumericImputer::new(NumericImputation::Median);
        median.fit(&values).unwrap();
        assert_eq!(median.fill_value().unwrap(), 3.0);

        let even = vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)];
        let mut median = NumericImputer::new(NumericImputation::Median);
        median.fit(&even).unwrap();
        assert_eq!(median.fill_value().unwrap(), 2.5);
    }

    #[test]
    fn constant_ignores_data() {
        let mut c = NumericImputer::new(NumericImputation::Constant(-1.0));
        c.fit(&[None, None]).unwrap();
        assert_eq!(c.transform(&[None, Some(5.0)]).unwrap(), vec![-1.0, 5.0]);
    }

    #[test]
    fn all_null_rejected_for_statistics() {
        let mut m = NumericImputer::new(NumericImputation::Mean);
        assert!(m.fit(&[None, None]).is_err());
        assert!(m.fill_value().is_err());
    }

    #[test]
    fn categorical_mode_prefers_most_frequent() {
        let vals = vec![
            Some("a".to_string()),
            Some("b".to_string()),
            Some("b".to_string()),
            None,
        ];
        let mut imp = CategoricalImputer::mode();
        imp.fit(&vals).unwrap();
        assert_eq!(imp.fill_value().unwrap(), "b");
        assert_eq!(imp.transform_one(None).unwrap(), "b");
        assert_eq!(imp.transform_one(Some("z")).unwrap(), "z");
    }

    #[test]
    fn categorical_mode_tie_is_deterministic() {
        let vals = vec![Some("x".to_string()), Some("y".to_string())];
        let mut imp = CategoricalImputer::mode();
        imp.fit(&vals).unwrap();
        // Tie broken toward the lexicographically smaller category.
        assert_eq!(imp.fill_value().unwrap(), "x");
    }

    #[test]
    fn categorical_constant_handles_all_null() {
        let mut imp = CategoricalImputer::constant("missing");
        imp.fit(&[None, None]).unwrap();
        assert_eq!(imp.fill_value().unwrap(), "missing");
        let mut mode = CategoricalImputer::mode();
        assert!(mode.fit(&[None, None]).is_err());
    }
}
