//! The table-to-matrix feature encoder (the tutorial's `ColumnTransformer`).

use crate::encode::impute::{CategoricalImputer, NumericImputation, NumericImputer};
use crate::encode::one_hot::OneHotEncoder;
use crate::encode::scaler::StandardScaler;
use crate::encode::text_hash::HashedTextEncoder;
use crate::linalg::Matrix;
use crate::{MlError, Result};
use nde_data::{DataType, Table};

/// Per-column encoding strategy.
#[derive(Debug, Clone)]
pub enum ColumnEncoder {
    /// Impute then standardize a numeric column.
    Numeric {
        /// Imputation strategy for missing values.
        impute: NumericImputation,
        /// Whether to standardize to zero mean / unit variance.
        scale: bool,
    },
    /// Impute (mode or constant) then one-hot encode a categorical column.
    OneHot {
        /// Fill category for nulls; `None` means mode imputation.
        fill: Option<String>,
    },
    /// Hashed bag-of-words embedding of a text column (nulls ⇒ zero vector).
    TextHash {
        /// Embedding dimensionality.
        dims: usize,
    },
    /// Boolean column to 0/1 (nulls ⇒ 0).
    Bool,
}

/// A named column plus its encoding strategy.
#[derive(Debug, Clone)]
pub struct EncoderSpec {
    /// Source column name.
    pub column: String,
    /// How to encode it.
    pub encoder: ColumnEncoder,
}

impl EncoderSpec {
    /// Convenience constructor.
    pub fn new(column: impl Into<String>, encoder: ColumnEncoder) -> EncoderSpec {
        EncoderSpec {
            column: column.into(),
            encoder,
        }
    }
}

/// Fitted per-column state.
#[derive(Debug, Clone)]
enum FittedColumn {
    Numeric {
        imputer: NumericImputer,
        scaler: Option<StandardScaler>,
    },
    OneHot {
        imputer: CategoricalImputer,
        encoder: OneHotEncoder,
    },
    TextHash(HashedTextEncoder),
    Bool,
}

impl FittedColumn {
    fn dim(&self) -> usize {
        match self {
            FittedColumn::Numeric { .. } | FittedColumn::Bool => 1,
            FittedColumn::OneHot { encoder, .. } => encoder.dim(),
            FittedColumn::TextHash(enc) => enc.dim(),
        }
    }
}

/// Encodes a table into a dense feature matrix, column spec by column spec.
///
/// Transforms are strictly row-wise: output row `i` is derived from input row
/// `i` only, so provenance through this stage is the identity mapping.
#[derive(Debug, Clone)]
pub struct TableEncoder {
    specs: Vec<EncoderSpec>,
    fitted: Vec<FittedColumn>,
}

impl TableEncoder {
    /// Create an unfitted encoder from column specs.
    pub fn new(specs: Vec<EncoderSpec>) -> TableEncoder {
        TableEncoder {
            specs,
            fitted: Vec::new(),
        }
    }

    /// Fit all per-column encoders on `table`.
    pub fn fit(&mut self, table: &Table) -> Result<()> {
        if self.specs.is_empty() {
            return Err(MlError::InvalidArgument("no encoder specs given".into()));
        }
        let mut fitted = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let state = match &spec.encoder {
                ColumnEncoder::Numeric { impute, scale } => {
                    let values = numeric_values(table, &spec.column)?;
                    let mut imputer = NumericImputer::new(*impute);
                    imputer.fit(&values)?;
                    let scaler = if *scale {
                        let filled = imputer.transform(&values)?;
                        Some(StandardScaler::fit(&filled)?)
                    } else {
                        None
                    };
                    FittedColumn::Numeric { imputer, scaler }
                }
                ColumnEncoder::OneHot { fill } => {
                    let col = table.column(&spec.column)?;
                    let values = col.as_str_slice().ok_or_else(|| {
                        MlError::InvalidArgument(format!(
                            "one-hot column `{}` must be a string column",
                            spec.column
                        ))
                    })?;
                    let mut imputer = match fill {
                        Some(f) => CategoricalImputer::constant(f.clone()),
                        None => CategoricalImputer::mode(),
                    };
                    imputer.fit(values)?;
                    // Fit categories over imputed values so the fill category
                    // gets its own dimension.
                    let imputed: Vec<Option<String>> = values
                        .iter()
                        .map(|v| Ok(Some(imputer.transform_one(v.as_deref())?.to_owned())))
                        .collect::<Result<_>>()?;
                    let encoder = OneHotEncoder::fit(&imputed)?;
                    FittedColumn::OneHot { imputer, encoder }
                }
                ColumnEncoder::TextHash { dims } => {
                    // Type-check via the schema; no need to materialize text.
                    if table.schema().field(&spec.column)?.dtype != DataType::Str {
                        return Err(MlError::InvalidArgument(format!(
                            "text column `{}` must be a string column",
                            spec.column
                        )));
                    }
                    FittedColumn::TextHash(HashedTextEncoder::new(*dims))
                }
                ColumnEncoder::Bool => {
                    if table.schema().field(&spec.column)?.dtype != DataType::Bool {
                        return Err(MlError::InvalidArgument(format!(
                            "bool column `{}` must be a bool column",
                            spec.column
                        )));
                    }
                    FittedColumn::Bool
                }
            };
            fitted.push(state);
        }
        self.fitted = fitted;
        Ok(())
    }

    /// Total output dimensionality.
    pub fn dim(&self) -> Result<usize> {
        if self.fitted.is_empty() {
            return Err(MlError::NotFitted);
        }
        Ok(self.fitted.iter().map(FittedColumn::dim).sum())
    }

    /// Human-readable names for each output dimension.
    pub fn feature_names(&self) -> Result<Vec<String>> {
        if self.fitted.is_empty() {
            return Err(MlError::NotFitted);
        }
        let mut names = Vec::new();
        for (spec, f) in self.specs.iter().zip(&self.fitted) {
            match f {
                FittedColumn::Numeric { .. } => names.push(spec.column.clone()),
                FittedColumn::Bool => names.push(spec.column.clone()),
                FittedColumn::OneHot { encoder, .. } => {
                    for c in encoder.categories() {
                        names.push(format!("{}={}", spec.column, c));
                    }
                }
                FittedColumn::TextHash(enc) => {
                    for i in 0..enc.dim() {
                        names.push(format!("{}#h{}", spec.column, i));
                    }
                }
            }
        }
        Ok(names)
    }

    /// Transform a conformant table into a feature matrix (rows preserved 1:1).
    pub fn transform(&self, table: &Table) -> Result<Matrix> {
        if self.fitted.is_empty() {
            return Err(MlError::NotFitted);
        }
        let n = table.n_rows();
        let d = self.dim()?;
        let mut out = Matrix::zeros(n, d);
        let mut offset = 0;
        for (spec, f) in self.specs.iter().zip(&self.fitted) {
            match f {
                FittedColumn::Numeric { imputer, scaler } => {
                    // Columnar fast path: copy straight off the typed plane,
                    // filling nulls from the imputer; no Vec<Option<f64>>.
                    let fill = imputer.fill_value()?;
                    let apply = |x: f64| match scaler {
                        Some(s) => s.transform_one(x),
                        None => x,
                    };
                    if let Some(p) = table.col_f64(&spec.column) {
                        for i in 0..n {
                            let x = if p.nulls.get(i) { fill } else { p.values[i] };
                            out.row_mut(i)[offset] = apply(x);
                        }
                    } else if let Some(p) = table.col_i64(&spec.column) {
                        for i in 0..n {
                            let x = if p.nulls.get(i) {
                                fill
                            } else {
                                p.values[i] as f64
                            };
                            out.row_mut(i)[offset] = apply(x);
                        }
                    } else {
                        let values = table.column(&spec.column)?.to_f64_vec();
                        for (i, v) in values.iter().enumerate() {
                            out.row_mut(i)[offset] = apply(imputer.transform_one(*v)?);
                        }
                    }
                    offset += 1;
                }
                FittedColumn::Bool => {
                    if let Some(p) = table.col_bool(&spec.column) {
                        for i in 0..n {
                            let set = !p.nulls.get(i) && p.values[i];
                            out.row_mut(i)[offset] = if set { 1.0 } else { 0.0 };
                        }
                    } else {
                        let col = table.column(&spec.column)?;
                        let values = col.as_bool_slice().ok_or_else(|| {
                            MlError::InvalidArgument(format!(
                                "bool column `{}` changed type",
                                spec.column
                            ))
                        })?;
                        for (i, v) in values.iter().enumerate() {
                            out.row_mut(i)[offset] = match v {
                                Some(true) => 1.0,
                                _ => 0.0,
                            };
                        }
                    }
                    offset += 1;
                }
                FittedColumn::OneHot { imputer, encoder } => {
                    let w = encoder.dim();
                    if let Some(p) = table.col_str(&spec.column) {
                        // Encode each distinct dictionary code once; rows then
                        // memcpy the cached one-hot vector.
                        let mut by_code: Vec<Option<Vec<f64>>> = vec![None; p.dict().len()];
                        let mut null_enc: Option<Vec<f64>> = None;
                        for i in 0..n {
                            let enc: &[f64] = if p.nulls.get(i) {
                                if null_enc.is_none() {
                                    null_enc = Some(encoder.encode(imputer.transform_one(None)?));
                                }
                                null_enc.as_deref().expect("just filled")
                            } else {
                                let code = p.codes[i] as usize;
                                if by_code[code].is_none() {
                                    let cat =
                                        imputer.transform_one(Some(p.dict().value(code as u32)))?;
                                    by_code[code] = Some(encoder.encode(cat));
                                }
                                by_code[code].as_deref().expect("just filled")
                            };
                            out.row_mut(i)[offset..offset + w].copy_from_slice(enc);
                        }
                    } else {
                        let col = table.column(&spec.column)?;
                        let values = col.as_str_slice().ok_or_else(|| {
                            MlError::InvalidArgument(format!(
                                "one-hot column `{}` changed type",
                                spec.column
                            ))
                        })?;
                        for (i, v) in values.iter().enumerate() {
                            let cat = imputer.transform_one(v.as_deref())?;
                            encoder.encode_into(cat, &mut out.row_mut(i)[offset..offset + w]);
                        }
                    }
                    offset += w;
                }
                FittedColumn::TextHash(enc) => {
                    let w = enc.dim();
                    if let Some(p) = table.col_str(&spec.column) {
                        // Hash each distinct text once via its dictionary code;
                        // nulls take the zero vector (`""` hashes to zeros).
                        let mut by_code: Vec<Option<Vec<f64>>> = vec![None; p.dict().len()];
                        let zeros = vec![0.0; w];
                        for i in 0..n {
                            let v: &[f64] = if p.nulls.get(i) {
                                &zeros
                            } else {
                                let code = p.codes[i] as usize;
                                if by_code[code].is_none() {
                                    by_code[code] = Some(enc.encode(p.dict().value(code as u32)));
                                }
                                by_code[code].as_deref().expect("just filled")
                            };
                            out.row_mut(i)[offset..offset + w].copy_from_slice(v);
                        }
                    } else {
                        let col = table.column(&spec.column)?;
                        let values = col.as_str_slice().ok_or_else(|| {
                            MlError::InvalidArgument(format!(
                                "text column `{}` changed type",
                                spec.column
                            ))
                        })?;
                        for (i, v) in values.iter().enumerate() {
                            let text = v.as_deref().unwrap_or("");
                            enc.encode_into(text, &mut out.row_mut(i)[offset..offset + w]);
                        }
                    }
                    offset += w;
                }
            }
        }
        debug_assert_eq!(offset, d);
        Ok(out)
    }

    /// Fit on `table` and transform it in one call.
    pub fn fit_transform(&mut self, table: &Table) -> Result<Matrix> {
        self.fit(table)?;
        self.transform(table)
    }

    /// A ready-made encoder for the hiring scenario's letters table,
    /// mirroring the Fig. 3 `ColumnTransformer`.
    pub fn for_letters(text_dims: usize) -> TableEncoder {
        TableEncoder::new(vec![
            EncoderSpec::new("letter_text", ColumnEncoder::TextHash { dims: text_dims }),
            EncoderSpec::new("degree", ColumnEncoder::OneHot { fill: None }),
            EncoderSpec::new(
                "employer_rating",
                ColumnEncoder::Numeric {
                    impute: NumericImputation::Mean,
                    scale: true,
                },
            ),
            EncoderSpec::new(
                "years_experience",
                ColumnEncoder::Numeric {
                    impute: NumericImputation::Mean,
                    scale: true,
                },
            ),
        ])
    }
}

/// Optional-f64 view of a column, widened like [`nde_data::Column::to_f64_vec`]
/// but copied straight from the typed plane when the backend is columnar.
fn numeric_values(table: &Table, column: &str) -> Result<Vec<Option<f64>>> {
    if let Some(p) = table.col_f64(column) {
        return Ok((0..p.values.len())
            .map(|i| (!p.nulls.get(i)).then_some(p.values[i]))
            .collect());
    }
    if let Some(p) = table.col_i64(column) {
        return Ok((0..p.values.len())
            .map(|i| (!p.nulls.get(i)).then_some(p.values[i] as f64))
            .collect());
    }
    Ok(table.column(column)?.to_f64_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::hiring::HiringScenario;
    use nde_data::Value;

    #[test]
    fn letters_encoder_end_to_end() {
        let t = HiringScenario::generate(100, 1).letters;
        let mut enc = TableEncoder::for_letters(32);
        let x = enc.fit_transform(&t).unwrap();
        assert_eq!(x.rows(), 100);
        // 32 text + 3 degrees + 2 numeric.
        assert_eq!(x.cols(), 37);
        assert_eq!(enc.feature_names().unwrap().len(), 37);
        assert!(enc
            .feature_names()
            .unwrap()
            .contains(&"degree=phd".to_string()));
    }

    #[test]
    fn transform_is_rowwise_deterministic() {
        let t = HiringScenario::generate(50, 2).letters;
        let mut enc = TableEncoder::for_letters(16);
        let a = enc.fit_transform(&t).unwrap();
        let b = enc.transform(&t).unwrap();
        assert_eq!(a, b);
        // Transforming a subset matches the corresponding rows.
        let sub = t.take(&[5, 10]).unwrap();
        let xs = enc.transform(&sub).unwrap();
        assert_eq!(xs.row(0), a.row(5));
        assert_eq!(xs.row(1), a.row(10));
    }

    #[test]
    fn nulls_are_imputed() {
        let mut t = HiringScenario::generate(60, 3).letters;
        t.set(0, "employer_rating", Value::Null).unwrap();
        t.set(0, "degree", Value::Null).unwrap();
        let mut enc = TableEncoder::for_letters(8);
        let x = enc.fit_transform(&t).unwrap();
        assert!(x.row(0).iter().all(|v| v.is_finite()));
        // One-hot of imputed degree is still a valid one-hot (sums to 1).
        let onehot_sum: f64 = x.row(0)[8..11].iter().sum();
        assert_eq!(onehot_sum, 1.0);
    }

    #[test]
    fn unfitted_and_bad_specs_rejected() {
        let t = HiringScenario::generate(10, 4).letters;
        let enc = TableEncoder::for_letters(8);
        assert!(enc.transform(&t).is_err());
        assert!(enc.dim().is_err());
        let mut empty = TableEncoder::new(vec![]);
        assert!(empty.fit(&t).is_err());
        let mut bad = TableEncoder::new(vec![EncoderSpec::new(
            "person_id",
            ColumnEncoder::OneHot { fill: None },
        )]);
        assert!(bad.fit(&t).is_err());
        let mut missing = TableEncoder::new(vec![EncoderSpec::new("no_such", ColumnEncoder::Bool)]);
        assert!(missing.fit(&t).is_err());
    }

    #[test]
    fn scaling_produces_standardized_columns() {
        let t = HiringScenario::generate(200, 5).letters;
        let mut enc = TableEncoder::new(vec![EncoderSpec::new(
            "employer_rating",
            ColumnEncoder::Numeric {
                impute: NumericImputation::Mean,
                scale: true,
            },
        )]);
        let x = enc.fit_transform(&t).unwrap();
        let vals: Vec<f64> = (0..x.rows()).map(|i| x.get(i, 0)).collect();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        let var: f64 =
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }
}
