//! One-hot encoding of categorical values.

use crate::{MlError, Result};

/// A fitted one-hot encoder over string categories.
///
/// Categories are sorted lexicographically so the encoding is deterministic.
/// Unseen categories at transform time map to the all-zeros vector (the
/// "ignore" policy), which keeps pipelines total when validation data
/// contains new categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneHotEncoder {
    categories: Vec<String>,
}

impl OneHotEncoder {
    /// Fit over the observed (non-null) categories.
    pub fn fit(values: &[Option<String>]) -> Result<OneHotEncoder> {
        let mut categories: Vec<String> = values.iter().flatten().cloned().collect();
        categories.sort();
        categories.dedup();
        if categories.is_empty() {
            return Err(MlError::InvalidArgument(
                "cannot one-hot encode a column with no observed values".into(),
            ));
        }
        Ok(OneHotEncoder { categories })
    }

    /// The learned categories, in output-dimension order.
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Output dimensionality (= number of categories).
    pub fn dim(&self) -> usize {
        self.categories.len()
    }

    /// Encode one category into `out` (must have length [`Self::dim`]).
    pub fn encode_into(&self, value: &str, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dim());
        out.fill(0.0);
        if let Ok(idx) = self.categories.binary_search_by(|c| c.as_str().cmp(value)) {
            out[idx] = 1.0;
        }
    }

    /// Encode one category into a fresh vector.
    pub fn encode(&self, value: &str) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.encode_into(value, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted() -> OneHotEncoder {
        OneHotEncoder::fit(&[
            Some("b".to_string()),
            Some("a".to_string()),
            Some("b".to_string()),
            None,
        ])
        .unwrap()
    }

    #[test]
    fn categories_sorted_and_deduped() {
        let enc = fitted();
        assert_eq!(enc.categories(), &["a".to_string(), "b".to_string()]);
        assert_eq!(enc.dim(), 2);
    }

    #[test]
    fn encodes_one_hot() {
        let enc = fitted();
        assert_eq!(enc.encode("a"), vec![1.0, 0.0]);
        assert_eq!(enc.encode("b"), vec![0.0, 1.0]);
    }

    #[test]
    fn unseen_category_is_all_zeros() {
        let enc = fitted();
        assert_eq!(enc.encode("zzz"), vec![0.0, 0.0]);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(OneHotEncoder::fit(&[None, None]).is_err());
        assert!(OneHotEncoder::fit(&[]).is_err());
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let enc = fitted();
        let mut buf = vec![9.0, 9.0];
        enc.encode_into("a", &mut buf);
        assert_eq!(buf, vec![1.0, 0.0]);
        enc.encode_into("b", &mut buf);
        assert_eq!(buf, vec![0.0, 1.0]);
    }
}
