//! Standardization of numeric features.

use crate::{MlError, Result};

/// A fitted standard scaler: `x ↦ (x - mean) / std`, with a zero-variance
/// guard that maps constant columns to zero.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    mean: f64,
    std: f64,
}

impl StandardScaler {
    /// Fit over observed values (post-imputation, so no nulls expected).
    pub fn fit(values: &[f64]) -> Result<StandardScaler> {
        if values.is_empty() {
            return Err(MlError::InvalidArgument(
                "cannot fit a scaler on an empty column".into(),
            ));
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Ok(StandardScaler {
            mean,
            std: var.sqrt(),
        })
    }

    /// The learned `(mean, std)`.
    pub fn params(&self) -> (f64, f64) {
        (self.mean, self.std)
    }

    /// Standardize one value.
    #[inline]
    pub fn transform_one(&self, v: f64) -> f64 {
        if self.std < 1e-12 {
            0.0
        } else {
            (v - self.mean) / self.std
        }
    }

    /// Invert the transform (used to map interval bounds back to raw units).
    #[inline]
    pub fn inverse_one(&self, z: f64) -> f64 {
        self.mean + z * self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let vals = vec![2.0, 4.0, 6.0, 8.0];
        let s = StandardScaler::fit(&vals).unwrap();
        let z: Vec<f64> = vals.iter().map(|&v| s.transform_one(v)).collect();
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|v| v * v).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let s = StandardScaler::fit(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(s.transform_one(5.0), 0.0);
        assert_eq!(s.transform_one(99.0), 0.0);
    }

    #[test]
    fn inverse_roundtrips() {
        let s = StandardScaler::fit(&[1.0, 3.0, 5.0]).unwrap();
        for v in [1.0, 2.5, 5.0] {
            assert!((s.inverse_one(s.transform_one(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_rejected() {
        assert!(StandardScaler::fit(&[]).is_err());
    }
}
