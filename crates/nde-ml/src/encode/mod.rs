//! Feature encoding: turning [`nde_data::Table`]s into numeric matrices.
//!
//! Mirrors the tutorial's `ColumnTransformer` pipeline (paper Fig. 3): numeric
//! columns are imputed and standardized, categorical columns imputed and
//! one-hot encoded, and free text embedded with a hashed bag-of-words encoder
//! standing in for SentenceBERT. Every encoder is **fit on training data**
//! and then applied to any conformant table, and every transform is row-wise
//! 1:1 (which is what makes provenance tracking through the encode stage
//! trivial).

pub mod impute;
pub mod one_hot;
pub mod scaler;
pub mod table_encoder;
pub mod text_hash;

pub use impute::{CategoricalImputer, NumericImputation, NumericImputer};
pub use one_hot::OneHotEncoder;
pub use scaler::StandardScaler;
pub use table_encoder::{ColumnEncoder, EncoderSpec, TableEncoder};
pub use text_hash::HashedTextEncoder;
