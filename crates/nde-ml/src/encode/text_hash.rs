//! Hashed bag-of-words text embedding.
//!
//! The tutorial encodes recommendation letters with SentenceBERT; we
//! substitute signed feature hashing (the "hashing trick"): each lowercase
//! word token is hashed to a dimension and a sign, counts are accumulated and
//! the vector L2-normalized. This preserves the property the tutorial needs —
//! texts with similar word usage land close together in feature space — and
//! is fully deterministic with no external model.

use nde_data::fxhash::hash_bytes;

/// A stateless hashed text encoder with a fixed output dimensionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashedTextEncoder {
    dims: usize,
}

impl HashedTextEncoder {
    /// Create an encoder with `dims` output dimensions (≥ 1).
    pub fn new(dims: usize) -> HashedTextEncoder {
        HashedTextEncoder { dims: dims.max(1) }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dims
    }

    /// Encode text into `out` (must have length [`Self::dim`]).
    pub fn encode_into(&self, text: &str, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dims);
        out.fill(0.0);
        for token in tokenize(text) {
            let h = hash_bytes(token.as_bytes());
            let idx = (h % self.dims as u64) as usize;
            let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
            out[idx] += sign;
        }
        // L2 normalize so letter length doesn't dominate distances.
        let norm: f64 = out.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for v in out.iter_mut() {
                *v /= norm;
            }
        }
    }

    /// Encode text into a fresh vector.
    pub fn encode(&self, text: &str) -> Vec<f64> {
        let mut out = vec![0.0; self.dims];
        self.encode_into(text, &mut out);
        out
    }
}

/// Lowercased alphanumeric word tokens of a text.
fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::letters::{generate_letter, Sentiment};
    use nde_data::rng::seeded;

    #[test]
    fn deterministic_and_normalized() {
        let enc = HashedTextEncoder::new(64);
        let a = enc.encode("the quick brown fox");
        let b = enc.encode("the quick brown fox");
        assert_eq!(a, b);
        let norm: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tokenization_case_and_punctuation_insensitive() {
        let enc = HashedTextEncoder::new(64);
        assert_eq!(enc.encode("Hello, World!"), enc.encode("hello world"));
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let enc = HashedTextEncoder::new(16);
        assert_eq!(enc.encode(""), vec![0.0; 16]);
        assert_eq!(enc.encode("!!!"), vec![0.0; 16]);
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let enc = HashedTextEncoder::new(128);
        let a = enc.encode("delivered outstanding results under pressure");
        let b = enc.encode("delivered outstanding results under stress");
        let c = enc.encode("frequently missed important deadlines");
        let dist =
            |x: &[f64], y: &[f64]| -> f64 { x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum() };
        assert!(dist(&a, &b) < dist(&a, &c));
    }

    #[test]
    fn sentiment_classes_separate_in_hash_space() {
        // Positive letters should be mutually closer than cross-sentiment pairs
        // on average: the property the KNN classifier relies on.
        let enc = HashedTextEncoder::new(256);
        let mut rng = seeded(3);
        let pos: Vec<Vec<f64>> = (0..20)
            .map(|_| enc.encode(&generate_letter(Sentiment::Positive, 1.0, &mut rng)))
            .collect();
        let neg: Vec<Vec<f64>> = (0..20)
            .map(|_| enc.encode(&generate_letter(Sentiment::Negative, 1.0, &mut rng)))
            .collect();
        let dist =
            |x: &[f64], y: &[f64]| -> f64 { x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum() };
        let mut within = 0.0;
        let mut across = 0.0;
        let mut wn = 0.0;
        let mut an = 0.0;
        for i in 0..20 {
            for j in 0..20 {
                if i < j {
                    within += dist(&pos[i], &pos[j]) + dist(&neg[i], &neg[j]);
                    wn += 2.0;
                }
                across += dist(&pos[i], &neg[j]);
                an += 1.0;
            }
        }
        assert!(within / wn < across / an);
    }
}
