//! Dense row-major matrices and the handful of linear-algebra routines the
//! models need (dot products, norms, Gaussian elimination, Cholesky).

use crate::{MlError, Result};

/// A dense row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from row vectors (all must have equal length).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Matrix> {
        let n = rows.len();
        let d = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * d);
        for r in &rows {
            if r.len() != d {
                return Err(MlError::DimensionMismatch {
                    expected: d,
                    got: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            data,
            rows: n,
            cols: d,
        })
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Result<Matrix> {
        if data.len() != rows * cols {
            return Err(MlError::DimensionMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row access.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// New matrix containing the selected rows (repeats allowed).
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (oi, &i) in indices.iter().enumerate() {
            out.row_mut(oi).copy_from_slice(self.row(i));
        }
        out
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(MlError::DimensionMismatch {
                expected: self.cols,
                got: x.len(),
            });
        }
        Ok(self.iter_rows().map(|r| dot(r, x)).collect())
    }

    /// `Aᵀ A + lambda I`, the Gram matrix used by ridge/influence solves.
    pub fn gram_regularized(&self, lambda: f64) -> Matrix {
        let d = self.cols;
        let mut g = Matrix::zeros(d, d);
        for r in self.iter_rows() {
            for i in 0..d {
                let ri = r[i];
                if ri == 0.0 {
                    continue;
                }
                let grow = g.row_mut(i);
                for (j, &rj) in r.iter().enumerate() {
                    grow[j] += ri * rj;
                }
            }
        }
        for i in 0..d {
            g.data[i * d + i] += lambda;
        }
        g
    }
}

/// Dot product of equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (AXPY).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Squared Euclidean distance between equal-length slices.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Solve the linear system `A x = b` by Gaussian elimination with partial
/// pivoting. `A` must be square.
#[allow(clippy::needless_range_loop)] // triangular index patterns
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MlError::InvalidArgument(
            "solve requires a square matrix".into(),
        ));
    }
    if b.len() != n {
        return Err(MlError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m.get(r, col).abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .expect("non-empty range");
        if pivot_val < 1e-12 {
            return Err(MlError::Numerical("singular matrix in solve".into()));
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m.get(col, j);
                m.set(col, j, m.get(pivot_row, j));
                m.set(pivot_row, j, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m.get(col, col);
        for r in col + 1..n {
            let factor = m.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m.get(r, j) - factor * m.get(col, j);
                m.set(r, j, v);
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = rhs[i];
        for j in i + 1..n {
            s -= m.get(i, j) * x[j];
        }
        x[i] = s / m.get(i, i);
    }
    Ok(x)
}

/// Cholesky factorization of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `L Lᵀ = A`.
#[allow(clippy::needless_range_loop)] // triangular index patterns
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MlError::InvalidArgument(
            "cholesky requires a square matrix".into(),
        ));
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if s <= 0.0 {
                    return Err(MlError::Numerical(format!(
                        "matrix not positive definite at pivot {i} (s={s})"
                    )));
                }
                l.set(i, j, s.sqrt());
            } else {
                l.set(i, j, s / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Column means of a matrix.
pub fn column_means(m: &Matrix) -> Vec<f64> {
    let mut means = vec![0.0; m.cols()];
    for r in m.iter_rows() {
        axpy(1.0, r, &mut means);
    }
    let n = m.rows().max(1) as f64;
    for v in &mut means {
        *v /= n;
    }
    means
}

/// Column standard deviations (population) of a matrix.
pub fn column_stds(m: &Matrix, means: &[f64]) -> Vec<f64> {
    let mut vars = vec![0.0; m.cols()];
    for r in m.iter_rows() {
        for (v, (x, mu)) in vars.iter_mut().zip(r.iter().zip(means)) {
            let d = x - mu;
            *v += d * d;
        }
    }
    let n = m.rows().max(1) as f64;
    vars.iter().map(|v| (v / n).sqrt()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_vec(vec![1.0; 5], 2, 2).is_err());
    }

    #[test]
    fn take_rows_and_iter() {
        let m = Matrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let t = m.take_rows(&[2, 0, 2]);
        assert_eq!(t.row(0), &[3.0]);
        assert_eq!(t.row(2), &[3.0]);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn dot_axpy_norm_distance() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn matvec_checks_dims() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 1.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Matrix::from_rows(vec![
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 4.0],
        ])
        .unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{x:?}");
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the first diagonal element forces a row swap.
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_singular() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(MlError::Numerical(_))));
    }

    #[test]
    fn cholesky_factorizes_spd() {
        let a = Matrix::from_rows(vec![vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let l = cholesky(&a).unwrap();
        // Reconstruct L L^T.
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += l.get(i, k) * l.get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-12);
            }
        }
        let not_spd = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(cholesky(&not_spd).is_err());
    }

    #[test]
    fn gram_matches_definition() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let g = m.gram_regularized(0.5);
        // A^T A = [[10, 14], [14, 20]] plus 0.5 I.
        assert_eq!(g.get(0, 0), 10.5);
        assert_eq!(g.get(0, 1), 14.0);
        assert_eq!(g.get(1, 1), 20.5);
    }

    #[test]
    fn column_stats() {
        let m = Matrix::from_rows(vec![vec![1.0, 10.0], vec![3.0, 10.0]]).unwrap();
        let means = column_means(&m);
        assert_eq!(means, vec![2.0, 10.0]);
        let stds = column_stds(&m, &means);
        assert_eq!(stds, vec![1.0, 0.0]);
    }
}
