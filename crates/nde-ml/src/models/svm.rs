//! Linear support-vector machine trained with SGD on the hinge loss
//! (Pegasos-style). Included because several §2.3 frameworks (certain and
//! approximately-certain models, Zhen et al. '24) are stated for SVMs as
//! well as linear regression.

use crate::dataset::Dataset;
use crate::linalg::dot;
use crate::model::Classifier;
use crate::{MlError, Result};
use nde_data::rng::{permutation, seeded};

/// Binary linear SVM: `min λ/2 ||w||² + mean(hinge(y w·x))`, labels 0/1
/// mapped internally to ∓1. The bias is folded into the weight vector as a
/// constant-1 feature (and therefore lightly regularized) — this keeps the
/// Pegasos step-size schedule stable, at a negligible cost in expressivity.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Training epochs.
    pub epochs: usize,
    /// Regularization strength λ.
    pub lambda: f64,
    /// Shuffle seed.
    pub seed: u64,
    weights: Option<Vec<f64>>, // d + 1, bias last
}

impl Default for LinearSvm {
    fn default() -> Self {
        LinearSvm::new(60, 1e-3, 0)
    }
}

impl LinearSvm {
    /// Create an unfitted SVM.
    pub fn new(epochs: usize, lambda: f64, seed: u64) -> LinearSvm {
        LinearSvm {
            epochs,
            lambda,
            seed,
            weights: None,
        }
    }

    /// Signed decision value `w·x + b` (positive ⇒ class 1).
    pub fn decision(&self, x: &[f64]) -> f64 {
        let w = self.weights.as_ref().expect("model must be fitted");
        debug_assert_eq!(x.len() + 1, w.len());
        dot(&w[..x.len()], x) + w[x.len()]
    }

    /// The learned `(weights, bias)`, if fitted.
    pub fn coefficients(&self) -> Option<(&[f64], f64)> {
        self.weights
            .as_ref()
            .map(|w| (&w[..w.len() - 1], w[w.len() - 1]))
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if data.n_classes != 2 {
            return Err(MlError::InvalidArgument(
                "LinearSvm supports binary classification only".into(),
            ));
        }
        if self.epochs == 0 || self.lambda <= 0.0 {
            return Err(MlError::InvalidArgument(
                "epochs must be > 0 and lambda > 0".into(),
            ));
        }
        let n = data.len();
        let d = data.dim();
        let mut w = vec![0.0; d + 1];
        let mut rng = seeded(self.seed);
        let mut t = 0usize;
        for _ in 0..self.epochs {
            for &i in &permutation(n, &mut rng) {
                t += 1;
                let eta = 1.0 / (self.lambda * t as f64);
                let x = data.x.row(i);
                let y = if data.y[i] == 1 { 1.0 } else { -1.0 };
                let margin = y * (dot(&w[..d], x) + w[d]);
                // Pegasos update: shrink all weights (bias included), add
                // the subgradient if inside the margin.
                for wj in w.iter_mut() {
                    *wj *= 1.0 - eta * self.lambda;
                }
                if margin < 1.0 {
                    for (wj, &xj) in w[..d].iter_mut().zip(x) {
                        *wj += eta * y * xj;
                    }
                    w[d] += eta * y;
                }
            }
        }
        self.weights = Some(w);
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        usize::from(self.decision(x) > 0.0)
    }

    fn predict_proba_one(&self, x: &[f64]) -> Vec<f64> {
        // Platt-style squashing of the margin; a calibration convenience,
        // not a true probability.
        let p = 1.0 / (1.0 + (-self.decision(x)).exp());
        vec![1.0 - p, p]
    }

    fn n_classes(&self) -> usize {
        if self.weights.is_some() {
            2
        } else {
            0
        }
    }

    fn is_fitted(&self) -> bool {
        self.weights.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;

    fn blobs() -> (Dataset, Dataset) {
        let nd = two_gaussians(300, 3, 4.0, 81);
        let all = Dataset::try_from(&nd).unwrap();
        (
            all.subset(&(0..200).collect::<Vec<_>>()),
            all.subset(&(200..300).collect::<Vec<_>>()),
        )
    }

    #[test]
    fn separates_blobs() {
        let (train, test) = blobs();
        let mut svm = LinearSvm::default();
        svm.fit(&train).unwrap();
        assert!(svm.accuracy(&test) > 0.95, "acc={}", svm.accuracy(&test));
    }

    #[test]
    fn decision_sign_matches_prediction() {
        let (train, test) = blobs();
        let mut svm = LinearSvm::default();
        svm.fit(&train).unwrap();
        for x in test.x.iter_rows() {
            let pred = svm.predict_one(x);
            assert_eq!(pred == 1, svm.decision(x) > 0.0);
            let p = svm.predict_proba_one(x);
            assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
            assert_eq!(p[1] > 0.5, pred == 1);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let (train, _) = blobs();
        let mut a = LinearSvm::new(20, 1e-3, 5);
        let mut b = LinearSvm::new(20, 1e-3, 5);
        a.fit(&train).unwrap();
        b.fit(&train).unwrap();
        assert_eq!(a.coefficients(), b.coefficients());
    }

    #[test]
    fn validates_inputs() {
        let (train, _) = blobs();
        assert!(LinearSvm::new(0, 1e-3, 0).fit(&train).is_err());
        assert!(LinearSvm::new(5, 0.0, 0).fit(&train).is_err());
        let three =
            Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![0, 1, 2], 3).unwrap();
        assert!(LinearSvm::default().fit(&three).is_err());
        assert!(LinearSvm::default().fit(&train.subset(&[])).is_err());
    }

    #[test]
    fn works_as_importance_utility_model() {
        // SVM is Clone + Classifier, so it plugs into the utility machinery.
        let (train, valid) = blobs();
        let u = crate::model::utility(&LinearSvm::new(10, 1e-3, 1), &train, &valid).unwrap();
        assert!(u > 0.9);
    }
}
