//! Multinomial logistic regression trained with mini-batch SGD.
//!
//! Exposes the internals the importance crate needs: learned weights (for
//! influence functions) and per-epoch margin histories (for the
//! area-under-the-margin method, paper §2.1).

use crate::dataset::Dataset;
use crate::linalg::{dot, Matrix};
use crate::model::Classifier;
use crate::{MlError, Result};
use nde_data::rng::{permutation, seeded};

/// Multinomial (softmax) logistic regression.
///
/// Weights are stored per class as `d + 1` values, the last being the bias.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Number of full passes over the data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Seed controlling example shuffling.
    pub seed: u64,
    weights: Option<Matrix>, // n_classes x (d + 1)
    n_classes: usize,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression::new(40, 0.3, 1e-4, 0)
    }
}

impl LogisticRegression {
    /// Create an unfitted model with the given hyperparameters.
    pub fn new(epochs: usize, learning_rate: f64, l2: f64, seed: u64) -> LogisticRegression {
        LogisticRegression {
            epochs,
            learning_rate,
            l2,
            seed,
            weights: None,
            n_classes: 0,
        }
    }

    /// The learned weight matrix (`n_classes x (d+1)`, bias last), if fitted.
    pub fn weights(&self) -> Option<&Matrix> {
        self.weights.as_ref()
    }

    /// Class logits for a feature vector.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        let w = self.weights.as_ref().expect("model must be fitted");
        debug_assert_eq!(x.len() + 1, w.cols());
        (0..w.rows())
            .map(|c| {
                let row = w.row(c);
                dot(&row[..x.len()], x) + row[x.len()]
            })
            .collect()
    }

    /// Train and additionally record, per epoch, the *margin* of every
    /// training example: logit of its assigned label minus the largest other
    /// logit. Mislabelled examples tend to have persistently low margins,
    /// which is what the AUM detector exploits.
    pub fn fit_tracking(&mut self, data: &Dataset) -> Result<Vec<Vec<f64>>> {
        self.fit_impl(data, true)
    }

    #[allow(clippy::needless_range_loop)] // per-class softmax/gradient kernels
    fn fit_impl(&mut self, data: &Dataset, track: bool) -> Result<Vec<Vec<f64>>> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if self.epochs == 0 || self.learning_rate <= 0.0 {
            return Err(MlError::InvalidArgument(
                "epochs must be > 0 and learning_rate > 0".into(),
            ));
        }
        let n = data.len();
        let d = data.dim();
        let k = data.n_classes;
        let mut w = Matrix::zeros(k, d + 1);
        let mut rng = seeded(self.seed);
        let mut history = Vec::new();
        let mut probs = vec![0.0; k];

        for _epoch in 0..self.epochs {
            let order = permutation(n, &mut rng);
            for &i in &order {
                let x = data.x.row(i);
                let y = data.y[i];
                // Softmax probabilities.
                let mut max_logit = f64::NEG_INFINITY;
                for c in 0..k {
                    let row = w.row(c);
                    probs[c] = dot(&row[..d], x) + row[d];
                    max_logit = max_logit.max(probs[c]);
                }
                let mut z = 0.0;
                for p in probs.iter_mut() {
                    *p = (*p - max_logit).exp();
                    z += *p;
                }
                for p in probs.iter_mut() {
                    *p /= z;
                }
                // Gradient step: dL/dw_c = (p_c - [c==y]) * x, plus L2.
                for c in 0..k {
                    let err = probs[c] - if c == y { 1.0 } else { 0.0 };
                    let row = w.row_mut(c);
                    for j in 0..d {
                        row[j] -= self.learning_rate * (err * x[j] + self.l2 * row[j]);
                    }
                    row[d] -= self.learning_rate * err;
                }
            }
            if track {
                self.weights = Some(w.clone());
                self.n_classes = k;
                let margins: Vec<f64> = (0..n)
                    .map(|i| {
                        let logits = self.logits(data.x.row(i));
                        let own = logits[data.y[i]];
                        let other = logits
                            .iter()
                            .enumerate()
                            .filter(|(c, _)| *c != data.y[i])
                            .map(|(_, &l)| l)
                            .fold(f64::NEG_INFINITY, f64::max);
                        own - other
                    })
                    .collect();
                history.push(margins);
            }
        }
        self.weights = Some(w);
        self.n_classes = k;
        Ok(history)
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        self.fit_impl(data, false).map(|_| ())
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        let logits = self.logits(x);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite").then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn predict_proba_one(&self, x: &[f64]) -> Vec<f64> {
        let logits = self.logits(x);
        let max = logits.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / z).collect()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn is_fitted(&self) -> bool {
        self.weights.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;

    fn blobs() -> (Dataset, Dataset) {
        let nd = two_gaussians(300, 3, 4.0, 7);
        let all = Dataset::try_from(&nd).unwrap();
        let train = all.subset(&(0..200).collect::<Vec<_>>());
        let test = all.subset(&(200..300).collect::<Vec<_>>());
        (train, test)
    }

    #[test]
    fn learns_separable_blobs() {
        let (train, test) = blobs();
        let mut lr = LogisticRegression::default();
        lr.fit(&train).unwrap();
        assert!(lr.accuracy(&test) > 0.95, "acc={}", lr.accuracy(&test));
    }

    #[test]
    fn probabilities_sum_to_one_and_match_argmax() {
        let (train, _) = blobs();
        let mut lr = LogisticRegression::default();
        lr.fit(&train).unwrap();
        let x = train.x.row(0);
        let p = lr.predict_proba_one(x);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, lr.predict_one(x));
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, test) = blobs();
        let mut a = LogisticRegression::new(10, 0.2, 1e-4, 3);
        let mut b = LogisticRegression::new(10, 0.2, 1e-4, 3);
        a.fit(&train).unwrap();
        b.fit(&train).unwrap();
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.accuracy(&test), b.accuracy(&test));
    }

    #[test]
    fn tracking_produces_margin_history() {
        let (train, _) = blobs();
        let mut lr = LogisticRegression::new(5, 0.2, 1e-4, 1);
        let history = lr.fit_tracking(&train).unwrap();
        assert_eq!(history.len(), 5);
        assert_eq!(history[0].len(), train.len());
        // Later epochs should have larger average margins on clean data.
        let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&history[4]) > avg(&history[0]));
    }

    #[test]
    fn multiclass_works() {
        // Three well-separated clusters on a line.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let c = i % 3;
            xs.push(vec![c as f64 * 10.0 + (i as f64 % 5.0) * 0.1]);
            ys.push(c);
        }
        let data = Dataset::from_rows(xs, ys, 3).unwrap();
        let mut lr = LogisticRegression::new(80, 0.5, 1e-4, 2);
        lr.fit(&data).unwrap();
        assert!(lr.accuracy(&data) > 0.95);
        assert_eq!(lr.predict_proba_one(&[0.0]).len(), 3);
    }

    #[test]
    fn invalid_hyperparameters_rejected() {
        let (train, _) = blobs();
        assert!(LogisticRegression::new(0, 0.1, 0.0, 0).fit(&train).is_err());
        assert!(LogisticRegression::new(5, 0.0, 0.0, 0).fit(&train).is_err());
        let empty = train.subset(&[]);
        assert!(LogisticRegression::default().fit(&empty).is_err());
    }
}
