//! CART-style decision tree with Gini impurity.

use crate::dataset::Dataset;
use crate::model::Classifier;
use crate::{MlError, Result};

/// A binary decision tree classifier (axis-aligned splits, Gini impurity).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum examples required to attempt a split.
    pub min_split: usize,
    nodes: Vec<Node>,
    n_classes: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
        /// Class distribution at the leaf (for probabilities).
        dist: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child (`<= threshold`); right child follows it.
        left: usize,
        right: usize,
    },
}

impl DecisionTree {
    /// Create an unfitted tree.
    pub fn new(max_depth: usize, min_split: usize) -> DecisionTree {
        DecisionTree {
            max_depth: max_depth.max(1),
            min_split: min_split.max(2),
            nodes: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of nodes in the fitted tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn gini(counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        1.0 - counts
            .iter()
            .map(|&c| {
                let p = c as f64 / t;
                p * p
            })
            .sum::<f64>()
    }

    fn class_counts(&self, data: &Dataset, indices: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &i in indices {
            counts[data.y[i]] += 1;
        }
        counts
    }

    /// Find the best (feature, threshold) split of `indices` by Gini gain.
    fn best_split(&self, data: &Dataset, indices: &[usize]) -> Option<(usize, f64, f64)> {
        let parent_counts = self.class_counts(data, indices);
        let n = indices.len();
        let parent_gini = Self::gini(&parent_counts, n);
        let mut best: Option<(usize, f64, f64)> = None;

        let mut sorted = indices.to_vec();
        for f in 0..data.dim() {
            sorted.sort_by(|&a, &b| {
                data.x
                    .get(a, f)
                    .partial_cmp(&data.x.get(b, f))
                    .expect("finite features")
            });
            let mut left_counts = vec![0usize; self.n_classes];
            for w in 0..n - 1 {
                let i = sorted[w];
                left_counts[data.y[i]] += 1;
                let x_cur = data.x.get(i, f);
                let x_next = data.x.get(sorted[w + 1], f);
                if x_cur == x_next {
                    continue; // can't split between equal values
                }
                let left_n = w + 1;
                let right_n = n - left_n;
                let right_counts: Vec<usize> = parent_counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(&p, &l)| p - l)
                    .collect();
                let weighted = (left_n as f64 * Self::gini(&left_counts, left_n)
                    + right_n as f64 * Self::gini(&right_counts, right_n))
                    / n as f64;
                let gain = parent_gini - weighted;
                let threshold = 0.5 * (x_cur + x_next);
                // Accept zero-gain splits (gain >= 0): greedy Gini gain is 0 for
                // XOR-like patterns at the root, yet deeper splits resolve them.
                // Recursion stays bounded by purity, max_depth and min_split.
                if gain >= 0.0 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, threshold, gain));
                }
            }
        }
        best
    }

    fn build(&mut self, data: &Dataset, indices: &[usize], depth: usize) -> usize {
        let counts = self.class_counts(data, indices);
        let total: usize = counts.iter().sum();
        let make_leaf = |counts: &[usize]| {
            let class = counts
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(c, _)| c)
                .unwrap_or(0);
            let dist = counts
                .iter()
                .map(|&c| c as f64 / total.max(1) as f64)
                .collect();
            Node::Leaf { class, dist }
        };

        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if depth >= self.max_depth || indices.len() < self.min_split || pure {
            self.nodes.push(make_leaf(&counts));
            return self.nodes.len() - 1;
        }
        match self.best_split(data, indices) {
            None => {
                self.nodes.push(make_leaf(&counts));
                self.nodes.len() - 1
            }
            Some((feature, threshold, _gain)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.x.get(i, feature) <= threshold);
                // Reserve our slot before recursing so child indices are known.
                let my_slot = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    class: 0,
                    dist: vec![],
                }); // placeholder
                let left = self.build(data, &left_idx, depth + 1);
                let right = self.build(data, &right_idx, depth + 1);
                self.nodes[my_slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                my_slot
            }
        }
    }

    fn leaf_for(&self, x: &[f64]) -> &Node {
        debug_assert!(!self.nodes.is_empty(), "model must be fitted");
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return &self.nodes[idx],
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.nodes.clear();
        self.n_classes = data.n_classes;
        let all: Vec<usize> = (0..data.len()).collect();
        self.build(data, &all, 0);
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        match self.leaf_for(x) {
            Node::Leaf { class, .. } => *class,
            Node::Split { .. } => unreachable!("leaf_for returns leaves"),
        }
    }

    fn predict_proba_one(&self, x: &[f64]) -> Vec<f64> {
        match self.leaf_for(x) {
            Node::Leaf { dist, .. } => dist.clone(),
            Node::Split { .. } => unreachable!("leaf_for returns leaves"),
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;

    #[test]
    fn learns_axis_aligned_boundary() {
        let data = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![1.0],
                vec![2.0],
                vec![10.0],
                vec![11.0],
                vec![12.0],
            ],
            vec![0, 0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let mut tree = DecisionTree::new(3, 2);
        tree.fit(&data).unwrap();
        assert_eq!(tree.accuracy(&data), 1.0);
        assert_eq!(tree.predict_one(&[-5.0]), 0);
        assert_eq!(tree.predict_one(&[20.0]), 1);
    }

    #[test]
    fn xor_needs_depth_two() {
        let data = Dataset::from_rows(
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
            ],
            vec![0, 1, 1, 0],
            2,
        )
        .unwrap();
        let mut shallow = DecisionTree::new(1, 2);
        shallow.fit(&data).unwrap();
        assert!(shallow.accuracy(&data) <= 0.75);
        let mut deep = DecisionTree::new(3, 2);
        deep.fit(&data).unwrap();
        assert_eq!(deep.accuracy(&data), 1.0);
    }

    #[test]
    fn pure_node_stops_early() {
        let data =
            Dataset::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]], vec![1, 1, 1], 2).unwrap();
        let mut tree = DecisionTree::new(10, 2);
        tree.fit(&data).unwrap();
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict_one(&[99.0]), 1);
    }

    #[test]
    fn leaf_probabilities_match_distribution() {
        // Depth 0 effectively: a single leaf with a 2:1 class mix.
        let data =
            Dataset::from_rows(vec![vec![1.0], vec![1.0], vec![1.0]], vec![0, 0, 1], 2).unwrap();
        let mut tree = DecisionTree::new(3, 2);
        tree.fit(&data).unwrap();
        let p = tree.predict_proba_one(&[1.0]);
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn blobs_accuracy_reasonable() {
        let nd = two_gaussians(400, 2, 4.0, 8);
        let all = Dataset::try_from(&nd).unwrap();
        let train = all.subset(&(0..300).collect::<Vec<_>>());
        let test = all.subset(&(300..400).collect::<Vec<_>>());
        let mut tree = DecisionTree::new(5, 4);
        tree.fit(&train).unwrap();
        assert!(tree.accuracy(&test) > 0.9);
    }

    #[test]
    fn refit_resets_nodes() {
        let d1 = Dataset::from_rows(vec![vec![0.0], vec![1.0]], vec![0, 1], 2).unwrap();
        let mut tree = DecisionTree::new(3, 2);
        tree.fit(&d1).unwrap();
        let n1 = tree.n_nodes();
        tree.fit(&d1).unwrap();
        assert_eq!(tree.n_nodes(), n1);
    }
}
