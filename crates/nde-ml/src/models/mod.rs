//! Classifier and regressor implementations.

pub mod knn;
pub mod linreg;
pub mod logreg;
pub mod majority;
pub mod naive_bayes;
pub mod svm;
pub mod tree;
pub mod unlearn;

pub use knn::KnnClassifier;
pub use linreg::RidgeRegression;
pub use logreg::LogisticRegression;
pub use majority::MajorityClassifier;
pub use naive_bayes::GaussianNb;
pub use svm::LinearSvm;
pub use tree::DecisionTree;
pub use unlearn::{Unlearn, UnlearnableGaussianNb};
