//! Low-latency machine unlearning (paper §2.4).
//!
//! The tutorial's open-challenges section connects data debugging to
//! *machine unlearning*: once a harmful tuple is identified, regulations
//! (GDPR, CCPA) or quality concerns may require removing its influence
//! *fast*, without retraining from scratch (cf. HedgeCut, SIGMOD'21).
//!
//! Two models here support exact, sub-retraining-cost deletion:
//!
//! * [`KnnClassifier`] — instance-based, so unlearning *is* deletion:
//!   `O(deleted)` bookkeeping instead of a full refit;
//! * [`UnlearnableGaussianNb`] — keeps per-class sufficient statistics
//!   (count, Σx, Σx²) so a tuple's contribution can be subtracted in
//!   `O(d)`, with predictions identical (up to float associativity) to a
//!   fresh retrain on the remaining data.

use crate::dataset::Dataset;
use crate::model::Classifier;
use crate::models::knn::KnnClassifier;
use crate::{MlError, Result};

/// Exact unlearning: remove training examples and update the model so its
/// predictions match a fresh retrain on the remaining data.
pub trait Unlearn: Classifier {
    /// Remove the training examples at `indices` (indices into the dataset
    /// the model was fitted on; subsequent calls use the *shrunken* index
    /// space, like `Vec::remove` repeated).
    fn forget(&mut self, indices: &[usize]) -> Result<()>;

    /// Number of training examples currently backing the model.
    fn remembered(&self) -> usize;
}

impl Unlearn for KnnClassifier {
    fn forget(&mut self, indices: &[usize]) -> Result<()> {
        let train = self.training_data().ok_or(MlError::NotFitted)?;
        let n = train.len();
        for &i in indices {
            if i >= n {
                return Err(MlError::InvalidArgument(format!(
                    "forget index {i} out of bounds for {n} examples"
                )));
            }
        }
        if indices.len() >= n {
            return Err(MlError::InvalidArgument(
                "cannot forget the entire training set".into(),
            ));
        }
        let drop: std::collections::HashSet<usize> = indices.iter().copied().collect();
        let keep: Vec<usize> = (0..n).filter(|i| !drop.contains(i)).collect();
        let remaining = train.subset(&keep);
        self.fit(&remaining)
    }

    fn remembered(&self) -> usize {
        self.training_data().map_or(0, Dataset::len)
    }
}

/// Gaussian naive Bayes over decrementable sufficient statistics.
#[derive(Debug, Clone, Default)]
pub struct UnlearnableGaussianNb {
    counts: Vec<f64>,
    sums: Vec<Vec<f64>>,
    sumsqs: Vec<Vec<f64>>,
    dim: usize,
}

const VAR_FLOOR: f64 = 1e-9;

impl UnlearnableGaussianNb {
    /// An unfitted model.
    pub fn new() -> UnlearnableGaussianNb {
        UnlearnableGaussianNb::default()
    }

    fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    fn log_likelihood(&self, x: &[f64], class: usize) -> f64 {
        let k = self.counts.len() as f64;
        let prior = (self.counts[class] + 1.0) / (self.total() + k);
        let mut ll = prior.ln();
        let c = self.counts[class].max(1.0);
        for (j, &xj) in x.iter().enumerate() {
            let mean = self.sums[class][j] / c;
            let var = (self.sumsqs[class][j] / c - mean * mean).max(VAR_FLOOR);
            let d = xj - mean;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
        }
        ll
    }

    /// Exact `O(d)` unlearning of one example by subtracting its
    /// contribution from the class's sufficient statistics.
    pub fn forget_example(&mut self, x: &[f64], y: usize) -> Result<()> {
        if self.counts.is_empty() {
            return Err(MlError::NotFitted);
        }
        if y >= self.counts.len() {
            return Err(MlError::InvalidLabel {
                label: y,
                n_classes: self.counts.len(),
            });
        }
        if x.len() != self.dim {
            return Err(MlError::DimensionMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        if self.counts[y] < 1.0 {
            return Err(MlError::InvalidArgument(format!(
                "class {y} has no remembered examples to forget"
            )));
        }
        self.counts[y] -= 1.0;
        for (j, &xj) in x.iter().enumerate() {
            self.sums[y][j] -= xj;
            self.sumsqs[y][j] -= xj * xj;
        }
        Ok(())
    }
}

impl Classifier for UnlearnableGaussianNb {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let k = data.n_classes;
        let d = data.dim();
        self.counts = vec![0.0; k];
        self.sums = vec![vec![0.0; d]; k];
        self.sumsqs = vec![vec![0.0; d]; k];
        self.dim = d;
        for (x, &y) in data.x.iter_rows().zip(&data.y) {
            self.counts[y] += 1.0;
            for (j, &xj) in x.iter().enumerate() {
                self.sums[y][j] += xj;
                self.sumsqs[y][j] += xj * xj;
            }
        }
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        debug_assert!(!self.counts.is_empty(), "model must be fitted");
        (0..self.counts.len())
            .map(|c| (c, self.log_likelihood(x, c)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn predict_proba_one(&self, x: &[f64]) -> Vec<f64> {
        let lls: Vec<f64> = (0..self.counts.len())
            .map(|c| self.log_likelihood(x, c))
            .collect();
        let max = lls.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let exps: Vec<f64> = lls.iter().map(|l| (l - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / z).collect()
    }

    fn n_classes(&self) -> usize {
        self.counts.len()
    }

    fn is_fitted(&self) -> bool {
        !self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;

    fn blobs(n: usize) -> Dataset {
        Dataset::try_from(&two_gaussians(n, 3, 4.0, 71)).unwrap()
    }

    #[test]
    fn knn_forget_matches_retrain_exactly() {
        let data = blobs(80);
        let mut unlearned = KnnClassifier::new(3);
        unlearned.fit(&data).unwrap();
        unlearned.forget(&[0, 5, 17]).unwrap();
        assert_eq!(unlearned.remembered(), 77);

        let keep: Vec<usize> = (0..80).filter(|i| ![0, 5, 17].contains(i)).collect();
        let mut retrained = KnnClassifier::new(3);
        retrained.fit(&data.subset(&keep)).unwrap();

        let probe = blobs(40);
        for x in probe.x.iter_rows() {
            assert_eq!(unlearned.predict_one(x), retrained.predict_one(x));
        }
    }

    #[test]
    fn nb_forget_matches_retrain_predictions() {
        let data = blobs(100);
        let forget_set = [2usize, 31, 64, 65];

        let mut unlearned = UnlearnableGaussianNb::new();
        unlearned.fit(&data).unwrap();
        for &i in &forget_set {
            unlearned.forget_example(data.x.row(i), data.y[i]).unwrap();
        }

        let keep: Vec<usize> = (0..100).filter(|i| !forget_set.contains(i)).collect();
        let mut retrained = UnlearnableGaussianNb::new();
        retrained.fit(&data.subset(&keep)).unwrap();

        let probe = blobs(60);
        for x in probe.x.iter_rows() {
            assert_eq!(unlearned.predict_one(x), retrained.predict_one(x));
            let pu = unlearned.predict_proba_one(x);
            let pr = retrained.predict_proba_one(x);
            for (a, b) in pu.iter().zip(&pr) {
                assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn forgetting_a_poisoned_point_fixes_its_region() {
        let mut data = blobs(60);
        // Poison one example: flip its label.
        data.y[7] = 1 - data.y[7];
        let mut model = KnnClassifier::new(1);
        model.fit(&data).unwrap();
        let poisoned_x: Vec<f64> = data.x.row(7).to_vec();
        assert_eq!(model.predict_one(&poisoned_x), data.y[7]);
        model.forget(&[7]).unwrap();
        // After unlearning, the region reverts to the true class.
        assert_eq!(model.predict_one(&poisoned_x), 1 - data.y[7]);
    }

    #[test]
    fn validates_arguments() {
        let data = blobs(10);
        let mut knn = KnnClassifier::new(1);
        assert!(knn.forget(&[0]).is_err()); // not fitted
        knn.fit(&data).unwrap();
        assert!(knn.forget(&[99]).is_err());
        assert!(knn.forget(&(0..10).collect::<Vec<_>>()).is_err());

        let mut nb = UnlearnableGaussianNb::new();
        assert!(nb.forget_example(&[0.0; 3], 0).is_err()); // not fitted
        nb.fit(&data).unwrap();
        assert!(nb.forget_example(&[0.0; 2], 0).is_err()); // wrong dim
        assert!(nb.forget_example(&[0.0; 3], 9).is_err()); // bad class
    }

    #[test]
    fn nb_cannot_underflow_a_class() {
        let tiny = Dataset::from_rows(vec![vec![0.0], vec![10.0]], vec![0, 1], 2).unwrap();
        let mut nb = UnlearnableGaussianNb::new();
        nb.fit(&tiny).unwrap();
        nb.forget_example(&[0.0], 0).unwrap();
        assert!(nb.forget_example(&[0.0], 0).is_err());
    }
}
