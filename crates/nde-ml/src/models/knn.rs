//! K-nearest-neighbors classification.
//!
//! KNN plays a double role in the toolkit: it is both a baseline classifier
//! and the *proxy model* that makes Shapley-based data importance tractable
//! (KNN-Shapley, paper §2.1; Datascope, §2.2).

use crate::dataset::Dataset;
use crate::linalg::squared_distance;
use crate::model::Classifier;
use crate::{MlError, Result};

/// A K-nearest-neighbors classifier with Euclidean distance and majority
/// voting (ties broken toward the smaller class id).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    train: Option<Dataset>,
}

impl KnnClassifier {
    /// Create an unfitted KNN classifier with the given `k` (≥ 1).
    pub fn new(k: usize) -> KnnClassifier {
        KnnClassifier {
            k: k.max(1),
            train: None,
        }
    }

    /// The configured number of neighbors.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The remembered training data, if fitted (KNN is instance-based).
    pub fn training_data(&self) -> Option<&Dataset> {
        self.train.as_ref()
    }

    /// Indices of the `k` nearest training examples to `x`, closest first.
    /// Distance ties are broken by index for determinism.
    pub fn neighbors(&self, x: &[f64]) -> Vec<usize> {
        let train = self.train.as_ref().expect("model must be fitted");
        let mut dists: Vec<(f64, usize)> = train
            .x
            .iter_rows()
            .enumerate()
            .map(|(i, r)| (squared_distance(r, x), i))
            .collect();
        let k = self.k.min(dists.len());
        dists.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite distances")
                .then(a.1.cmp(&b.1))
        });
        dists.into_iter().take(k).map(|(_, i)| i).collect()
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.train = Some(data.clone());
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        let train = self.train.as_ref().expect("model must be fitted");
        debug_assert_eq!(x.len(), train.dim());
        let mut votes = vec![0usize; train.n_classes];
        for i in self.neighbors(x) {
            votes[train.y[i]] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn predict_proba_one(&self, x: &[f64]) -> Vec<f64> {
        let train = self.train.as_ref().expect("model must be fitted");
        let neighbors = self.neighbors(x);
        let mut p = vec![0.0; train.n_classes];
        for &i in &neighbors {
            p[train.y[i]] += 1.0;
        }
        let total = neighbors.len().max(1) as f64;
        for v in &mut p {
            *v /= total;
        }
        p
    }

    fn n_classes(&self) -> usize {
        self.train.as_ref().map_or(0, |t| t.n_classes)
    }

    fn is_fitted(&self) -> bool {
        self.train.is_some()
    }

    fn coalition_scorer(
        &self,
        train: &Dataset,
        valid: &Dataset,
    ) -> Option<Box<dyn crate::batch::CoalitionScorer>> {
        Some(Box::new(crate::batch::KnnCoalitionScorer::new(
            self.k, train, valid,
        )))
    }

    fn incremental_eval(
        &self,
        train: &Dataset,
        valid: &Dataset,
    ) -> Option<Box<dyn crate::batch::IncrementalLabelEval>> {
        crate::batch::IncrementalKnnEval::new(self.k, train, valid)
            .ok()
            .map(|e| Box::new(e) as Box<dyn crate::batch::IncrementalLabelEval>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![
                vec![0.0, 0.0],
                vec![0.5, 0.0],
                vec![10.0, 10.0],
                vec![10.5, 10.0],
            ],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn one_nn_predicts_nearest_label() {
        let mut knn = KnnClassifier::new(1);
        knn.fit(&toy()).unwrap();
        assert_eq!(knn.predict_one(&[0.1, 0.1]), 0);
        assert_eq!(knn.predict_one(&[9.0, 9.0]), 1);
    }

    #[test]
    fn proba_reflects_vote_shares() {
        let mut knn = KnnClassifier::new(3);
        knn.fit(&toy()).unwrap();
        let p = knn.predict_proba_one(&[0.2, 0.0]);
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let mut knn = KnnClassifier::new(100);
        knn.fit(&toy()).unwrap();
        // All 4 points vote: tie 2-2 broken toward class 0.
        assert_eq!(knn.predict_one(&[5.0, 5.0]), 0);
    }

    #[test]
    fn neighbors_sorted_by_distance_then_index() {
        let mut knn = KnnClassifier::new(2);
        knn.fit(&toy()).unwrap();
        assert_eq!(knn.neighbors(&[0.0, 0.0]), vec![0, 1]);
        // Exactly equidistant points resolve by index.
        let d =
            Dataset::from_rows(vec![vec![1.0], vec![-1.0], vec![1.0]], vec![0, 1, 1], 2).unwrap();
        let mut knn = KnnClassifier::new(2);
        knn.fit(&d).unwrap();
        assert_eq!(knn.neighbors(&[0.0]), vec![0, 1]);
    }

    #[test]
    fn rejects_empty_training_set() {
        let mut knn = KnnClassifier::new(1);
        let empty = toy().subset(&[]);
        assert!(matches!(knn.fit(&empty), Err(MlError::EmptyTrainingSet)));
        assert!(!knn.is_fitted());
    }

    #[test]
    fn separates_gaussian_blobs() {
        let nd = two_gaussians(300, 4, 5.0, 3);
        let data = Dataset::try_from(&nd).unwrap();
        let train = data.subset(&(0..200).collect::<Vec<_>>());
        let test = data.subset(&(200..300).collect::<Vec<_>>());
        let mut knn = KnnClassifier::new(5);
        knn.fit(&train).unwrap();
        assert!(knn.accuracy(&test) > 0.95);
    }

    #[test]
    fn refit_replaces_state() {
        let mut knn = KnnClassifier::new(1);
        knn.fit(&toy()).unwrap();
        let flipped =
            Dataset::from_rows(vec![vec![0.0, 0.0], vec![10.0, 10.0]], vec![1, 0], 2).unwrap();
        knn.fit(&flipped).unwrap();
        assert_eq!(knn.predict_one(&[0.0, 0.0]), 1);
    }
}
