//! Gaussian naive Bayes.

use crate::dataset::Dataset;
use crate::model::Classifier;
use crate::{MlError, Result};

/// Gaussian naive Bayes classifier: per-class feature means/variances with a
/// variance floor for numerical stability.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    /// Per-class log prior.
    log_priors: Vec<f64>,
    /// Per-class per-feature mean.
    means: Vec<Vec<f64>>,
    /// Per-class per-feature variance (floored).
    vars: Vec<Vec<f64>>,
    dim: usize,
}

const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    /// Create an unfitted model.
    pub fn new() -> GaussianNb {
        GaussianNb::default()
    }

    fn log_likelihood(&self, x: &[f64], class: usize) -> f64 {
        let mut ll = self.log_priors[class];
        let means = &self.means[class];
        let vars = &self.vars[class];
        for ((xi, mu), var) in x.iter().zip(means).zip(vars) {
            let d = xi - mu;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
        }
        ll
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let k = data.n_classes;
        let d = data.dim();
        let n = data.len() as f64;
        let mut counts = vec![0usize; k];
        let mut means = vec![vec![0.0; d]; k];
        for (x, &y) in data.x.iter_rows().zip(&data.y) {
            counts[y] += 1;
            for (m, xi) in means[y].iter_mut().zip(x) {
                *m += xi;
            }
        }
        for (c, m) in means.iter_mut().enumerate() {
            let cnt = counts[c].max(1) as f64;
            for v in m.iter_mut() {
                *v /= cnt;
            }
        }
        let mut vars = vec![vec![0.0; d]; k];
        for (x, &y) in data.x.iter_rows().zip(&data.y) {
            for ((v, xi), mu) in vars[y].iter_mut().zip(x).zip(&means[y]) {
                let diff = xi - mu;
                *v += diff * diff;
            }
        }
        for (c, v) in vars.iter_mut().enumerate() {
            let cnt = counts[c].max(1) as f64;
            for var in v.iter_mut() {
                *var = (*var / cnt).max(VAR_FLOOR);
            }
        }
        // Laplace-smoothed priors so empty classes don't produce -inf.
        self.log_priors = counts
            .iter()
            .map(|&c| ((c as f64 + 1.0) / (n + k as f64)).ln())
            .collect();
        self.means = means;
        self.vars = vars;
        self.dim = d;
        Ok(())
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        debug_assert!(!self.means.is_empty(), "model must be fitted");
        debug_assert_eq!(x.len(), self.dim);
        (0..self.means.len())
            .map(|c| (c, self.log_likelihood(x, c)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn predict_proba_one(&self, x: &[f64]) -> Vec<f64> {
        let lls: Vec<f64> = (0..self.means.len())
            .map(|c| self.log_likelihood(x, c))
            .collect();
        let max = lls.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let exps: Vec<f64> = lls.iter().map(|l| (l - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / z).collect()
    }

    fn n_classes(&self) -> usize {
        self.means.len()
    }

    fn is_fitted(&self) -> bool {
        !self.means.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;

    #[test]
    fn separates_blobs() {
        let nd = two_gaussians(400, 3, 4.0, 5);
        let all = Dataset::try_from(&nd).unwrap();
        let train = all.subset(&(0..300).collect::<Vec<_>>());
        let test = all.subset(&(300..400).collect::<Vec<_>>());
        let mut nb = GaussianNb::new();
        nb.fit(&train).unwrap();
        assert!(nb.accuracy(&test) > 0.95);
    }

    #[test]
    fn probabilities_normalized() {
        let nd = two_gaussians(100, 2, 3.0, 6);
        let data = Dataset::try_from(&nd).unwrap();
        let mut nb = GaussianNb::new();
        nb.fit(&data).unwrap();
        let p = nb.predict_proba_one(data.x.row(0));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn zero_variance_feature_is_floored() {
        let data = Dataset::from_rows(
            vec![
                vec![1.0, 5.0],
                vec![1.0, 6.0],
                vec![2.0, -5.0],
                vec![2.0, -6.0],
            ],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        let mut nb = GaussianNb::new();
        nb.fit(&data).unwrap();
        // Constant-per-class feature must not yield NaN.
        let p = nb.predict_proba_one(&[1.0, 5.5]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert_eq!(nb.predict_one(&[1.0, 5.5]), 0);
    }

    #[test]
    fn handles_class_absent_from_training() {
        // n_classes=3 but only classes 0 and 1 appear.
        let data = Dataset::from_rows(
            vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]],
            vec![0, 0, 1, 1],
            3,
        )
        .unwrap();
        let mut nb = GaussianNb::new();
        nb.fit(&data).unwrap();
        let p = nb.predict_proba_one(&[0.0]);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_training_rejected() {
        let d = Dataset::from_rows(vec![vec![1.0]], vec![0], 2).unwrap();
        let mut nb = GaussianNb::new();
        assert!(nb.fit(&d.subset(&[])).is_err());
    }
}
