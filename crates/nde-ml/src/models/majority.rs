//! Majority-class baseline classifier.

use crate::dataset::Dataset;
use crate::model::Classifier;
use crate::{MlError, Result};

/// Predicts the majority class of the training data; the canonical "empty
/// coalition" model used by Shapley utilities and a sanity baseline.
#[derive(Debug, Clone, Default)]
pub struct MajorityClassifier {
    class: Option<usize>,
    dist: Vec<f64>,
}

impl MajorityClassifier {
    /// Create an unfitted baseline.
    pub fn new() -> MajorityClassifier {
        MajorityClassifier::default()
    }
}

impl Classifier for MajorityClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let mut counts = vec![0usize; data.n_classes];
        for &y in &data.y {
            counts[y] += 1;
        }
        self.class = Some(data.majority_class());
        self.dist = counts
            .iter()
            .map(|&c| c as f64 / data.len() as f64)
            .collect();
        Ok(())
    }

    fn predict_one(&self, _x: &[f64]) -> usize {
        self.class.expect("model must be fitted")
    }

    fn predict_proba_one(&self, _x: &[f64]) -> Vec<f64> {
        self.dist.clone()
    }

    fn n_classes(&self) -> usize {
        self.dist.len()
    }

    fn is_fitted(&self) -> bool {
        self.class.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_majority_everywhere() {
        let data =
            Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1, 1, 0], 2).unwrap();
        let mut m = MajorityClassifier::new();
        m.fit(&data).unwrap();
        assert_eq!(m.predict_one(&[42.0]), 1);
        assert_eq!(m.predict_proba_one(&[0.0]), vec![1.0 / 3.0, 2.0 / 3.0]);
        assert!((m.accuracy(&data) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rejected() {
        let data = Dataset::from_rows(vec![vec![0.0]], vec![0], 2).unwrap();
        let mut m = MajorityClassifier::new();
        assert!(m.fit(&data.subset(&[])).is_err());
        assert!(!m.is_fitted());
    }
}
