//! Ridge linear regression (closed form via Cholesky).
//!
//! Used by the learning-from-uncertain-data crate as the baseline model that
//! Zorro's interval-trained counterpart is compared against, and by the
//! certain/approximately-certain-models experiment.

use crate::linalg::{cholesky, dot, Matrix};
use crate::{MlError, Result};

/// Ridge regression `min_w ||Xw - y||² + lambda ||w||²`, with intercept.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    /// L2 regularization strength (applied to weights, not the intercept).
    pub lambda: f64,
    weights: Option<Vec<f64>>, // d + 1, bias last
}

impl RidgeRegression {
    /// Create an unfitted model.
    pub fn new(lambda: f64) -> RidgeRegression {
        RidgeRegression {
            lambda,
            weights: None,
        }
    }

    /// Fit on features `x` (n×d) and targets `y` (n).
    #[allow(clippy::needless_range_loop)] // augmented-matrix row assembly
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if x.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        if x.rows() != y.len() {
            return Err(MlError::DimensionMismatch {
                expected: x.rows(),
                got: y.len(),
            });
        }
        if self.lambda < 0.0 {
            return Err(MlError::InvalidArgument("lambda must be >= 0".into()));
        }
        let n = x.rows();
        let d = x.cols();
        // Augment with a constant-1 column for the intercept.
        let mut aug = Matrix::zeros(n, d + 1);
        for i in 0..n {
            aug.row_mut(i)[..d].copy_from_slice(x.row(i));
            aug.row_mut(i)[d] = 1.0;
        }
        let mut gram = aug.gram_regularized(self.lambda.max(1e-12));
        // Don't regularize the intercept (undo the lambda added to its diagonal).
        let v = gram.get(d, d) - self.lambda.max(1e-12) + 1e-12;
        gram.set(d, d, v);
        // rhs = Aᵀ y
        let mut rhs = vec![0.0; d + 1];
        for i in 0..n {
            let row = aug.row(i);
            for (r, a) in rhs.iter_mut().zip(row) {
                *r += a * y[i];
            }
        }
        // Solve via Cholesky (Gram matrix is SPD given the ridge term).
        let l = cholesky(&gram)?;
        let w = solve_cholesky(&l, &rhs);
        self.weights = Some(w);
        Ok(())
    }

    /// Predicted value for one feature vector.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        let w = self.weights.as_ref().expect("model must be fitted");
        debug_assert_eq!(x.len() + 1, w.len());
        dot(&w[..x.len()], x) + w[x.len()]
    }

    /// Predictions for all rows of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|r| self.predict_one(r)).collect()
    }

    /// The learned `(weights, intercept)`, if fitted.
    pub fn coefficients(&self) -> Option<(&[f64], f64)> {
        self.weights
            .as_ref()
            .map(|w| (&w[..w.len() - 1], w[w.len() - 1]))
    }

    /// Mean squared error on a labeled set.
    pub fn mse(&self, x: &Matrix, y: &[f64]) -> f64 {
        if y.is_empty() {
            return 0.0;
        }
        self.predict(x)
            .iter()
            .zip(y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64
    }
}

/// Solve `L Lᵀ x = b` by forward + back substitution.
#[allow(clippy::needless_range_loop)] // triangular index patterns
fn solve_cholesky(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l.get(i, j) * z[j];
        }
        z[i] = s / l.get(i, i);
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for j in i + 1..n {
            s -= l.get(j, i) * x[j];
        }
        x[i] = s / l.get(i, i);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::linear_regression;

    #[test]
    fn recovers_true_weights_without_noise() {
        let (xs, ys, w_true, b_true) = linear_regression(200, 3, 0.0, 1);
        let x = Matrix::from_rows(xs).unwrap();
        let mut model = RidgeRegression::new(1e-8);
        model.fit(&x, &ys).unwrap();
        let (w, b) = model.coefficients().unwrap();
        for (wi, ti) in w.iter().zip(&w_true) {
            assert!((wi - ti).abs() < 1e-4, "w={w:?} true={w_true:?}");
        }
        assert!((b - b_true).abs() < 1e-4);
        assert!(model.mse(&x, &ys) < 1e-8);
    }

    #[test]
    fn noise_increases_mse_but_stays_close() {
        let (xs, ys, _, _) = linear_regression(500, 2, 0.1, 2);
        let x = Matrix::from_rows(xs).unwrap();
        let mut model = RidgeRegression::new(1e-6);
        model.fit(&x, &ys).unwrap();
        let mse = model.mse(&x, &ys);
        assert!(mse > 1e-4 && mse < 0.05, "mse={mse}");
    }

    #[test]
    fn strong_regularization_shrinks_weights() {
        let (xs, ys, _, _) = linear_regression(100, 2, 0.0, 3);
        let x = Matrix::from_rows(xs).unwrap();
        let mut weak = RidgeRegression::new(1e-8);
        let mut strong = RidgeRegression::new(1e4);
        weak.fit(&x, &ys).unwrap();
        strong.fit(&x, &ys).unwrap();
        let norm = |m: &RidgeRegression| {
            let (w, _) = m.coefficients().unwrap();
            w.iter().map(|v| v * v).sum::<f64>()
        };
        assert!(norm(&strong) < norm(&weak) * 0.1);
    }

    #[test]
    fn validates_input() {
        let x = Matrix::from_rows(vec![vec![1.0]]).unwrap();
        let mut m = RidgeRegression::new(-1.0);
        assert!(m.fit(&x, &[1.0]).is_err());
        let mut m = RidgeRegression::new(0.1);
        assert!(m.fit(&x, &[1.0, 2.0]).is_err());
        assert!(m.fit(&Matrix::zeros(0, 1), &[]).is_err());
    }
}
