//! Batched coalition scoring: evaluate many training-subset utilities in
//! one pass over the validation set.
//!
//! Every importance method bottoms out in the same operation — compute the
//! utility `U(S)` of a coalition `S ⊆ train` — and the naive route pays one
//! full retrain + validation sweep per coalition. For instance-based models
//! the retrain is a fiction: a KNN "fit" only remembers the subset, and the
//! expensive part (train→valid distances) is *identical across coalitions*.
//! [`DistanceTable`] computes that train→valid distance matrix once per
//! run, and [`KnnCoalitionScorer`] then scores a whole batch of coalitions
//! by masked partial selection over the shared matrix (KNN-Shapley, Jia et
//! al., PVLDB 2019; Datascope's KNN proxy, Karlaš et al., PVLDB 2022).
//!
//! The [`CoalitionScorer`] trait is the hook the importance crate batches
//! through: [`crate::model::Classifier::coalition_scorer`] returns a
//! prepared scorer for models that support one-pass batch scoring, and
//! `None` for generic classifiers, which then fall back to per-coalition
//! [`crate::model::utility`] behind the same interface.
//!
//! # Bit-identity contract
//!
//! For every coalition `S` (given as a **sorted** list of training-set
//! indices), a scorer must return *exactly* the `f64` that
//! `utility(template, &train.subset(S), valid)` would: same distance
//! floats, same `(distance, index)` neighbor ordering, same vote
//! tie-breaking, same `correct / m` division. Batching is a physical
//! optimization only — it must never be observable in the scores.

use crate::dataset::Dataset;
use crate::linalg::squared_distance;
use crate::{MlError, Result};

/// Scores batches of coalitions against a fixed (train, valid) pair in one
/// validation pass, bit-identical to per-coalition retraining.
///
/// Implementations are built once per run (capturing whatever shared state
/// makes batching cheap — e.g. a distance matrix) and shared across worker
/// threads, hence the `Send + Sync` bound.
pub trait CoalitionScorer: Send + Sync {
    /// Utility of each coalition, in order.
    ///
    /// Each coalition is a non-empty, strictly ascending list of indices
    /// into the training set the scorer was prepared for.
    fn score_batch(&self, coalitions: &[&[usize]]) -> Vec<f64>;

    /// Number of training points the scorer was prepared for (coalition
    /// indices must stay below this).
    fn n_train(&self) -> usize;
}

/// The train→valid squared-distance matrix, computed once per run.
///
/// Row `v` holds the squared Euclidean distance from validation point `v`
/// to every training point, with exactly the floats
/// [`squared_distance`] produces — so selection over a row reproduces the
/// neighbor order a fresh [`crate::models::knn::KnnClassifier`] would see.
#[derive(Debug, Clone)]
pub struct DistanceTable {
    n_train: usize,
    n_valid: usize,
    // Row-major [n_valid × n_train].
    dists: Vec<f64>,
}

impl DistanceTable {
    /// Compute all `train.len() × valid.len()` squared distances.
    pub fn new(train: &Dataset, valid: &Dataset) -> DistanceTable {
        let n_train = train.len();
        let n_valid = valid.len();
        let mut dists = vec![0.0; n_train * n_valid];
        for (v, vx) in valid.x.iter_rows().enumerate() {
            let row = &mut dists[v * n_train..(v + 1) * n_train];
            for (i, tx) in train.x.iter_rows().enumerate() {
                row[i] = squared_distance(tx, vx);
            }
        }
        DistanceTable {
            n_train,
            n_valid,
            dists,
        }
    }

    /// Recompute the distance columns of the given training rows in place,
    /// after their feature vectors changed (incremental maintenance: a
    /// cleaning fix that touches features moves a handful of training
    /// points, not the whole matrix).
    ///
    /// `train` and `valid` must have the shape the table was built from.
    /// The patched table is **bit-identical** to a fresh
    /// [`DistanceTable::new(train, valid)`](DistanceTable::new): every
    /// refreshed cell is produced by the same [`squared_distance`] call,
    /// and untouched cells are untouched floats.
    pub fn update_rows(
        &mut self,
        changed: &[usize],
        train: &Dataset,
        valid: &Dataset,
    ) -> Result<()> {
        if train.len() != self.n_train || valid.len() != self.n_valid {
            return Err(MlError::InvalidArgument(format!(
                "distance table is {}x{} but got {} train / {} valid rows",
                self.n_valid,
                self.n_train,
                train.len(),
                valid.len()
            )));
        }
        if let Some(&bad) = changed.iter().find(|&&i| i >= self.n_train) {
            return Err(MlError::InvalidArgument(format!(
                "changed row {bad} out of bounds for {} training rows",
                self.n_train
            )));
        }
        for (v, vx) in valid.x.iter_rows().enumerate() {
            let row = &mut self.dists[v * self.n_train..(v + 1) * self.n_train];
            for &i in changed {
                row[i] = squared_distance(train.x.row(i), vx);
            }
        }
        Ok(())
    }

    /// Squared distances from validation point `v` to every training point.
    pub fn row(&self, v: usize) -> &[f64] {
        &self.dists[v * self.n_train..(v + 1) * self.n_train]
    }

    /// Number of training points (row width).
    pub fn n_train(&self) -> usize {
        self.n_train
    }

    /// Number of validation points (row count).
    pub fn n_valid(&self) -> usize {
        self.n_valid
    }
}

/// One-pass batch scorer for the KNN utility.
///
/// Reproduces `utility(&KnnClassifier::new(k), &train.subset(S), valid)`
/// for every coalition `S`: because `S` is sorted, partial selection by
/// `(distance, global index)` over the shared [`DistanceTable`] row visits
/// members in the same order a subset-local sort would, and majority voting
/// with ties toward the smaller class id matches
/// [`crate::models::knn::KnnClassifier`]'s per-point prediction exactly.
#[derive(Debug)]
pub struct KnnCoalitionScorer {
    table: DistanceTable,
    k: usize,
    train_y: Vec<usize>,
    valid_y: Vec<usize>,
    n_classes: usize,
}

impl KnnCoalitionScorer {
    /// Precompute the distance table for `(train, valid)` with `k` (≥ 1)
    /// neighbors.
    pub fn new(k: usize, train: &Dataset, valid: &Dataset) -> KnnCoalitionScorer {
        KnnCoalitionScorer {
            table: DistanceTable::new(train, valid),
            k: k.max(1),
            train_y: train.y.clone(),
            valid_y: valid.y.clone(),
            n_classes: train.n_classes,
        }
    }

    /// The shared distance table (also useful to closed-form KNN-Shapley).
    pub fn table(&self) -> &DistanceTable {
        &self.table
    }
}

impl CoalitionScorer for KnnCoalitionScorer {
    fn score_batch(&self, coalitions: &[&[usize]]) -> Vec<f64> {
        let m = self.table.n_valid();
        if m == 0 {
            // `Classifier::accuracy` returns 0.0 on an empty eval set.
            return vec![0.0; coalitions.len()];
        }
        let mut correct = vec![0usize; coalitions.len()];
        let mut sel: Vec<usize> = Vec::new();
        let mut votes = vec![0usize; self.n_classes];
        // Outer loop over validation points: each distance row is read once
        // and scores every coalition in the batch before moving on.
        for v in 0..m {
            let row = self.table.row(v);
            let truth = self.valid_y[v];
            for (ci, &members) in coalitions.iter().enumerate() {
                sel.clear();
                sel.extend_from_slice(members);
                let k = self.k.min(sel.len());
                if k < sel.len() {
                    // Partial selection of the k nearest members; ties break
                    // by global index, which equals the subset-local order
                    // because `members` is ascending.
                    sel.select_nth_unstable_by(k, |&a, &b| {
                        row[a]
                            .partial_cmp(&row[b])
                            .expect("finite distances")
                            .then(a.cmp(&b))
                    });
                    sel.truncate(k);
                }
                votes.iter_mut().for_each(|c| *c = 0);
                for &i in &sel {
                    votes[self.train_y[i]] += 1;
                }
                let pred = votes
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                if pred == truth {
                    correct[ci] += 1;
                }
            }
        }
        correct.iter().map(|&c| c as f64 / m as f64).collect()
    }

    fn n_train(&self) -> usize {
        self.table.n_train()
    }
}

/// Maintains a model's validation accuracy across single-example edits to
/// the training data, without refitting from scratch.
///
/// This is the model-side half of incremental cleaning: the iterative loop
/// accepts one fix at a time (a label flip, a feature repair), and a
/// prepared evaluator folds that fix into its cached state instead of
/// re-paying the full fit + evaluation sweep.
///
/// # Bit-identity contract
///
/// After any sequence of [`set_label`](IncrementalLabelEval::set_label) /
/// [`update_features`](IncrementalLabelEval::update_features) calls,
/// [`accuracy`](IncrementalLabelEval::accuracy) must return *exactly* the
/// `f64` that fitting a fresh clone of the model on the current training
/// data and calling [`crate::model::Classifier::accuracy`] on the
/// evaluation set would — incremental maintenance is a physical
/// optimization only, never observable in the score.
pub trait IncrementalLabelEval: Send {
    /// Accuracy on the evaluation set under the current training data.
    fn accuracy(&self) -> f64;

    /// Record a label change for one training example and refresh only the
    /// evaluation points that can see it.
    fn set_label(&mut self, row: usize, label: usize) -> Result<()>;

    /// Record feature changes: `train` is the full updated training
    /// dataset (same shape and labels as currently held), `changed` the
    /// rows whose feature vectors moved.
    fn update_features(&mut self, changed: &[usize], train: &Dataset) -> Result<()>;
}

/// [`IncrementalLabelEval`] for KNN.
///
/// KNN's "fit" only remembers the training set, so its accuracy sweep is
/// dominated by the train→valid distance computation — which label fixes
/// never touch. The evaluator keeps the [`DistanceTable`], each validation
/// point's k-nearest neighbor list, and an inverted index (training row →
/// validation points holding it among their neighbors):
///
/// - a **label** fix re-votes only the validation points in the inverted
///   index entry — O(k) each, microseconds against the full sweep's
///   O(m·n·d);
/// - a **feature** fix patches the changed distance columns via
///   [`DistanceTable::update_rows`] and re-selects neighbors without
///   recomputing any unchanged distance.
#[derive(Debug, Clone)]
pub struct IncrementalKnnEval {
    table: DistanceTable,
    k: usize,
    train: Dataset,
    valid: Dataset,
    /// Per validation point: the k nearest training rows, closest first,
    /// ties by index — exactly `KnnClassifier::neighbors`.
    neighbors: Vec<Vec<usize>>,
    /// Training row → validation points with it among their neighbors.
    touching: Vec<Vec<usize>>,
    correct: Vec<bool>,
    n_correct: usize,
}

impl IncrementalKnnEval {
    /// Prepare the evaluator (computes the distance table and all neighbor
    /// lists once). Rejects an empty training set, matching
    /// [`crate::model::Classifier::fit`] for KNN.
    pub fn new(k: usize, train: &Dataset, valid: &Dataset) -> Result<IncrementalKnnEval> {
        if train.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let mut eval = IncrementalKnnEval {
            table: DistanceTable::new(train, valid),
            k: k.max(1),
            train: train.clone(),
            valid: valid.clone(),
            neighbors: Vec::new(),
            touching: Vec::new(),
            correct: vec![false; valid.len()],
            n_correct: 0,
        };
        eval.reselect_all();
        Ok(eval)
    }

    /// Re-derive neighbor lists, the inverted index, and every vote from
    /// the (current) distance table.
    fn reselect_all(&mut self) {
        let n = self.train.len();
        self.neighbors = (0..self.valid.len())
            .map(|v| {
                let row = self.table.row(v);
                // Full sort by (distance, index), then take k — the same
                // order `KnnClassifier::neighbors` produces.
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by(|&a, &b| {
                    row[a]
                        .partial_cmp(&row[b])
                        .expect("finite distances")
                        .then(a.cmp(&b))
                });
                idx.truncate(self.k.min(n));
                idx
            })
            .collect();
        self.touching = vec![Vec::new(); n];
        for (v, nb) in self.neighbors.iter().enumerate() {
            for &i in nb {
                self.touching[i].push(v);
            }
        }
        self.n_correct = 0;
        for v in 0..self.valid.len() {
            self.correct[v] = self.vote(v) == self.valid.y[v];
            self.n_correct += usize::from(self.correct[v]);
        }
    }

    /// Majority vote over the cached neighbor list (ties toward the
    /// smaller class id, like `KnnClassifier::predict_one`).
    fn vote(&self, v: usize) -> usize {
        let mut votes = vec![0usize; self.train.n_classes];
        for &i in &self.neighbors[v] {
            votes[self.train.y[i]] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn revote(&mut self, v: usize) {
        let now = self.vote(v) == self.valid.y[v];
        if now != self.correct[v] {
            self.correct[v] = now;
            if now {
                self.n_correct += 1;
            } else {
                self.n_correct -= 1;
            }
        }
    }

    /// The maintained distance table.
    pub fn table(&self) -> &DistanceTable {
        &self.table
    }

    /// The current training labels.
    pub fn labels(&self) -> &[usize] {
        &self.train.y
    }
}

impl IncrementalLabelEval for IncrementalKnnEval {
    fn accuracy(&self) -> f64 {
        if self.valid.is_empty() {
            return 0.0;
        }
        self.n_correct as f64 / self.valid.len() as f64
    }

    fn set_label(&mut self, row: usize, label: usize) -> Result<()> {
        if row >= self.train.len() {
            return Err(MlError::InvalidArgument(format!(
                "label fix row {row} out of bounds for {} training rows",
                self.train.len()
            )));
        }
        if label >= self.train.n_classes {
            return Err(MlError::InvalidLabel {
                label,
                n_classes: self.train.n_classes,
            });
        }
        if self.train.y[row] == label {
            return Ok(());
        }
        self.train.y[row] = label;
        // Distances are untouched, so neighbor sets are untouched: only
        // the votes of validation points seeing this row can change.
        let viewers = std::mem::take(&mut self.touching[row]);
        for &v in &viewers {
            self.revote(v);
        }
        self.touching[row] = viewers;
        Ok(())
    }

    fn update_features(&mut self, changed: &[usize], train: &Dataset) -> Result<()> {
        if train.len() != self.train.len()
            || train.dim() != self.train.dim()
            || train.n_classes != self.train.n_classes
        {
            return Err(MlError::InvalidArgument(
                "feature update must keep the training set's shape".into(),
            ));
        }
        self.table.update_rows(changed, train, &self.valid)?;
        self.train = train.clone();
        // A moved training point can enter or leave any neighbor list;
        // re-select from the patched table (no distance is recomputed).
        self.reselect_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{utility, Classifier};
    use crate::models::knn::KnnClassifier;
    use nde_data::generate::blobs::two_gaussians;

    fn workload(n: usize, m: usize, seed: u64) -> (Dataset, Dataset) {
        let nd = two_gaussians(n + m, 3, 3.0, seed);
        let all = Dataset::try_from(&nd).unwrap();
        let mut train = all.subset(&(0..n).collect::<Vec<_>>());
        let valid = all.subset(&(n..n + m).collect::<Vec<_>>());
        for f in [1, 4, 9] {
            if f < train.len() {
                train.y[f] = 1 - train.y[f];
            }
        }
        (train, valid)
    }

    #[test]
    fn distance_table_matches_squared_distance() {
        let (train, valid) = workload(12, 6, 1);
        let table = DistanceTable::new(&train, &valid);
        assert_eq!(table.n_train(), 12);
        assert_eq!(table.n_valid(), 6);
        for (v, vx) in valid.x.iter_rows().enumerate() {
            for (i, tx) in train.x.iter_rows().enumerate() {
                assert_eq!(table.row(v)[i], squared_distance(tx, vx));
            }
        }
    }

    #[test]
    fn knn_scorer_is_bit_identical_to_retraining() {
        let (train, valid) = workload(16, 8, 2);
        for k in [1, 3, 5, 100] {
            let scorer = KnnCoalitionScorer::new(k, &train, &valid);
            let coalitions: Vec<Vec<usize>> = vec![
                vec![0],
                vec![3, 7],
                vec![0, 1, 2, 3, 4],
                (0..16).collect(),
                vec![2, 5, 11, 15],
            ];
            let refs: Vec<&[usize]> = coalitions.iter().map(|c| c.as_slice()).collect();
            let batched = scorer.score_batch(&refs);
            for (c, &got) in coalitions.iter().zip(&batched) {
                let want = utility(&KnnClassifier::new(k), &train.subset(c), &valid).unwrap();
                assert_eq!(got, want, "k={k} coalition={c:?}");
            }
        }
    }

    #[test]
    fn update_rows_matches_fresh_table_bit_for_bit() {
        let (mut train, valid) = workload(20, 9, 7);
        let mut table = DistanceTable::new(&train, &valid);
        // Move a few training points, patch, and compare to a fresh build.
        let changed = [0usize, 7, 13, 19];
        for &i in &changed {
            let mut rows: Vec<Vec<f64>> = train.x.iter_rows().map(<[f64]>::to_vec).collect();
            for v in &mut rows[i] {
                *v = *v * 1.5 + 0.25;
            }
            train.x = crate::linalg::Matrix::from_rows(rows).unwrap();
        }
        table.update_rows(&changed, &train, &valid).unwrap();
        let fresh = DistanceTable::new(&train, &valid);
        for v in 0..valid.len() {
            for i in 0..train.len() {
                assert_eq!(
                    table.row(v)[i].to_bits(),
                    fresh.row(v)[i].to_bits(),
                    "cell ({v},{i})"
                );
            }
        }
        // Shape and bounds are validated.
        assert!(table.update_rows(&[99], &train, &valid).is_err());
        let short = train.subset(&(0..5).collect::<Vec<_>>());
        assert!(table.update_rows(&[0], &short, &valid).is_err());
    }

    #[test]
    fn incremental_knn_eval_matches_refit_exactly() {
        let (mut train, valid) = workload(24, 11, 5);
        let mut eval = IncrementalKnnEval::new(3, &train, &valid).unwrap();
        let refit = |train: &Dataset| utility(&KnnClassifier::new(3), train, &valid).unwrap();
        assert_eq!(eval.accuracy(), refit(&train));
        // A sequence of label fixes, each checked bit-identical to refit.
        for row in [0, 5, 9, 5, 17, 23] {
            let new_label = 1 - train.y[row];
            train.y[row] = new_label;
            eval.set_label(row, new_label).unwrap();
            assert_eq!(eval.accuracy(), refit(&train), "after fixing row {row}");
        }
        // Feature fixes route through update_rows + re-selection.
        let moved = [2usize, 11, 20];
        let mut rows: Vec<Vec<f64>> = train.x.iter_rows().map(<[f64]>::to_vec).collect();
        for &i in &moved {
            for v in &mut rows[i] {
                *v = -*v;
            }
        }
        train.x = crate::linalg::Matrix::from_rows(rows).unwrap();
        eval.update_features(&moved, &train).unwrap();
        assert_eq!(eval.accuracy(), refit(&train), "after feature update");
        // And label fixes keep working on the patched geometry.
        train.y[2] = 1 - train.y[2];
        eval.set_label(2, train.y[2]).unwrap();
        assert_eq!(eval.accuracy(), refit(&train));
        // Redundant fix is a no-op.
        eval.set_label(2, train.y[2]).unwrap();
        assert_eq!(eval.accuracy(), refit(&train));
    }

    #[test]
    fn incremental_knn_eval_validates() {
        let (train, valid) = workload(8, 4, 9);
        assert!(IncrementalKnnEval::new(1, &train.subset(&[]), &valid).is_err());
        let mut eval = IncrementalKnnEval::new(1, &train, &valid).unwrap();
        assert!(eval.set_label(99, 0).is_err());
        assert!(eval.set_label(0, 99).is_err());
        let short = train.subset(&(0..4).collect::<Vec<_>>());
        assert!(eval.update_features(&[0], &short).is_err());
        // Empty eval set scores 0.0, like `Classifier::accuracy`.
        let empty = valid.subset(&[]);
        let eval = IncrementalKnnEval::new(1, &train, &empty).unwrap();
        assert_eq!(eval.accuracy(), 0.0);
    }

    #[test]
    fn incremental_hook_returns_evaluator_for_knn_only() {
        let (train, valid) = workload(8, 4, 6);
        let knn = KnnClassifier::new(2);
        assert!(knn.incremental_eval(&train, &valid).is_some());
        let majority = crate::models::majority::MajorityClassifier::new();
        assert!(majority.incremental_eval(&train, &valid).is_none());
    }

    #[test]
    fn empty_validation_set_scores_zero() {
        let (train, valid) = workload(8, 4, 3);
        let empty = valid.subset(&[]);
        let scorer = KnnCoalitionScorer::new(1, &train, &empty);
        assert_eq!(scorer.score_batch(&[&[0, 1][..]]), vec![0.0]);
    }

    #[test]
    fn classifier_hook_returns_scorer_for_knn_only() {
        let (train, valid) = workload(8, 4, 4);
        let knn = KnnClassifier::new(2);
        let scorer = knn.coalition_scorer(&train, &valid);
        assert!(scorer.is_some());
        assert_eq!(scorer.unwrap().n_train(), 8);
        // A generic classifier keeps the default (no batched path).
        let majority = crate::models::majority::MajorityClassifier::new();
        assert!(majority.coalition_scorer(&train, &valid).is_none());
    }
}
