//! Batched coalition scoring: evaluate many training-subset utilities in
//! one pass over the validation set.
//!
//! Every importance method bottoms out in the same operation — compute the
//! utility `U(S)` of a coalition `S ⊆ train` — and the naive route pays one
//! full retrain + validation sweep per coalition. For instance-based models
//! the retrain is a fiction: a KNN "fit" only remembers the subset, and the
//! expensive part (train→valid distances) is *identical across coalitions*.
//! [`DistanceTable`] computes that train→valid distance matrix once per
//! run, and [`KnnCoalitionScorer`] then scores a whole batch of coalitions
//! by masked partial selection over the shared matrix (KNN-Shapley, Jia et
//! al., PVLDB 2019; Datascope's KNN proxy, Karlaš et al., PVLDB 2022).
//!
//! The [`CoalitionScorer`] trait is the hook the importance crate batches
//! through: [`crate::model::Classifier::coalition_scorer`] returns a
//! prepared scorer for models that support one-pass batch scoring, and
//! `None` for generic classifiers, which then fall back to per-coalition
//! [`crate::model::utility`] behind the same interface.
//!
//! # Bit-identity contract
//!
//! For every coalition `S` (given as a **sorted** list of training-set
//! indices), a scorer must return *exactly* the `f64` that
//! `utility(template, &train.subset(S), valid)` would: same distance
//! floats, same `(distance, index)` neighbor ordering, same vote
//! tie-breaking, same `correct / m` division. Batching is a physical
//! optimization only — it must never be observable in the scores.

use crate::dataset::Dataset;
use crate::linalg::squared_distance;

/// Scores batches of coalitions against a fixed (train, valid) pair in one
/// validation pass, bit-identical to per-coalition retraining.
///
/// Implementations are built once per run (capturing whatever shared state
/// makes batching cheap — e.g. a distance matrix) and shared across worker
/// threads, hence the `Send + Sync` bound.
pub trait CoalitionScorer: Send + Sync {
    /// Utility of each coalition, in order.
    ///
    /// Each coalition is a non-empty, strictly ascending list of indices
    /// into the training set the scorer was prepared for.
    fn score_batch(&self, coalitions: &[&[usize]]) -> Vec<f64>;

    /// Number of training points the scorer was prepared for (coalition
    /// indices must stay below this).
    fn n_train(&self) -> usize;
}

/// The train→valid squared-distance matrix, computed once per run.
///
/// Row `v` holds the squared Euclidean distance from validation point `v`
/// to every training point, with exactly the floats
/// [`squared_distance`] produces — so selection over a row reproduces the
/// neighbor order a fresh [`crate::models::knn::KnnClassifier`] would see.
#[derive(Debug, Clone)]
pub struct DistanceTable {
    n_train: usize,
    n_valid: usize,
    // Row-major [n_valid × n_train].
    dists: Vec<f64>,
}

impl DistanceTable {
    /// Compute all `train.len() × valid.len()` squared distances.
    pub fn new(train: &Dataset, valid: &Dataset) -> DistanceTable {
        let n_train = train.len();
        let n_valid = valid.len();
        let mut dists = vec![0.0; n_train * n_valid];
        for (v, vx) in valid.x.iter_rows().enumerate() {
            let row = &mut dists[v * n_train..(v + 1) * n_train];
            for (i, tx) in train.x.iter_rows().enumerate() {
                row[i] = squared_distance(tx, vx);
            }
        }
        DistanceTable {
            n_train,
            n_valid,
            dists,
        }
    }

    /// Squared distances from validation point `v` to every training point.
    pub fn row(&self, v: usize) -> &[f64] {
        &self.dists[v * self.n_train..(v + 1) * self.n_train]
    }

    /// Number of training points (row width).
    pub fn n_train(&self) -> usize {
        self.n_train
    }

    /// Number of validation points (row count).
    pub fn n_valid(&self) -> usize {
        self.n_valid
    }
}

/// One-pass batch scorer for the KNN utility.
///
/// Reproduces `utility(&KnnClassifier::new(k), &train.subset(S), valid)`
/// for every coalition `S`: because `S` is sorted, partial selection by
/// `(distance, global index)` over the shared [`DistanceTable`] row visits
/// members in the same order a subset-local sort would, and majority voting
/// with ties toward the smaller class id matches
/// [`crate::models::knn::KnnClassifier`]'s per-point prediction exactly.
#[derive(Debug)]
pub struct KnnCoalitionScorer {
    table: DistanceTable,
    k: usize,
    train_y: Vec<usize>,
    valid_y: Vec<usize>,
    n_classes: usize,
}

impl KnnCoalitionScorer {
    /// Precompute the distance table for `(train, valid)` with `k` (≥ 1)
    /// neighbors.
    pub fn new(k: usize, train: &Dataset, valid: &Dataset) -> KnnCoalitionScorer {
        KnnCoalitionScorer {
            table: DistanceTable::new(train, valid),
            k: k.max(1),
            train_y: train.y.clone(),
            valid_y: valid.y.clone(),
            n_classes: train.n_classes,
        }
    }

    /// The shared distance table (also useful to closed-form KNN-Shapley).
    pub fn table(&self) -> &DistanceTable {
        &self.table
    }
}

impl CoalitionScorer for KnnCoalitionScorer {
    fn score_batch(&self, coalitions: &[&[usize]]) -> Vec<f64> {
        let m = self.table.n_valid();
        if m == 0 {
            // `Classifier::accuracy` returns 0.0 on an empty eval set.
            return vec![0.0; coalitions.len()];
        }
        let mut correct = vec![0usize; coalitions.len()];
        let mut sel: Vec<usize> = Vec::new();
        let mut votes = vec![0usize; self.n_classes];
        // Outer loop over validation points: each distance row is read once
        // and scores every coalition in the batch before moving on.
        for v in 0..m {
            let row = self.table.row(v);
            let truth = self.valid_y[v];
            for (ci, &members) in coalitions.iter().enumerate() {
                sel.clear();
                sel.extend_from_slice(members);
                let k = self.k.min(sel.len());
                if k < sel.len() {
                    // Partial selection of the k nearest members; ties break
                    // by global index, which equals the subset-local order
                    // because `members` is ascending.
                    sel.select_nth_unstable_by(k, |&a, &b| {
                        row[a]
                            .partial_cmp(&row[b])
                            .expect("finite distances")
                            .then(a.cmp(&b))
                    });
                    sel.truncate(k);
                }
                votes.iter_mut().for_each(|c| *c = 0);
                for &i in &sel {
                    votes[self.train_y[i]] += 1;
                }
                let pred = votes
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                if pred == truth {
                    correct[ci] += 1;
                }
            }
        }
        correct.iter().map(|&c| c as f64 / m as f64).collect()
    }

    fn n_train(&self) -> usize {
        self.table.n_train()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{utility, Classifier};
    use crate::models::knn::KnnClassifier;
    use nde_data::generate::blobs::two_gaussians;

    fn workload(n: usize, m: usize, seed: u64) -> (Dataset, Dataset) {
        let nd = two_gaussians(n + m, 3, 3.0, seed);
        let all = Dataset::try_from(&nd).unwrap();
        let mut train = all.subset(&(0..n).collect::<Vec<_>>());
        let valid = all.subset(&(n..n + m).collect::<Vec<_>>());
        for f in [1, 4, 9] {
            if f < train.len() {
                train.y[f] = 1 - train.y[f];
            }
        }
        (train, valid)
    }

    #[test]
    fn distance_table_matches_squared_distance() {
        let (train, valid) = workload(12, 6, 1);
        let table = DistanceTable::new(&train, &valid);
        assert_eq!(table.n_train(), 12);
        assert_eq!(table.n_valid(), 6);
        for (v, vx) in valid.x.iter_rows().enumerate() {
            for (i, tx) in train.x.iter_rows().enumerate() {
                assert_eq!(table.row(v)[i], squared_distance(tx, vx));
            }
        }
    }

    #[test]
    fn knn_scorer_is_bit_identical_to_retraining() {
        let (train, valid) = workload(16, 8, 2);
        for k in [1, 3, 5, 100] {
            let scorer = KnnCoalitionScorer::new(k, &train, &valid);
            let coalitions: Vec<Vec<usize>> = vec![
                vec![0],
                vec![3, 7],
                vec![0, 1, 2, 3, 4],
                (0..16).collect(),
                vec![2, 5, 11, 15],
            ];
            let refs: Vec<&[usize]> = coalitions.iter().map(|c| c.as_slice()).collect();
            let batched = scorer.score_batch(&refs);
            for (c, &got) in coalitions.iter().zip(&batched) {
                let want = utility(&KnnClassifier::new(k), &train.subset(c), &valid).unwrap();
                assert_eq!(got, want, "k={k} coalition={c:?}");
            }
        }
    }

    #[test]
    fn empty_validation_set_scores_zero() {
        let (train, valid) = workload(8, 4, 3);
        let empty = valid.subset(&[]);
        let scorer = KnnCoalitionScorer::new(1, &train, &empty);
        assert_eq!(scorer.score_batch(&[&[0, 1][..]]), vec![0.0]);
    }

    #[test]
    fn classifier_hook_returns_scorer_for_knn_only() {
        let (train, valid) = workload(8, 4, 4);
        let knn = KnnClassifier::new(2);
        let scorer = knn.coalition_scorer(&train, &valid);
        assert!(scorer.is_some());
        assert_eq!(scorer.unwrap().n_train(), 8);
        // A generic classifier keeps the default (no batched path).
        let majority = crate::models::majority::MajorityClassifier::new();
        assert!(majority.coalition_scorer(&train, &valid).is_none());
    }
}
