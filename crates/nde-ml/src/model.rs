//! The classifier abstraction shared by models, importance methods and
//! cleaning strategies.

use crate::dataset::Dataset;
use crate::Result;

/// A trainable classifier.
///
/// Importance methods (LOO, Shapley, ...) retrain models on many data
/// subsets; they do so by cloning an *unfitted configuration* of the model
/// and calling [`Classifier::fit`] on each subset, which is why the trait
/// requires `Clone`. Implementations must make `fit` fully reset any previous
/// state.
pub trait Classifier: Clone {
    /// Train on the dataset, replacing any previously learned state.
    fn fit(&mut self, data: &Dataset) -> Result<()>;

    /// Predict the class of a single feature vector.
    ///
    /// # Panics
    /// May panic (in debug builds) if called before [`Classifier::fit`] or
    /// with the wrong dimensionality; use [`Classifier::is_fitted`] to guard.
    fn predict_one(&self, x: &[f64]) -> usize;

    /// Class-probability estimates for a single feature vector.
    /// The default derives a one-hot distribution from [`Classifier::predict_one`].
    fn predict_proba_one(&self, x: &[f64]) -> Vec<f64> {
        let mut p = vec![0.0; self.n_classes().max(1)];
        let c = self.predict_one(x);
        if c < p.len() {
            p[c] = 1.0;
        }
        p
    }

    /// Number of classes the fitted model distinguishes (0 before `fit`).
    fn n_classes(&self) -> usize;

    /// `true` once `fit` has succeeded.
    fn is_fitted(&self) -> bool;

    /// Predict classes for many feature vectors.
    fn predict(&self, xs: &crate::linalg::Matrix) -> Vec<usize> {
        xs.iter_rows().map(|r| self.predict_one(r)).collect()
    }

    /// A prepared one-pass batch scorer for coalition utilities, if this
    /// model supports one (see [`crate::batch::CoalitionScorer`]).
    ///
    /// The default returns `None`: generic classifiers are evaluated one
    /// coalition at a time via [`utility`]. Models that override this (KNN)
    /// must return a scorer that is **bit-identical** to the per-coalition
    /// retraining path — batching may change the cost of a utility call,
    /// never its value.
    fn coalition_scorer(
        &self,
        _train: &Dataset,
        _valid: &Dataset,
    ) -> Option<Box<dyn crate::batch::CoalitionScorer>> {
        None
    }

    /// A prepared incremental evaluator for this model over `(train,
    /// valid)`, if it supports one (see
    /// [`crate::batch::IncrementalLabelEval`]).
    ///
    /// The default returns `None`: generic classifiers are refit from
    /// scratch after every accepted fix. Models that override this (KNN)
    /// must return an evaluator whose maintained accuracy is
    /// **bit-identical** to the refit-and-evaluate path.
    fn incremental_eval(
        &self,
        _train: &Dataset,
        _valid: &Dataset,
    ) -> Option<Box<dyn crate::batch::IncrementalLabelEval>> {
        None
    }

    /// Accuracy on a labeled dataset.
    fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .x
            .iter_rows()
            .zip(&data.y)
            .filter(|(x, &y)| self.predict_one(x) == y)
            .count();
        correct as f64 / data.len() as f64
    }
}

/// Train a fresh clone of `template` on `train` and return its accuracy on
/// `eval`: the utility function `U(S)` used throughout the importance crate.
pub fn utility<C: Classifier>(template: &C, train: &Dataset, eval: &Dataset) -> Result<f64> {
    let mut model = template.clone();
    model.fit(train)?;
    Ok(model.accuracy(eval))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    /// A constant classifier for exercising trait defaults.
    #[derive(Clone)]
    struct Always(usize, usize);

    impl Classifier for Always {
        fn fit(&mut self, data: &Dataset) -> Result<()> {
            self.1 = data.n_classes;
            Ok(())
        }
        fn predict_one(&self, _x: &[f64]) -> usize {
            self.0
        }
        fn n_classes(&self) -> usize {
            self.1
        }
        fn is_fitted(&self) -> bool {
            self.1 > 0
        }
    }

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn default_proba_is_one_hot() {
        let mut m = Always(1, 0);
        m.fit(&toy()).unwrap();
        assert_eq!(m.predict_proba_one(&[0.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let mut m = Always(0, 0);
        m.fit(&toy()).unwrap();
        assert_eq!(m.accuracy(&toy()), 0.5);
        let empty = toy().subset(&[]);
        assert_eq!(m.accuracy(&empty), 0.0);
    }

    #[test]
    fn utility_trains_a_fresh_clone() {
        let template = Always(1, 0);
        let u = utility(&template, &toy(), &toy()).unwrap();
        assert_eq!(u, 0.5);
        // Template itself stays unfitted.
        assert!(!template.is_fitted());
    }

    #[test]
    fn batch_predict_uses_predict_one() {
        let mut m = Always(1, 0);
        m.fit(&toy()).unwrap();
        assert_eq!(m.predict(&toy().x), vec![1, 1, 1, 1]);
    }
}
