//! Error type for the ML substrate.

use std::fmt;

/// Errors produced by models, encoders and metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Feature dimensionalities disagree (e.g. predict vs. fit).
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Provided dimensionality.
        got: usize,
    },
    /// The training set was empty or otherwise unusable.
    EmptyTrainingSet,
    /// A label was outside `0..n_classes`.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// Number of classes the dataset declares.
        n_classes: usize,
    },
    /// The model was used before `fit` was called.
    NotFitted,
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// A wrapped data-substrate error (encoding tables, etc.).
    Data(String),
    /// Numerical failure (singular matrix, divergence, ...).
    Numerical(String),
    /// A feature cell held NaN or ±∞ where a finite value was required.
    NonFiniteFeature {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            MlError::EmptyTrainingSet => write!(f, "training set is empty"),
            MlError::InvalidLabel { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            MlError::NotFitted => write!(f, "model used before fit()"),
            MlError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MlError::Data(msg) => write!(f, "data error: {msg}"),
            MlError::Numerical(msg) => write!(f, "numerical error: {msg}"),
            MlError::NonFiniteFeature { row, col } => {
                write!(f, "non-finite feature value at row {row}, column {col}")
            }
        }
    }
}

impl std::error::Error for MlError {}

impl From<nde_data::DataError> for MlError {
    fn from(e: nde_data::DataError) -> Self {
        MlError::Data(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e = MlError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let d: MlError = nde_data::DataError::UnknownColumn("x".into()).into();
        assert!(matches!(d, MlError::Data(_)));
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MlError::NotFitted);
    }
}
