//! Randomized-property tests for encoders and metrics invariants, driven by
//! the in-tree seeded PRNG so every failure reproduces exactly.

use nde_data::rng::{seeded, Rng, StdRng};
use nde_ml::encode::{
    CategoricalImputer, HashedTextEncoder, NumericImputation, NumericImputer, OneHotEncoder,
    StandardScaler,
};
use nde_ml::metrics::{accuracy, f1_score, prediction_entropy};

const CASES: usize = 200;

fn random_string(rng: &mut StdRng, alphabet: &str, max_len: usize) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

/// `Some(category)` with probability 3/4, where the category is a single
/// letter drawn from `alphabet`.
fn random_opt_cat(rng: &mut StdRng, alphabet: &str) -> Option<String> {
    if rng.gen_bool(0.25) {
        None
    } else {
        Some(random_string(rng, alphabet, 1).chars().take(1).collect())
    }
}

#[test]
fn scaler_roundtrips_and_standardizes() {
    let mut rng = seeded(21);
    for _ in 0..CASES {
        let n = rng.gen_range(2..50usize);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let s = StandardScaler::fit(&values).expect("fits");
        let (_, sd) = s.params();
        for &v in &values {
            let z = s.transform_one(v);
            if sd > 1e-9 {
                let back = s.inverse_one(z);
                assert!((back - v).abs() < 1e-6 * v.abs().max(1.0));
            } else {
                assert_eq!(z, 0.0);
            }
        }
    }
}

#[test]
fn numeric_imputer_fill_is_within_range() {
    let mut rng = seeded(22);
    for _ in 0..CASES {
        let n = rng.gen_range(1..40usize);
        let mut values: Vec<Option<f64>> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    None
                } else {
                    Some(rng.gen_range(-1e3..1e3))
                }
            })
            .collect();
        if !values.iter().any(Option::is_some) {
            values[0] = Some(rng.gen_range(-1e3..1e3));
        }
        for strategy in [NumericImputation::Mean, NumericImputation::Median] {
            let mut imp = NumericImputer::new(strategy);
            imp.fit(&values).expect("fits");
            let fill = imp.fill_value().expect("fitted");
            let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
            let min = present.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let max = present.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            assert!(fill >= min - 1e-9 && fill <= max + 1e-9);
            // Transform leaves observed values untouched.
            let out = imp.transform(&values).expect("transforms");
            for (o, v) in out.iter().zip(&values) {
                if let Some(v) = v {
                    assert_eq!(o, v);
                }
            }
        }
    }
}

#[test]
fn one_hot_outputs_are_one_hot_or_zero() {
    let mut rng = seeded(23);
    for _ in 0..CASES {
        let n = rng.gen_range(1..30usize);
        let mut cats: Vec<Option<String>> =
            (0..n).map(|_| random_opt_cat(&mut rng, "abcde")).collect();
        if !cats.iter().any(Option::is_some) {
            cats[0] = Some("a".into());
        }
        let query = random_string(&mut rng, "abcdefgh", 1);
        let enc = OneHotEncoder::fit(&cats).expect("fits");
        let v = enc.encode(&query);
        let sum: f64 = v.iter().sum();
        assert!(sum == 0.0 || sum == 1.0);
        let known = enc.categories().iter().any(|c| c == &query);
        assert_eq!(sum == 1.0, known);
    }
}

#[test]
fn categorical_mode_fill_is_an_observed_category() {
    let mut rng = seeded(24);
    for _ in 0..CASES {
        let n = rng.gen_range(1..30usize);
        let mut cats: Vec<Option<String>> =
            (0..n).map(|_| random_opt_cat(&mut rng, "abcd")).collect();
        if !cats.iter().any(Option::is_some) {
            cats[0] = Some("a".into());
        }
        let mut imp = CategoricalImputer::mode();
        imp.fit(&cats).expect("fits");
        let fill = imp.fill_value().expect("fitted").to_owned();
        assert!(cats.iter().flatten().any(|c| c == &fill));
    }
}

#[test]
fn hashed_text_is_deterministic_and_bounded() {
    let mut rng = seeded(25);
    for _ in 0..CASES {
        let text = random_string(&mut rng, "abcdefghijklmnopqrstuvwxyz ", 60);
        let dims = rng.gen_range(1..128usize);
        let enc = HashedTextEncoder::new(dims);
        let a = enc.encode(&text);
        let b = enc.encode(&text);
        assert_eq!(&a, &b);
        assert_eq!(a.len(), dims);
        let norm: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm <= 1.0 + 1e-9);
        assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-9);
    }
}

#[test]
fn accuracy_and_f1_are_bounded_and_consistent() {
    let mut rng = seeded(26);
    for _ in 0..CASES {
        let labels: Vec<usize> = (0..rng.gen_range(1..40usize))
            .map(|_| rng.gen_range(0..2usize))
            .collect();
        let preds: Vec<usize> = (0..rng.gen_range(1..40usize))
            .map(|_| rng.gen_range(0..2usize))
            .collect();
        let n = labels.len().min(preds.len());
        let y = &labels[..n];
        let p = &preds[..n];
        let acc = accuracy(y, p).expect("valid");
        assert!((0.0..=1.0).contains(&acc));
        let f1 = f1_score(y, p, 1).expect("valid");
        assert!((0.0..=1.0).contains(&f1));
        // Perfect predictions pin both to 1.
        assert_eq!(accuracy(y, y).expect("valid"), 1.0);
    }
}

#[test]
fn entropy_bounded_and_extremal() {
    let mut rng = seeded(27);
    for _ in 0..CASES {
        let k = rng.gen_range(2..6usize);
        let raw: Vec<f64> = (0..k).map(|_| rng.gen_range(0.001..1.0)).collect();
        let n_rows = rng.gen_range(1..10usize);
        let sum: f64 = raw.iter().sum();
        let dist: Vec<f64> = raw.iter().map(|v| v / sum).collect();
        let rows = vec![dist.clone(); n_rows];
        let h = prediction_entropy(&rows).expect("valid distribution");
        assert!((0.0..=1.0 + 1e-9).contains(&h));
        // One-hot rows give exactly zero.
        let mut onehot = vec![0.0; dist.len()];
        onehot[0] = 1.0;
        let h0 = prediction_entropy(&vec![onehot; n_rows]).expect("valid");
        assert_eq!(h0, 0.0);
    }
}
