//! Property-based tests for encoders and metrics invariants.

use nde_ml::encode::{
    CategoricalImputer, HashedTextEncoder, NumericImputation, NumericImputer, OneHotEncoder,
    StandardScaler,
};
use nde_ml::metrics::{accuracy, f1_score, prediction_entropy};
use proptest::prelude::*;

proptest! {
    #[test]
    fn scaler_roundtrips_and_standardizes(
        values in prop::collection::vec(-1e6f64..1e6, 2..50),
    ) {
        let s = StandardScaler::fit(&values).expect("fits");
        let (_, sd) = s.params();
        for &v in &values {
            let z = s.transform_one(v);
            if sd > 1e-9 {
                let back = s.inverse_one(z);
                prop_assert!((back - v).abs() < 1e-6 * v.abs().max(1.0));
            } else {
                prop_assert_eq!(z, 0.0);
            }
        }
    }

    #[test]
    fn numeric_imputer_fill_is_within_range(
        values in prop::collection::vec(prop::option::of(-1e3f64..1e3), 1..40),
    ) {
        prop_assume!(values.iter().any(Option::is_some));
        for strategy in [NumericImputation::Mean, NumericImputation::Median] {
            let mut imp = NumericImputer::new(strategy);
            imp.fit(&values).expect("fits");
            let fill = imp.fill_value().expect("fitted");
            let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
            let min = present.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let max = present.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            prop_assert!(fill >= min - 1e-9 && fill <= max + 1e-9);
            // Transform leaves observed values untouched.
            let out = imp.transform(&values).expect("transforms");
            for (o, v) in out.iter().zip(&values) {
                if let Some(v) = v {
                    prop_assert_eq!(o, v);
                }
            }
        }
    }

    #[test]
    fn one_hot_outputs_are_one_hot_or_zero(
        cats in prop::collection::vec(prop::option::of("[a-e]"), 1..30),
        query in "[a-h]",
    ) {
        prop_assume!(cats.iter().any(Option::is_some));
        let enc = OneHotEncoder::fit(&cats).expect("fits");
        let v = enc.encode(&query);
        let sum: f64 = v.iter().sum();
        prop_assert!(sum == 0.0 || sum == 1.0);
        let known = enc.categories().iter().any(|c| c == &query);
        prop_assert_eq!(sum == 1.0, known);
    }

    #[test]
    fn categorical_mode_fill_is_an_observed_category(
        cats in prop::collection::vec(prop::option::of("[a-d]"), 1..30),
    ) {
        prop_assume!(cats.iter().any(Option::is_some));
        let mut imp = CategoricalImputer::mode();
        imp.fit(&cats).expect("fits");
        let fill = imp.fill_value().expect("fitted").to_owned();
        prop_assert!(cats.iter().flatten().any(|c| c == &fill));
    }

    #[test]
    fn hashed_text_is_deterministic_and_bounded(
        text in "[a-z ]{0,60}",
        dims in 1usize..128,
    ) {
        let enc = HashedTextEncoder::new(dims);
        let a = enc.encode(&text);
        let b = enc.encode(&text);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), dims);
        let norm: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(norm <= 1.0 + 1e-9);
        prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_and_f1_are_bounded_and_consistent(
        labels in prop::collection::vec(0usize..2, 1..40),
        preds in prop::collection::vec(0usize..2, 1..40),
    ) {
        let n = labels.len().min(preds.len());
        let y = &labels[..n];
        let p = &preds[..n];
        let acc = accuracy(y, p).expect("valid");
        prop_assert!((0.0..=1.0).contains(&acc));
        let f1 = f1_score(y, p, 1).expect("valid");
        prop_assert!((0.0..=1.0).contains(&f1));
        // Perfect predictions pin both to 1.
        prop_assert_eq!(accuracy(y, y).expect("valid"), 1.0);
    }

    #[test]
    fn entropy_bounded_and_extremal(
        raw in prop::collection::vec(0.001f64..1.0, 2..6),
        n_rows in 1usize..10,
    ) {
        let sum: f64 = raw.iter().sum();
        let dist: Vec<f64> = raw.iter().map(|v| v / sum).collect();
        let rows = vec![dist.clone(); n_rows];
        let h = prediction_entropy(&rows).expect("valid distribution");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&h));
        // One-hot rows give exactly zero.
        let mut onehot = vec![0.0; dist.len()];
        onehot[0] = 1.0;
        let h0 = prediction_entropy(&vec![onehot; n_rows]).expect("valid");
        prop_assert_eq!(h0, 0.0);
    }
}
