//! # nde-bench
//!
//! Experiment harness regenerating **every figure and table** of the
//! tutorial (see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results). Each experiment lives in
//! [`experiments`] as a pure function returning a typed report; the binaries
//! in `src/bin/` are thin wrappers that print the same rows/series the paper
//! shows, and the wall-clock benches in `benches/` measure the runtime
//! claims (KNN-Shapley vs Monte-Carlo scaling, provenance overhead).

pub mod experiments;
pub mod report;
pub mod timing;
