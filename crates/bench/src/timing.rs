//! A minimal wall-clock benchmarking harness (no external deps).
//!
//! The `[[bench]]` targets use `harness = false` and drive this module from
//! a plain `main()`: each case runs a warm-up iteration, then a fixed
//! number of timed samples, and prints min/median/mean per iteration.

use std::hint::black_box;
use std::time::Instant;

/// Default number of timed samples per case.
pub const DEFAULT_SAMPLES: usize = 10;

/// Time `f` for `samples` iterations (after one warm-up) and print a
/// `name: min/median/mean` line. The closure's output is passed through
/// [`black_box`] so the computation is not optimized away.
pub fn bench_n<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) {
    black_box(f());
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let min = times[0];
    let median = times[times.len() / 2];
    let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{name:<45} min {:>10} | median {:>10} | mean {:>10}",
        fmt_secs(min),
        fmt_secs(median),
        fmt_secs(mean)
    );
}

/// [`bench_n`] with [`DEFAULT_SAMPLES`].
pub fn bench<T>(name: &str, f: impl FnMut() -> T) {
    bench_n(name, DEFAULT_SAMPLES, f);
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_formats() {
        bench_n("noop", 3, || 1 + 1);
        assert_eq!(fmt_secs(2.0), "2.000 s");
        assert_eq!(fmt_secs(0.002), "2.000 ms");
        assert_eq!(fmt_secs(2e-6), "2.000 µs");
    }
}
