//! Plain-text table rendering and JSON persistence for experiment reports.

use nde_data::json::ToJson;

/// A simple aligned text table builder for experiment output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Serialize an experiment report as pretty JSON (for archival in CI).
pub fn to_json<T: ToJson>(report: &T) -> String {
    report.to_json().to_string_pretty()
}

/// Format a float with 4 decimals (the convention across experiment tables).
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["method", "acc"]);
        t.row(vec!["knn-shapley".into(), f(0.79)]);
        t.row(vec!["random".into(), f(0.7612345)]);
        let s = t.render();
        assert!(s.contains("method"));
        assert!(s.contains("0.7900"));
        assert!(s.contains("0.7612"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows align to the same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn json_serializes() {
        struct R {
            x: f64,
        }
        nde_data::json_struct!(R { x });
        let s = to_json(&R { x: 1.5 });
        assert!(s.contains("1.5"));
    }
}
