//! Plain-text table rendering and JSON persistence for experiment reports,
//! plus the append-only bench trajectory: every bench run appends a
//! `{git_commit, timestamp, results}` record to its `BENCH_*.json` file so
//! regressions show up as a last-vs-previous delta instead of silently
//! overwriting history.

use nde_data::json::{Json, ToJson};

/// A simple aligned text table builder for experiment output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Serialize an experiment report as pretty JSON (for archival in CI).
pub fn to_json<T: ToJson>(report: &T) -> String {
    report.to_json().to_string_pretty()
}

/// Format a float with 4 decimals (the convention across experiment tables).
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// The current short git commit hash, or `"unknown"` outside a repository
/// (bench records must never fail just because git is unavailable).
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Is this JSON object already a trajectory record?
fn is_record(v: &Json) -> bool {
    v.get("git_commit").is_some() && v.get("timestamp").is_some() && v.get("results").is_some()
}

/// Append one `{git_commit, timestamp, results}` record to the append-only
/// trajectory file at `path` and return the full record list (oldest
/// first). A pre-trajectory file holding a bare results object is wrapped
/// as the first record (commit/timestamp unknown) instead of being thrown
/// away; unparseable files are replaced.
pub fn append_trajectory<T: ToJson>(path: &str, results: &T) -> std::io::Result<Vec<Json>> {
    let mut records: Vec<Json> = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(Json::Arr(items)) => items.into_iter().filter(is_record).collect(),
            Ok(legacy @ Json::Obj(_)) if !is_record(&legacy) => vec![Json::Obj(vec![
                ("git_commit".into(), Json::Str("unknown".into())),
                ("timestamp".into(), Json::UInt(0)),
                ("results".into(), legacy),
            ])],
            Ok(record @ Json::Obj(_)) => vec![record],
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    records.push(Json::Obj(vec![
        ("git_commit".into(), Json::Str(git_commit())),
        ("timestamp".into(), Json::UInt(unix_timestamp())),
        ("results".into(), results.to_json()),
    ]));
    std::fs::write(path, Json::Arr(records.clone()).to_string_pretty())?;
    Ok(records)
}

/// Flatten every numeric leaf of a JSON tree into `(dotted.path, value)`
/// pairs, arrays indexed by position.
fn numeric_leaves(prefix: &str, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::UInt(_) | Json::Float(_) => {
            out.push((prefix.to_string(), v.as_f64().unwrap_or(0.0)));
        }
        Json::Obj(fields) => {
            for (k, child) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                numeric_leaves(&path, child, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                numeric_leaves(&format!("{prefix}[{i}]"), child, out);
            }
        }
        _ => {}
    }
}

/// Render the last-vs-previous delta of a trajectory (one line per numeric
/// leaf present in both records). `None` with fewer than two records —
/// nothing to compare against yet.
pub fn trajectory_delta(records: &[Json]) -> Option<String> {
    let [.., prev, last] = records else {
        return None;
    };
    let commit = |r: &Json| {
        r.get("git_commit")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string()
    };
    let mut prev_leaves = Vec::new();
    let mut last_leaves = Vec::new();
    numeric_leaves("", prev.get("results")?, &mut prev_leaves);
    numeric_leaves("", last.get("results")?, &mut last_leaves);
    let prev_map: std::collections::BTreeMap<&str, f64> =
        prev_leaves.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut out = format!("bench delta {} -> {}:\n", commit(prev), commit(last));
    let mut any = false;
    for (key, cur) in &last_leaves {
        let Some(&old) = prev_map.get(key.as_str()) else {
            continue;
        };
        any = true;
        let pct = if old.abs() > 1e-12 {
            format!(" ({:+.1}%)", (cur - old) / old * 100.0)
        } else {
            String::new()
        };
        out.push_str(&format!("  {key}: {old} -> {cur}{pct}\n"));
    }
    any.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["method", "acc"]);
        t.row(vec!["knn-shapley".into(), f(0.79)]);
        t.row(vec!["random".into(), f(0.7612345)]);
        let s = t.render();
        assert!(s.contains("method"));
        assert!(s.contains("0.7900"));
        assert!(s.contains("0.7612"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows align to the same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn json_serializes() {
        struct R {
            x: f64,
        }
        nde_data::json_struct!(R { x });
        let s = to_json(&R { x: 1.5 });
        assert!(s.contains("1.5"));
    }

    struct Point {
        ms: f64,
        rows: u64,
    }
    nde_data::json_struct!(Point { ms, rows });

    #[test]
    fn trajectory_appends_records_and_reports_deltas() {
        let dir = std::env::temp_dir().join(format!("nde_traj_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let first = append_trajectory(path, &Point { ms: 10.0, rows: 5 }).unwrap();
        assert_eq!(first.len(), 1);
        // One record: nothing to diff yet.
        assert!(trajectory_delta(&first).is_none());

        let second = append_trajectory(path, &Point { ms: 5.0, rows: 5 }).unwrap();
        assert_eq!(second.len(), 2);
        let delta = trajectory_delta(&second).unwrap();
        assert!(delta.contains("ms: 10 -> 5"), "{delta}");
        assert!(delta.contains("-50.0%"), "{delta}");
        assert!(delta.contains("rows: 5 -> 5"), "{delta}");

        // The on-disk file is a well-formed array of records.
        let on_disk = Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(on_disk.as_arr().unwrap().len(), 2);
        for r in on_disk.as_arr().unwrap() {
            assert!(r.get("git_commit").is_some());
            assert!(r.get("timestamp").is_some());
            assert!(r.get("results").and_then(|v| v.get("ms")).is_some());
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trajectory_wraps_legacy_single_object_files() {
        let dir = std::env::temp_dir().join(format!("nde_traj_legacy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_legacy.json");
        let path = path.to_str().unwrap();
        // A pre-trajectory bench file: a bare results object.
        std::fs::write(path, "{\"ms\": 20.0, \"rows\": 5}").unwrap();

        let records = append_trajectory(path, &Point { ms: 10.0, rows: 5 }).unwrap();
        assert_eq!(records.len(), 2, "legacy object becomes record 0");
        assert_eq!(
            records[0].get("git_commit").and_then(Json::as_str),
            Some("unknown")
        );
        let delta = trajectory_delta(&records).unwrap();
        assert!(delta.contains("ms: 20 -> 10"), "{delta}");
        let _ = std::fs::remove_file(path);
    }
}
