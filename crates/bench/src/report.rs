//! Plain-text table rendering and JSON persistence for experiment reports,
//! plus the append-only bench trajectory: every bench run appends a
//! `{git_commit, timestamp, results}` record to its `BENCH_*.json` file so
//! regressions show up as a last-vs-previous delta instead of silently
//! overwriting history.

use nde_data::json::{Json, ToJson};
use nde_data::pool::{PoolStats, WorkerPool};

/// A simple aligned text table builder for experiment output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Serialize an experiment report as pretty JSON (for archival in CI).
pub fn to_json<T: ToJson>(report: &T) -> String {
    report.to_json().to_string_pretty()
}

/// Format a float with 4 decimals (the convention across experiment tables).
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// The current short git commit hash, or `"unknown"` outside a repository
/// (bench records must never fail just because git is unavailable).
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The runner class this bench is executing on: `NDE_RUNNER_CLASS` when
/// set (CI exports it per runner pool), otherwise `{os}-{arch}`. Timings
/// are only comparable within one class, so the regression gate
/// ([`check_trajectory`]) never diffs records across classes.
pub fn runner_class() -> String {
    std::env::var("NDE_RUNNER_CLASS")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .unwrap_or_else(|| format!("{}-{}", std::env::consts::OS, std::env::consts::ARCH))
}

/// Hardware threads visible to this process (1 when unknown). Recorded in
/// bench results so trajectory records are interpretable: a 4-thread
/// timing from a single-core runner is an overhead measurement, not a
/// scaling measurement.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Resident [`WorkerPool`] activity over a bench run, plus the hardware
/// context needed to interpret thread-scaling numbers. Serialized into
/// bench JSON so trajectory records show *how* the pool was exercised
/// (jobs dispatched, chunks claimed, park/wake churn), not just how long
/// the run took.
#[derive(Debug, Clone)]
pub struct PoolActivity {
    /// Jobs submitted to the shared pool during the run.
    pub jobs: u64,
    /// Adaptive chunks claimed from job cursors.
    pub chunks: u64,
    /// Times a worker parked waiting for work.
    pub parks: u64,
    /// Times a parked worker woke up.
    pub wakes: u64,
    /// Hardware threads on the machine that produced the record.
    pub hw_threads: u64,
}

nde_data::json_struct!(PoolActivity {
    jobs,
    chunks,
    parks,
    wakes,
    hw_threads
});

impl PoolActivity {
    /// Snapshot the shared pool's counters before a run (pair with
    /// [`PoolActivity::since`]).
    pub fn snapshot() -> PoolStats {
        WorkerPool::shared().stats()
    }

    /// The shared pool's activity since `before`, tagged with this
    /// machine's hardware thread count.
    pub fn since(before: PoolStats) -> PoolActivity {
        let now = WorkerPool::shared().stats();
        PoolActivity {
            jobs: now.jobs.saturating_sub(before.jobs),
            chunks: now.chunks.saturating_sub(before.chunks),
            parks: now.parks.saturating_sub(before.parks),
            wakes: now.wakes.saturating_sub(before.wakes),
            hw_threads: hardware_threads() as u64,
        }
    }
}

/// The thread-scaling gate for the engine smoke benches (E13 pipeline
/// exec, E14 Zorro fit): with `hw_threads >= 2` the multi-thread timing
/// must **strictly beat** the single-thread timing — a resident pool that
/// loses on real cores is a regression, full stop. On a single-core
/// runner a parallel win is physically impossible, so the gate degrades
/// to a bounded-overhead check: `multi_ms <= single_ms * (1 +
/// single_core_tolerance_pct/100)` (the pool may not *cost* much either).
///
/// Returns a greppable `scaling gate OK (...)` summary, or an `Err`
/// report the bench binaries print before exiting non-zero.
pub fn check_scaling_win(
    label: &str,
    single_ms: f64,
    multi_ms: f64,
    hw_threads: usize,
    single_core_tolerance_pct: f64,
) -> Result<String, String> {
    if hw_threads >= 2 {
        if multi_ms < single_ms {
            Ok(format!(
                "scaling gate OK ({label}): multi-thread {multi_ms:.3} ms beats \
                 single-thread {single_ms:.3} ms on {hw_threads} hardware threads"
            ))
        } else {
            Err(format!(
                "scaling gate FAILED ({label}): multi-thread {multi_ms:.3} ms does not beat \
                 single-thread {single_ms:.3} ms on {hw_threads} hardware threads"
            ))
        }
    } else {
        let bound = single_ms * (1.0 + single_core_tolerance_pct / 100.0);
        if multi_ms <= bound {
            Ok(format!(
                "scaling gate OK ({label}): single-core runner, multi-thread {multi_ms:.3} ms \
                 within +{single_core_tolerance_pct:.0}% of single-thread {single_ms:.3} ms"
            ))
        } else {
            Err(format!(
                "scaling gate FAILED ({label}): single-core runner, multi-thread {multi_ms:.3} ms \
                 exceeds single-thread {single_ms:.3} ms by more than \
                 {single_core_tolerance_pct:.0}% (bound {bound:.3} ms)"
            ))
        }
    }
}

/// The storage-backend gate for the E13 smoke bench: the typed columnar
/// backend must **strictly beat** the Value-per-cell reference backend on
/// exec ms/output-row for the same (bit-identical) workload. Unlike
/// [`check_scaling_win`] this holds on any core count — the plane kernels
/// and dictionary fast paths win sequentially, not just in parallel.
pub fn check_backend_win(
    label: &str,
    reference_ms: f64,
    columnar_ms: f64,
) -> Result<String, String> {
    if columnar_ms < reference_ms {
        Ok(format!(
            "backend gate OK ({label}): columnar {columnar_ms:.5} ms/row beats reference \
             {reference_ms:.5} ms/row ({:.2}x)",
            reference_ms / columnar_ms.max(1e-12)
        ))
    } else {
        Err(format!(
            "backend gate FAILED ({label}): columnar {columnar_ms:.5} ms/row does not beat \
             reference {reference_ms:.5} ms/row"
        ))
    }
}

fn unix_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Is this JSON object already a trajectory record?
fn is_record(v: &Json) -> bool {
    v.get("git_commit").is_some() && v.get("timestamp").is_some() && v.get("results").is_some()
}

/// Append one `{git_commit, timestamp, results}` record to the append-only
/// trajectory file at `path` and return the full record list (oldest
/// first). A pre-trajectory file holding a bare results object is wrapped
/// as the first record (commit/timestamp unknown) instead of being thrown
/// away; unparseable files are replaced.
pub fn append_trajectory<T: ToJson>(path: &str, results: &T) -> std::io::Result<Vec<Json>> {
    let mut records: Vec<Json> = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(Json::Arr(items)) => items.into_iter().filter(is_record).collect(),
            Ok(legacy @ Json::Obj(_)) if !is_record(&legacy) => vec![Json::Obj(vec![
                ("git_commit".into(), Json::Str("unknown".into())),
                ("timestamp".into(), Json::UInt(0)),
                ("results".into(), legacy),
            ])],
            Ok(record @ Json::Obj(_)) => vec![record],
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    records.push(Json::Obj(vec![
        ("git_commit".into(), Json::Str(git_commit())),
        ("timestamp".into(), Json::UInt(unix_timestamp())),
        ("runner".into(), Json::Str(runner_class())),
        ("results".into(), results.to_json()),
    ]));
    std::fs::write(path, Json::Arr(records.clone()).to_string_pretty())?;
    Ok(records)
}

/// Flatten every numeric leaf of a JSON tree into `(dotted.path, value)`
/// pairs, arrays indexed by position.
fn numeric_leaves(prefix: &str, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::UInt(_) | Json::Float(_) => {
            out.push((prefix.to_string(), v.as_f64().unwrap_or(0.0)));
        }
        Json::Obj(fields) => {
            for (k, child) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                numeric_leaves(&path, child, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                numeric_leaves(&format!("{prefix}[{i}]"), child, out);
            }
        }
        _ => {}
    }
}

/// Render the last-vs-previous delta of a trajectory (one line per numeric
/// leaf present in both records). `None` with fewer than two records —
/// nothing to compare against yet.
pub fn trajectory_delta(records: &[Json]) -> Option<String> {
    let [.., prev, last] = records else {
        return None;
    };
    let commit = |r: &Json| {
        r.get("git_commit")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string()
    };
    let mut prev_leaves = Vec::new();
    let mut last_leaves = Vec::new();
    numeric_leaves("", prev.get("results")?, &mut prev_leaves);
    numeric_leaves("", last.get("results")?, &mut last_leaves);
    let prev_map: std::collections::BTreeMap<&str, f64> =
        prev_leaves.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut out = format!("bench delta {} -> {}:\n", commit(prev), commit(last));
    let mut any = false;
    for (key, cur) in &last_leaves {
        let Some(&old) = prev_map.get(key.as_str()) else {
            continue;
        };
        any = true;
        let pct = if old.abs() > 1e-12 {
            format!(" ({:+.1}%)", (cur - old) / old * 100.0)
        } else {
            String::new()
        };
        out.push_str(&format!("  {key}: {old} -> {cur}{pct}\n"));
    }
    any.then_some(out)
}

/// The CI bench tolerance gate: compare the newest trajectory record
/// against the most recent **older record from the same runner class** and
/// flag every tracked metric that regressed by more than
/// `max_regression_pct` percent.
///
/// A metric is tracked when its dotted leaf path ends with one of
/// `tracked_suffixes` (e.g. `"ms_per_row"` matches both
/// `seq_tree_ms_per_row` and `par_arena_ms_per_row`); tracked metrics are
/// assumed lower-is-better. Returns:
///
/// * `Ok(None)` — nothing to compare: fewer than two records, or no older
///   record from the same runner class (cross-runner timings are not
///   comparable, and pre-gate records carry no runner tag);
/// * `Ok(Some(summary))` — every tracked metric is within tolerance;
/// * `Err(report)` — at least one metric regressed; the report lists each
///   violation. Bench binaries exit non-zero on this, which is what fails
///   the CI bench-smoke job.
pub fn check_trajectory(
    records: &[Json],
    tracked_suffixes: &[&str],
    max_regression_pct: f64,
) -> Result<Option<String>, String> {
    let Some((last, older)) = records.split_last() else {
        return Ok(None);
    };
    let runner_of = |r: &Json| -> String {
        r.get("runner")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string()
    };
    let commit_of = |r: &Json| -> String {
        r.get("git_commit")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string()
    };
    // Option-level comparison: a record predating the runner tag (None)
    // only ever matches another untagged record.
    let Some(baseline) = older.iter().rev().find(|r| {
        r.get("runner").and_then(Json::as_str) == last.get("runner").and_then(Json::as_str)
    }) else {
        return Ok(None);
    };
    let (Some(base_results), Some(last_results)) = (baseline.get("results"), last.get("results"))
    else {
        return Ok(None);
    };
    let mut base_leaves = Vec::new();
    let mut last_leaves = Vec::new();
    numeric_leaves("", base_results, &mut base_leaves);
    numeric_leaves("", last_results, &mut last_leaves);
    let base_map: std::collections::BTreeMap<&str, f64> =
        base_leaves.iter().map(|(k, v)| (k.as_str(), *v)).collect();

    let mut compared = 0usize;
    let mut violations = Vec::new();
    for (key, cur) in &last_leaves {
        if !tracked_suffixes.iter().any(|s| key.ends_with(s)) {
            continue;
        }
        let Some(&old) = base_map.get(key.as_str()) else {
            continue;
        };
        if old <= 0.0 {
            continue; // can't express a percentage budget over a zero base
        }
        compared += 1;
        let pct = (cur - old) / old * 100.0;
        if pct > max_regression_pct {
            violations.push(format!(
                "  {key}: {old:.5} -> {cur:.5} ({pct:+.1}%) exceeds +{max_regression_pct:.0}%"
            ));
        }
    }
    if !violations.is_empty() {
        return Err(format!(
            "bench regression gate FAILED vs {} on {}:\n{}",
            commit_of(baseline),
            runner_of(last),
            violations.join("\n")
        ));
    }
    Ok(Some(format!(
        "bench gate: {} tracked metric(s) within +{:.0}% of {} on {}",
        compared,
        max_regression_pct,
        commit_of(baseline),
        runner_of(last)
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["method", "acc"]);
        t.row(vec!["knn-shapley".into(), f(0.79)]);
        t.row(vec!["random".into(), f(0.7612345)]);
        let s = t.render();
        assert!(s.contains("method"));
        assert!(s.contains("0.7900"));
        assert!(s.contains("0.7612"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows align to the same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn json_serializes() {
        struct R {
            x: f64,
        }
        nde_data::json_struct!(R { x });
        let s = to_json(&R { x: 1.5 });
        assert!(s.contains("1.5"));
    }

    struct Point {
        ms: f64,
        rows: u64,
    }
    nde_data::json_struct!(Point { ms, rows });

    #[test]
    fn trajectory_appends_records_and_reports_deltas() {
        let dir = std::env::temp_dir().join(format!("nde_traj_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let first = append_trajectory(path, &Point { ms: 10.0, rows: 5 }).unwrap();
        assert_eq!(first.len(), 1);
        // One record: nothing to diff yet.
        assert!(trajectory_delta(&first).is_none());

        let second = append_trajectory(path, &Point { ms: 5.0, rows: 5 }).unwrap();
        assert_eq!(second.len(), 2);
        let delta = trajectory_delta(&second).unwrap();
        assert!(delta.contains("ms: 10 -> 5"), "{delta}");
        assert!(delta.contains("-50.0%"), "{delta}");
        assert!(delta.contains("rows: 5 -> 5"), "{delta}");

        // The on-disk file is a well-formed array of records.
        let on_disk = Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(on_disk.as_arr().unwrap().len(), 2);
        for r in on_disk.as_arr().unwrap() {
            assert!(r.get("git_commit").is_some());
            assert!(r.get("timestamp").is_some());
            assert!(r.get("results").and_then(|v| v.get("ms")).is_some());
        }
        let _ = std::fs::remove_file(path);
    }

    fn record(commit: &str, runner: Option<&str>, ms_per_row: f64) -> Json {
        let mut fields = vec![
            ("git_commit".to_string(), Json::Str(commit.into())),
            ("timestamp".to_string(), Json::UInt(1)),
        ];
        if let Some(r) = runner {
            fields.push(("runner".to_string(), Json::Str(r.into())));
        }
        fields.push((
            "results".to_string(),
            Json::Obj(vec![
                ("soa_ms_per_row".to_string(), Json::Float(ms_per_row)),
                ("rows".to_string(), Json::UInt(100)),
            ]),
        ));
        Json::Obj(fields)
    }

    #[test]
    fn check_trajectory_gates_regressions_per_runner() {
        let suffixes = &["ms_per_row"];
        // Fewer than two records: nothing to compare.
        assert_eq!(check_trajectory(&[], suffixes, 40.0), Ok(None));
        assert_eq!(
            check_trajectory(&[record("a", Some("ci"), 1.0)], suffixes, 40.0),
            Ok(None)
        );
        // Within tolerance (+20% < +40%): passes and reports the baseline.
        let ok = check_trajectory(
            &[record("a", Some("ci"), 1.0), record("b", Some("ci"), 1.2)],
            suffixes,
            40.0,
        )
        .unwrap()
        .unwrap();
        assert!(ok.contains("1 tracked metric"), "{ok}");
        assert!(ok.contains("of a on ci"), "{ok}");
        // Beyond tolerance: fails with the offending metric named.
        let err = check_trajectory(
            &[record("a", Some("ci"), 1.0), record("b", Some("ci"), 1.5)],
            suffixes,
            40.0,
        )
        .unwrap_err();
        assert!(err.contains("soa_ms_per_row"), "{err}");
        assert!(err.contains("+50.0%"), "{err}");
        // Untracked leaves (rows) are ignored even when they jump.
        assert!(check_trajectory(
            &[record("a", Some("ci"), 1.0), record("b", Some("ci"), 1.0)],
            &["nothing_matches"],
            0.0,
        )
        .unwrap()
        .unwrap()
        .contains("0 tracked"));
        // A different runner class is never used as baseline; the most
        // recent *matching* one is.
        let mixed = [
            record("a", Some("ci"), 1.0),
            record("b", Some("laptop"), 0.1),
            record("c", Some("ci"), 1.3),
        ];
        let ok = check_trajectory(&mixed, suffixes, 40.0).unwrap().unwrap();
        assert!(ok.contains("of a on ci"), "{ok}");
        // Untagged history never matches a tagged record (and vice versa).
        assert_eq!(
            check_trajectory(
                &[record("a", None, 1.0), record("b", Some("ci"), 99.0)],
                suffixes,
                40.0
            ),
            Ok(None)
        );
        // Faster is always fine.
        assert!(check_trajectory(
            &[record("a", Some("ci"), 1.0), record("b", Some("ci"), 0.2)],
            suffixes,
            0.0,
        )
        .is_ok());
    }

    #[test]
    fn scaling_gate_is_strict_on_multicore_and_bounded_on_single_core() {
        // Multi-core: a strict win passes, a tie or loss fails, tolerance
        // is ignored.
        let ok = check_scaling_win("exec", 10.0, 8.0, 4, 0.0).unwrap();
        assert!(ok.contains("scaling gate OK"), "{ok}");
        assert!(ok.contains("4 hardware threads"), "{ok}");
        let err = check_scaling_win("exec", 10.0, 10.0, 4, 100.0).unwrap_err();
        assert!(err.contains("scaling gate FAILED"), "{err}");
        assert!(check_scaling_win("exec", 10.0, 12.0, 2, 100.0).is_err());

        // Single-core: winning is not required, but overhead is bounded.
        let ok = check_scaling_win("fit", 10.0, 11.0, 1, 25.0).unwrap();
        assert!(ok.contains("single-core"), "{ok}");
        assert!(check_scaling_win("fit", 10.0, 12.49, 1, 25.0).is_ok());
        let err = check_scaling_win("fit", 10.0, 13.0, 1, 25.0).unwrap_err();
        assert!(err.contains("scaling gate FAILED"), "{err}");
    }

    #[test]
    fn pool_activity_counts_shared_pool_jobs() {
        let before = PoolActivity::snapshot();
        // Drive a map through the shared pool with enough hinted work per
        // item that the cost-aware clamp keeps it parallel.
        let stop = std::sync::atomic::AtomicBool::new(false);
        let out = WorkerPool::shared()
            .map_indexed::<u64, (), _>(
                4,
                0..64,
                &stop,
                nde_data::par::CostHint::PerItemNanos(50_000),
                Ok,
            )
            .unwrap();
        assert_eq!(out.len(), 64);
        let activity = PoolActivity::since(before);
        if WorkerPool::shared().workers() > 0 {
            assert!(activity.jobs >= 1, "{activity:?}");
            assert!(activity.chunks >= 1, "{activity:?}");
        }
        assert_eq!(activity.hw_threads, hardware_threads() as u64);
        // Serializes with every counter as a numeric leaf.
        let json = activity.to_json();
        for key in ["jobs", "chunks", "parks", "wakes", "hw_threads"] {
            assert!(json.get(key).and_then(Json::as_f64).is_some(), "{key}");
        }
    }

    #[test]
    fn appended_records_carry_the_runner_class() {
        let dir = std::env::temp_dir().join(format!("nde_traj_runner_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_runner.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        let records = append_trajectory(path, &Point { ms: 1.0, rows: 1 }).unwrap();
        assert_eq!(
            records[0].get("runner").and_then(Json::as_str),
            Some(runner_class().as_str())
        );
        assert!(!runner_class().is_empty());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trajectory_wraps_legacy_single_object_files() {
        let dir = std::env::temp_dir().join(format!("nde_traj_legacy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_legacy.json");
        let path = path.to_str().unwrap();
        // A pre-trajectory bench file: a bare results object.
        std::fs::write(path, "{\"ms\": 20.0, \"rows\": 5}").unwrap();

        let records = append_trajectory(path, &Point { ms: 10.0, rows: 5 }).unwrap();
        assert_eq!(records.len(), 2, "legacy object becomes record 0");
        assert_eq!(
            records[0].get("git_commit").and_then(Json::as_str),
            Some("unknown")
        );
        let delta = trajectory_delta(&records).unwrap();
        assert!(delta.contains("ms: 20 -> 10"), "{delta}");
        let _ = std::fs::remove_file(path);
    }
}
