//! E15 — durability: what crash-safety costs and what recovery buys.
//!
//! * **Checkpoint overhead** — the same TMC-Shapley sweep with and without
//!   a durable [`RunStore`], across checkpoint intervals: total wall-clock
//!   overhead, records written, and ms per checkpoint save. Store-backed
//!   runs must stay **bit-identical** to plain ones (asserted per cell) —
//!   the overhead buys durability, never a different answer.
//! * **Crash recovery** — a store-backed run is cut partway (the process
//!   "dies"), then a fresh process re-opens the store and resumes to
//!   completion. Measured both with intact records and with the newest
//!   record torn mid-write (recovery falls back one checkpoint interval).
//!   Recovered scores are asserted bit-identical to an uninterrupted run.

use nde::importance::{banzhaf, tmc_shapley, BanzhafParams, ImportanceRun, TmcParams};
use nde::robust::chaos::truncate_record;
use nde::robust::{RunBudget, RunStore};
use nde::NdeError;
use nde_data::generate::blobs::two_gaussians;
use nde_importance::ImportanceError;
use nde_ml::dataset::Dataset;
use nde_ml::models::knn::KnnClassifier;
use std::path::PathBuf;
use std::time::Instant;

/// Checkpoint-overhead timing at one checkpoint interval.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Permutations between checkpoint saves.
    pub every: usize,
    /// Best-of-`reps` ms without a store.
    pub plain_ms: f64,
    /// Best-of-`reps` ms with a store and auto-checkpointing.
    pub durable_ms: f64,
    /// `(durable_ms - plain_ms) / plain_ms * 100`.
    pub overhead_pct: f64,
    /// Checkpoint records written per run.
    pub checkpoints: usize,
    /// Overhead per checkpoint save (ms).
    pub save_ms: f64,
}

nde_data::json_struct!(OverheadPoint {
    every,
    plain_ms,
    durable_ms,
    overhead_pct,
    checkpoints,
    save_ms
});

/// Crash-recovery timing for one estimator.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    /// Estimator ("tmc-shapley" or "banzhaf").
    pub method: String,
    /// Whether the newest record was torn before recovery.
    pub torn: bool,
    /// Step the crash cut the run at.
    pub cut_step: usize,
    /// Total steps of the full run.
    pub total_steps: usize,
    /// Step recovery actually resumed from (one interval earlier when the
    /// newest record is torn).
    pub resumed_from: usize,
    /// Best-of-`reps` ms to re-open the store and finish the run.
    pub recover_ms: f64,
    /// Best-of-`reps` ms of the uninterrupted run (no store) — recovery
    /// repeats only the lost tail, so this is the ceiling.
    pub full_ms: f64,
}

nde_data::json_struct!(RecoveryPoint {
    method,
    torn,
    cut_step,
    total_steps,
    resumed_from,
    recover_ms,
    full_ms
});

/// Report for E15.
#[derive(Debug, Clone)]
pub struct DurabilityReport {
    /// Training rows.
    pub rows: usize,
    /// TMC permutations (= checkpointable steps).
    pub permutations: usize,
    /// Repetitions per cell (best-of).
    pub reps: usize,
    /// One point per checkpoint interval.
    pub overhead: Vec<OverheadPoint>,
    /// Recovery timings (clean and torn, per estimator).
    pub recovery: Vec<RecoveryPoint>,
}

nde_data::json_struct!(DurabilityReport {
    rows,
    permutations,
    reps,
    overhead,
    recovery
});

fn split(rows: usize, seed: u64) -> (Dataset, Dataset) {
    let n_valid = (rows / 4).max(8);
    let nd = two_gaussians(rows + n_valid, 3, 1.5, seed);
    let all = Dataset::try_from(&nd).expect("finite blobs");
    (
        all.subset(&(0..rows).collect::<Vec<_>>()),
        all.subset(&(rows..rows + n_valid).collect::<Vec<_>>()),
    )
}

fn fresh_store(dir: &PathBuf) -> Result<RunStore, NdeError> {
    std::fs::remove_dir_all(dir).ok();
    Ok(RunStore::open(dir).map_err(ImportanceError::from)?)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: value {i} differs");
    }
}

/// Run E15: checkpoint overhead across `intervals`, then crash recovery
/// (clean and torn) for TMC-Shapley and Banzhaf.
pub fn run(
    rows: usize,
    permutations: usize,
    intervals: &[usize],
    reps: usize,
    seed: u64,
) -> Result<DurabilityReport, NdeError> {
    assert!(rows >= 16 && permutations >= 4 && !intervals.is_empty() && reps >= 1);
    let (train, valid) = split(rows, seed);
    let knn = KnnClassifier::new(3);
    let tmc_params = TmcParams {
        permutations,
        truncation_tolerance: 0.0,
    };
    let store_dir = std::env::temp_dir().join(format!("nde-bench-durable-{}", std::process::id()));
    let best_of = |f: &mut dyn FnMut() -> Result<Vec<f64>, NdeError>| {
        let mut best = f64::INFINITY;
        let mut scores = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            scores = f()?;
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        Ok::<_, NdeError>((best, scores))
    };

    // --- checkpoint overhead ---
    let (plain_ms, reference) = best_of(&mut || {
        Ok(
            tmc_shapley(&ImportanceRun::new(seed), &knn, &train, &valid, &tmc_params)?
                .scores
                .values,
        )
    })?;
    let mut overhead = Vec::new();
    for &every in intervals {
        let mut checkpoints = 0usize;
        let (durable_ms, durable_scores) = best_of(&mut || {
            // A fresh store per rep: a leftover completed record would turn
            // the timed run into a no-op resume.
            let store = fresh_store(&store_dir)?;
            let out = tmc_shapley(
                &ImportanceRun::new(seed)
                    .with_store(&store)
                    .with_auto_checkpoint(every as u64),
                &knn,
                &train,
                &valid,
                &tmc_params,
            )?;
            let fp = out
                .report
                .fingerprint
                .clone()
                .expect("store runs report it");
            checkpoints = store
                .record_paths(&fp)
                .map_err(ImportanceError::from)?
                .len();
            Ok(out.scores.values)
        })?;
        assert_bits_eq(
            &durable_scores,
            &reference,
            "store-backed TMC must match plain",
        );
        overhead.push(OverheadPoint {
            every,
            plain_ms,
            durable_ms,
            overhead_pct: (durable_ms - plain_ms) / plain_ms.max(1e-9) * 100.0,
            checkpoints,
            save_ms: (durable_ms - plain_ms) / checkpoints.max(1) as f64,
        });
    }

    // --- crash recovery ---
    let banzhaf_params = BanzhafParams {
        samples: permutations,
    };
    let (banzhaf_full_ms, banzhaf_reference) = best_of(&mut || {
        Ok(banzhaf(
            &ImportanceRun::new(seed),
            &knn,
            &train,
            &valid,
            &banzhaf_params,
        )?
        .scores
        .values)
    })?;
    let every = *intervals.first().unwrap();
    let cut = ((permutations / 2) / every.max(1)).max(1) * every;
    let mut recovery = Vec::new();
    for method in ["tmc-shapley", "banzhaf"] {
        for torn in [false, true] {
            let mut resumed_from = 0usize;
            let mut recover_ms = f64::INFINITY;
            let mut scores = Vec::new();
            for _ in 0..reps {
                // Untimed crash phase: run to `cut`, then "die"; optionally
                // tear the newest record mid-write.
                let store = fresh_store(&store_dir)?;
                let opts = || {
                    ImportanceRun::new(seed)
                        .with_store(&store)
                        .with_auto_checkpoint(every as u64)
                };
                let budget = RunBudget::unlimited().with_max_iterations(cut as u64);
                let fp = match method {
                    "tmc-shapley" => {
                        tmc_shapley(
                            &opts().with_budget(budget),
                            &knn,
                            &train,
                            &valid,
                            &tmc_params,
                        )?
                        .report
                        .fingerprint
                    }
                    _ => {
                        banzhaf(
                            &opts().with_budget(budget),
                            &knn,
                            &train,
                            &valid,
                            &banzhaf_params,
                        )?
                        .report
                        .fingerprint
                    }
                }
                .expect("store runs report it");
                if torn {
                    let records = store.record_paths(&fp).map_err(ImportanceError::from)?;
                    let (_, newest) = records.last().expect("cut run left records");
                    let half = std::fs::metadata(newest)
                        .map(|m| m.len() as usize / 2)
                        .unwrap_or(0);
                    truncate_record(newest, half).map_err(ImportanceError::from)?;
                }
                resumed_from = store
                    .latest_valid(&fp)
                    .map_err(ImportanceError::from)?
                    .map_or(0, |r| r.step as usize);

                // Timed recovery: a "fresh process" re-opens the store and
                // auto-resumes to completion.
                let t0 = Instant::now();
                let reopened = RunStore::open(&store_dir).map_err(ImportanceError::from)?;
                let out = match method {
                    "tmc-shapley" => tmc_shapley(
                        &ImportanceRun::new(seed).with_store(&reopened),
                        &knn,
                        &train,
                        &valid,
                        &tmc_params,
                    )?,
                    _ => banzhaf(
                        &ImportanceRun::new(seed).with_store(&reopened),
                        &knn,
                        &train,
                        &valid,
                        &banzhaf_params,
                    )?,
                };
                recover_ms = recover_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                scores = out.scores.values;
            }
            let (reference, full_ms) = match method {
                "tmc-shapley" => (&reference, plain_ms),
                _ => (&banzhaf_reference, banzhaf_full_ms),
            };
            assert_bits_eq(&scores, reference, "recovered scores must match uncut run");
            let expected_resume = if torn { cut - every } else { cut };
            assert_eq!(resumed_from, expected_resume, "{method} torn={torn}");
            recovery.push(RecoveryPoint {
                method: method.to_string(),
                torn,
                cut_step: cut,
                total_steps: permutations,
                resumed_from,
                recover_ms,
                full_ms,
            });
        }
    }
    std::fs::remove_dir_all(&store_dir).ok();

    Ok(DurabilityReport {
        rows,
        permutations,
        reps,
        overhead,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_and_recovery_are_recorded_and_bit_identical() {
        let r = run(60, 8, &[2, 4], 1, 33).unwrap();
        assert_eq!(r.overhead.len(), 2);
        assert_eq!(r.overhead[0].checkpoints, 4);
        assert_eq!(r.overhead[1].checkpoints, 2);
        assert_eq!(r.recovery.len(), 4);
        for p in &r.recovery {
            assert_eq!(p.cut_step, 4);
            assert_eq!(p.resumed_from, if p.torn { 2 } else { 4 }, "{p:?}");
            assert!(p.recover_ms > 0.0);
        }
    }
}
