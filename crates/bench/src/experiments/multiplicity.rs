//! E9 — §2.3 (Meyer et al., FAccT'23): prediction flip rate under dataset
//! multiplicity as the number of unreliable labels grows.
//!
//! Expected shape: the fraction of test points whose prediction depends on
//! the resolution of the uncertain labels grows monotonically with the
//! number of uncertain labels.

use nde::data::generate::blobs::two_gaussians;
use nde::data::rng::{sample_indices, seeded};
use nde::ml::dataset::Dataset;
use nde::ml::models::knn::KnnClassifier;
use nde::uncertain::multiplicity::{multiplicity_exact, multiplicity_sampled};
use nde::NdeError;

/// One point of the flip-rate curve.
#[derive(Debug, Clone)]
pub struct FlipPoint {
    /// Number of uncertain labels.
    pub uncertain_labels: usize,
    /// Fraction of test predictions that flip across worlds.
    pub flip_rate: f64,
    /// Worlds evaluated (2^k exact, or the sample budget).
    pub worlds: usize,
}

nde_data::json_struct!(FlipPoint {
    uncertain_labels,
    flip_rate,
    worlds
});

/// Report for E9.
#[derive(Debug, Clone)]
pub struct MultiplicityReport {
    /// The curve, in sweep order.
    pub points: Vec<FlipPoint>,
}

nde_data::json_struct!(MultiplicityReport { points });

/// Run E9: sweep the number of uncertain labels (exact enumeration up to
/// [`nde::uncertain::multiplicity::EXACT_LIMIT`], sampling beyond).
pub fn run(
    n_train: usize,
    n_test: usize,
    counts: &[usize],
    seed: u64,
) -> Result<MultiplicityReport, NdeError> {
    // Moderately overlapping blobs so that label flips actually matter.
    let nd = two_gaussians(n_train + n_test, 2, 2.5, seed);
    let all = Dataset::try_from(&nd)?;
    let train = all.subset(&(0..n_train).collect::<Vec<_>>());
    let test = all.subset(&(n_train..n_train + n_test).collect::<Vec<_>>());
    let template = KnnClassifier::new(1);

    // Nested uncertain sets for monotonicity by construction.
    let max_count = counts.iter().copied().max().unwrap_or(0);
    let mut rng = seeded(seed ^ 0xe9);
    let pool = sample_indices(n_train, max_count, &mut rng);

    let mut points = Vec::with_capacity(counts.len());
    for &k in counts {
        let uncertain = &pool[..k.min(pool.len())];
        let report = if k <= nde::uncertain::multiplicity::EXACT_LIMIT {
            multiplicity_exact(&template, &train, uncertain, &test.x)?
        } else {
            multiplicity_sampled(&template, &train, uncertain, &test.x, 256, seed)?
        };
        points.push(FlipPoint {
            uncertain_labels: k,
            flip_rate: report.flip_rate(),
            worlds: report.worlds,
        });
    }
    Ok(MultiplicityReport { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_rate_grows_with_uncertainty() {
        let r = run(60, 40, &[0, 2, 6, 12], 23).unwrap();
        assert_eq!(r.points[0].flip_rate, 0.0);
        for w in r.points.windows(2) {
            assert!(
                w[1].flip_rate >= w[0].flip_rate - 1e-9,
                "not monotone: {:?}",
                r.points
            );
        }
        assert!(r.points[3].flip_rate > 0.0, "{:?}", r.points);
        assert_eq!(r.points[3].worlds, 1 << 12);
    }

    #[test]
    fn sampling_kicks_in_beyond_exact_limit() {
        let r = run(60, 20, &[20], 24).unwrap();
        assert_eq!(r.points[0].worlds, 256);
    }
}
