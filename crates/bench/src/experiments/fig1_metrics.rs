//! E4 — Fig. 1's "Quality Metric Results" table.
//!
//! The figure motivates the tutorial with a metric panel over a dirty
//! pipeline: correctness (accuracy 0.87, F1 0.65), fairness (equalized odds
//! 0.84, predictive parity 0.58) and stability (entropy 0.16). We reproduce
//! the *panel*: train the reference classifier on error-injected letters and
//! compute the same five metrics, with seniority (years of experience above
//! the median) as the sensitive group attribute.

use nde::api::LettersEncoding;
use nde::data::generate::hiring::LABEL_COLUMN;
use nde::data::inject::flip_labels;
use nde::ml::metrics::{quality_report, QualityReport};
use nde::ml::model::Classifier;
use nde::ml::models::knn::KnnClassifier;
use nde::scenario::load_recommendation_letters;
use nde::NdeError;

/// Report for the Fig. 1 metric panel.
#[derive(Debug, Clone)]
pub struct Fig1Report {
    /// Accuracy on validation data.
    pub accuracy: f64,
    /// F1 of the positive class.
    pub f1: f64,
    /// Equalized-odds score (1 = fair).
    pub equalized_odds: f64,
    /// Predictive-parity score (1 = fair).
    pub predictive_parity: f64,
    /// Normalized prediction entropy.
    pub entropy: f64,
}

nde_data::json_struct!(Fig1Report {
    accuracy,
    f1,
    equalized_odds,
    predictive_parity,
    entropy
});

impl From<QualityReport> for Fig1Report {
    fn from(q: QualityReport) -> Self {
        Fig1Report {
            accuracy: q.accuracy,
            f1: q.f1,
            equalized_odds: q.equalized_odds,
            predictive_parity: q.predictive_parity,
            entropy: q.entropy,
        }
    }
}

/// Run E4: metrics of a model trained on dirty data.
pub fn run(n: usize, error_fraction: f64, seed: u64) -> Result<Fig1Report, NdeError> {
    let scenario = load_recommendation_letters(n, seed);
    let mut dirty = scenario.train.clone();
    flip_labels(&mut dirty, LABEL_COLUMN, error_fraction, seed ^ 1)?;

    let enc = LettersEncoding::fit(&dirty)?;
    let train = enc.dataset(&dirty)?;
    let valid = enc.dataset(&scenario.valid)?;
    let mut model = KnnClassifier::new(5);
    model.fit(&train)?;

    let y_pred: Vec<usize> = valid.x.iter_rows().map(|r| model.predict_one(r)).collect();
    let probas: Vec<Vec<f64>> = valid
        .x
        .iter_rows()
        .map(|r| model.predict_proba_one(r))
        .collect();

    // Sensitive groups: years_experience above/below the validation median.
    let years: Vec<f64> = (0..scenario.valid.n_rows())
        .map(|r| {
            scenario
                .valid
                .get(r, "years_experience")
                .expect("column exists")
                .as_float()
                .unwrap_or(0.0)
        })
        .collect();
    let mut sorted = years.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = sorted[sorted.len() / 2];
    let groups: Vec<usize> = years.iter().map(|&v| usize::from(v > median)).collect();

    let q = quality_report(&valid.y, &y_pred, &probas, &groups)?;
    Ok(q.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_has_sane_shapes() {
        let r = run(300, 0.15, 5).unwrap();
        assert!(r.accuracy > 0.5 && r.accuracy < 1.0);
        assert!(r.f1 > 0.0 && r.f1 <= 1.0);
        assert!((0.0..=1.0).contains(&r.equalized_odds));
        assert!((0.0..=1.0).contains(&r.predictive_parity));
        assert!((0.0..=1.0).contains(&r.entropy));
    }

    #[test]
    fn more_errors_lower_accuracy() {
        let clean = run(300, 0.0, 6).unwrap();
        let dirty = run(300, 0.3, 6).unwrap();
        assert!(dirty.accuracy < clean.accuracy);
    }
}
