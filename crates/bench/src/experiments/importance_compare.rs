//! E5 — §2.1 survey claim: how well do the importance methods *detect*
//! injected label errors?
//!
//! Metric: precision@k (k = number of injected errors) of the bottom-k
//! ranking, per method, on the same corrupted blob dataset. Expected shape:
//! every importance method ≫ random; KNN-Shapley and confident learning are
//! among the strongest; Beta-Shapley (small-coalition weighting) beats plain
//! Monte-Carlo Shapley at equal budget.

use nde::cleaning::strategy::Strategy;
use nde::data::generate::blobs::two_gaussians;
use nde::importance::aum::AumConfig;
use nde::importance::banzhaf::BanzhafConfig;
use nde::importance::beta_shapley::BetaShapleyConfig;
use nde::importance::confident::ConfidentConfig;
use nde::importance::influence::InfluenceConfig;
use nde::importance::shapley_mc::ShapleyConfig;
use nde::ml::dataset::Dataset;
use nde::NdeError;

/// Detection quality of one method.
#[derive(Debug, Clone)]
pub struct MethodScore {
    /// Method name.
    pub method: String,
    /// Precision@k with k = number of injected errors.
    pub precision_at_k: f64,
}

nde_data::json_struct!(MethodScore {
    method,
    precision_at_k
});

/// Report for E5.
#[derive(Debug, Clone)]
pub struct ImportanceCompareReport {
    /// Number of training points.
    pub n_train: usize,
    /// Number of injected label errors.
    pub n_errors: usize,
    /// Per-method detection quality, in the evaluation order.
    pub methods: Vec<MethodScore>,
}

nde_data::json_struct!(ImportanceCompareReport {
    n_train,
    n_errors,
    methods
});

/// The method lineup evaluated by E5.
pub fn lineup() -> Vec<Strategy> {
    vec![
        Strategy::Random { seed: 77 },
        Strategy::Loo,
        Strategy::KnnShapley { k: 1 },
        Strategy::TmcShapley(ShapleyConfig {
            permutations: 60,
            truncation_tolerance: 0.01,
            seed: 1,
            threads: 1,
        }),
        Strategy::Banzhaf(BanzhafConfig {
            samples: 120,
            seed: 2,
            threads: 1,
        }),
        Strategy::BetaShapley(BetaShapleyConfig {
            samples_per_point: 12,
            seed: 3,
            ..Default::default()
        }),
        Strategy::Aum(AumConfig::default()),
        Strategy::ConfidentLearning(ConfidentConfig::default()),
        Strategy::Influence(InfluenceConfig::default()),
    ]
}

/// Build the corrupted workload: Gaussian blobs with `error_fraction`
/// flipped labels. Returns `(train, valid, flipped_indices)`.
pub fn workload(
    n_train: usize,
    n_valid: usize,
    error_fraction: f64,
    seed: u64,
) -> (Dataset, Dataset, Vec<usize>) {
    let nd = two_gaussians(n_train + n_valid, 4, 4.0, seed);
    let all = Dataset::try_from(&nd).expect("blob data is well-formed");
    let mut train = all.subset(&(0..n_train).collect::<Vec<_>>());
    let valid = all.subset(&(n_train..n_train + n_valid).collect::<Vec<_>>());
    let k = (n_train as f64 * error_fraction).round() as usize;
    let mut rng = nde::data::rng::seeded(seed ^ 0xe5);
    let flipped = nde::data::rng::sample_indices(n_train, k, &mut rng);
    for &f in &flipped {
        train.y[f] = 1 - train.y[f];
    }
    (train, valid, flipped)
}

/// Run E5.
pub fn run(
    n_train: usize,
    error_fraction: f64,
    seed: u64,
) -> Result<ImportanceCompareReport, NdeError> {
    let (train, valid, flipped) = workload(n_train, n_train / 3, error_fraction, seed);
    let truth: std::collections::HashSet<usize> = flipped.iter().copied().collect();
    let k = flipped.len();
    let mut methods = Vec::new();
    for strategy in lineup() {
        let order = strategy.rank(&train, &valid)?;
        let hits = order[..k].iter().filter(|i| truth.contains(i)).count();
        methods.push(MethodScore {
            method: strategy.name().to_string(),
            precision_at_k: hits as f64 / k.max(1) as f64,
        });
    }
    Ok(ImportanceCompareReport {
        n_train,
        n_errors: k,
        methods,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn importance_methods_beat_random() {
        let r = run(120, 0.1, 11).unwrap();
        assert_eq!(r.n_errors, 12);
        let get = |name: &str| {
            r.methods
                .iter()
                .find(|m| m.method == name)
                .map(|m| m.precision_at_k)
                .unwrap()
        };
        let random = get("random");
        for name in ["knn-shapley", "confident-learning", "aum"] {
            assert!(
                get(name) > random,
                "{name} ({}) should beat random ({random})",
                get(name)
            );
        }
        // LOO is known to be noisy under redundancy (many zero marginals with
        // a 1-NN utility) — the survey's own motivation for Shapley values.
        // It must still not be *worse* than random.
        assert!(
            get("loo") >= random,
            "loo ({}) below random ({random})",
            get("loo")
        );
        assert!(get("knn-shapley") >= 0.5);
    }
}
