//! E8 — §2.3 (Karlaš et al. VLDB'20): certain-prediction coverage of a
//! 1-NN classifier as training-feature missingness grows.
//!
//! Expected shape: coverage (fraction of test queries whose prediction is
//! identical in every possible world) decreases monotonically with the
//! missing rate, while accuracy *on the certain subset* stays high.

use nde::data::generate::blobs::two_gaussians;
use nde::data::rng::{sample_indices, seeded};
use nde::ml::dataset::Dataset;
use nde::uncertain::certain_knn::certain_coverage;
use nde::uncertain::symbolic::{column_bounds_from_observed, SymbolicMatrix};
use nde::NdeError;
use nde_data::rng::Rng;

/// One point of the coverage curve.
#[derive(Debug, Clone)]
pub struct CoveragePoint {
    /// Fraction of training cells made missing.
    pub missing_fraction: f64,
    /// Certain-prediction coverage on the test queries.
    pub coverage: f64,
    /// Accuracy of the certain predictions (against true labels).
    pub certain_accuracy: f64,
}

nde_data::json_struct!(CoveragePoint {
    missing_fraction,
    coverage,
    certain_accuracy
});

/// Report for E8.
#[derive(Debug, Clone)]
pub struct CertainPredictionReport {
    /// The curve, in sweep order.
    pub points: Vec<CoveragePoint>,
}

nde_data::json_struct!(CertainPredictionReport { points });

/// Run E8 over the given missing fractions.
pub fn run(
    n_train: usize,
    n_test: usize,
    fractions: &[f64],
    seed: u64,
) -> Result<CertainPredictionReport, NdeError> {
    let nd = two_gaussians(n_train + n_test, 3, 4.0, seed);
    let all = Dataset::try_from(&nd)?;
    let train = all.subset(&(0..n_train).collect::<Vec<_>>());
    let test = all.subset(&(n_train..n_train + n_test).collect::<Vec<_>>());
    let bounds = column_bounds_from_observed(&train.x);
    let d = train.dim();

    // Nested missing-cell sets so the sweep is monotone by construction.
    let total_cells = n_train * d;
    let max_missing =
        (fractions.iter().fold(0.0f64, |a, &b| a.max(b)) * total_cells as f64).round() as usize;
    let mut rng = seeded(seed ^ 0xe8);
    let all_missing: Vec<(usize, usize)> = sample_indices(total_cells, max_missing, &mut rng)
        .into_iter()
        .map(|flat| (flat / d, flat % d))
        .collect();

    let mut points = Vec::with_capacity(fractions.len());
    for &frac in fractions {
        let k = (frac * total_cells as f64).round() as usize;
        let missing = &all_missing[..k.min(all_missing.len())];
        let sym = SymbolicMatrix::from_matrix_with_missing(&train.x, missing, &bounds)?;
        let (coverage, outcomes) = certain_coverage(&sym, &train.y, &test.x)?;
        let mut certain_correct = 0usize;
        let mut certain_total = 0usize;
        for (o, &truth) in outcomes.iter().zip(&test.y) {
            if o.is_certain() {
                certain_total += 1;
                if o.label() == truth {
                    certain_correct += 1;
                }
            }
        }
        points.push(CoveragePoint {
            missing_fraction: frac,
            coverage,
            certain_accuracy: if certain_total > 0 {
                certain_correct as f64 / certain_total as f64
            } else {
                0.0
            },
        });
    }
    // A world-sampling check is done in tests; a wide missing-cell budget is
    // deliberately allowed to drive coverage to 0 at the high end.
    Ok(CertainPredictionReport { points })
}

/// Sanity cross-check used by tests and the binary: a certain verdict must
/// agree with predictions in randomly sampled worlds.
pub fn sampled_world_agreement(
    n_train: usize,
    missing_fraction: f64,
    seed: u64,
) -> Result<f64, NdeError> {
    let nd = two_gaussians(n_train + 20, 3, 4.0, seed);
    let all = Dataset::try_from(&nd)?;
    let train = all.subset(&(0..n_train).collect::<Vec<_>>());
    let test = all.subset(&(n_train..n_train + 20).collect::<Vec<_>>());
    let bounds = column_bounds_from_observed(&train.x);
    let d = train.dim();
    let total = n_train * d;
    let mut rng = seeded(seed ^ 0xa9);
    let missing: Vec<(usize, usize)> = sample_indices(
        total,
        (missing_fraction * total as f64).round() as usize,
        &mut rng,
    )
    .into_iter()
    .map(|flat| (flat / d, flat % d))
    .collect();
    let sym = SymbolicMatrix::from_matrix_with_missing(&train.x, &missing, &bounds)?;
    let (_, outcomes) = certain_coverage(&sym, &train.y, &test.x)?;

    // For each certain test point, sample imputations and check agreement.
    let mut agreements = 0usize;
    let mut checks = 0usize;
    for _ in 0..5 {
        let mut world = train.x.clone();
        for &(r, c) in &missing {
            let b = bounds[c];
            world.set(r, c, b.lo + rng.gen::<f64>() * b.width());
        }
        let world_ds = Dataset::new(world, train.y.clone(), 2)?;
        let mut knn = nde::ml::models::knn::KnnClassifier::new(1);
        use nde::ml::model::Classifier;
        knn.fit(&world_ds)?;
        for (t, o) in outcomes.iter().enumerate() {
            if o.is_certain() {
                checks += 1;
                if knn.predict_one(test.x.row(t)) == o.label() {
                    agreements += 1;
                }
            }
        }
    }
    Ok(if checks == 0 {
        1.0
    } else {
        agreements as f64 / checks as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_decreases_and_certain_subset_is_accurate() {
        let r = run(120, 60, &[0.0, 0.05, 0.15, 0.3], 19).unwrap();
        assert_eq!(r.points.len(), 4);
        assert!(r.points[0].coverage > 0.95, "{:?}", r.points);
        for w in r.points.windows(2) {
            assert!(
                w[1].coverage <= w[0].coverage + 1e-9,
                "coverage not monotone: {:?}",
                r.points
            );
        }
        assert!(r.points[3].coverage < r.points[0].coverage);
        // Certain predictions on clean blobs should be highly accurate.
        assert!(r.points[0].certain_accuracy > 0.9);
    }

    #[test]
    fn certain_verdicts_agree_with_sampled_worlds() {
        let agreement = sampled_world_agreement(80, 0.1, 20).unwrap();
        assert!(
            (agreement - 1.0).abs() < 1e-12,
            "certain predictions disagreed with a sampled world: {agreement}"
        );
    }
}
