//! E16 — incremental maintenance: what delta propagation buys over rerun.
//!
//! * **Per-fix propagation** — single-tuple fixes applied to an executed
//!   hiring pipeline through a [`PipelineSession`], one series per
//!   propagation path (cell patch, splice, rerun fallback), timed against
//!   full provenance-tracked re-execution of the same mutated sources.
//!   Every maintained table *and* lineage is asserted bit-identical to the
//!   fresh run before anything is timed — the speedup buys latency, never a
//!   different answer.
//! * **Cleaning-loop maintenance** — the same prioritized-cleaning run
//!   under `MaintenanceMode::Rerun` (refit + re-evaluate per round) vs
//!   `MaintenanceMode::Incremental` (label patches into a cached
//!   evaluator), with the score traces asserted bit-identical.
//!
//! Expected shape: cell patches and splices beat re-execution by an order
//! of magnitude (they touch only affected rows); the rerun fallback tracks
//! full re-execution (it *is* one, plus bookkeeping); incremental cleaning
//! beats rerun cleaning because per-round evaluation stops scaling with
//! the training-set size.

use crate::experiments::importance_compare::workload;
use nde::cleaning::{prioritized_cleaning, LabelOracle, MaintenanceMode, Strategy};
use nde::ml::models::knn::KnnClassifier;
use nde::pipeline::exec::Executor;
use nde::pipeline::{Delta, PipelineSession, Plan};
use nde::NdeError;
use nde_data::generate::hiring::HiringScenario;
use nde_data::{Table, Value};
use std::time::Instant;

/// Timing for one propagation path's fix series.
#[derive(Debug, Clone)]
pub struct FixPathPoint {
    /// Propagation path ("cell-patch", "splice", "rerun").
    pub path: String,
    /// Fixes applied in the series.
    pub fixes: usize,
    /// Best-of-`reps` µs per fix through `PipelineSession::apply`.
    pub incremental_us: f64,
    /// Best-of-`reps` µs per fix via full provenance-tracked re-execution.
    pub rerun_us: f64,
    /// `rerun_us / incremental_us`.
    pub speedup: f64,
}

nde_data::json_struct!(FixPathPoint {
    path,
    fixes,
    incremental_us,
    rerun_us,
    speedup
});

/// Timing for the cleaning loop under both maintenance modes.
#[derive(Debug, Clone)]
pub struct CleaningPoint {
    /// Training rows (validation set is the same size).
    pub rows: usize,
    /// Cleaning rounds.
    pub rounds: usize,
    /// Best-of-`reps` ms under `MaintenanceMode::Rerun`.
    pub rerun_ms: f64,
    /// Best-of-`reps` ms under `MaintenanceMode::Incremental`.
    pub incremental_ms: f64,
    /// `rerun_ms / incremental_ms`.
    pub speedup: f64,
}

nde_data::json_struct!(CleaningPoint {
    rows,
    rounds,
    rerun_ms,
    incremental_ms,
    speedup
});

/// Report for E16.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// Rows per hiring source table.
    pub rows: usize,
    /// Repetitions per cell (best-of).
    pub reps: usize,
    /// One point per propagation path.
    pub fix_paths: Vec<FixPathPoint>,
    /// Cleaning-loop comparison.
    pub cleaning: CleaningPoint,
}

nde_data::json_struct!(IncrementalReport {
    rows,
    reps,
    fix_paths,
    cleaning
});

fn inputs(s: &HiringScenario) -> Vec<(&str, &Table)> {
    vec![
        ("train_df", &s.letters),
        ("jobdetail_df", &s.job_details),
        ("social_df", &s.social),
    ]
}

/// A fix series that stays on one propagation path for its whole length.
fn series(path: &str, fixes: usize, s: &HiringScenario) -> Vec<Delta> {
    // For the rerun path the engine must not be able to prove the update
    // harmless: only job rows some letter actually joins to, with the
    // sector flipped across the filter predicate, force a re-run (an
    // unreferenced row's taint dies at the join and is patched in place).
    let jobs = s.job_details.n_rows();
    let referenced: Vec<usize> = (0..jobs)
        .filter(|&r| {
            let id = s.job_details.get(r, "job_id").unwrap();
            (0..s.letters.n_rows()).any(|l| s.letters.get(l, "job_id").unwrap() == id)
        })
        .collect();
    assert!(!referenced.is_empty(), "no job row is referenced");
    let mut sector: Vec<String> = (0..jobs)
        .map(|r| match s.job_details.get(r, "sector").unwrap() {
            Value::Str(v) => v,
            other => unreachable!("sector is a string column, got {other:?}"),
        })
        .collect();
    (0..fixes)
        .map(|i| match path {
            // Non-routing numeric cell: patched in place.
            "cell-patch" => Delta::Update {
                source: "train_df".into(),
                row: i,
                column: "years_experience".into(),
                value: Value::Float(i as f64 + 0.5),
            },
            // Row removal: downstream splice.
            "splice" => Delta::Delete {
                source: "train_df".into(),
                row: 0,
            },
            // The filter column routes rows, so propagation falls back to a
            // full re-run — the honest baseline for the other two paths.
            "rerun" => {
                let row = referenced[i % referenced.len()];
                let next = if sector[row] == "healthcare" {
                    "tech".to_string()
                } else {
                    "healthcare".to_string()
                };
                sector[row] = next.clone();
                Delta::Update {
                    source: "jobdetail_df".into(),
                    row,
                    column: "sector".into(),
                    value: Value::Str(next),
                }
            }
            other => unreachable!("unknown path {other}"),
        })
        .collect()
}

/// Time one propagation path: verify bit-identity stepwise (untimed), then
/// race `PipelineSession::apply` against full re-execution.
fn time_path(
    path: &str,
    s: &HiringScenario,
    fixes: usize,
    reps: usize,
) -> Result<FixPathPoint, NdeError> {
    let (plan, root) = Plan::hiring_pipeline();
    let deltas = series(path, fixes, s);
    let tracked = Executor::new().with_provenance(true);

    // --- untimed differential pass: capture per-step source states and
    // assert the maintained table and lineage match a fresh execution ---
    let mut session = PipelineSession::build(&Executor::new(), &plan, root, &inputs(s))?;
    let mut states: Vec<Vec<(String, Table)>> = Vec::with_capacity(fixes);
    for (step, delta) in deltas.iter().enumerate() {
        session.apply(delta)?;
        let state: Vec<(String, Table)> = session
            .source_names()
            .iter()
            .map(|n| (n.clone(), session.input(n).unwrap().clone()))
            .collect();
        let refs: Vec<(&str, &Table)> = state.iter().map(|(n, t)| (n.as_str(), t)).collect();
        let fresh = tracked.run(&plan, root, &refs)?;
        assert_eq!(session.table(), &fresh.table, "{path} step {step}: table");
        assert_eq!(
            session.lineage(),
            fresh.provenance.expect("provenance tracked"),
            "{path} step {step}: lineage"
        );
        states.push(state);
    }
    let stats = session.stats();
    match path {
        "cell-patch" => assert_eq!(stats.cell_patches, fixes, "{stats:?}"),
        "splice" => assert_eq!(stats.splices, fixes, "{stats:?}"),
        "rerun" => assert_eq!(stats.reruns, fixes, "{stats:?}"),
        _ => unreachable!(),
    }

    // --- timed: incremental apply (session build excluded) ---
    let mut incremental = f64::INFINITY;
    for _ in 0..reps {
        let mut session = PipelineSession::build(&Executor::new(), &plan, root, &inputs(s))?;
        let t0 = Instant::now();
        for delta in &deltas {
            session.apply(delta)?;
        }
        incremental = incremental.min(t0.elapsed().as_secs_f64());
    }

    // --- timed: full provenance-tracked re-execution per fix ---
    let mut rerun = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for state in &states {
            let refs: Vec<(&str, &Table)> = state.iter().map(|(n, t)| (n.as_str(), t)).collect();
            tracked.run(&plan, root, &refs)?;
        }
        rerun = rerun.min(t0.elapsed().as_secs_f64());
    }

    let incremental_us = incremental * 1e6 / fixes as f64;
    let rerun_us = rerun * 1e6 / fixes as f64;
    Ok(FixPathPoint {
        path: path.to_string(),
        fixes,
        incremental_us,
        rerun_us,
        speedup: rerun_us / incremental_us.max(1e-9),
    })
}

/// Time the cleaning loop under both maintenance modes and assert the
/// traces are bit-identical.
fn time_cleaning(
    rows: usize,
    rounds: usize,
    reps: usize,
    seed: u64,
) -> Result<CleaningPoint, NdeError> {
    let (train, valid, flipped) = workload(rows, rows, 0.12, seed);
    let mut truth = train.y.clone();
    for &f in &flipped {
        truth[f] = 1 - truth[f];
    }
    let oracle = LabelOracle::new(truth);
    let template = KnnClassifier::new(3);
    // Random order isolates maintenance cost: ranking is O(n), so the
    // per-round evaluation dominates and the mode difference is what's
    // being measured.
    let strategy = Strategy::Random { seed: seed ^ 0x51 };
    let batch = (rows / 20).max(1);

    let time_mode = |mode: MaintenanceMode| -> Result<(f64, _), NdeError> {
        let mut best = f64::INFINITY;
        let mut run = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = prioritized_cleaning(
                &template, &train, &oracle, &valid, &strategy, batch, rounds, false, mode,
            )?;
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            run = Some(r);
        }
        Ok((best, run.expect("reps >= 1")))
    };
    let (rerun_ms, by_rerun) = time_mode(MaintenanceMode::Rerun)?;
    let (incremental_ms, by_inc) = time_mode(MaintenanceMode::Incremental)?;

    assert_eq!(by_rerun.cleaned, by_inc.cleaned, "cleaned-count trace");
    for (i, (a, b)) in by_rerun.accuracy.iter().zip(&by_inc.accuracy).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "accuracy trace diverges at {i}");
    }

    Ok(CleaningPoint {
        rows,
        rounds,
        rerun_ms,
        incremental_ms,
        speedup: rerun_ms / incremental_ms.max(1e-9),
    })
}

/// Run E16: per-path fix propagation timings plus the cleaning-loop
/// comparison. All differential assertions run before any timing.
pub fn run(
    rows: usize,
    fixes: usize,
    rounds: usize,
    reps: usize,
    seed: u64,
) -> Result<IncrementalReport, NdeError> {
    assert!(rows >= 20 && fixes >= 2 && rounds >= 2 && reps >= 1);
    let s = HiringScenario::generate(rows, seed);
    let mut fix_paths = Vec::new();
    for path in ["cell-patch", "splice", "rerun"] {
        fix_paths.push(time_path(path, &s, fixes, reps)?);
    }
    let cleaning = time_cleaning(rows.max(100), rounds, reps, seed)?;
    Ok(IncrementalReport {
        rows,
        reps,
        fix_paths,
        cleaning,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::json::ToJson;

    #[test]
    fn report_covers_all_paths_and_cleaning_matches() {
        let r = run(40, 3, 3, 1, 5).unwrap();
        let paths: Vec<&str> = r.fix_paths.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(paths, ["cell-patch", "splice", "rerun"]);
        assert!(r.fix_paths.iter().all(|p| p.incremental_us > 0.0));
        assert!(r.cleaning.rerun_ms > 0.0 && r.cleaning.incremental_ms > 0.0);
        let json = r.to_json().to_string();
        assert!(json.contains("fix_paths") && json.contains("incremental_ms"));
    }
}
