//! E11 — §2.3 (Zhen et al., SIGMOD'24): how often does a certain or
//! approximately-certain model exist, as the missing rate grows?
//!
//! Expected shape: with missingness confined to an *irrelevant* feature a
//! certain model (almost) always exists; with missingness in a *relevant*
//! feature the certain fraction collapses quickly as the rate grows.

use nde::data::rng::{sample_indices, seeded};
use nde::uncertain::certain_models::{certain_model_check, CertainModelConfig, ModelCertainty};
use nde::uncertain::symbolic::SymbolicMatrix;
use nde::uncertain::Interval;
use nde::NdeError;
use nde_data::rng::Rng;

/// One point of the curve.
#[derive(Debug, Clone)]
pub struct CertainModelPoint {
    /// Fraction of rows with a missing value.
    pub missing_fraction: f64,
    /// Fraction of trials with a certain/approximately-certain model when
    /// the missing feature is irrelevant to the target.
    pub certain_irrelevant: f64,
    /// Same, when the missing feature drives the target.
    pub certain_relevant: f64,
}

nde_data::json_struct!(CertainModelPoint {
    missing_fraction,
    certain_irrelevant,
    certain_relevant
});

/// Report for E11.
#[derive(Debug, Clone)]
pub struct CertainModelReport {
    /// Trials per point.
    pub trials: usize,
    /// The curve, in sweep order.
    pub points: Vec<CertainModelPoint>,
}

nde_data::json_struct!(CertainModelReport { trials, points });

fn trial(n: usize, missing_fraction: f64, relevant: bool, seed: u64) -> Result<bool, NdeError> {
    let mut rng = seeded(seed);
    // Two features; the target uses only feature 0.
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x0: f64 = rng.gen_range(-1.0..1.0);
        let x1: f64 = rng.gen_range(-1.0..1.0);
        rows.push(vec![Interval::point(x0), Interval::point(x1)]);
        y.push(1.5 * x0 - 0.5);
    }
    let k = (n as f64 * missing_fraction).round() as usize;
    let col = usize::from(!relevant); // relevant ⇒ feature 0, else feature 1
    for r in sample_indices(n, k, &mut rng) {
        rows[r][col] = Interval::new(-1.0, 1.0);
    }
    let sym = SymbolicMatrix::from_rows(rows)?;
    let verdict = certain_model_check(
        &sym,
        &y,
        &CertainModelConfig {
            eps: 5e-2,
            ..Default::default()
        },
    )?;
    Ok(!matches!(verdict, ModelCertainty::NotCertain { .. }))
}

/// Run E11 over the given missing fractions.
pub fn run(
    n: usize,
    fractions: &[f64],
    trials: usize,
    seed: u64,
) -> Result<CertainModelReport, NdeError> {
    let mut points = Vec::with_capacity(fractions.len());
    for &frac in fractions {
        let mut certain_irrelevant = 0usize;
        let mut certain_relevant = 0usize;
        for t in 0..trials {
            let s = seed
                .wrapping_mul(31)
                .wrapping_add(t as u64)
                .wrapping_add((frac * 1000.0) as u64);
            if trial(n, frac, false, s)? {
                certain_irrelevant += 1;
            }
            if trial(n, frac, true, s ^ 0x11)? {
                certain_relevant += 1;
            }
        }
        points.push(CertainModelPoint {
            missing_fraction: frac,
            certain_irrelevant: certain_irrelevant as f64 / trials as f64,
            certain_relevant: certain_relevant as f64 / trials as f64,
        });
    }
    Ok(CertainModelReport { trials, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irrelevant_feature_stays_certain_relevant_does_not() {
        let r = run(60, &[0.0, 0.1, 0.3], 3, 29).unwrap();
        // No missingness: always certain, both ways.
        assert_eq!(r.points[0].certain_irrelevant, 1.0);
        assert_eq!(r.points[0].certain_relevant, 1.0);
        // Missing irrelevant feature: certainty survives.
        assert!(r.points[2].certain_irrelevant >= 0.9, "{:?}", r.points);
        // Missing relevant feature: certainty collapses.
        assert!(r.points[2].certain_relevant <= 0.4, "{:?}", r.points);
    }
}
