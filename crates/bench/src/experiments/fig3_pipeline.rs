//! E2 — Fig. 3: debug an ML pipeline via provenance-backed importance.
//!
//! Paper's printed number: "Removal changed accuracy by 0.027" after
//! removing the 25 lowest-Datascope-importance source tuples. We reproduce
//! the shape: with dirty sources, removing the lowest-ranked source tuples
//! changes (typically improves) validation accuracy, and the removed set is
//! enriched with the injected errors.

use nde::api::inject_label_errors;
use nde::scenario::load_recommendation_letters;
use nde::workflows::debug::{run as debug, DebugConfig};
use nde::NdeError;

/// Report for the Fig. 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig3Report {
    /// Rows surviving the pipeline's joins and filter.
    pub pipeline_rows: usize,
    /// Accuracy with dirty sources.
    pub acc_before: f64,
    /// Accuracy after removing the lowest-importance source tuples.
    pub acc_after: f64,
    /// The headline delta ("Removal changed accuracy by ...").
    pub accuracy_delta: f64,
    /// How many removed tuples carried injected errors.
    pub removed_true_errors: usize,
    /// Number of removed tuples.
    pub removed: usize,
    /// The rendered query plan.
    pub plan: String,
}

nde_data::json_struct!(Fig3Report {
    pipeline_rows,
    acc_before,
    acc_after,
    accuracy_delta,
    removed_true_errors,
    removed,
    plan
});

/// Run E2 with the paper's parameters (remove 25 source tuples).
pub fn run(n: usize, error_fraction: f64, seed: u64) -> Result<Fig3Report, NdeError> {
    let mut scenario = load_recommendation_letters(n, seed);
    let report = inject_label_errors(&mut scenario.train, error_fraction, seed ^ 0xf163)?;
    let outcome = debug(&scenario, &DebugConfig::default())?;
    let truth: std::collections::HashSet<usize> = report.affected.iter().copied().collect();
    let removed_true_errors = outcome
        .removed_rows
        .iter()
        .filter(|r| truth.contains(r))
        .count();
    Ok(Fig3Report {
        pipeline_rows: outcome.pipeline_rows,
        acc_before: outcome.acc_before,
        acc_after: outcome.acc_after,
        accuracy_delta: outcome.accuracy_delta,
        removed_true_errors,
        removed: outcome.removed_rows.len(),
        plan: outcome.plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_fig3_shape() {
        let r = run(500, 0.15, 8).unwrap();
        assert!(r.pipeline_rows > 50);
        assert_eq!(r.removed, 25);
        // Removal must not clearly hurt, and the removed set should catch
        // several injected errors (the filter drops ~60% of letters, so not
        // all errors are even reachable).
        assert!(r.accuracy_delta > -0.05, "{r:?}");
        assert!(r.removed_true_errors >= 3, "{r:?}");
        assert!(r.plan.contains("Filter"));
    }
}
