//! E7 — §3.2: cleaning-budget curves per strategy, and the challenge
//! leaderboard.
//!
//! Expected shape: importance-guided strategies dominate random cleaning at
//! every budget; all strategies converge to the clean-data accuracy once the
//! whole dirty set is repaired.

use crate::experiments::importance_compare::workload;
use nde::cleaning::challenge::DebugChallenge;
use nde::cleaning::iterative::prioritized_cleaning;
use nde::cleaning::oracle::LabelOracle;
use nde::cleaning::strategy::Strategy;
use nde::cleaning::MaintenanceMode;
use nde::importance::aum::AumConfig;
use nde::importance::confident::ConfidentConfig;
use nde::ml::models::knn::KnnClassifier;
use nde::NdeError;

/// One strategy's cleaning curve.
#[derive(Debug, Clone)]
pub struct CleaningCurve {
    /// Strategy name.
    pub strategy: String,
    /// Cumulative tuples cleaned at each step (starting at 0).
    pub cleaned: Vec<usize>,
    /// Validation accuracy at each step.
    pub accuracy: Vec<f64>,
}

nde_data::json_struct!(CleaningCurve {
    strategy,
    cleaned,
    accuracy
});

/// Report for E7.
#[derive(Debug, Clone)]
pub struct CleaningReport {
    /// Curves per strategy.
    pub curves: Vec<CleaningCurve>,
    /// Rendered challenge leaderboard (hidden-test scores).
    pub leaderboard: String,
}

nde_data::json_struct!(CleaningReport {
    curves,
    leaderboard
});

/// The strategies compared by E7.
pub fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Random { seed: 5 },
        Strategy::KnnShapley { k: 3 },
        Strategy::Aum(AumConfig::default()),
        Strategy::ConfidentLearning(ConfidentConfig::default()),
    ]
}

/// Run E7: cleaning curves on a corrupted blob workload plus a three-way
/// challenge over the hidden test set.
pub fn run(n_train: usize, error_fraction: f64, seed: u64) -> Result<CleaningReport, NdeError> {
    let (train, valid, flipped) = workload(n_train, n_train / 3, error_fraction, seed);
    let mut truth = train.y.clone();
    for &f in &flipped {
        truth[f] = 1 - truth[f];
    }
    let oracle = LabelOracle::new(truth.clone());
    let template = KnnClassifier::new(3);
    let batch = (n_train / 15).max(1);

    let mut curves = Vec::new();
    for strategy in strategies() {
        let run = prioritized_cleaning(
            &template,
            &train,
            &oracle,
            &valid,
            &strategy,
            batch,
            5,
            false,
            MaintenanceMode::Incremental,
        )?;
        curves.push(CleaningCurve {
            strategy: run.strategy.to_string(),
            cleaned: run.cleaned,
            accuracy: run.accuracy,
        });
    }

    // Challenge: same workload, hidden test = a fresh blob sample.
    let (test, _, _) = workload(n_train / 2, 10, 0.0, seed ^ 0xc7a);
    let mut challenge = DebugChallenge::new(
        template,
        train.clone(),
        LabelOracle::new(truth),
        test,
        batch * 3,
    )
    .map_err(NdeError::from)?;
    for strategy in strategies() {
        let order = strategy.rank(challenge.dirty_data(), &valid)?;
        let picks: Vec<usize> = order.into_iter().take(challenge.budget()).collect();
        challenge.submit(strategy.name(), &picks)?;
    }
    Ok(CleaningReport {
        curves,
        leaderboard: challenge.leaderboard().render(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapley_curve_dominates_random_midway() {
        let r = run(150, 0.15, 17).unwrap();
        let curve = |name: &str| {
            r.curves
                .iter()
                .find(|c| c.strategy == name)
                .unwrap()
                .accuracy
                .clone()
        };
        let shapley = curve("knn-shapley");
        let random = curve("random");
        // At the mid-budget point, importance-guided cleaning is ahead (or
        // tied when random gets lucky).
        let mid = shapley.len() / 2;
        assert!(
            shapley[mid] >= random[mid] - 0.02,
            "shapley {shapley:?} vs random {random:?}"
        );
        // Final accuracies improve on the dirty baseline.
        assert!(shapley.last().unwrap() >= &shapley[0]);
        assert!(r.leaderboard.contains("knn-shapley"));
    }
}
