//! E6 — §2.1 "Overcoming Computational Challenges": runtime scaling of
//! Shapley computation, and Monte-Carlo error vs permutation budget.
//!
//! Expected shape: exact KNN-Shapley is orders of magnitude faster than
//! TMC-Shapley at the same `n` (closed form vs `O(permutations · n)`
//! retrainings), and the TMC estimate converges toward the exact KNN values
//! as the permutation budget grows.

use nde::data::generate::blobs::two_gaussians;
use nde::importance::loo::loo_importance;
use nde::importance::{knn_shapley, tmc_shapley, BatchPolicy, ImportanceRun, TmcParams};
use nde::ml::dataset::Dataset;
use nde::ml::models::knn::KnnClassifier;
use nde::robust::par::MemoCache;
use nde::robust::{ConvergenceDiagnostics, RunBudget};
use nde::NdeError;
use std::time::Instant;

/// Timings at one training-set size.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Training-set size.
    pub n: usize,
    /// Exact KNN-Shapley wall time (seconds).
    pub knn_shapley_secs: f64,
    /// Leave-one-out wall time (seconds).
    pub loo_secs: f64,
    /// TMC-Shapley wall time (seconds), with the configured budget.
    pub tmc_secs: f64,
    /// Rank correlation between TMC and exact KNN-Shapley values.
    pub tmc_vs_exact_rank_corr: f64,
}

nde_data::json_struct!(ScalingPoint {
    n,
    knn_shapley_secs,
    loo_secs,
    tmc_secs,
    tmc_vs_exact_rank_corr
});

/// Report for E6.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// TMC permutation budget used at every size.
    pub permutations: usize,
    /// One point per swept size.
    pub points: Vec<ScalingPoint>,
}

nde_data::json_struct!(ScalingReport {
    permutations,
    points
});

/// Workload with 10% label flips so importance values have real spread —
/// on perfectly clean data all values are ≈0 and rankings are pure noise.
fn blobs(n: usize, seed: u64) -> (Dataset, Dataset) {
    let nd = two_gaussians(n + 50, 4, 4.0, seed);
    let all = Dataset::try_from(&nd).expect("blob data is well-formed");
    let mut train = all.subset(&(0..n).collect::<Vec<_>>());
    let valid = all.subset(&(n..n + 50).collect::<Vec<_>>());
    let mut rng = nde::data::rng::seeded(seed ^ 0xf11b);
    for f in nde::data::rng::sample_indices(n, n / 10, &mut rng) {
        train.y[f] = 1 - train.y[f];
    }
    (train, valid)
}

/// Run E6 over the given training sizes.
pub fn run(sizes: &[usize], permutations: usize, seed: u64) -> Result<ScalingReport, NdeError> {
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let (train, valid) = blobs(n, seed);

        let t0 = Instant::now();
        let exact = knn_shapley(&ImportanceRun::new(seed), &train, &valid, 1)?.scores;
        let knn_shapley_secs = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let _loo = loo_importance(&KnnClassifier::new(1), &train, &valid)?;
        let loo_secs = t0.elapsed().as_secs_f64();

        let params = TmcParams {
            permutations,
            truncation_tolerance: 0.01,
        };
        let t0 = Instant::now();
        let tmc = tmc_shapley(
            &ImportanceRun::new(seed),
            &KnnClassifier::new(1),
            &train,
            &valid,
            &params,
        )?
        .scores;
        let tmc_secs = t0.elapsed().as_secs_f64();

        points.push(ScalingPoint {
            n,
            knn_shapley_secs,
            loo_secs,
            tmc_secs,
            tmc_vs_exact_rank_corr: exact.rank_correlation(&tmc),
        });
    }
    Ok(ScalingReport {
        permutations,
        points,
    })
}

/// One timed configuration of the parallel-substrate bench, recorded in
/// `BENCH_shapley.json` so the perf trajectory is tracked across PRs.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Estimator under test (`tmc-shapley` or `knn-shapley`).
    pub method: String,
    /// Training-set size.
    pub n: usize,
    /// Worker threads.
    pub threads: usize,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Logical utility evaluations (cache hits included); 0 for the
    /// closed-form KNN-Shapley.
    pub utility_calls: u64,
    /// Utility evaluations served from the memo cache.
    pub cache_hits: u64,
}

nde_data::json_struct!(BenchEntry {
    method,
    n,
    threads,
    wall_ms,
    utility_calls,
    cache_hits
});

/// Machine-readable report of the parallel-substrate bench.
#[derive(Debug, Clone)]
pub struct ShapleyBench {
    /// TMC permutation budget.
    pub permutations: usize,
    /// One entry per (method, thread count).
    pub entries: Vec<BenchEntry>,
    /// Batched-vs-unbatched utility comparison (see [`batching_bench`]).
    pub batch_comparison: Vec<BatchComparisonEntry>,
}

nde_data::json_struct!(ShapleyBench {
    permutations,
    entries,
    batch_comparison
});

/// One side of the batched-vs-unbatched utility comparison recorded in
/// `BENCH_shapley.json`.
#[derive(Debug, Clone)]
pub struct BatchComparisonEntry {
    /// Coalitions per batch (1 = the unbatched legacy path).
    pub batch_size: usize,
    /// Wall-clock milliseconds for the whole TMC run.
    pub wall_ms: f64,
    /// Logical utility evaluations the run was charged for.
    pub utility_calls: u64,
    /// Wall-clock milliseconds per utility call — the headline number the
    /// batched engine is meant to shrink.
    pub ms_per_call: f64,
    /// Grouped passes submitted to the batched scorer (0 when unbatched).
    pub batches_formed: u64,
}

nde_data::json_struct!(BatchComparisonEntry {
    batch_size,
    wall_ms,
    utility_calls,
    ms_per_call,
    batches_formed
});

/// Time the same TMC-Shapley-with-KNN run unbatched (`batch_size` 1) and
/// with `batch_size`-wide waves through the shared-distance-matrix scorer.
/// Panics if the two runs' scores are not bit-identical — batching must be
/// a purely physical optimization.
pub fn batching_bench(
    n: usize,
    permutations: usize,
    batch_size: usize,
    seed: u64,
) -> Result<Vec<BatchComparisonEntry>, NdeError> {
    // 32-dimensional blobs rather than the scaling bench's 4: utility cost
    // is dominated by train→valid distance computation, which the batched
    // scorer amortizes into one shared matrix — low-dimensional toy data
    // would understate what real (wide) feature matrices gain.
    let nd = two_gaussians(n + 50, 32, 4.0, seed);
    let all = Dataset::try_from(&nd).expect("blob data is well-formed");
    let mut train = all.subset(&(0..n).collect::<Vec<_>>());
    let valid = all.subset(&(n..n + 50).collect::<Vec<_>>());
    let mut rng = nde::data::rng::seeded(seed ^ 0xf11b);
    for f in nde::data::rng::sample_indices(n, n / 10, &mut rng) {
        train.y[f] = 1 - train.y[f];
    }
    let params = TmcParams {
        permutations,
        truncation_tolerance: 0.01,
    };
    let mut entries = Vec::new();
    let mut baseline: Option<Vec<f64>> = None;
    for (size, policy) in [
        (1, BatchPolicy::Unbatched),
        (batch_size, BatchPolicy::Grouped { size: batch_size }),
    ] {
        let run = ImportanceRun::new(seed).with_batch(policy);
        // Best of three repetitions: the runs are deterministic, so reps
        // only differ by scheduler/cache noise and min is the clean signal.
        let mut wall_ms = f64::INFINITY;
        let mut report = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let out = tmc_shapley(&run, &KnnClassifier::new(1), &train, &valid, &params)?;
            wall_ms = wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            match &baseline {
                None => baseline = Some(out.scores.values.clone()),
                Some(base) => assert_eq!(
                    base, &out.scores.values,
                    "batched scores diverged from unbatched"
                ),
            }
            report = Some(out.report);
        }
        let report = report.expect("three reps ran");
        let calls = report.utility_calls.max(1);
        entries.push(BatchComparisonEntry {
            batch_size: size,
            wall_ms,
            utility_calls: calls,
            ms_per_call: wall_ms / calls as f64,
            batches_formed: report.batches_formed,
        });
    }
    Ok(entries)
}

/// Time budgeted+memoized TMC-Shapley and exact KNN-Shapley at each thread
/// count on the same workload. Scores are bit-identical across thread
/// counts (the substrate's contract); only the wall clock moves. Returns
/// the bench report plus per-run [`ConvergenceDiagnostics`] for display.
pub fn parallel_bench(
    n: usize,
    permutations: usize,
    threads_list: &[usize],
    budget: &RunBudget,
    seed: u64,
) -> Result<(ShapleyBench, Vec<(usize, ConvergenceDiagnostics)>), NdeError> {
    let (train, valid) = blobs(n, seed);
    let mut entries = Vec::new();
    let mut diagnostics = Vec::new();
    let params = TmcParams {
        permutations,
        truncation_tolerance: 0.01,
    };
    for &threads in threads_list {
        let cache = MemoCache::new();
        let run = ImportanceRun::new(seed)
            .with_threads(threads)
            .with_budget(budget.clone())
            .with_cache(&cache);
        let t0 = Instant::now();
        let out = tmc_shapley(&run, &KnnClassifier::new(1), &train, &valid, &params)?;
        entries.push(BenchEntry {
            method: "tmc-shapley".into(),
            n,
            threads,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            utility_calls: out.report.utility_calls,
            cache_hits: cache.hits(),
        });
        diagnostics.push((
            threads,
            out.report.diagnostics.expect("tmc reports diagnostics"),
        ));

        let t0 = Instant::now();
        let _ = knn_shapley(
            &ImportanceRun::new(seed).with_threads(threads),
            &train,
            &valid,
            1,
        )?;
        entries.push(BenchEntry {
            method: "knn-shapley".into(),
            n,
            threads,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            utility_calls: 0,
            cache_hits: 0,
        });
    }
    Ok((
        ShapleyBench {
            permutations,
            entries,
            batch_comparison: Vec::new(),
        },
        diagnostics,
    ))
}

/// Monte-Carlo convergence: self-consistency of TMC-Shapley as the budget
/// grows — the rank correlation between two *independent* TMC runs at the
/// same budget. Low budgets give noisy, poorly reproducible rankings; the
/// correlation approaches 1 as the estimator converges.
pub fn convergence(n: usize, budgets: &[usize], seed: u64) -> Result<Vec<(usize, f64)>, NdeError> {
    let (train, valid) = blobs(n, seed);
    let mut out = Vec::with_capacity(budgets.len());
    for &b in budgets {
        let params = TmcParams {
            permutations: b,
            truncation_tolerance: 0.0,
        };
        let knn = KnnClassifier::new(1);
        let a = tmc_shapley(&ImportanceRun::new(seed), &knn, &train, &valid, &params)?.scores;
        let c = tmc_shapley(
            &ImportanceRun::new(seed ^ 0xdead),
            &knn,
            &train,
            &valid,
            &params,
        )?
        .scores;
        out.push((b, a.rank_correlation(&c)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_shapley_is_much_faster_than_tmc() {
        let r = run(&[80], 30, 13).unwrap();
        let p = &r.points[0];
        // Debug builds compress the gap; release shows orders of magnitude.
        assert!(
            p.knn_shapley_secs * 2.0 < p.tmc_secs,
            "knn {} vs tmc {}",
            p.knn_shapley_secs,
            p.tmc_secs
        );
        assert!(p.tmc_vs_exact_rank_corr > 0.1, "{p:?}");
    }

    #[test]
    fn parallel_bench_reports_cache_hits_and_diagnostics() {
        // More permutations than training points: every permutation's first
        // singleton coalition is evaluated, so the memo cache is guaranteed
        // repeats by pigeonhole.
        let budget = RunBudget::unlimited().with_max_utility_calls(400);
        let (bench, diags) = parallel_bench(20, 30, &[1, 4], &budget, 15).unwrap();
        assert_eq!(bench.entries.len(), 4); // (tmc + knn) × two thread counts
        let tmc: Vec<_> = bench
            .entries
            .iter()
            .filter(|e| e.method == "tmc-shapley")
            .collect();
        assert_eq!(tmc.len(), 2);
        // Repeated-coalition workload: the memo cache must see hits, and the
        // budget trip point (logical utility calls) is thread-invariant.
        for e in &tmc {
            assert!(e.cache_hits > 0, "{e:?}");
            assert_eq!(e.utility_calls, tmc[0].utility_calls);
        }
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].1.utility_calls, diags[1].1.utility_calls);
        // JSON round-trips through the offline serializer.
        let text = crate::report::to_json(&bench);
        assert!(text.contains("\"cache_hits\""));
    }

    #[test]
    fn batching_bench_records_both_sides_and_serializes() {
        let comparison = batching_bench(24, 6, 8, 21).unwrap();
        assert_eq!(comparison.len(), 2);
        assert_eq!(comparison[0].batch_size, 1);
        assert_eq!(comparison[1].batch_size, 8);
        // Batching is physical only: the logical charge is identical.
        assert_eq!(comparison[0].utility_calls, comparison[1].utility_calls);
        assert_eq!(comparison[0].batches_formed, 0);
        assert!(comparison[1].batches_formed > 0);
        let bench = ShapleyBench {
            permutations: 6,
            entries: Vec::new(),
            batch_comparison: comparison,
        };
        let text = crate::report::to_json(&bench);
        assert!(text.contains("\"batch_comparison\""));
        assert!(text.contains("\"ms_per_call\""));
    }

    #[test]
    fn convergence_improves_with_budget() {
        let curve = convergence(40, &[5, 120], 14).unwrap();
        assert_eq!(curve.len(), 2);
        assert!(
            curve[1].1 > curve[0].1,
            "self-consistency should grow with budget: {curve:?}"
        );
        // Absolute level stays modest at this tiny scale: the many clean,
        // near-zero-valued points keep their relative order noisy. The
        // *growth* with budget is the claim under test.
        assert!(curve[1].1 > 0.35, "{curve:?}");
    }
}
