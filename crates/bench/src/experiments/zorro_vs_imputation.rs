//! E12 — the Fig. 4 comparison task: Zorro prediction *ranges* vs the point
//! predictions of a baseline trained on imputed data.
//!
//! Attendees are asked to "compare these ranges to the predictions of a
//! baseline model trained with simple imputation" and summarize differences
//! in variability and reliability. Expected shape: the baseline's point
//! predictions always lie inside Zorro's ranges (soundness); range width —
//! the honest uncertainty — grows with missingness while the baseline
//! reports nothing.

use nde::api::{encode_symbolic, zorro_config};
use nde::data::inject::Missingness;
use nde::scenario::load_recommendation_letters;
use nde::uncertain::zorro::{train_concrete_gd, ZorroRegressor};
use nde::NdeError;

/// One swept point.
#[derive(Debug, Clone)]
pub struct ComparisonPoint {
    /// Missing percentage.
    pub percentage: f64,
    /// Mean width of Zorro's test prediction ranges.
    pub mean_range_width: f64,
    /// Fraction of baseline point predictions inside the Zorro range.
    pub baseline_containment: f64,
    /// Fraction of test points whose Zorro range determines the class sign
    /// (range entirely positive or entirely negative): the "reliable" set.
    pub decided_fraction: f64,
}

nde_data::json_struct!(ComparisonPoint {
    percentage,
    mean_range_width,
    baseline_containment,
    decided_fraction
});

/// Report for E12.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// The curve, in sweep order.
    pub points: Vec<ComparisonPoint>,
}

nde_data::json_struct!(ComparisonReport { points });

/// Run E12 over the given missing percentages.
pub fn run(n: usize, percentages: &[f64], seed: u64) -> Result<ComparisonReport, NdeError> {
    let scenario = load_recommendation_letters(n, seed);
    let mut points = Vec::with_capacity(percentages.len());
    for &pct in percentages {
        let enc = encode_symbolic(
            &scenario.train,
            "employer_rating",
            pct,
            Missingness::Mnar { skew: 4.0 },
            seed ^ 0xe12,
        )?;
        let cfg = zorro_config();
        let mut zorro = ZorroRegressor::new(cfg.clone());
        zorro.fit(&enc.x, &enc.y)?;
        // Baseline: midpoint (mean-of-domain) imputation + identical GD.
        let w = train_concrete_gd(&enc.x.midpoint_world(), &enc.y, &cfg)?;

        let (tx, _ty) = enc.encode_test(&scenario.test)?;
        let mut width_sum = 0.0;
        let mut contained = 0usize;
        let mut decided = 0usize;
        for row in tx.iter_rows() {
            let range = zorro.predict_range(row)?;
            width_sum += range.width();
            let point_pred: f64 =
                row.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + w[row.len()];
            if range.contains(point_pred) {
                contained += 1;
            }
            if range.lo > 0.0 || range.hi < 0.0 {
                decided += 1;
            }
        }
        let m = tx.rows().max(1) as f64;
        points.push(ComparisonPoint {
            percentage: pct,
            mean_range_width: width_sum / m,
            baseline_containment: contained as f64 / m,
            decided_fraction: decided as f64 / m,
        });
    }
    Ok(ComparisonReport { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_contain_baseline_and_widen_with_missingness() {
        let r = run(250, &[5.0, 25.0], 33).unwrap();
        for p in &r.points {
            assert!(
                (p.baseline_containment - 1.0).abs() < 1e-12,
                "soundness violated: {p:?}"
            );
        }
        assert!(
            r.points[1].mean_range_width > r.points[0].mean_range_width,
            "{:?}",
            r.points
        );
        // More uncertainty ⇒ fewer decided (sign-certain) predictions.
        assert!(
            r.points[1].decided_fraction <= r.points[0].decided_fraction + 1e-9,
            "{:?}",
            r.points
        );
    }
}
