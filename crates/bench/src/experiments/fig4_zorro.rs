//! E3 — Fig. 4: maximum worst-case loss vs missing percentage (Zorro).
//!
//! The paper's figure sweeps MNAR missingness in `employer_rating` over
//! 5–25% and plots a growing "maximum worst-case loss" curve. We reproduce
//! exactly that series, plus the imputation baseline for contrast.

use nde::scenario::load_recommendation_letters;
use nde::workflows::learn::{run as learn, LearnConfig};
use nde::NdeError;

/// One swept point.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Missing percentage.
    pub percentage: f64,
    /// Zorro's maximum worst-case loss (the figure's y-axis).
    pub max_worst_case_loss: f64,
    /// Mean-imputation baseline test MSE.
    pub baseline_mse: f64,
}

nde_data::json_struct!(Fig4Point {
    percentage,
    max_worst_case_loss,
    baseline_mse
});

/// Report for the Fig. 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig4Report {
    /// The curve, in sweep order.
    pub points: Vec<Fig4Point>,
    /// Whether the curve is monotone non-decreasing (the paper's shape).
    pub monotone: bool,
}

nde_data::json_struct!(Fig4Report { points, monotone });

/// Run E3 with the paper's sweep (5, 10, 15, 20, 25 percent, MNAR).
pub fn run(n: usize, seed: u64) -> Result<Fig4Report, NdeError> {
    let scenario = load_recommendation_letters(n, seed);
    let outcome = learn(&scenario, &LearnConfig::default())?;
    let monotone = outcome.is_monotone();
    Ok(Fig4Report {
        points: outcome
            .points
            .into_iter()
            .map(|p| Fig4Point {
                percentage: p.percentage,
                max_worst_case_loss: p.max_worst_case_loss,
                baseline_mse: p.baseline_mse,
            })
            .collect(),
        monotone,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_fig4_shape() {
        let r = run(300, 9).unwrap();
        assert_eq!(r.points.len(), 5);
        assert!(r.monotone, "{:?}", r.points);
        // The bound at 25% must clearly exceed the bound at 5%.
        assert!(
            r.points[4].max_worst_case_loss > r.points[0].max_worst_case_loss,
            "{:?}",
            r.points
        );
        // And the bound always dominates the achievable baseline.
        for p in &r.points {
            assert!(p.max_worst_case_loss >= p.baseline_mse * 0.99, "{p:?}");
        }
    }
}
