//! E13 — ablations over the design choices DESIGN.md calls out:
//!
//! * **Text-embedding width**: how does the hashed-embedding dimensionality
//!   affect model accuracy and error-detection quality? (The substitution
//!   for SentenceBERT must be wide enough to separate sentiments.)
//! * **KNN-Shapley `k`**: detection precision across neighborhood sizes.
//! * **TMC truncation tolerance**: the speed/quality trade-off of
//!   truncating Monte-Carlo permutations.

use nde::api::inject_label_errors;
use nde::data::generate::hiring::LABEL_COLUMN;
use nde::importance::{
    detection_precision_at_k, knn_shapley, tmc_shapley, ImportanceRun, TmcParams,
};
use nde::ml::dataset::{Dataset, LabelEncoder};
use nde::ml::encode::TableEncoder;
use nde::ml::model::Classifier;
use nde::ml::models::knn::KnnClassifier;
use nde::scenario::load_recommendation_letters;
use nde::NdeError;
use std::time::Instant;

/// One text-width ablation point.
#[derive(Debug, Clone)]
pub struct TextDimPoint {
    /// Hashed embedding width.
    pub dims: usize,
    /// Validation accuracy of the reference KNN model.
    pub accuracy: f64,
    /// Detection precision@k for injected label errors.
    pub detection_precision: f64,
}

nde_data::json_struct!(TextDimPoint {
    dims,
    accuracy,
    detection_precision
});

/// One `k` ablation point.
#[derive(Debug, Clone)]
pub struct KPoint {
    /// KNN-Shapley neighborhood size.
    pub k: usize,
    /// Detection precision@k(=#errors).
    pub detection_precision: f64,
}

nde_data::json_struct!(KPoint {
    k,
    detection_precision
});

/// One truncation-tolerance ablation point.
#[derive(Debug, Clone)]
pub struct TruncationPoint {
    /// Truncation tolerance.
    pub tolerance: f64,
    /// Wall seconds for the TMC run.
    pub secs: f64,
    /// Rank correlation with the untruncated run.
    pub rank_corr_vs_exact: f64,
}

nde_data::json_struct!(TruncationPoint {
    tolerance,
    secs,
    rank_corr_vs_exact
});

/// Report for E13.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// Text-width sweep.
    pub text_dims: Vec<TextDimPoint>,
    /// Neighborhood-size sweep.
    pub shapley_k: Vec<KPoint>,
    /// Truncation sweep.
    pub truncation: Vec<TruncationPoint>,
}

nde_data::json_struct!(AblationReport {
    text_dims,
    shapley_k,
    truncation
});

fn encode(
    train: &nde::data::Table,
    valid: &nde::data::Table,
    dims: usize,
) -> Result<(Dataset, Dataset), NdeError> {
    let mut enc = TableEncoder::for_letters(dims);
    let labels = LabelEncoder::fit(train, LABEL_COLUMN)?;
    let x = enc.fit_transform(train)?;
    let y = labels.encode_column(train, LABEL_COLUMN)?;
    let train_ds = Dataset::new(x, y, labels.n_classes())?;
    let vx = enc.transform(valid)?;
    let vy = labels.encode_column(valid, LABEL_COLUMN)?;
    Ok((train_ds, Dataset::new(vx, vy, labels.n_classes())?))
}

/// Run E13.
pub fn run(n: usize, seed: u64) -> Result<AblationReport, NdeError> {
    let scenario = load_recommendation_letters(n, seed);
    let mut dirty = scenario.train.clone();
    let report = inject_label_errors(&mut dirty, 0.1, seed ^ 0xab1)?;
    let k_errors = report.affected.len();

    // --- Text width sweep ------------------------------------------------
    let mut text_dims = Vec::new();
    for dims in [4usize, 16, 64, 256] {
        let (train_ds, valid_ds) = encode(&dirty, &scenario.valid, dims)?;
        let mut model = KnnClassifier::new(5);
        model.fit(&train_ds)?;
        let accuracy = model.accuracy(&valid_ds);
        let scores = knn_shapley(&ImportanceRun::new(seed), &train_ds, &valid_ds, 5)?.scores;
        let detection_precision = detection_precision_at_k(&scores, &report.affected, k_errors);
        text_dims.push(TextDimPoint {
            dims,
            accuracy,
            detection_precision,
        });
    }

    // --- KNN-Shapley k sweep ---------------------------------------------
    let (train_ds, valid_ds) = encode(&dirty, &scenario.valid, 64)?;
    let mut shapley_k = Vec::new();
    for k in [1usize, 3, 5, 11, 25] {
        let scores = knn_shapley(&ImportanceRun::new(seed), &train_ds, &valid_ds, k)?.scores;
        shapley_k.push(KPoint {
            k,
            detection_precision: detection_precision_at_k(&scores, &report.affected, k_errors),
        });
    }

    // --- TMC truncation sweep (on a smaller subset for tractability) -----
    let small_rows: Vec<usize> = (0..train_ds.len().min(60)).collect();
    let small_train = train_ds.subset(&small_rows);
    let run = ImportanceRun::new(seed);
    let exact_params = TmcParams {
        permutations: 40,
        truncation_tolerance: 0.0,
    };
    let exact = tmc_shapley(
        &run,
        &KnnClassifier::new(1),
        &small_train,
        &valid_ds,
        &exact_params,
    )?
    .scores;
    let mut truncation = Vec::new();
    for tolerance in [0.0, 0.01, 0.05, 0.2] {
        let params = TmcParams {
            truncation_tolerance: tolerance,
            ..exact_params.clone()
        };
        let t0 = Instant::now();
        let scores = tmc_shapley(
            &run,
            &KnnClassifier::new(1),
            &small_train,
            &valid_ds,
            &params,
        )?
        .scores;
        truncation.push(TruncationPoint {
            tolerance,
            secs: t0.elapsed().as_secs_f64(),
            rank_corr_vs_exact: exact.rank_correlation(&scores),
        });
    }

    Ok(AblationReport {
        text_dims,
        shapley_k,
        truncation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_text_embeddings_help_until_saturation() {
        let r = run(150, 51).unwrap();
        let first = &r.text_dims[0]; // 4 dims
        let best_acc = r
            .text_dims
            .iter()
            .map(|p| p.accuracy)
            .fold(0.0f64, f64::max);
        assert!(
            best_acc >= first.accuracy,
            "wider embeddings never helped: {:?}",
            r.text_dims
        );
        // All sweeps produced full curves.
        assert_eq!(r.text_dims.len(), 4);
        assert_eq!(r.shapley_k.len(), 5);
        assert_eq!(r.truncation.len(), 4);
    }

    #[test]
    fn zero_tolerance_truncation_is_exact() {
        let r = run(100, 52).unwrap();
        let zero = &r.truncation[0];
        assert_eq!(zero.tolerance, 0.0);
        assert!((zero.rank_corr_vs_exact - 1.0).abs() < 1e-9);
        // Aggressive truncation cannot beat exact correlation.
        for p in &r.truncation {
            assert!(p.rank_corr_vs_exact <= 1.0 + 1e-9);
        }
    }
}
