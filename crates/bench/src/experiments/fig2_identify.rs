//! E1 — Fig. 2: identify data errors via importance, clean, recover.
//!
//! Paper's printed numbers: accuracy 0.76 with 10% label errors, 0.79 after
//! cleaning the 25 lowest-KNN-Shapley tuples. We reproduce the *shape*:
//! dirty < cleaned ≤ clean, with a visible recovery from cleaning 25 tuples.

use nde::scenario::load_recommendation_letters;
use nde::workflows::identify::{run as identify, IdentifyConfig};
use nde::NdeError;

/// Report for the Fig. 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2Report {
    /// Accuracy trained on clean data.
    pub acc_clean: f64,
    /// Accuracy with injected errors.
    pub acc_dirty: f64,
    /// Accuracy after cleaning 25 prioritized tuples.
    pub acc_cleaned: f64,
    /// Injected error count.
    pub injected: usize,
    /// Fraction of the cleaned tuples that were truly dirty.
    pub detection_precision: f64,
}

nde_data::json_struct!(Fig2Report {
    acc_clean,
    acc_dirty,
    acc_cleaned,
    injected,
    detection_precision
});

/// Run E1 with the paper's parameters (10% label errors, clean 25 tuples).
pub fn run(n: usize, seed: u64) -> Result<Fig2Report, NdeError> {
    let scenario = load_recommendation_letters(n, seed);
    let outcome = identify(
        &scenario,
        &IdentifyConfig {
            error_fraction: 0.10,
            clean_count: 25,
            seed: seed ^ 0xf162,
        },
    )?;
    Ok(Fig2Report {
        acc_clean: outcome.acc_clean,
        acc_dirty: outcome.acc_dirty,
        acc_cleaned: outcome.acc_cleaned,
        injected: outcome.injected,
        detection_precision: outcome.detection_precision,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_fig2_shape() {
        let r = run(500, 7).unwrap();
        assert!(r.acc_dirty < r.acc_clean, "{r:?}");
        assert!(r.acc_cleaned > r.acc_dirty, "{r:?}");
        assert!(r.detection_precision > 0.3, "{r:?}");
        assert_eq!(r.injected, 30); // 10% of the 300-row training split
    }
}
