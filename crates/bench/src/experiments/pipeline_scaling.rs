//! E13 — the Debug-pillar engine bench: pipeline execution scaling
//! (rows × threads through the chunk-parallel join/distinct/fuzzy
//! operators) and deletion what-if cost on the hash-consed provenance
//! arena versus the seed recursive-tree path.
//!
//! Two measurements per scale:
//!
//! * **exec** — wall time of the Fig. 3 hiring pipeline with provenance at
//!   each thread count (the output and lineage are bit-identical at every
//!   count, so this isolates the physical speedup);
//! * **what-if** — answering `deletion_sets` deletion scenarios from the
//!   captured lineage: the *tree* path materializes each row's
//!   [`ProvExpr`] and evaluates it recursively per scenario (the seed
//!   representation), the *arena* path packs 64 scenarios per `u64` lane
//!   and makes one forward pass per batch
//!   ([`predict_deletions_batch`]).

use crate::report::PoolActivity;
use nde::pipeline::exec::Executor;
use nde::pipeline::plan::Plan;
use nde::pipeline::semiring::BoolSemiring;
use nde::pipeline::whatif::predict_deletions_batch;
use nde::pipeline::{Lineage, ProvExpr, TupleId};
use nde::scenario::load_recommendation_letters;
use nde::NdeError;
use nde_data::fxhash::FxHashSet;
use std::time::Instant;

/// Pipeline execution timing at one (rows, threads) cell.
#[derive(Debug, Clone)]
pub struct ExecPoint {
    /// Number of applicants generated.
    pub rows: usize,
    /// Executor worker threads.
    pub threads: usize,
    /// Best-of-`reps` wall milliseconds for one provenance-tracked run.
    pub exec_ms: f64,
}

nde_data::json_struct!(ExecPoint {
    rows,
    threads,
    exec_ms
});

/// Deletion what-if timing at one scale: seed tree path vs arena path.
#[derive(Debug, Clone)]
pub struct WhatIfPoint {
    /// Number of applicants generated.
    pub rows: usize,
    /// Output rows the lineage covers.
    pub output_rows: usize,
    /// Deletion scenarios answered.
    pub deletion_sets: usize,
    /// Best-of-`reps` ms: per-row recursive [`ProvExpr`] evaluation, one
    /// scenario at a time.
    pub tree_ms: f64,
    /// Best-of-`reps` ms: batched bitset arena evaluation.
    pub arena_ms: f64,
    /// `tree_ms / arena_ms`.
    pub speedup: f64,
}

nde_data::json_struct!(WhatIfPoint {
    rows,
    output_rows,
    deletion_sets,
    tree_ms,
    arena_ms,
    speedup
});

/// Report for E13.
#[derive(Debug, Clone)]
pub struct PipelineScalingReport {
    /// Repetitions per cell (best-of).
    pub reps: usize,
    /// One point per (rows, threads) cell.
    pub exec: Vec<ExecPoint>,
    /// One point per scale.
    pub whatif: Vec<WhatIfPoint>,
    /// End-to-end ms/output-row of the sequential seed path at the largest
    /// scale: threads=1 execution + recursive tree what-if.
    pub seq_tree_ms_per_row: f64,
    /// End-to-end ms/output-row of the optimized path at the largest
    /// scale: max-threads execution + batched arena what-if.
    pub par_arena_ms_per_row: f64,
    /// `seq_tree_ms_per_row / par_arena_ms_per_row`.
    pub end_to_end_speedup: f64,
    /// Exec ms/output-row at the largest scale on the typed columnar
    /// backend (the default storage).
    pub columnar_ms_per_row: f64,
    /// The same workload with every source table converted to the
    /// Value-per-cell reference backend. The outputs (table + lineage) are
    /// verified bit-identical before either path is timed.
    pub reference_ms_per_row: f64,
    /// `reference_ms_per_row / columnar_ms_per_row`.
    pub backend_speedup: f64,
    /// Shared worker-pool activity over the whole run (jobs, chunks,
    /// park/wake churn) plus the hardware thread count of the machine.
    pub pool: PoolActivity,
}

nde_data::json_struct!(PipelineScalingReport {
    reps,
    exec,
    whatif,
    seq_tree_ms_per_row,
    par_arena_ms_per_row,
    end_to_end_speedup,
    columnar_ms_per_row,
    reference_ms_per_row,
    backend_speedup,
    pool
});

/// Deterministic deletion scenarios over the primary source: set `k`
/// deletes the `k`-th block of `train_df` rows.
fn deletion_scenarios(lineage: &Lineage, source_rows: usize, sets: usize) -> Vec<Vec<TupleId>> {
    let src = lineage
        .source_index("train_df")
        .expect("hiring pipeline reads train_df");
    let block = (source_rows / sets.max(1)).max(1);
    (0..sets)
        .map(|k| {
            let start = (k * block) % source_rows.max(1);
            let end = (start + block).min(source_rows);
            (start..end).map(|r| TupleId::new(src, r as u32)).collect()
        })
        .collect()
}

/// The seed what-if path: recursive Boolean evaluation of per-row
/// expression trees, one deletion set at a time. Returns per-set surviving
/// row counts (checked against the arena path by the caller).
fn tree_whatif(exprs: &[ProvExpr], sets: &[Vec<TupleId>]) -> Vec<usize> {
    sets.iter()
        .map(|set| {
            let dead: FxHashSet<TupleId> = set.iter().copied().collect();
            exprs
                .iter()
                .filter(|e| e.eval::<BoolSemiring>(&|t| !dead.contains(&t)))
                .count()
        })
        .collect()
}

/// Run E13 over the given scales and thread counts.
pub fn run(
    sizes: &[usize],
    threads: &[usize],
    deletion_sets: usize,
    reps: usize,
    seed: u64,
) -> Result<PipelineScalingReport, NdeError> {
    assert!(!sizes.is_empty() && !threads.is_empty() && reps >= 1);
    let pool_before = PoolActivity::snapshot();
    let (plan, root) = Plan::hiring_pipeline();
    let max_threads = threads.iter().copied().max().unwrap_or(1);
    let best_of = |f: &mut dyn FnMut() -> Result<(), NdeError>| -> Result<f64, NdeError> {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f()?;
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        Ok(best)
    };

    let mut exec = Vec::new();
    let mut whatif = Vec::new();
    let mut seq_tree_ms_per_row = 0.0;
    let mut par_arena_ms_per_row = 0.0;
    let mut columnar_ms_per_row = 0.0;
    let mut reference_ms_per_row = 0.0;
    for &n in sizes {
        let s = load_recommendation_letters(n, seed);
        let inputs = s.pipeline_inputs(&s.train);

        let exec_ms_at = |t: usize| -> Result<f64, NdeError> {
            let ex = Executor::new().with_provenance(true).with_threads(t);
            best_of(&mut || {
                let out = ex.run(&plan, root, &inputs)?;
                std::hint::black_box(out.table.n_rows());
                Ok(())
            })
        };
        let mut ms_by_threads = Vec::new();
        for &t in threads {
            let exec_ms = exec_ms_at(t)?;
            ms_by_threads.push((t, exec_ms));
            exec.push(ExecPoint {
                rows: n,
                threads: t,
                exec_ms,
            });
        }

        // Lineage is thread-invariant; capture it once.
        let out = Executor::new()
            .with_provenance(true)
            .with_threads(max_threads)
            .run(&plan, root, &inputs)?;
        let lineage = out.provenance.expect("provenance tracked");
        let sets = deletion_scenarios(&lineage, s.train.n_rows(), deletion_sets);

        // The tree path starts from materialized per-row expression trees
        // (what the seed representation stored); materialization itself is
        // not timed.
        let exprs: Vec<ProvExpr> = (0..lineage.n_rows())
            .map(|row| lineage.row_expr(row))
            .collect();
        let mut tree_counts = Vec::new();
        let tree_ms = best_of(&mut || {
            tree_counts = tree_whatif(&exprs, &sets);
            Ok(())
        })?;
        let mut arena_counts = Vec::new();
        let arena_ms = best_of(&mut || {
            arena_counts = predict_deletions_batch(&lineage, &sets)
                .iter()
                .map(|e| e.surviving_rows.len())
                .collect();
            Ok(())
        })?;
        assert_eq!(tree_counts, arena_counts, "paths must agree at n={n}");
        whatif.push(WhatIfPoint {
            rows: n,
            output_rows: lineage.n_rows(),
            deletion_sets: sets.len(),
            tree_ms,
            arena_ms,
            speedup: tree_ms / arena_ms.max(1e-9),
        });

        // End-to-end ms/output-row at the largest scale.
        if n == *sizes.last().unwrap() {
            let rows = lineage.n_rows().max(1) as f64;
            let seq_exec = ms_by_threads
                .iter()
                .find(|(t, _)| *t == 1)
                .map(|(_, ms)| *ms)
                .unwrap_or_else(|| ms_by_threads[0].1);
            let par_exec = ms_by_threads
                .iter()
                .find(|(t, _)| *t == max_threads)
                .map(|(_, ms)| *ms)
                .unwrap_or(seq_exec);
            seq_tree_ms_per_row = (seq_exec + tree_ms) / rows;
            par_arena_ms_per_row = (par_exec + arena_ms) / rows;

            // Columnar-vs-reference differential: the same pipeline over
            // Value-per-cell source tables must produce a bit-identical
            // output (table and lineage) — and lose on wall time.
            let ref_tables: Vec<(&str, nde_data::Table)> = inputs
                .iter()
                .map(|&(name, t)| (name, t.to_reference()))
                .collect();
            let ref_inputs: Vec<(&str, &nde_data::Table)> =
                ref_tables.iter().map(|(name, t)| (*name, t)).collect();
            let ex = Executor::new()
                .with_provenance(true)
                .with_threads(max_threads);
            let out_c = ex.run(&plan, root, &inputs)?;
            let out_r = ex.run(&plan, root, &ref_inputs)?;
            assert_eq!(
                out_c.table, out_r.table,
                "backends must produce identical pipeline output at n={n}"
            );
            assert_eq!(
                out_c.provenance, out_r.provenance,
                "backends must produce identical lineage at n={n}"
            );
            // The columnar timing is the max-thread exec already measured.
            columnar_ms_per_row = par_exec / rows;
            let reference_ms = best_of(&mut || {
                let out = ex.run(&plan, root, &ref_inputs)?;
                std::hint::black_box(out.table.n_rows());
                Ok(())
            })?;
            reference_ms_per_row = reference_ms / rows;
        }
    }

    Ok(PipelineScalingReport {
        reps,
        exec,
        whatif,
        seq_tree_ms_per_row,
        par_arena_ms_per_row,
        end_to_end_speedup: seq_tree_ms_per_row / par_arena_ms_per_row.max(1e-9),
        columnar_ms_per_row,
        reference_ms_per_row,
        backend_speedup: reference_ms_per_row / columnar_ms_per_row.max(1e-9),
        pool: PoolActivity::since(pool_before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_and_parallel_path_beats_sequential_tree_path() {
        // Many deletion sets widen the arena's margin (64 scenarios per
        // pass vs one tree walk per scenario), keeping the end-to-end
        // assertion stable on single-core CI runners.
        let r = run(&[600], &[1, 4], 256, 3, 21).unwrap();
        assert_eq!(r.exec.len(), 2);
        assert_eq!(r.whatif.len(), 1);
        let w = &r.whatif[0];
        assert!(w.output_rows > 0);
        // Bitset lanes answer 64 scenarios per pass; the recursive tree
        // walks each scenario separately.
        assert!(
            w.speedup > 1.0,
            "arena what-if must beat tree what-if: {w:?}"
        );
        assert!(
            r.par_arena_ms_per_row < r.seq_tree_ms_per_row,
            "optimized path must win end-to-end: {r:?}"
        );
        // The backend differential ran (equality asserted inside run) and
        // recorded timings for both storage layouts.
        assert!(r.columnar_ms_per_row > 0.0);
        assert!(r.reference_ms_per_row > 0.0);
        assert!(r.backend_speedup > 0.0);
    }
}
