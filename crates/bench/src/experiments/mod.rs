//! One module per experiment in the DESIGN.md index (E1–E16).

pub mod ablations;
pub mod certain_models;
pub mod certain_predictions;
pub mod cleaning;
pub mod durability;
pub mod fig1_metrics;
pub mod fig2_identify;
pub mod fig3_pipeline;
pub mod fig4_zorro;
pub mod importance_compare;
pub mod incremental;
pub mod multiplicity;
pub mod pipeline_scaling;
pub mod provenance_overhead;
pub mod shapley_scaling;
pub mod uncertain_scaling;
pub mod zorro_vs_imputation;
