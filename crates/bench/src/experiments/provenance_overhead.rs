//! E10 — §2.2: what does fine-grained provenance tracking cost?
//!
//! Runs the Fig. 3 hiring pipeline with and without provenance and reports
//! the wall-time ratio. Expected shape: a small constant factor (the
//! polynomial per row is built alongside the relational work), which is the
//! argument for always-on lineage in systems like mlinspect.

use nde::pipeline::exec::Executor;
use nde::pipeline::plan::Plan;
use nde::scenario::load_recommendation_letters;
use nde::NdeError;
use std::time::Instant;

/// Timings at one scale.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Number of applicants generated.
    pub n: usize,
    /// Pipeline execution seconds without provenance.
    pub plain_secs: f64,
    /// Pipeline execution seconds with provenance.
    pub provenance_secs: f64,
    /// `provenance_secs / plain_secs`.
    pub overhead_factor: f64,
}

nde_data::json_struct!(OverheadPoint {
    n,
    plain_secs,
    provenance_secs,
    overhead_factor
});

/// Report for E10.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Repetitions averaged per point.
    pub reps: usize,
    /// One point per swept scale.
    pub points: Vec<OverheadPoint>,
}

nde_data::json_struct!(OverheadReport { reps, points });

/// Run E10 over the given scales.
pub fn run(sizes: &[usize], reps: usize, seed: u64) -> Result<OverheadReport, NdeError> {
    let (plan, root) = Plan::hiring_pipeline();
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let s = load_recommendation_letters(n, seed);
        let inputs = s.pipeline_inputs(&s.train);
        let timed = |track: bool| -> Result<f64, NdeError> {
            let exec = Executor::new().with_provenance(track);
            let t0 = Instant::now();
            for _ in 0..reps {
                let out = exec.run(&plan, root, &inputs)?;
                std::hint::black_box(out.table.n_rows());
            }
            Ok(t0.elapsed().as_secs_f64() / reps as f64)
        };
        let plain_secs = timed(false)?;
        let provenance_secs = timed(true)?;
        points.push(OverheadPoint {
            n,
            plain_secs,
            provenance_secs,
            overhead_factor: provenance_secs / plain_secs.max(1e-12),
        });
    }
    Ok(OverheadReport { reps, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_a_small_constant_factor() {
        let r = run(&[300], 3, 35).unwrap();
        let p = &r.points[0];
        assert!(p.plain_secs > 0.0);
        assert!(p.overhead_factor >= 0.5, "{p:?}");
        // Provenance must not blow execution up by an order of magnitude.
        assert!(p.overhead_factor < 10.0, "{p:?}");
    }
}
