//! E14 — the Learn-pillar engine bench: SoA interval kernels versus the
//! AoS scalar-[`Interval`] reference across the three hot paths.
//!
//! * **Zorro fit** — symbolic interval gradient descent over rows × dims ×
//!   threads: the SoA engine (contiguous `lo`/`hi` planes, fused dot/axpy
//!   kernels, chunk-parallel blocks) against the sequential AoS reference.
//!   Both produce bit-identical weight intervals — asserted per cell — so
//!   the timing isolates layout + parallelism.
//! * **certain-KNN** — certain-prediction verdicts for a query batch: the
//!   per-query AoS scan against the SoA index with candidate pruning,
//!   single-threaded and batched over threads (queries/sec).
//! * **possible worlds** — worlds/sec of impute-retrain-predict sampling
//!   (plane-backed imputation, worlds spread over threads).

use crate::report::PoolActivity;
use nde::uncertain::certain_knn::{certain_prediction_1nn, CertainKnnIndex};
use nde::uncertain::worlds::sample_worlds_par;
use nde::uncertain::zorro::{ZorroConfig, ZorroRegressor};
use nde::uncertain::{Interval, SymbolicMatrix};
use nde::NdeError;
use nde_data::generate::blobs::{linear_regression, two_gaussians};
use nde_data::rng::{sample_indices, seeded, Rng};
use nde_ml::linalg::Matrix;
use nde_ml::models::knn::KnnClassifier;
use nde_uncertain::symbolic::column_bounds_from_observed;
use std::time::Instant;

/// Zorro symbolic-fit timing at one (rows, dims, threads) cell.
#[derive(Debug, Clone)]
pub struct ZorroPoint {
    /// Training rows.
    pub rows: usize,
    /// Feature dimensions.
    pub dims: usize,
    /// Gradient worker threads for the SoA engine.
    pub threads: usize,
    /// Best-of-`reps` ms for the SoA engine fit.
    pub soa_ms: f64,
    /// Best-of-`reps` ms for the sequential AoS reference fit.
    pub aos_ms: f64,
    /// `aos_ms / soa_ms`.
    pub speedup: f64,
}

nde_data::json_struct!(ZorroPoint {
    rows,
    dims,
    threads,
    soa_ms,
    aos_ms,
    speedup
});

/// Certain-KNN verdict timing at one (rows, dims) scale.
#[derive(Debug, Clone)]
pub struct KnnPoint {
    /// Training rows.
    pub rows: usize,
    /// Feature dimensions.
    pub dims: usize,
    /// Queries classified.
    pub queries: usize,
    /// Best-of-`reps` ms: AoS reference, one scan per query.
    pub aos_ms: f64,
    /// Best-of-`reps` ms: SoA pruned index, single thread.
    pub soa_ms: f64,
    /// Best-of-`reps` ms: SoA pruned index, max threads.
    pub soa_batch_ms: f64,
    /// `aos_ms / soa_ms` (single-thread, isolates layout + pruning).
    pub speedup: f64,
    /// Queries per second of the batched SoA path.
    pub queries_per_sec: f64,
    /// Fraction of queries with a certain verdict (sanity: discriminative).
    pub certain_fraction: f64,
}

nde_data::json_struct!(KnnPoint {
    rows,
    dims,
    queries,
    aos_ms,
    soa_ms,
    soa_batch_ms,
    speedup,
    queries_per_sec,
    certain_fraction
});

/// Possible-worlds sampling throughput at one (rows, dims, threads) cell.
#[derive(Debug, Clone)]
pub struct WorldsPoint {
    /// Training rows.
    pub rows: usize,
    /// Feature dimensions.
    pub dims: usize,
    /// Worlds sampled.
    pub worlds: usize,
    /// Worker threads.
    pub threads: usize,
    /// Best-of-`reps` ms for the full impute-retrain-predict sweep.
    pub ms: f64,
    /// Worlds per second.
    pub worlds_per_sec: f64,
}

nde_data::json_struct!(WorldsPoint {
    rows,
    dims,
    worlds,
    threads,
    ms,
    worlds_per_sec
});

/// Report for E14.
#[derive(Debug, Clone)]
pub struct UncertainScalingReport {
    /// Repetitions per cell (best-of).
    pub reps: usize,
    /// One point per (rows, dims, threads) Zorro cell.
    pub zorro: Vec<ZorroPoint>,
    /// One point per (rows, dims) certain-KNN scale.
    pub knn: Vec<KnnPoint>,
    /// One point per (rows, dims, threads) worlds cell.
    pub worlds: Vec<WorldsPoint>,
    /// End-to-end ms/training-row of the AoS seed path at the largest
    /// scale: sequential reference fit + per-query reference KNN.
    pub aos_ms_per_row: f64,
    /// End-to-end ms/training-row of the SoA engine at the largest scale:
    /// the fit at its best measured thread count + the faster pruned KNN
    /// path (results are bit-identical at every thread count, so picking
    /// the best configuration compares answers, not schedules).
    pub soa_ms_per_row: f64,
    /// `aos_ms_per_row / soa_ms_per_row`.
    pub end_to_end_speedup: f64,
    /// Shared worker-pool activity over the whole run (jobs, chunks,
    /// park/wake churn) plus the hardware thread count of the machine.
    pub pool: PoolActivity,
}

nde_data::json_struct!(UncertainScalingReport {
    reps,
    zorro,
    knn,
    worlds,
    aos_ms_per_row,
    soa_ms_per_row,
    end_to_end_speedup,
    pool
});

/// Regression features with ~8% of rows carrying one missing cell, widened
/// to its column's observed bounds.
fn symbolic_regression(
    rows: usize,
    dims: usize,
    seed: u64,
) -> (SymbolicMatrix, Vec<Interval>, Matrix) {
    let (xs, ys, _, _) = linear_regression(rows, dims, 0.05, seed);
    let x = Matrix::from_rows(xs).expect("rectangular");
    let bounds = column_bounds_from_observed(&x);
    let mut rng = seeded(seed ^ 0x5eed);
    let missing: Vec<(usize, usize)> = sample_indices(rows, rows / 12, &mut rng)
        .into_iter()
        .map(|r| (r, rng.gen_range(0..dims)))
        .collect();
    let sym = SymbolicMatrix::from_matrix_with_missing(&x, &missing, &bounds).expect("valid cells");
    let targets: Vec<Interval> = ys.iter().map(|&v| Interval::point(v)).collect();
    (sym, targets, x)
}

/// Two-cluster classification data with missing cells plus a query batch.
fn symbolic_classification(
    rows: usize,
    dims: usize,
    queries: usize,
    seed: u64,
) -> (SymbolicMatrix, Vec<usize>, Matrix) {
    let data = two_gaussians(rows, dims, 2.0, seed);
    let x = Matrix::from_rows(data.features).expect("rectangular");
    let bounds = column_bounds_from_observed(&x);
    let mut rng = seeded(seed ^ 0xc0de);
    let missing: Vec<(usize, usize)> = sample_indices(rows, rows / 10, &mut rng)
        .into_iter()
        .map(|r| (r, rng.gen_range(0..dims)))
        .collect();
    let sym = SymbolicMatrix::from_matrix_with_missing(&x, &missing, &bounds).expect("valid cells");
    let q = Matrix::from_rows(
        (0..queries)
            .map(|_| (0..dims).map(|_| rng.gen_range(-3.0..5.0)).collect())
            .collect(),
    )
    .expect("rectangular");
    (sym, data.labels, q)
}

/// Run E14 over the given scales and thread counts.
pub fn run(
    sizes: &[usize],
    dims: &[usize],
    threads: &[usize],
    queries: usize,
    worlds: usize,
    reps: usize,
    seed: u64,
) -> Result<UncertainScalingReport, NdeError> {
    assert!(!sizes.is_empty() && !dims.is_empty() && !threads.is_empty() && reps >= 1);
    let pool_before = PoolActivity::snapshot();
    let max_threads = threads.iter().copied().max().unwrap_or(1);
    let best_of = |f: &mut dyn FnMut() -> Result<(), NdeError>| -> Result<f64, NdeError> {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f()?;
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        Ok(best)
    };
    let config = ZorroConfig {
        epochs: 30,
        learning_rate: 0.05,
        l2: 1e-3,
        divergence_threshold: 1e9,
        threads: 1,
        pool: None,
    };

    let mut zorro = Vec::new();
    let mut knn = Vec::new();
    let mut worlds_points = Vec::new();
    let mut aos_ms_per_row = 0.0;
    let mut soa_ms_per_row = 0.0;
    let largest = (*sizes.last().unwrap(), *dims.last().unwrap());
    for &n in sizes {
        for &d in dims {
            // --- Zorro fit ---
            let (sym, targets, _) = symbolic_regression(n, d, seed);
            let mut reference_w = Vec::new();
            let aos_fit_ms = best_of(&mut || {
                let mut model = ZorroRegressor::new(config.clone());
                model.fit_uncertain_reference(&sym, &targets)?;
                reference_w = model.weight_intervals().expect("fitted").to_vec();
                Ok(())
            })?;
            let mut soa_fit_best = f64::INFINITY;
            for &t in threads {
                let cfg = config.clone().with_threads(t);
                let mut engine_w = Vec::new();
                let soa_ms = best_of(&mut || {
                    let mut model = ZorroRegressor::new(cfg.clone());
                    model.fit_uncertain(&sym, &targets)?;
                    engine_w = model.weight_intervals().expect("fitted").to_vec();
                    Ok(())
                })?;
                assert_eq!(
                    engine_w, reference_w,
                    "SoA weights must be bit-identical at n={n} d={d} t={t}"
                );
                soa_fit_best = soa_fit_best.min(soa_ms);
                zorro.push(ZorroPoint {
                    rows: n,
                    dims: d,
                    threads: t,
                    soa_ms,
                    aos_ms: aos_fit_ms,
                    speedup: aos_fit_ms / soa_ms.max(1e-9),
                });
            }

            // --- certain-KNN ---
            let (ksym, labels, q) = symbolic_classification(n, d, queries, seed + 1);
            let index = CertainKnnIndex::new(&ksym, &labels)?;
            let mut aos_outcomes = Vec::new();
            let knn_aos_ms = best_of(&mut || {
                aos_outcomes = q
                    .iter_rows()
                    .map(|query| certain_prediction_1nn(&ksym, &labels, query))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(())
            })?;
            let mut soa_outcomes = Vec::new();
            let knn_soa_ms = best_of(&mut || {
                soa_outcomes = index.classify_batch(&q, 1)?;
                Ok(())
            })?;
            assert_eq!(
                soa_outcomes, aos_outcomes,
                "verdicts must agree at n={n} d={d}"
            );
            let knn_batch_ms = best_of(&mut || {
                let batched = index.classify_batch(&q, max_threads)?;
                std::hint::black_box(batched.len());
                Ok(())
            })?;
            let certain = soa_outcomes.iter().filter(|o| o.is_certain()).count();
            knn.push(KnnPoint {
                rows: n,
                dims: d,
                queries,
                aos_ms: knn_aos_ms,
                soa_ms: knn_soa_ms,
                soa_batch_ms: knn_batch_ms,
                speedup: knn_aos_ms / knn_soa_ms.max(1e-9),
                queries_per_sec: queries as f64 / (knn_batch_ms / 1e3).max(1e-9),
                certain_fraction: certain as f64 / queries.max(1) as f64,
            });

            // --- possible worlds ---
            for &t in threads {
                let ms = best_of(&mut || {
                    let ens = sample_worlds_par(
                        &KnnClassifier::new(1),
                        &ksym,
                        &labels,
                        2,
                        &q,
                        worlds,
                        seed + 2,
                        t,
                    )?;
                    std::hint::black_box(ens.worlds);
                    Ok(())
                })?;
                worlds_points.push(WorldsPoint {
                    rows: n,
                    dims: d,
                    worlds,
                    threads: t,
                    ms,
                    worlds_per_sec: worlds as f64 / (ms / 1e3).max(1e-9),
                });
            }

            if (n, d) == largest {
                let rows = n as f64;
                aos_ms_per_row = (aos_fit_ms + knn_aos_ms) / rows;
                soa_ms_per_row = (soa_fit_best + knn_soa_ms.min(knn_batch_ms)) / rows;
            }
        }
    }

    Ok(UncertainScalingReport {
        reps,
        zorro,
        knn,
        worlds: worlds_points,
        aos_ms_per_row,
        soa_ms_per_row,
        end_to_end_speedup: aos_ms_per_row / soa_ms_per_row.max(1e-9),
        pool: PoolActivity::since(pool_before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soa_engine_beats_aos_reference_end_to_end() {
        let r = run(&[1200], &[12], &[1, 4], 96, 16, 3, 77).unwrap();
        assert_eq!(r.zorro.len(), 2);
        assert_eq!(r.knn.len(), 1);
        assert_eq!(r.worlds.len(), 2);
        let k = &r.knn[0];
        assert!(
            k.certain_fraction > 0.0 && k.certain_fraction < 1.0,
            "knn workload not discriminative: {k:?}"
        );
        assert!(
            r.soa_ms_per_row < r.aos_ms_per_row,
            "SoA engine must win end-to-end: {r:?}"
        );
        assert!(r.end_to_end_speedup > 1.0);
    }
}
