//! E8 — certain-prediction coverage vs missing rate (CP, VLDB'20).
use nde_bench::experiments::certain_predictions;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = certain_predictions::run(300, 150, &[0.0, 0.02, 0.05, 0.1, 0.2, 0.3], 9)?;
    println!("E8 — 1-NN certain-prediction coverage vs missingness\n");
    let mut t = TextTable::new(&["missing frac", "coverage", "certain accuracy"]);
    for p in &r.points {
        t.row(vec![
            format!("{:.2}", p.missing_fraction),
            f(p.coverage),
            f(p.certain_accuracy),
        ]);
    }
    println!("{}", t.render());
    let agreement = certain_predictions::sampled_world_agreement(200, 0.1, 10)?;
    println!("Certain verdicts vs sampled worlds agreement: {agreement:.4}\n");
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
