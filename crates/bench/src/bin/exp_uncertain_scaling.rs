//! E14 — Learn-pillar engine scaling: SoA interval kernels vs the AoS
//! reference across Zorro fits (rows × dims × threads), certain-KNN query
//! batches, and possible-worlds sampling.
//!
//! Flags (all optional):
//!
//! ```text
//! --smoke                    single-scale workload (CI smoke test); also
//!                            asserts the SoA engine beats the AoS path
//! --rows=500,1000,2000       training-row counts to sweep
//! --dims=4,16                feature dimensions to sweep
//! --threads=1,2,4            worker thread counts
//! --queries=256              certain-KNN queries per scale
//! --worlds=32                possible worlds per scale
//! --reps=3                   repetitions per cell (best-of)
//! --out=BENCH_uncertain.json append-only trajectory file
//! --check=40                 fail (exit 1) if a tracked ms/row metric
//!                            regressed more than this % vs the previous
//!                            record on the same runner class
//! ```
//! Smoke mode also arms the **thread-scaling gate** over the Zorro fit:
//! at the largest (rows, dims) scale the max-thread SoA fit must strictly
//! beat the min-thread fit on multi-core hardware (bounded overhead on a
//! single-core runner).
use nde_bench::experiments::uncertain_scaling;
use nde_bench::report::{
    append_trajectory, check_scaling_win, check_trajectory, hardware_threads, trajectory_delta,
    TextTable,
};

struct Args {
    smoke: bool,
    rows: Vec<usize>,
    dims: Vec<usize>,
    threads: Vec<usize>,
    queries: usize,
    worlds: usize,
    reps: usize,
    out: String,
    check_pct: Option<f64>,
}

fn parse_args() -> Args {
    let mut smoke = false;
    let mut rows: Option<Vec<usize>> = None;
    let mut dims: Option<Vec<usize>> = None;
    let mut threads = vec![1, 2, 4];
    let mut queries: Option<usize> = None;
    let mut worlds: Option<usize> = None;
    let mut reps = 3usize;
    let mut out = "BENCH_uncertain.json".to_string();
    let mut check_pct = None;
    let parse_list = |value: &str, flag: &str| -> Vec<usize> {
        value
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{flag} takes integers"))
            })
            .collect()
    };
    for arg in std::env::args().skip(1) {
        let (key, value) = match arg.split_once('=') {
            Some((k, v)) => (k, v),
            None => (arg.as_str(), ""),
        };
        match key {
            "--smoke" => smoke = true,
            "--rows" => rows = Some(parse_list(value, "--rows")),
            "--dims" => dims = Some(parse_list(value, "--dims")),
            "--threads" => threads = parse_list(value, "--threads"),
            "--queries" => queries = Some(value.parse().expect("--queries takes an integer")),
            "--worlds" => worlds = Some(value.parse().expect("--worlds takes an integer")),
            "--reps" => reps = value.parse().expect("--reps takes an integer"),
            "--out" => out = value.to_string(),
            "--check" => check_pct = Some(value.parse().expect("--check takes a percentage")),
            other => panic!("unknown flag {other}"),
        }
    }
    // The smoke scale is big enough that the SoA layout + pruning win shows
    // through timer noise even single-threaded (the fused kernels and the
    // pruned KNN scan beat the AoS paths without any extra cores).
    Args {
        smoke,
        rows: rows.unwrap_or(if smoke {
            vec![2000]
        } else {
            vec![500, 1000, 2000, 4000]
        }),
        dims: dims.unwrap_or(if smoke { vec![16] } else { vec![4, 16] }),
        threads,
        queries: queries.unwrap_or(if smoke { 128 } else { 256 }),
        worlds: worlds.unwrap_or(if smoke { 16 } else { 32 }),
        reps: reps.max(1),
        out,
        check_pct,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    println!(
        "E14 — uncertain scaling: rows {:?} × dims {:?} × threads {:?}, {} queries, {} worlds, best of {}",
        args.rows, args.dims, args.threads, args.queries, args.worlds, args.reps
    );
    let r = uncertain_scaling::run(
        &args.rows,
        &args.dims,
        &args.threads,
        args.queries,
        args.worlds,
        args.reps,
        21,
    )?;

    let mut t = TextTable::new(&["rows", "dims", "threads", "AoS ms", "SoA ms", "speedup"]);
    for p in &r.zorro {
        t.row(vec![
            p.rows.to_string(),
            p.dims.to_string(),
            p.threads.to_string(),
            format!("{:.3}", p.aos_ms),
            format!("{:.3}", p.soa_ms),
            format!("{:.2}x", p.speedup),
        ]);
    }
    println!(
        "\nZorro symbolic fit (AoS reference vs SoA engine):\n{}",
        t.render()
    );

    let mut t = TextTable::new(&[
        "rows", "dims", "queries", "AoS ms", "SoA ms", "batch ms", "speedup", "q/s", "certain",
    ]);
    for p in &r.knn {
        t.row(vec![
            p.rows.to_string(),
            p.dims.to_string(),
            p.queries.to_string(),
            format!("{:.3}", p.aos_ms),
            format!("{:.3}", p.soa_ms),
            format!("{:.3}", p.soa_batch_ms),
            format!("{:.2}x", p.speedup),
            format!("{:.0}", p.queries_per_sec),
            format!("{:.2}", p.certain_fraction),
        ]);
    }
    println!(
        "certain-KNN verdicts (per-query AoS scan vs pruned SoA index):\n{}",
        t.render()
    );

    let mut t = TextTable::new(&["rows", "dims", "worlds", "threads", "ms", "worlds/s"]);
    for p in &r.worlds {
        t.row(vec![
            p.rows.to_string(),
            p.dims.to_string(),
            p.worlds.to_string(),
            p.threads.to_string(),
            format!("{:.3}", p.ms),
            format!("{:.0}", p.worlds_per_sec),
        ]);
    }
    println!("possible-worlds sampling:\n{}", t.render());
    println!(
        "end-to-end ms/training-row at n={}: AoS {:.5}, SoA {:.5} ({:.2}x)",
        args.rows.last().unwrap(),
        r.aos_ms_per_row,
        r.soa_ms_per_row,
        r.end_to_end_speedup,
    );
    println!(
        "pool: {} jobs, {} chunks, {} parks, {} wakes on {} hardware threads",
        r.pool.jobs, r.pool.chunks, r.pool.parks, r.pool.wakes, r.pool.hw_threads,
    );

    if args.smoke {
        // CI criterion: the optimized engine must beat the AoS seed path.
        assert!(
            r.soa_ms_per_row < r.aos_ms_per_row,
            "smoke criterion failed: SoA {:.5} ms/row is not below AoS {:.5} ms/row",
            r.soa_ms_per_row,
            r.aos_ms_per_row,
        );
        println!("smoke criterion OK: SoA engine beats the AoS reference end-to-end");

        // Thread-scaling gate over the Zorro fit at the largest scale.
        let (n, d) = (
            args.rows.iter().copied().max().unwrap(),
            args.dims.iter().copied().max().unwrap(),
        );
        let t_lo = args.threads.iter().copied().min().unwrap();
        let t_hi = args.threads.iter().copied().max().unwrap();
        let ms_at = |t: usize| {
            r.zorro
                .iter()
                .find(|p| p.rows == n && p.dims == d && p.threads == t)
                .map(|p| p.soa_ms)
        };
        if let (true, Some(lo_ms), Some(hi_ms)) = (t_hi > t_lo, ms_at(t_lo), ms_at(t_hi)) {
            let label = format!("E14 Zorro fit, {n}x{d}, {t_hi} threads vs {t_lo} thread");
            match check_scaling_win(&label, lo_ms, hi_ms, hardware_threads(), 25.0) {
                Ok(summary) => println!("{summary}"),
                Err(report) => {
                    eprintln!("{report}");
                    std::process::exit(1);
                }
            }
        }
    }

    let records = append_trajectory(&args.out, &r)?;
    println!("\nappended record {} to {}", records.len(), args.out);
    if let Some(delta) = trajectory_delta(&records) {
        println!("{delta}");
    }
    if let Some(pct) = args.check_pct {
        match check_trajectory(&records, &["ms_per_row"], pct) {
            Ok(Some(summary)) => println!("{summary}"),
            Ok(None) => println!("bench gate: no comparable prior record, nothing to check"),
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    }
    Ok(())
}
