//! E16 driver — incremental maintenance vs full re-execution.
//!
//! Times single-tuple fix propagation through a `PipelineSession` per
//! propagation path (cell patch, splice, rerun fallback) against fresh
//! provenance-tracked runs, and the prioritized-cleaning loop under
//! `MaintenanceMode::Incremental` vs `Rerun`. Bit-identity of tables,
//! lineage and score traces is asserted inside the experiment before any
//! timing. Results append to the `BENCH_incremental.json` trajectory;
//! `--check=<pct>` arms the same-runner regression gate.
//!
//! Flags: `--smoke`, `--rows=N`, `--fixes=N`, `--rounds=N`, `--reps=N`,
//! `--out=FILE`, `--check=PCT`.

use nde_bench::experiments::incremental;
use nde_bench::report::{append_trajectory, check_trajectory, trajectory_delta, TextTable};

struct Args {
    smoke: bool,
    rows: usize,
    fixes: usize,
    rounds: usize,
    reps: usize,
    out: String,
    check_pct: Option<f64>,
}

fn parse_args() -> Args {
    let mut smoke = false;
    let mut rows = None;
    let mut fixes = None;
    let mut rounds = None;
    // Best-of-5 by default: the splice win is in constants, not
    // asymptotics, so the smoke assert needs a stable floor.
    let mut reps = 5usize;
    let mut out = "BENCH_incremental.json".to_string();
    let mut check_pct = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
            continue;
        }
        let Some((flag, value)) = arg.split_once('=') else {
            panic!("unknown flag {arg} (expected --flag=value)");
        };
        match flag {
            "--rows" => rows = Some(value.parse().expect("--rows takes an integer")),
            "--fixes" => fixes = Some(value.parse().expect("--fixes takes an integer")),
            "--rounds" => rounds = Some(value.parse().expect("--rounds takes an integer")),
            "--reps" => reps = value.parse().expect("--reps takes an integer"),
            "--out" => out = value.to_string(),
            "--check" => check_pct = Some(value.parse().expect("--check takes a percentage")),
            other => panic!("unknown flag {other}"),
        }
    }
    Args {
        smoke,
        rows: rows.unwrap_or(if smoke { 60 } else { 200 }),
        fixes: fixes.unwrap_or(if smoke { 6 } else { 16 }),
        rounds: rounds.unwrap_or(if smoke { 6 } else { 10 }),
        reps: reps.max(1),
        out,
        check_pct,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    println!(
        "E16 — incremental maintenance: {} rows/table, {} fixes/path, {} cleaning rounds, best of {}",
        args.rows, args.fixes, args.rounds, args.reps
    );
    let r = incremental::run(args.rows, args.fixes, args.rounds, args.reps, 16)?;

    let mut t = TextTable::new(&["path", "fixes", "apply µs/fix", "rerun µs/fix", "speedup"]);
    for p in &r.fix_paths {
        t.row(vec![
            p.path.clone(),
            p.fixes.to_string(),
            format!("{:.1}", p.incremental_us),
            format!("{:.1}", p.rerun_us),
            format!("{:.2}x", p.speedup),
        ]);
    }
    println!(
        "\nper-fix propagation (session apply vs full re-execution, bit-identical):\n{}",
        t.render()
    );

    let c = &r.cleaning;
    let mut t = TextTable::new(&["rows", "rounds", "rerun ms", "incremental ms", "speedup"]);
    t.row(vec![
        c.rows.to_string(),
        c.rounds.to_string(),
        format!("{:.3}", c.rerun_ms),
        format!("{:.3}", c.incremental_ms),
        format!("{:.2}x", c.speedup),
    ]);
    println!(
        "cleaning loop (MaintenanceMode::Rerun vs Incremental, bit-identical traces):\n{}",
        t.render()
    );

    if args.smoke {
        // CI criterion: incremental maintenance must win where it claims
        // to — cell patches and splices beat full re-execution per fix,
        // and incremental cleaning beats rerun cleaning end-to-end. The
        // rerun-fallback path is full re-execution plus bookkeeping, so it
        // is only required to stay in the same ballpark.
        for p in &r.fix_paths {
            match p.path.as_str() {
                "rerun" => assert!(p.speedup > 0.2, "rerun fallback pathologically slow: {p:?}"),
                _ => assert!(p.speedup > 1.0, "incremental lost on {p:?}"),
            }
        }
        assert!(
            c.speedup > 1.0,
            "incremental cleaning lost: {:.3} ms vs {:.3} ms rerun",
            c.incremental_ms,
            c.rerun_ms
        );
        println!(
            "smoke criterion OK: patch {:.1}x, splice {:.1}x, cleaning {:.2}x, all bit-identical",
            r.fix_paths[0].speedup, r.fix_paths[1].speedup, c.speedup
        );
    }

    let records = append_trajectory(&args.out, &r)?;
    println!("\nappended record {} to {}", records.len(), args.out);
    if let Some(delta) = trajectory_delta(&records) {
        println!("{delta}");
    }
    if let Some(pct) = args.check_pct {
        match check_trajectory(&records, &["incremental_us", "incremental_ms"], pct) {
            Ok(Some(summary)) => println!("{summary}"),
            Ok(None) => println!("bench gate: no comparable prior record, nothing to check"),
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    }
    Ok(())
}
