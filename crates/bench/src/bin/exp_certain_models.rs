//! E11 — existence of (approximately) certain models vs missing rate.
use nde_bench::experiments::certain_models;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = certain_models::run(80, &[0.0, 0.05, 0.1, 0.2, 0.4], 5, 12)?;
    println!(
        "E11 — certain-model existence ({} trials per point)\n",
        r.trials
    );
    let mut t = TextTable::new(&[
        "missing frac",
        "certain (irrelevant feat)",
        "certain (relevant feat)",
    ]);
    for p in &r.points {
        t.row(vec![
            format!("{:.2}", p.missing_fraction),
            f(p.certain_irrelevant),
            f(p.certain_relevant),
        ]);
    }
    println!("{}", t.render());
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
