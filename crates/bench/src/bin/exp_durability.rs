//! E15 — durability: checkpoint overhead of the durable run store across
//! checkpoint intervals, and crash-recovery latency (clean and torn-record)
//! for the resumable estimators. Store-backed and recovered runs are
//! asserted bit-identical to uninterrupted ones.
//!
//! Flags (all optional):
//!
//! ```text
//! --smoke                     small workload (CI smoke test)
//! --rows=240                  training rows
//! --perms=24                  TMC permutations / Banzhaf samples
//! --intervals=1,2,4,8         checkpoint intervals to sweep
//! --reps=3                    repetitions per cell (best-of)
//! --out=BENCH_durability.json append-only trajectory file
//! --check=40                  fail (exit 1) if a tracked ms metric
//!                             regressed more than this % vs the previous
//!                             record on the same runner class
//! ```
use nde_bench::experiments::durability;
use nde_bench::report::{append_trajectory, check_trajectory, trajectory_delta, TextTable};

struct Args {
    smoke: bool,
    rows: usize,
    perms: usize,
    intervals: Vec<usize>,
    reps: usize,
    out: String,
    check_pct: Option<f64>,
}

fn parse_args() -> Args {
    let mut smoke = false;
    let mut rows: Option<usize> = None;
    let mut perms: Option<usize> = None;
    let mut intervals: Option<Vec<usize>> = None;
    let mut reps = 3usize;
    let mut out = "BENCH_durability.json".to_string();
    let mut check_pct = None;
    for arg in std::env::args().skip(1) {
        let (key, value) = match arg.split_once('=') {
            Some((k, v)) => (k, v),
            None => (arg.as_str(), ""),
        };
        match key {
            "--smoke" => smoke = true,
            "--rows" => rows = Some(value.parse().expect("--rows takes an integer")),
            "--perms" => perms = Some(value.parse().expect("--perms takes an integer")),
            "--intervals" => {
                intervals = Some(
                    value
                        .split(',')
                        .map(|t| t.trim().parse().expect("--intervals takes integers"))
                        .collect(),
                )
            }
            "--reps" => reps = value.parse().expect("--reps takes an integer"),
            "--out" => out = value.to_string(),
            "--check" => check_pct = Some(value.parse().expect("--check takes a percentage")),
            other => panic!("unknown flag {other}"),
        }
    }
    Args {
        smoke,
        rows: rows.unwrap_or(if smoke { 100 } else { 240 }),
        perms: perms.unwrap_or(if smoke { 12 } else { 24 }),
        intervals: intervals.unwrap_or(if smoke { vec![2, 4] } else { vec![1, 2, 4, 8] }),
        reps: reps.max(1),
        out,
        check_pct,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    println!(
        "E15 — durability: {} rows, {} permutations, checkpoint intervals {:?}, best of {}",
        args.rows, args.perms, args.intervals, args.reps
    );
    let r = durability::run(args.rows, args.perms, &args.intervals, args.reps, 33)?;

    let mut t = TextTable::new(&[
        "every",
        "plain ms",
        "durable ms",
        "overhead",
        "ckpts",
        "ms/save",
    ]);
    for p in &r.overhead {
        t.row(vec![
            p.every.to_string(),
            format!("{:.3}", p.plain_ms),
            format!("{:.3}", p.durable_ms),
            format!("{:+.1}%", p.overhead_pct),
            p.checkpoints.to_string(),
            format!("{:.4}", p.save_ms),
        ]);
    }
    println!(
        "\ncheckpoint overhead (TMC-Shapley, store-backed vs plain, bit-identical):\n{}",
        t.render()
    );

    let mut t = TextTable::new(&[
        "method",
        "torn",
        "cut at",
        "resumed from",
        "recover ms",
        "full ms",
    ]);
    for p in &r.recovery {
        t.row(vec![
            p.method.clone(),
            p.torn.to_string(),
            format!("{}/{}", p.cut_step, p.total_steps),
            p.resumed_from.to_string(),
            format!("{:.3}", p.recover_ms),
            format!("{:.3}", p.full_ms),
        ]);
    }
    println!(
        "crash recovery (resume to completion, bit-identical):\n{}",
        t.render()
    );

    if args.smoke {
        // CI criterion: checkpointing ran, recovery resumed from the store
        // (bit-identity is asserted inside the experiment) and the overhead
        // was recorded as a finite number.
        assert!(r.overhead.iter().all(|p| p.checkpoints > 0));
        assert!(r.overhead.iter().all(|p| p.overhead_pct.is_finite()));
        assert!(r.recovery.iter().all(|p| p.resumed_from > 0));
        println!(
            "smoke criterion OK: {} checkpointed runs and {} recoveries, all bit-identical",
            r.overhead.len(),
            r.recovery.len()
        );
    }

    let records = append_trajectory(&args.out, &r)?;
    println!("\nappended record {} to {}", records.len(), args.out);
    if let Some(delta) = trajectory_delta(&records) {
        println!("{delta}");
    }
    if let Some(pct) = args.check_pct {
        match check_trajectory(&records, &["durable_ms", "recover_ms"], pct) {
            Ok(Some(summary)) => println!("{summary}"),
            Ok(None) => println!("bench gate: no comparable prior record, nothing to check"),
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    }
    Ok(())
}
