//! E3 — regenerate Fig. 4: maximum worst-case loss vs missing percentage.
use nde_bench::experiments::fig4_zorro;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = fig4_zorro::run(500, 4)?;
    println!("E3 / Fig. 4 — Zorro worst-case loss vs MNAR missingness\n");
    let mut t = TextTable::new(&["missing %", "max worst-case loss", "baseline mse"]);
    for p in &r.points {
        t.row(vec![
            format!("{}", p.percentage),
            f(p.max_worst_case_loss),
            f(p.baseline_mse),
        ]);
    }
    println!("{}", t.render());
    println!("Curve monotone non-decreasing: {}\n", r.monotone);
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
