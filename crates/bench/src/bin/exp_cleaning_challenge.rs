//! E7 — cleaning-budget curves and the debugging-challenge leaderboard.
use nde_bench::experiments::cleaning;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = cleaning::run(300, 0.15, 8)?;
    println!("E7 — prioritized cleaning curves (validation accuracy)\n");
    for c in &r.curves {
        let mut t = TextTable::new(&["cleaned", "accuracy"]);
        for (n, a) in c.cleaned.iter().zip(&c.accuracy) {
            t.row(vec![n.to_string(), f(*a)]);
        }
        println!("strategy: {}\n{}", c.strategy, t.render());
    }
    println!(
        "Challenge leaderboard (hidden test set):\n{}",
        r.leaderboard
    );
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
