//! Run every experiment (E1–E15) back to back; used to regenerate
//! EXPERIMENTS.md numbers in one go. Prefer `--release`.
use std::process::Command;

fn main() {
    let exps = [
        "exp_fig1_metrics",
        "exp_fig2_identify",
        "exp_fig3_pipeline",
        "exp_fig4_zorro",
        "exp_importance_compare",
        "exp_shapley_scaling",
        "exp_cleaning_challenge",
        "exp_certain_predictions",
        "exp_multiplicity",
        "exp_certain_models",
        "exp_zorro_vs_imputation",
        "exp_provenance_overhead",
        "exp_ablations",
        "exp_pipeline_scaling",
        "exp_uncertain_scaling",
        "exp_durability",
    ];
    let me = std::env::current_exe().expect("current exe resolvable");
    let dir = me.parent().expect("exe has a parent dir");
    for exp in exps {
        println!("\n=== {exp} ===============================================\n");
        let status = Command::new(dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed");
    }
}
