//! E1 — regenerate Fig. 2: identify errors, clean, recover accuracy.
use nde_bench::experiments::fig2_identify;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = fig2_identify::run(600, 2)?;
    println!("E1 / Fig. 2 — identify data errors with KNN-Shapley\n");
    let mut t = TextTable::new(&["stage", "accuracy"]);
    t.row(vec!["clean training data".into(), f(r.acc_clean)]);
    t.row(vec!["with 10% label errors".into(), f(r.acc_dirty)]);
    t.row(vec!["after cleaning 25 tuples".into(), f(r.acc_cleaned)]);
    println!("{}", t.render());
    println!(
        "Cleaning some records improved accuracy from {:.2} to {:.2}.",
        r.acc_dirty, r.acc_cleaned
    );
    println!(
        "Detection precision@25: {:.2} ({} errors injected)\n",
        r.detection_precision, r.injected
    );
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
