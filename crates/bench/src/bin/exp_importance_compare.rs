//! E5 — detection quality of the importance-method lineup.
use nde_bench::experiments::importance_compare;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = importance_compare::run(240, 0.1, 5)?;
    println!(
        "E5 — label-error detection precision@k (n={}, k={})\n",
        r.n_train, r.n_errors
    );
    let mut t = TextTable::new(&["method", "precision@k"]);
    for m in &r.methods {
        t.row(vec![m.method.clone(), f(m.precision_at_k)]);
    }
    println!("{}", t.render());
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
