//! E9 — prediction flip rate under dataset multiplicity.
use nde_bench::experiments::multiplicity;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = multiplicity::run(120, 80, &[0, 2, 4, 8, 12, 16, 24], 11)?;
    println!("E9 — flip rate vs number of uncertain labels\n");
    let mut t = TextTable::new(&["uncertain labels", "flip rate", "worlds"]);
    for p in &r.points {
        t.row(vec![
            p.uncertain_labels.to_string(),
            f(p.flip_rate),
            p.worlds.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
