//! E10 — provenance tracking overhead of the hiring pipeline.
use nde_bench::experiments::provenance_overhead;
use nde_bench::report::TextTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = provenance_overhead::run(&[200, 500, 1000, 2000], 5, 14)?;
    println!(
        "E10 — pipeline execution with vs without provenance ({} reps)\n",
        r.reps
    );
    let mut t = TextTable::new(&["n", "plain s", "provenance s", "overhead x"]);
    for p in &r.points {
        t.row(vec![
            p.n.to_string(),
            format!("{:.5}", p.plain_secs),
            format!("{:.5}", p.provenance_secs),
            format!("{:.2}", p.overhead_factor),
        ]);
    }
    println!("{}", t.render());
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
