//! E2 — regenerate Fig. 3: pipeline debugging via provenance.
use nde_bench::experiments::fig3_pipeline;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = fig3_pipeline::run(600, 0.15, 3)?;
    println!("E2 / Fig. 3 — debug the hiring pipeline via Datascope\n");
    println!("Pipeline query plan:\n{}", r.plan);
    let mut t = TextTable::new(&["quantity", "value"]);
    t.row(vec![
        "pipeline output rows".into(),
        r.pipeline_rows.to_string(),
    ]);
    t.row(vec!["accuracy before removal".into(), f(r.acc_before)]);
    t.row(vec!["accuracy after removal".into(), f(r.acc_after)]);
    t.row(vec!["removed tuples".into(), r.removed.to_string()]);
    t.row(vec![
        "true errors among removed".into(),
        r.removed_true_errors.to_string(),
    ]);
    println!("{}", t.render());
    println!("Removal changed accuracy by {:+.3}.\n", r.accuracy_delta);
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
