//! E6 — runtime scaling of Shapley computation + Monte-Carlo convergence,
//! plus the parallel-substrate bench (threads × budget × memo cache).
//!
//! Flags (all optional; no flags reproduces the classic E6 run):
//!
//! ```text
//! --smoke                  tiny workload + tight budget (CI smoke test)
//! --threads=1,2,4          thread counts for the parallel bench
//! --n=200                  training-set size for the parallel bench
//! --permutations=50        TMC permutation budget
//! --max-utility-calls=N    RunBudget utility-call cap
//! --max-iterations=N       RunBudget iteration (permutation) cap
//! --batch-size=8           wave width for the batched-vs-unbatched bench
//! --out=BENCH_shapley.json append-only bench trajectory file
//! ```
use nde::robust::RunBudget;
use nde_bench::experiments::shapley_scaling;
use nde_bench::report::{append_trajectory, f, trajectory_delta, TextTable};

struct Args {
    smoke: bool,
    threads: Vec<usize>,
    n: usize,
    permutations: usize,
    budget: RunBudget,
    batch_size: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut smoke = false;
    let mut threads = vec![1, 2, 4];
    let mut n: Option<usize> = None;
    let mut permutations: Option<usize> = None;
    let mut budget = RunBudget::unlimited();
    let mut batch_size = 8usize;
    let mut out = "BENCH_shapley.json".to_string();
    for arg in std::env::args().skip(1) {
        let (key, value) = match arg.split_once('=') {
            Some((k, v)) => (k, v),
            None => (arg.as_str(), ""),
        };
        match key {
            "--smoke" => smoke = true,
            "--threads" => {
                threads = value
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads takes integers"))
                    .collect();
            }
            "--n" => n = Some(value.parse().expect("--n takes an integer")),
            "--permutations" => {
                permutations = Some(value.parse().expect("--permutations takes an integer"));
            }
            "--max-utility-calls" => {
                budget = budget
                    .with_max_utility_calls(value.parse().expect("--max-utility-calls: integer"));
            }
            "--max-iterations" => {
                budget =
                    budget.with_max_iterations(value.parse().expect("--max-iterations: integer"));
            }
            "--batch-size" => {
                batch_size = value.parse().expect("--batch-size takes an integer");
                assert!(batch_size >= 1, "--batch-size must be >= 1");
            }
            "--out" => out = value.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    // Smoke shrinks the *defaults*; explicit flags still win.
    if smoke && budget.max_utility_calls.is_none() {
        budget = budget.with_max_utility_calls(300);
    }
    Args {
        smoke,
        threads,
        n: n.unwrap_or(if smoke { 40 } else { 200 }),
        permutations: permutations.unwrap_or(if smoke { 8 } else { 50 }),
        budget,
        batch_size,
        out,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();

    if !args.smoke {
        let r = shapley_scaling::run(&[50, 100, 200, 400], 50, 6)?;
        println!(
            "E6 — Shapley runtime scaling ({} TMC permutations)\n",
            r.permutations
        );
        let mut t = TextTable::new(&["n", "knn-shapley s", "loo s", "tmc s", "tmc~exact corr"]);
        for p in &r.points {
            t.row(vec![
                p.n.to_string(),
                format!("{:.5}", p.knn_shapley_secs),
                format!("{:.5}", p.loo_secs),
                format!("{:.5}", p.tmc_secs),
                f(p.tmc_vs_exact_rank_corr),
            ]);
        }
        println!("{}", t.render());

        let curve = shapley_scaling::convergence(100, &[5, 10, 25, 50, 100, 200], 7)?;
        println!("Monte-Carlo convergence at n=100 (rank correlation with exact):");
        let mut t = TextTable::new(&["permutations", "rank corr"]);
        for (b, c) in &curve {
            t.row(vec![b.to_string(), f(*c)]);
        }
        println!("{}", t.render());
        println!("{}", nde_bench::report::to_json(&r));
    }

    println!(
        "\nParallel substrate bench — n={}, {} permutations, threads {:?}",
        args.n, args.permutations, args.threads
    );
    let (mut bench, diagnostics) =
        shapley_scaling::parallel_bench(args.n, args.permutations, &args.threads, &args.budget, 6)?;
    let mut t = TextTable::new(&[
        "method",
        "threads",
        "wall ms",
        "utility calls",
        "cache hits",
    ]);
    for e in &bench.entries {
        t.row(vec![
            e.method.clone(),
            e.threads.to_string(),
            format!("{:.2}", e.wall_ms),
            e.utility_calls.to_string(),
            e.cache_hits.to_string(),
        ]);
    }
    println!("{}", t.render());
    for (threads, d) in &diagnostics {
        println!(
            "tmc-shapley diagnostics (threads={threads}): {} permutations, \
             {} utility calls, {:.1} ms, max marginal SE {}, exhausted: {:?}",
            d.iterations,
            d.utility_calls,
            d.elapsed.as_secs_f64() * 1e3,
            d.max_marginal_std_error
                .map_or_else(|| "n/a".to_string(), |se| format!("{se:.4}")),
            d.exhausted,
        );
    }

    println!(
        "\nBatched utility bench — n={}, {} permutations, batch size {} vs 1",
        args.n, args.permutations, args.batch_size
    );
    bench.batch_comparison =
        shapley_scaling::batching_bench(args.n, args.permutations, args.batch_size, 6)?;
    let mut t = TextTable::new(&[
        "batch size",
        "wall ms",
        "utility calls",
        "ms/call",
        "batches",
    ]);
    for e in &bench.batch_comparison {
        t.row(vec![
            e.batch_size.to_string(),
            format!("{:.2}", e.wall_ms),
            e.utility_calls.to_string(),
            format!("{:.5}", e.ms_per_call),
            e.batches_formed.to_string(),
        ]);
    }
    println!("{}", t.render());
    if let [unbatched, batched] = &bench.batch_comparison[..] {
        println!(
            "speedup per utility call: {:.2}x",
            unbatched.ms_per_call / batched.ms_per_call
        );
    }

    let records = append_trajectory(&args.out, &bench)?;
    println!("\nappended record {} to {}", records.len(), args.out);
    if let Some(delta) = trajectory_delta(&records) {
        println!("{delta}");
    }
    Ok(())
}
