//! E6 — runtime scaling of Shapley computation + Monte-Carlo convergence.
use nde_bench::experiments::shapley_scaling;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = shapley_scaling::run(&[50, 100, 200, 400], 50, 6)?;
    println!(
        "E6 — Shapley runtime scaling ({} TMC permutations)\n",
        r.permutations
    );
    let mut t = TextTable::new(&["n", "knn-shapley s", "loo s", "tmc s", "tmc~exact corr"]);
    for p in &r.points {
        t.row(vec![
            p.n.to_string(),
            format!("{:.5}", p.knn_shapley_secs),
            format!("{:.5}", p.loo_secs),
            format!("{:.5}", p.tmc_secs),
            f(p.tmc_vs_exact_rank_corr),
        ]);
    }
    println!("{}", t.render());

    let curve = shapley_scaling::convergence(100, &[5, 10, 25, 50, 100, 200], 7)?;
    println!("Monte-Carlo convergence at n=100 (rank correlation with exact):");
    let mut t = TextTable::new(&["permutations", "rank corr"]);
    for (b, c) in &curve {
        t.row(vec![b.to_string(), f(*c)]);
    }
    println!("{}", t.render());
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
