//! E13 — pipeline execution scaling (rows × threads) and deletion what-if
//! cost: hash-consed arena + parallel operators vs the sequential
//! recursive-tree path.
//!
//! Flags (all optional):
//!
//! ```text
//! --smoke                   single-scale workload (CI smoke test)
//! --rows=500,1000,2000      applicant counts to sweep
//! --threads=1,2,4           executor thread counts
//! --sets=64                 deletion scenarios per scale (smoke: 512)
//! --reps=3                  repetitions per cell (best-of)
//! --out=BENCH_pipeline.json append-only trajectory file
//! --check=40                fail (exit 1) if a tracked ms/row metric
//!                           regressed more than this % vs the previous
//!                           record on the same runner class
//! ```
//!
//! Smoke mode also arms the **thread-scaling gate**: at the largest size
//! the max-thread exec must strictly beat the min-thread exec on
//! multi-core hardware (bounded overhead on a single-core runner) — a
//! resident worker pool that loses on real cores fails the run. It arms
//! the **storage-backend gate** too: the typed columnar backend must beat
//! the Value-per-cell reference backend on exec ms/output-row after both
//! are verified to produce bit-identical output and lineage.
use nde_bench::experiments::pipeline_scaling;
use nde_bench::report::{
    append_trajectory, check_backend_win, check_scaling_win, check_trajectory, hardware_threads,
    trajectory_delta, TextTable,
};

struct Args {
    smoke: bool,
    rows: Vec<usize>,
    threads: Vec<usize>,
    sets: usize,
    reps: usize,
    out: String,
    check_pct: Option<f64>,
}

fn parse_args() -> Args {
    let mut smoke = false;
    let mut rows: Option<Vec<usize>> = None;
    let mut threads = vec![1, 2, 4];
    let mut sets: Option<usize> = None;
    let mut reps = 3usize;
    let mut out = "BENCH_pipeline.json".to_string();
    let mut check_pct = None;
    let parse_list = |value: &str, flag: &str| -> Vec<usize> {
        value
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{flag} takes integers"))
            })
            .collect()
    };
    for arg in std::env::args().skip(1) {
        let (key, value) = match arg.split_once('=') {
            Some((k, v)) => (k, v),
            None => (arg.as_str(), ""),
        };
        match key {
            "--smoke" => smoke = true,
            "--rows" => rows = Some(parse_list(value, "--rows")),
            "--threads" => threads = parse_list(value, "--threads"),
            "--sets" => sets = Some(value.parse().expect("--sets takes an integer")),
            "--reps" => reps = value.parse().expect("--reps takes an integer"),
            "--out" => out = value.to_string(),
            "--check" => check_pct = Some(value.parse().expect("--check takes a percentage")),
            other => panic!("unknown flag {other}"),
        }
    }
    // Smoke runs one scale that is large enough for the what-if workload to
    // dominate timer noise, and leans on many deletion scenarios: the arena
    // answers 64 per pass while the tree pays per scenario, so the optimized
    // path wins end-to-end even on single-core CI runners where extra
    // executor threads cannot help.
    Args {
        smoke,
        rows: rows.unwrap_or(if smoke {
            vec![8000]
        } else {
            vec![500, 1000, 2000, 4000]
        }),
        threads,
        sets: sets.unwrap_or(if smoke { 512 } else { 64 }),
        reps: reps.max(1),
        out,
        check_pct,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    println!(
        "E13 — pipeline scaling: rows {:?} × threads {:?}, {} deletion sets, best of {}",
        args.rows, args.threads, args.sets, args.reps
    );
    let r = pipeline_scaling::run(&args.rows, &args.threads, args.sets, args.reps, 21)?;

    let mut t = TextTable::new(&["rows", "threads", "exec ms"]);
    for p in &r.exec {
        t.row(vec![
            p.rows.to_string(),
            p.threads.to_string(),
            format!("{:.3}", p.exec_ms),
        ]);
    }
    println!("\npipeline execution (provenance on):\n{}", t.render());

    let mut t = TextTable::new(&[
        "rows",
        "output rows",
        "sets",
        "tree ms",
        "arena ms",
        "speedup",
    ]);
    for w in &r.whatif {
        t.row(vec![
            w.rows.to_string(),
            w.output_rows.to_string(),
            w.deletion_sets.to_string(),
            format!("{:.3}", w.tree_ms),
            format!("{:.3}", w.arena_ms),
            format!("{:.2}x", w.speedup),
        ]);
    }
    println!("deletion what-if (tree vs arena):\n{}", t.render());
    println!(
        "end-to-end ms/output-row at n={}: sequential tree {:.5}, parallel arena {:.5} ({:.2}x)",
        args.rows.last().unwrap(),
        r.seq_tree_ms_per_row,
        r.par_arena_ms_per_row,
        r.end_to_end_speedup,
    );
    println!(
        "columnar vs reference backend at n={}: {:.5} vs {:.5} exec ms/output-row ({:.2}x), \
         outputs verified identical",
        args.rows.last().unwrap(),
        r.columnar_ms_per_row,
        r.reference_ms_per_row,
        r.backend_speedup,
    );
    println!(
        "pool: {} jobs, {} chunks, {} parks, {} wakes on {} hardware threads",
        r.pool.jobs, r.pool.chunks, r.pool.parks, r.pool.wakes, r.pool.hw_threads,
    );

    if args.smoke {
        // Thread-scaling gate: the pool must make threads a win (or at
        // worst a bounded overhead on single-core runners).
        let largest = args.rows.iter().copied().max().unwrap();
        let t_lo = args.threads.iter().copied().min().unwrap();
        let t_hi = args.threads.iter().copied().max().unwrap();
        let ms_at = |t: usize| {
            r.exec
                .iter()
                .find(|p| p.rows == largest && p.threads == t)
                .map(|p| p.exec_ms)
        };
        if let (true, Some(lo_ms), Some(hi_ms)) = (t_hi > t_lo, ms_at(t_lo), ms_at(t_hi)) {
            let label =
                format!("E13 pipeline exec, {largest} rows, {t_hi} threads vs {t_lo} thread");
            match check_scaling_win(&label, lo_ms, hi_ms, hardware_threads(), 25.0) {
                Ok(summary) => println!("{summary}"),
                Err(report) => {
                    eprintln!("{report}");
                    std::process::exit(1);
                }
            }
        }
        // Storage-backend gate: the typed columnar planes must beat the
        // Value-per-cell reference on the same bit-identical workload.
        let label = format!("E13 pipeline exec, {largest} rows, columnar vs reference");
        match check_backend_win(&label, r.reference_ms_per_row, r.columnar_ms_per_row) {
            Ok(summary) => println!("{summary}"),
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    }

    let records = append_trajectory(&args.out, &r)?;
    println!("\nappended record {} to {}", records.len(), args.out);
    if let Some(delta) = trajectory_delta(&records) {
        println!("{delta}");
    }
    if let Some(pct) = args.check_pct {
        match check_trajectory(&records, &["ms_per_row"], pct) {
            Ok(Some(summary)) => println!("{summary}"),
            Ok(None) => println!("bench gate: no comparable prior record, nothing to check"),
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    }
    Ok(())
}
