//! E4 — regenerate the Fig. 1 "Quality Metric Results" panel.
use nde_bench::experiments::fig1_metrics;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = fig1_metrics::run(600, 0.15, 1)?;
    println!("E4 / Fig. 1 — quality metric results (15% label errors)\n");
    let mut t = TextTable::new(&["metric", "value"]);
    t.row(vec!["accuracy".into(), f(r.accuracy)]);
    t.row(vec!["f1 score".into(), f(r.f1)]);
    t.row(vec!["equalized odds".into(), f(r.equalized_odds)]);
    t.row(vec!["predictive parity".into(), f(r.predictive_parity)]);
    t.row(vec!["entropy".into(), f(r.entropy)]);
    println!("{}", t.render());
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
