//! E12 — Zorro prediction ranges vs imputation point predictions.
use nde_bench::experiments::zorro_vs_imputation;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = zorro_vs_imputation::run(500, &[0.0, 5.0, 10.0, 15.0, 20.0, 25.0], 13)?;
    println!("E12 — prediction ranges vs mean-imputation baseline\n");
    let mut t = TextTable::new(&[
        "missing %",
        "mean range width",
        "baseline containment",
        "decided fraction",
    ]);
    for p in &r.points {
        t.row(vec![
            format!("{}", p.percentage),
            f(p.mean_range_width),
            f(p.baseline_containment),
            f(p.decided_fraction),
        ]);
    }
    println!("{}", t.render());
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
