//! E13 — ablations: text-embedding width, KNN-Shapley k, TMC truncation.
use nde_bench::experiments::ablations;
use nde_bench::report::{f, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = ablations::run(400, 15)?;
    println!("E13 — ablations\n");
    println!("Text-embedding width (accuracy / detection):");
    let mut t = TextTable::new(&["dims", "accuracy", "detection precision"]);
    for p in &r.text_dims {
        t.row(vec![
            p.dims.to_string(),
            f(p.accuracy),
            f(p.detection_precision),
        ]);
    }
    println!("{}", t.render());
    println!("KNN-Shapley neighborhood size:");
    let mut t = TextTable::new(&["k", "detection precision"]);
    for p in &r.shapley_k {
        t.row(vec![p.k.to_string(), f(p.detection_precision)]);
    }
    println!("{}", t.render());
    println!("TMC truncation tolerance (speed vs fidelity):");
    let mut t = TextTable::new(&["tolerance", "seconds", "rank corr vs exact"]);
    for p in &r.truncation {
        t.row(vec![
            format!("{}", p.tolerance),
            format!("{:.4}", p.secs),
            f(p.rank_corr_vs_exact),
        ]);
    }
    println!("{}", t.render());
    println!("{}", nde_bench::report::to_json(&r));
    Ok(())
}
