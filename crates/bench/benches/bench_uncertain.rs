//! Criterion bench for E3/Fig. 4: symbolic encoding and Zorro training.

use criterion::{criterion_group, criterion_main, Criterion};
use nde::api::{encode_symbolic, estimate_with_zorro};
use nde::data::inject::Missingness;
use nde::scenario::load_recommendation_letters;

fn bench_uncertain(c: &mut Criterion) {
    let s = load_recommendation_letters(400, 3);
    c.bench_function("encode_symbolic_mnar_n240", |b| {
        b.iter(|| {
            encode_symbolic(
                &s.train,
                "employer_rating",
                15.0,
                Missingness::Mnar { skew: 4.0 },
                7,
            )
            .expect("encodes")
        })
    });
    let enc = encode_symbolic(
        &s.train,
        "employer_rating",
        15.0,
        Missingness::Mnar { skew: 4.0 },
        7,
    )
    .expect("encodes");
    c.bench_function("zorro_worst_case_loss_n240", |b| {
        b.iter(|| estimate_with_zorro(&enc, &s.test).expect("bounds"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_uncertain
}
criterion_main!(benches);
