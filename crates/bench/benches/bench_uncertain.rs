//! Bench for E3/Fig. 4: symbolic encoding and Zorro training.

use nde::api::{encode_symbolic, estimate_with_zorro};
use nde::data::inject::Missingness;
use nde::scenario::load_recommendation_letters;
use nde_bench::timing::bench;

fn main() {
    let s = load_recommendation_letters(400, 3);
    bench("encode_symbolic_mnar_n240", || {
        encode_symbolic(
            &s.train,
            "employer_rating",
            15.0,
            Missingness::Mnar { skew: 4.0 },
            7,
        )
        .expect("encodes")
    });
    let enc = encode_symbolic(
        &s.train,
        "employer_rating",
        15.0,
        Missingness::Mnar { skew: 4.0 },
        7,
    )
    .expect("encodes");
    bench("zorro_worst_case_loss_n240", || {
        estimate_with_zorro(&enc, &s.test).expect("bounds")
    });
}
