//! Criterion bench for E10: pipeline execution with vs without provenance,
//! plus why-provenance evaluation over the output polynomials.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nde::pipeline::exec::Executor;
use nde::pipeline::plan::Plan;
use nde::scenario::load_recommendation_letters;

fn bench_overhead(c: &mut Criterion) {
    let (plan, root) = Plan::hiring_pipeline();
    let mut group = c.benchmark_group("provenance_overhead");
    group.sample_size(10);
    for n in [200usize, 500, 1000] {
        let s = load_recommendation_letters(n, 6);
        let inputs = s.pipeline_inputs(&s.train);
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |b, _| {
            let exec = Executor::new();
            b.iter(|| exec.run(&plan, root, &inputs).expect("executes"))
        });
        group.bench_with_input(BenchmarkId::new("with_provenance", n), &n, |b, _| {
            let exec = Executor::new().with_provenance(true);
            b.iter(|| exec.run(&plan, root, &inputs).expect("executes"))
        });
        let out = Executor::new()
            .with_provenance(true)
            .run(&plan, root, &inputs)
            .expect("executes");
        let lineage = out.provenance.expect("tracked");
        group.bench_with_input(BenchmarkId::new("why_provenance_eval", n), &n, |b, _| {
            b.iter(|| {
                lineage
                    .rows
                    .iter()
                    .map(|e| e.why().len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
