//! Bench for E10: pipeline execution with vs without provenance, plus
//! why-provenance evaluation over the output polynomials.

use nde::pipeline::exec::Executor;
use nde::pipeline::plan::Plan;
use nde::scenario::load_recommendation_letters;
use nde_bench::timing::bench;

fn main() {
    let (plan, root) = Plan::hiring_pipeline();
    for n in [200usize, 500, 1000] {
        let s = load_recommendation_letters(n, 6);
        let inputs = s.pipeline_inputs(&s.train);
        let exec = Executor::new();
        bench(&format!("provenance_overhead/plain/{n}"), || {
            exec.run(&plan, root, &inputs).expect("executes")
        });
        let exec_prov = Executor::new().with_provenance(true);
        bench(&format!("provenance_overhead/with_provenance/{n}"), || {
            exec_prov.run(&plan, root, &inputs).expect("executes")
        });
        let out = Executor::new()
            .with_provenance(true)
            .run(&plan, root, &inputs)
            .expect("executes");
        let lineage = out.provenance.expect("tracked");
        bench(
            &format!("provenance_overhead/why_provenance_eval/{n}"),
            || {
                use nde::pipeline::semiring::{why_var, WhySemiring};
                lineage
                    .eval_rows::<WhySemiring>(&|t| why_var(t.as_var()))
                    .iter()
                    .map(|w| w.len())
                    .sum::<usize>()
            },
        );
    }
}
