//! Bench for E2/Fig. 3: pipeline execution, feature pipeline and the
//! Datascope pushback.

use nde::importance::datascope::datascope_importance;
use nde::pipeline::exec::Executor;
use nde::pipeline::feature::FeaturePipeline;
use nde::pipeline::plan::Plan;
use nde::scenario::load_recommendation_letters;
use nde_bench::timing::bench;

fn main() {
    let s = load_recommendation_letters(400, 2);
    let (plan, root) = Plan::hiring_pipeline();
    let inputs = s.pipeline_inputs(&s.train);

    let exec = Executor::new();
    bench("hiring_pipeline_exec_n240", || {
        exec.run(&plan, root, &inputs).expect("executes")
    });
    let exec_prov = Executor::new().with_provenance(true);
    bench("hiring_pipeline_exec_with_provenance_n240", || {
        exec_prov.run(&plan, root, &inputs).expect("executes")
    });

    let mut fp = FeaturePipeline::hiring(32);
    let train_out = fp.fit_run(&inputs, true).expect("pipeline fits");
    let valid_out = fp
        .transform_run(&s.pipeline_inputs(&s.valid), false)
        .expect("pipeline transforms");
    bench("datascope_pushback_n240", || {
        datascope_importance(
            &train_out,
            &valid_out.dataset,
            "train_df",
            s.train.n_rows(),
            5,
        )
        .expect("datascope runs")
    });
}
