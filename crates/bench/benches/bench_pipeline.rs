//! Criterion bench for E2/Fig. 3: pipeline execution, feature pipeline and
//! the Datascope pushback.

use criterion::{criterion_group, criterion_main, Criterion};
use nde::importance::datascope::datascope_importance;
use nde::pipeline::exec::Executor;
use nde::pipeline::feature::FeaturePipeline;
use nde::pipeline::plan::Plan;
use nde::scenario::load_recommendation_letters;

fn bench_pipeline(c: &mut Criterion) {
    let s = load_recommendation_letters(400, 2);
    let (plan, root) = Plan::hiring_pipeline();
    let inputs = s.pipeline_inputs(&s.train);

    c.bench_function("hiring_pipeline_exec_n240", |b| {
        let exec = Executor::new();
        b.iter(|| exec.run(&plan, root, &inputs).expect("executes"))
    });
    c.bench_function("hiring_pipeline_exec_with_provenance_n240", |b| {
        let exec = Executor::new().with_provenance(true);
        b.iter(|| exec.run(&plan, root, &inputs).expect("executes"))
    });

    let mut fp = FeaturePipeline::hiring(32);
    let train_out = fp.fit_run(&inputs, true).expect("pipeline fits");
    let valid_out = fp
        .transform_run(&s.pipeline_inputs(&s.valid), false)
        .expect("pipeline transforms");
    c.bench_function("datascope_pushback_n240", |b| {
        b.iter(|| {
            datascope_importance(
                &train_out,
                &valid_out.dataset,
                "train_df",
                s.train.n_rows(),
                5,
            )
            .expect("datascope runs")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
