//! Criterion bench for E6: exact KNN-Shapley vs TMC-Shapley vs LOO at the
//! same n — the §2.1 "overcoming computational challenges" comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nde::data::generate::blobs::two_gaussians;
use nde::importance::knn_shapley::knn_shapley;
use nde::importance::loo::loo_importance;
use nde::importance::shapley_mc::{tmc_shapley, ShapleyConfig};
use nde::ml::dataset::Dataset;
use nde::ml::models::knn::KnnClassifier;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley_scaling");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let nd = two_gaussians(n + 40, 4, 4.0, 5);
        let all = Dataset::try_from(&nd).expect("blob data");
        let train = all.subset(&(0..n).collect::<Vec<_>>());
        let valid = all.subset(&(n..n + 40).collect::<Vec<_>>());

        group.bench_with_input(BenchmarkId::new("knn_shapley_exact", n), &n, |b, _| {
            b.iter(|| knn_shapley(&train, &valid, 1).expect("scores"))
        });
        group.bench_with_input(BenchmarkId::new("loo", n), &n, |b, _| {
            b.iter(|| loo_importance(&KnnClassifier::new(1), &train, &valid).expect("scores"))
        });
        let cfg = ShapleyConfig {
            permutations: 10,
            truncation_tolerance: 0.01,
            seed: 1,
            threads: 1,
        };
        group.bench_with_input(BenchmarkId::new("tmc_shapley_10perm", n), &n, |b, _| {
            b.iter(|| tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).expect("scores"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
