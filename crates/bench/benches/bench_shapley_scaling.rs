//! Bench for E6: exact KNN-Shapley vs TMC-Shapley vs LOO at the same n —
//! the §2.1 "overcoming computational challenges" comparison.

use nde::data::generate::blobs::two_gaussians;
use nde::importance::knn_shapley::knn_shapley;
use nde::importance::loo::loo_importance;
use nde::importance::shapley_mc::{tmc_shapley, ShapleyConfig};
use nde::ml::dataset::Dataset;
use nde::ml::models::knn::KnnClassifier;
use nde_bench::timing::bench;

fn main() {
    for n in [50usize, 100, 200] {
        let nd = two_gaussians(n + 40, 4, 4.0, 5);
        let all = Dataset::try_from(&nd).expect("blob data");
        let train = all.subset(&(0..n).collect::<Vec<_>>());
        let valid = all.subset(&(n..n + 40).collect::<Vec<_>>());

        bench(&format!("shapley_scaling/knn_shapley_exact/{n}"), || {
            knn_shapley(&train, &valid, 1).expect("scores")
        });
        bench(&format!("shapley_scaling/loo/{n}"), || {
            loo_importance(&KnnClassifier::new(1), &train, &valid).expect("scores")
        });
        let cfg = ShapleyConfig {
            permutations: 10,
            truncation_tolerance: 0.01,
            seed: 1,
            threads: 1,
        };
        bench(&format!("shapley_scaling/tmc_shapley_10perm/{n}"), || {
            tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).expect("scores")
        });
    }
}
