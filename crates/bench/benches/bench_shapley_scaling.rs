//! Bench for E6: exact KNN-Shapley vs TMC-Shapley vs LOO at the same n —
//! the §2.1 "overcoming computational challenges" comparison — plus the
//! parallel-substrate path (seed-partitioned workers + memo cache).
//!
//! Environment knobs:
//!
//! ```text
//! NDE_BENCH_THREADS=1,4            thread counts for the parallel cases
//! NDE_BENCH_MAX_UTILITY_CALLS=N    RunBudget cap for the budgeted cases
//! ```

use nde::data::generate::blobs::two_gaussians;
use nde::importance::loo::loo_importance;
use nde::importance::{knn_shapley, tmc_shapley, BatchPolicy, ImportanceRun, TmcParams};
use nde::ml::dataset::Dataset;
use nde::ml::models::knn::KnnClassifier;
use nde::robust::par::MemoCache;
use nde::robust::RunBudget;
use nde_bench::timing::bench;

fn env_threads() -> Vec<usize> {
    std::env::var("NDE_BENCH_THREADS")
        .map(|v| {
            v.split(',')
                .map(|t| t.trim().parse().expect("NDE_BENCH_THREADS: integers"))
                .collect()
        })
        .unwrap_or_else(|_| vec![1, 4])
}

fn env_budget() -> RunBudget {
    match std::env::var("NDE_BENCH_MAX_UTILITY_CALLS") {
        Ok(v) => RunBudget::unlimited()
            .with_max_utility_calls(v.parse().expect("NDE_BENCH_MAX_UTILITY_CALLS: integer")),
        Err(_) => RunBudget::unlimited(),
    }
}

fn main() {
    let threads_list = env_threads();
    let budget = env_budget();
    for n in [50usize, 100, 200] {
        let nd = two_gaussians(n + 40, 4, 4.0, 5);
        let all = Dataset::try_from(&nd).expect("blob data");
        let train = all.subset(&(0..n).collect::<Vec<_>>());
        let valid = all.subset(&(n..n + 40).collect::<Vec<_>>());

        bench(&format!("shapley_scaling/knn_shapley_exact/{n}"), || {
            knn_shapley(&ImportanceRun::new(1), &train, &valid, 1).expect("scores")
        });
        bench(&format!("shapley_scaling/loo/{n}"), || {
            loo_importance(&KnnClassifier::new(1), &train, &valid).expect("scores")
        });
        let params = TmcParams {
            permutations: 10,
            truncation_tolerance: 0.01,
        };
        bench(&format!("shapley_scaling/tmc_shapley_10perm/{n}"), || {
            tmc_shapley(
                &ImportanceRun::new(1),
                &KnnClassifier::new(1),
                &train,
                &valid,
                &params,
            )
            .expect("scores")
        });
        for batch in [1usize, 8, 32] {
            let run = ImportanceRun::new(1).with_batch(BatchPolicy::Grouped { size: batch });
            bench(
                &format!("shapley_scaling/tmc_shapley_10perm_batch{batch}/{n}"),
                || {
                    tmc_shapley(&run, &KnnClassifier::new(1), &train, &valid, &params)
                        .expect("scores")
                },
            );
        }

        for &threads in &threads_list {
            bench(
                &format!("shapley_scaling/knn_shapley_par/{n}/t{threads}"),
                || {
                    knn_shapley(
                        &ImportanceRun::new(1).with_threads(threads),
                        &train,
                        &valid,
                        1,
                    )
                    .expect("scores")
                },
            );
            bench(
                &format!("shapley_scaling/tmc_budgeted_cached_10perm/{n}/t{threads}"),
                || {
                    // Fresh cache per iteration: times the full workload, not
                    // a warm replay.
                    let cache = MemoCache::new();
                    let run = ImportanceRun::new(1)
                        .with_threads(threads)
                        .with_budget(budget.clone())
                        .with_cache(&cache);
                    tmc_shapley(&run, &KnnClassifier::new(1), &train, &valid, &params)
                        .expect("scores")
                },
            );
        }
    }
}
