//! Bench for E6: exact KNN-Shapley vs TMC-Shapley vs LOO at the same n —
//! the §2.1 "overcoming computational challenges" comparison — plus the
//! parallel-substrate path (seed-partitioned workers + memo cache).
//!
//! Environment knobs:
//!
//! ```text
//! NDE_BENCH_THREADS=1,4            thread counts for the parallel cases
//! NDE_BENCH_MAX_UTILITY_CALLS=N    RunBudget cap for the budgeted cases
//! ```

use nde::data::generate::blobs::two_gaussians;
use nde::importance::knn_shapley::{knn_shapley, knn_shapley_par};
use nde::importance::loo::loo_importance;
use nde::importance::shapley_mc::{tmc_shapley, tmc_shapley_budgeted_cached, ShapleyConfig};
use nde::ml::dataset::Dataset;
use nde::ml::models::knn::KnnClassifier;
use nde::robust::par::MemoCache;
use nde::robust::RunBudget;
use nde_bench::timing::bench;

fn env_threads() -> Vec<usize> {
    std::env::var("NDE_BENCH_THREADS")
        .map(|v| {
            v.split(',')
                .map(|t| t.trim().parse().expect("NDE_BENCH_THREADS: integers"))
                .collect()
        })
        .unwrap_or_else(|_| vec![1, 4])
}

fn env_budget() -> RunBudget {
    match std::env::var("NDE_BENCH_MAX_UTILITY_CALLS") {
        Ok(v) => RunBudget::unlimited()
            .with_max_utility_calls(v.parse().expect("NDE_BENCH_MAX_UTILITY_CALLS: integer")),
        Err(_) => RunBudget::unlimited(),
    }
}

fn main() {
    let threads_list = env_threads();
    let budget = env_budget();
    for n in [50usize, 100, 200] {
        let nd = two_gaussians(n + 40, 4, 4.0, 5);
        let all = Dataset::try_from(&nd).expect("blob data");
        let train = all.subset(&(0..n).collect::<Vec<_>>());
        let valid = all.subset(&(n..n + 40).collect::<Vec<_>>());

        bench(&format!("shapley_scaling/knn_shapley_exact/{n}"), || {
            knn_shapley(&train, &valid, 1).expect("scores")
        });
        bench(&format!("shapley_scaling/loo/{n}"), || {
            loo_importance(&KnnClassifier::new(1), &train, &valid).expect("scores")
        });
        let cfg = ShapleyConfig {
            permutations: 10,
            truncation_tolerance: 0.01,
            seed: 1,
            threads: 1,
        };
        bench(&format!("shapley_scaling/tmc_shapley_10perm/{n}"), || {
            tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).expect("scores")
        });

        for &threads in &threads_list {
            let cfg = ShapleyConfig {
                permutations: 10,
                truncation_tolerance: 0.01,
                seed: 1,
                threads,
            };
            bench(
                &format!("shapley_scaling/knn_shapley_par/{n}/t{threads}"),
                || knn_shapley_par(&train, &valid, 1, threads).expect("scores"),
            );
            bench(
                &format!("shapley_scaling/tmc_budgeted_cached_10perm/{n}/t{threads}"),
                || {
                    // Fresh cache per iteration: times the full workload, not
                    // a warm replay.
                    let cache = MemoCache::new();
                    tmc_shapley_budgeted_cached(
                        &KnnClassifier::new(1),
                        &train,
                        &valid,
                        &cfg,
                        &budget,
                        None,
                        Some(&cache),
                    )
                    .expect("scores")
                },
            );
        }
    }
}
