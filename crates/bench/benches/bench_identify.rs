//! Bench for E1/Fig. 2: the identify workflow at tutorial scale, and the
//! KNN-Shapley scoring step alone.

use nde::api::{knn_shapley_values, LettersEncoding};
use nde::scenario::load_recommendation_letters;
use nde::workflows::identify::{run, IdentifyConfig};
use nde_bench::timing::bench;

fn main() {
    let scenario = load_recommendation_letters(250, 1);
    bench("fig2_identify_workflow_n250", || {
        run(&scenario, &IdentifyConfig::default()).expect("workflow runs")
    });
    bench("knn_shapley_values_n150", || {
        knn_shapley_values(&scenario.train, &scenario.valid).expect("scores")
    });
    bench("letters_encoding_n150", || {
        let enc = LettersEncoding::fit(&scenario.train).expect("fits");
        enc.dataset(&scenario.train).expect("encodes")
    });
}
