//! Criterion bench for E1/Fig. 2: the identify workflow at tutorial scale,
//! and the KNN-Shapley scoring step alone.

use criterion::{criterion_group, criterion_main, Criterion};
use nde::api::{knn_shapley_values, LettersEncoding};
use nde::scenario::load_recommendation_letters;
use nde::workflows::identify::{run, IdentifyConfig};

fn bench_identify(c: &mut Criterion) {
    let scenario = load_recommendation_letters(250, 1);
    c.bench_function("fig2_identify_workflow_n250", |b| {
        b.iter(|| run(&scenario, &IdentifyConfig::default()).expect("workflow runs"))
    });
    c.bench_function("knn_shapley_values_n150", |b| {
        b.iter(|| knn_shapley_values(&scenario.train, &scenario.valid).expect("scores"))
    });
    c.bench_function("letters_encoding_n150", |b| {
        b.iter(|| {
            let enc = LettersEncoding::fit(&scenario.train).expect("fits");
            enc.dataset(&scenario.train).expect("encodes")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_identify
}
criterion_main!(benches);
