//! Error type for the cleaning crate.

use std::fmt;

/// Errors from oracles, strategies and the debugging challenge.
#[derive(Debug, Clone, PartialEq)]
pub enum CleaningError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// A submission exceeded the challenge's cleaning budget.
    BudgetExceeded {
        /// Rows requested.
        requested: usize,
        /// Budget available.
        budget: usize,
    },
    /// A wrapped importance-crate error.
    Importance(String),
    /// A wrapped ML-substrate error.
    Ml(String),
    /// A wrapped data-substrate error.
    Data(String),
    /// A wrapped pipeline error (plan execution or delta propagation).
    Pipeline(String),
    /// Leaderboard (de)serialization failed.
    Serde(String),
    /// The cleaning oracle was transiently unavailable (a flaky
    /// dependency); callers may retry.
    OracleUnavailable {
        /// 0-based oracle call index that failed.
        call: u64,
    },
    /// The cleaning oracle kept failing after bounded retries.
    OracleFailed {
        /// Attempts spent, including the first call.
        attempts: u32,
        /// The last underlying error, rendered.
        last: String,
    },
    /// A checkpoint did not match the run it was resumed into.
    Checkpoint(String),
    /// A durable run-store operation failed (filesystem or record layer).
    Store(String),
}

impl fmt::Display for CleaningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleaningError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            CleaningError::BudgetExceeded { requested, budget } => {
                write!(f, "submission of {requested} rows exceeds budget {budget}")
            }
            CleaningError::Importance(m) => write!(f, "importance error: {m}"),
            CleaningError::Ml(m) => write!(f, "ml error: {m}"),
            CleaningError::Data(m) => write!(f, "data error: {m}"),
            CleaningError::Pipeline(m) => write!(f, "pipeline error: {m}"),
            CleaningError::Serde(m) => write!(f, "serialization error: {m}"),
            CleaningError::OracleUnavailable { call } => {
                write!(f, "cleaning oracle unavailable on call {call}")
            }
            CleaningError::OracleFailed { attempts, last } => {
                write!(
                    f,
                    "cleaning oracle failed after {attempts} attempts: {last}"
                )
            }
            CleaningError::Checkpoint(m) => write!(f, "checkpoint mismatch: {m}"),
            CleaningError::Store(m) => write!(f, "durable store error: {m}"),
        }
    }
}

impl From<nde_robust::RobustError> for CleaningError {
    fn from(e: nde_robust::RobustError) -> Self {
        match e {
            nde_robust::RobustError::Checkpoint(m) => CleaningError::Checkpoint(m),
            nde_robust::RobustError::InvalidArgument(m) => CleaningError::InvalidArgument(m),
            e => CleaningError::Store(e.to_string()),
        }
    }
}

impl std::error::Error for CleaningError {}

impl From<nde_importance::ImportanceError> for CleaningError {
    fn from(e: nde_importance::ImportanceError) -> Self {
        CleaningError::Importance(e.to_string())
    }
}

impl From<nde_ml::MlError> for CleaningError {
    fn from(e: nde_ml::MlError) -> Self {
        CleaningError::Ml(e.to_string())
    }
}

impl From<nde_data::DataError> for CleaningError {
    fn from(e: nde_data::DataError) -> Self {
        CleaningError::Data(e.to_string())
    }
}

impl From<nde_pipeline::PipelineError> for CleaningError {
    fn from(e: nde_pipeline::PipelineError) -> Self {
        CleaningError::Pipeline(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e = CleaningError::BudgetExceeded {
            requested: 30,
            budget: 25,
        };
        assert!(e.to_string().contains("30"));
        let e: CleaningError = nde_ml::MlError::NotFitted.into();
        assert!(matches!(e, CleaningError::Ml(_)));
        let e: CleaningError = nde_importance::ImportanceError::InvalidArgument("x".into()).into();
        assert!(matches!(e, CleaningError::Importance(_)));
    }
}
