//! The iterative prioritized-cleaning loop (the attendees' task in §3.1):
//! score → clean a batch → retrain → measure → repeat.

use crate::oracle::LabelOracle;
use crate::strategy::Strategy;
use crate::{CleaningError, Result};
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;

/// Trace of an iterative cleaning run.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningRun {
    /// Strategy name.
    pub strategy: &'static str,
    /// Cumulative number of rows sent to the oracle after each round
    /// (first entry is 0 = the dirty baseline).
    pub cleaned: Vec<usize>,
    /// Validation accuracy after each round (aligned with `cleaned`).
    pub accuracy: Vec<f64>,
}

impl CleaningRun {
    /// Accuracy before any cleaning.
    pub fn dirty_accuracy(&self) -> f64 {
        *self.accuracy.first().expect("runs have a baseline entry")
    }

    /// Accuracy after the final round.
    pub fn final_accuracy(&self) -> f64 {
        *self.accuracy.last().expect("runs have a baseline entry")
    }
}

/// Run the iterative cleaning loop on label-corrupted data.
///
/// Each round sends the next `batch` rows of the strategy's cleaning order
/// to the oracle, repairs their labels in place, retrains a fresh clone of
/// `template` and records validation accuracy. When `rescore` is true the
/// strategy is re-ranked after every round (scores change as data is
/// repaired); otherwise the initial ranking is consumed front to back.
#[allow(clippy::too_many_arguments)] // the loop’s knobs are individually meaningful
pub fn prioritized_cleaning<C: Classifier>(
    template: &C,
    dirty: &Dataset,
    oracle: &LabelOracle,
    valid: &Dataset,
    strategy: &Strategy,
    batch: usize,
    rounds: usize,
    rescore: bool,
) -> Result<CleaningRun> {
    if batch == 0 || rounds == 0 {
        return Err(CleaningError::InvalidArgument(
            "batch and rounds must be > 0".into(),
        ));
    }
    if oracle.len() != dirty.len() {
        return Err(CleaningError::InvalidArgument(format!(
            "oracle covers {} examples, dataset has {}",
            oracle.len(),
            dirty.len()
        )));
    }
    let mut current = dirty.clone();
    let mut cleaned_set = vec![false; current.len()];
    let mut cleaned_total = 0usize;

    let eval = |data: &Dataset| -> Result<f64> {
        let mut model = template.clone();
        model.fit(data)?;
        Ok(model.accuracy(valid))
    };

    let mut run = CleaningRun {
        strategy: strategy.name(),
        cleaned: vec![0],
        accuracy: vec![eval(&current)?],
    };

    let mut order = strategy.rank(&current, valid)?;
    for _round in 0..rounds {
        if rescore {
            order = strategy.rank(&current, valid)?;
        }
        let picks: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| !cleaned_set[i])
            .take(batch)
            .collect();
        if picks.is_empty() {
            break; // everything has been cleaned
        }
        oracle.repair(&mut current.y, &picks)?;
        for &i in &picks {
            cleaned_set[i] = true;
        }
        cleaned_total += picks.len();
        run.cleaned.push(cleaned_total);
        run.accuracy.push(eval(&current)?);
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;
    use nde_ml::models::knn::KnnClassifier;

    fn setup() -> (Dataset, Dataset, LabelOracle) {
        let nd = two_gaussians(200, 3, 5.0, 41);
        let all = Dataset::try_from(&nd).unwrap();
        let mut train = all.subset(&(0..150).collect::<Vec<_>>());
        let valid = all.subset(&(150..200).collect::<Vec<_>>());
        let truth = train.y.clone();
        // 10% label errors.
        for f in [5, 17, 29, 38, 51, 66, 84, 99, 111, 120, 133, 140, 147, 148, 149] {
            train.y[f] = 1 - train.y[f];
        }
        (train, valid, LabelOracle::new(truth))
    }

    #[test]
    fn importance_cleaning_recovers_accuracy() {
        let (dirty, valid, oracle) = setup();
        let run = prioritized_cleaning(
            &KnnClassifier::new(3),
            &dirty,
            &oracle,
            &valid,
            &Strategy::KnnShapley { k: 3 },
            5,
            4,
            false,
        )
        .unwrap();
        assert_eq!(run.cleaned, vec![0, 5, 10, 15, 20]);
        assert_eq!(run.accuracy.len(), 5);
        assert!(
            run.final_accuracy() >= run.dirty_accuracy(),
            "cleaning must not hurt: {run:?}"
        );
        assert!(
            run.final_accuracy() > run.dirty_accuracy() + 0.01,
            "prioritized cleaning should visibly improve accuracy: {run:?}"
        );
    }

    #[test]
    fn beats_random_cleaning_at_same_budget() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(3);
        let smart = prioritized_cleaning(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &Strategy::KnnShapley { k: 3 },
            10,
            2,
            false,
        )
        .unwrap();
        // Average random over seeds to dodge luck.
        let mut random_final = 0.0;
        for seed in 0..4 {
            let run = prioritized_cleaning(
                &knn,
                &dirty,
                &oracle,
                &valid,
                &Strategy::Random { seed },
                10,
                2,
                false,
            )
            .unwrap();
            random_final += run.final_accuracy();
        }
        random_final /= 4.0;
        assert!(
            smart.final_accuracy() >= random_final,
            "smart {} vs random {random_final}",
            smart.final_accuracy()
        );
    }

    #[test]
    fn stops_when_everything_is_cleaned() {
        let (dirty, valid, oracle) = setup();
        let run = prioritized_cleaning(
            &KnnClassifier::new(1),
            &dirty,
            &oracle,
            &valid,
            &Strategy::Random { seed: 0 },
            100,
            10,
            false,
        )
        .unwrap();
        // 150 rows / batch 100 ⇒ two rounds, then exhaustion.
        assert_eq!(run.cleaned, vec![0, 100, 150]);
    }

    #[test]
    fn rescoring_variant_runs() {
        let (dirty, valid, oracle) = setup();
        let run = prioritized_cleaning(
            &KnnClassifier::new(1),
            &dirty,
            &oracle,
            &valid,
            &Strategy::KnnShapley { k: 1 },
            5,
            2,
            true,
        )
        .unwrap();
        assert_eq!(run.cleaned.last(), Some(&10));
    }

    #[test]
    fn validates_arguments() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(1);
        let s = Strategy::Random { seed: 0 };
        assert!(prioritized_cleaning(&knn, &dirty, &oracle, &valid, &s, 0, 1, false).is_err());
        assert!(prioritized_cleaning(&knn, &dirty, &oracle, &valid, &s, 1, 0, false).is_err());
        let wrong_oracle = LabelOracle::new(vec![0; 3]);
        assert!(
            prioritized_cleaning(&knn, &dirty, &wrong_oracle, &valid, &s, 1, 1, false).is_err()
        );
    }
}
