//! The iterative prioritized-cleaning loop (the attendees' task in §3.1):
//! score → clean a batch → retrain → measure → repeat.
//!
//! Two entry points share one implementation: [`prioritized_cleaning`] is
//! the simple loop, and [`prioritized_cleaning_robust`] additionally threads
//! a [`RunBudget`] (graceful stop with [`ConvergenceDiagnostics`]) and a
//! [`RetryPolicy`] (bounded backoff against flaky oracles) through it.

use crate::oracle::{CleaningOracle, LabelOracle};
use crate::strategy::Strategy;
use crate::{CleaningError, Result};
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_robust::{retry_with_backoff, ConvergenceDiagnostics, RetryPolicy, RunBudget};

/// Trace of an iterative cleaning run.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningRun {
    /// Strategy name.
    pub strategy: &'static str,
    /// Cumulative number of rows sent to the oracle after each round
    /// (first entry is 0 = the dirty baseline).
    pub cleaned: Vec<usize>,
    /// Validation accuracy after each round (aligned with `cleaned`).
    pub accuracy: Vec<f64>,
}

impl CleaningRun {
    /// Accuracy before any cleaning. `NaN` for a run with no recorded
    /// rounds (the constructors here always record the dirty baseline, so
    /// this only triggers on hand-built traces).
    pub fn dirty_accuracy(&self) -> f64 {
        self.accuracy.first().copied().unwrap_or(f64::NAN)
    }

    /// Accuracy after the final round (`NaN` on an empty trace, as for
    /// [`CleaningRun::dirty_accuracy`]).
    pub fn final_accuracy(&self) -> f64 {
        self.accuracy.last().copied().unwrap_or(f64::NAN)
    }
}

/// A [`CleaningRun`] plus how much budget it consumed and whether it was
/// cut short — the robust variant's graceful-degradation envelope.
#[derive(Debug, Clone)]
pub struct RobustCleaningRun {
    /// The (possibly partial) cleaning trace.
    pub run: CleaningRun,
    /// Budget consumption and the limit that tripped, if any.
    pub diagnostics: ConvergenceDiagnostics,
    /// Oracle retries performed beyond first attempts (0 with a healthy
    /// oracle).
    pub oracle_retries: u64,
}

/// Run the iterative cleaning loop on label-corrupted data.
///
/// Each round sends the next `batch` rows of the strategy's cleaning order
/// to the oracle, repairs their labels in place, retrains a fresh clone of
/// `template` and records validation accuracy. When `rescore` is true the
/// strategy is re-ranked after every round (scores change as data is
/// repaired); otherwise the initial ranking is consumed front to back.
#[allow(clippy::too_many_arguments)] // the loop’s knobs are individually meaningful
pub fn prioritized_cleaning<C: Classifier>(
    template: &C,
    dirty: &Dataset,
    oracle: &LabelOracle,
    valid: &Dataset,
    strategy: &Strategy,
    batch: usize,
    rounds: usize,
    rescore: bool,
) -> Result<CleaningRun> {
    prioritized_cleaning_robust(
        template,
        dirty,
        oracle,
        valid,
        strategy,
        batch,
        rounds,
        rescore,
        &RunBudget::unlimited(),
        &RetryPolicy::none(),
    )
    .map(|r| r.run)
}

/// The fault-tolerant cleaning loop: [`prioritized_cleaning`] plus a
/// [`RunBudget`] and oracle retries.
///
/// * Each cleaning round counts as one budget iteration; each model
///   retrain + score counts as one utility call. When the budget trips, the
///   loop stops **between rounds** and returns the best-so-far trace with
///   [`ConvergenceDiagnostics`] saying which limit tripped — never a panic
///   or an error.
/// * Oracle calls that fail with [`CleaningError::OracleUnavailable`] are
///   retried under `retry` (exponential backoff). A call that still fails
///   after the policy's attempts becomes [`CleaningError::OracleFailed`];
///   any other oracle error propagates immediately.
#[allow(clippy::too_many_arguments)] // the loop’s knobs are individually meaningful
pub fn prioritized_cleaning_robust<C: Classifier>(
    template: &C,
    dirty: &Dataset,
    oracle: &impl CleaningOracle,
    valid: &Dataset,
    strategy: &Strategy,
    batch: usize,
    rounds: usize,
    rescore: bool,
    budget: &RunBudget,
    retry: &RetryPolicy,
) -> Result<RobustCleaningRun> {
    if batch == 0 || rounds == 0 {
        return Err(CleaningError::InvalidArgument(
            "batch and rounds must be > 0".into(),
        ));
    }
    if oracle.len() != dirty.len() {
        return Err(CleaningError::InvalidArgument(format!(
            "oracle covers {} examples, dataset has {}",
            oracle.len(),
            dirty.len()
        )));
    }
    let mut clock = budget.start();
    let mut current = dirty.clone();
    let mut cleaned_set = vec![false; current.len()];
    let mut cleaned_total = 0usize;
    let mut oracle_retries = 0u64;

    let eval = |data: &Dataset| -> Result<f64> {
        let mut model = template.clone();
        model.fit(data)?;
        Ok(model.accuracy(valid))
    };

    clock.record_utility_calls(1);
    let mut run = CleaningRun {
        strategy: strategy.name(),
        cleaned: vec![0],
        accuracy: vec![eval(&current)?],
    };

    let mut order = strategy.rank(&current, valid)?;
    for _round in 0..rounds {
        if clock.exhausted().is_some() {
            break; // budget tripped: return the best-so-far trace
        }
        if rescore {
            order = strategy.rank(&current, valid)?;
        }
        let picks: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| !cleaned_set[i])
            .take(batch)
            .collect();
        if picks.is_empty() {
            break; // everything has been cleaned
        }
        let outcome = retry_with_backoff(
            retry,
            |e| matches!(e, CleaningError::OracleUnavailable { .. }),
            || oracle.repair(&mut current.y, &picks),
        );
        oracle_retries += u64::from(outcome.attempts.saturating_sub(1));
        match outcome.result {
            Ok(_) => {}
            Err(e @ CleaningError::OracleUnavailable { .. }) => {
                return Err(CleaningError::OracleFailed {
                    attempts: outcome.attempts,
                    last: e.to_string(),
                })
            }
            Err(e) => return Err(e),
        }
        for &i in &picks {
            cleaned_set[i] = true;
        }
        cleaned_total += picks.len();
        run.cleaned.push(cleaned_total);
        clock.record_utility_calls(1);
        run.accuracy.push(eval(&current)?);
        clock.record_iteration();
    }
    let diagnostics = clock.diagnostics(None);
    Ok(RobustCleaningRun {
        run,
        diagnostics,
        oracle_retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;
    use nde_ml::models::knn::KnnClassifier;

    fn setup() -> (Dataset, Dataset, LabelOracle) {
        let nd = two_gaussians(200, 3, 2.0, 43);
        let all = Dataset::try_from(&nd).unwrap();
        let mut train = all.subset(&(0..150).collect::<Vec<_>>());
        let valid = all.subset(&(150..200).collect::<Vec<_>>());
        let truth = train.y.clone();
        // 10% label errors.
        for f in [
            5, 17, 29, 38, 51, 66, 84, 99, 111, 120, 133, 140, 147, 148, 149,
        ] {
            train.y[f] = 1 - train.y[f];
        }
        (train, valid, LabelOracle::new(truth))
    }

    #[test]
    fn importance_cleaning_recovers_accuracy() {
        let (dirty, valid, oracle) = setup();
        let run = prioritized_cleaning(
            &KnnClassifier::new(3),
            &dirty,
            &oracle,
            &valid,
            &Strategy::KnnShapley { k: 3 },
            5,
            4,
            false,
        )
        .unwrap();
        assert_eq!(run.cleaned, vec![0, 5, 10, 15, 20]);
        assert_eq!(run.accuracy.len(), 5);
        assert!(
            run.final_accuracy() >= run.dirty_accuracy(),
            "cleaning must not hurt: {run:?}"
        );
        assert!(
            run.final_accuracy() > run.dirty_accuracy() + 0.01,
            "prioritized cleaning should visibly improve accuracy: {run:?}"
        );
    }

    #[test]
    fn beats_random_cleaning_at_same_budget() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(3);
        let smart = prioritized_cleaning(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &Strategy::KnnShapley { k: 3 },
            10,
            2,
            false,
        )
        .unwrap();
        // Average random over seeds to dodge luck.
        let mut random_final = 0.0;
        for seed in 0..4 {
            let run = prioritized_cleaning(
                &knn,
                &dirty,
                &oracle,
                &valid,
                &Strategy::Random { seed },
                10,
                2,
                false,
            )
            .unwrap();
            random_final += run.final_accuracy();
        }
        random_final /= 4.0;
        assert!(
            smart.final_accuracy() >= random_final,
            "smart {} vs random {random_final}",
            smart.final_accuracy()
        );
    }

    #[test]
    fn stops_when_everything_is_cleaned() {
        let (dirty, valid, oracle) = setup();
        let run = prioritized_cleaning(
            &KnnClassifier::new(1),
            &dirty,
            &oracle,
            &valid,
            &Strategy::Random { seed: 0 },
            100,
            10,
            false,
        )
        .unwrap();
        // 150 rows / batch 100 ⇒ two rounds, then exhaustion.
        assert_eq!(run.cleaned, vec![0, 100, 150]);
    }

    #[test]
    fn rescoring_variant_runs() {
        let (dirty, valid, oracle) = setup();
        let run = prioritized_cleaning(
            &KnnClassifier::new(1),
            &dirty,
            &oracle,
            &valid,
            &Strategy::KnnShapley { k: 1 },
            5,
            2,
            true,
        )
        .unwrap();
        assert_eq!(run.cleaned.last(), Some(&10));
    }

    #[test]
    fn robust_with_unlimited_budget_matches_plain_loop() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(3);
        let strategy = Strategy::KnnShapley { k: 3 };
        let plain =
            prioritized_cleaning(&knn, &dirty, &oracle, &valid, &strategy, 5, 4, false).unwrap();
        let robust = prioritized_cleaning_robust(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &strategy,
            5,
            4,
            false,
            &RunBudget::unlimited(),
            &RetryPolicy::none(),
        )
        .unwrap();
        assert_eq!(robust.run, plain);
        assert!(robust.diagnostics.completed());
        assert_eq!(robust.diagnostics.iterations, 4);
        // Baseline + one eval per round.
        assert_eq!(robust.diagnostics.utility_calls, 5);
        assert_eq!(robust.oracle_retries, 0);
    }

    #[test]
    fn budget_exhaustion_returns_partial_trace() {
        let (dirty, valid, oracle) = setup();
        let robust = prioritized_cleaning_robust(
            &KnnClassifier::new(3),
            &dirty,
            &oracle,
            &valid,
            &Strategy::Random { seed: 0 },
            5,
            10,
            false,
            &RunBudget::unlimited().with_max_iterations(2),
            &RetryPolicy::none(),
        )
        .unwrap();
        assert_eq!(robust.run.cleaned, vec![0, 5, 10]);
        assert_eq!(
            robust.diagnostics.exhausted,
            Some(nde_robust::Exhaustion::Iterations)
        );
        assert!(robust.run.final_accuracy().is_finite());
    }

    #[test]
    fn flaky_oracle_is_ridden_out_by_retries() {
        use crate::oracle::FlakyOracle;
        use nde_robust::FaultSchedule;
        let (dirty, valid, oracle) = setup();
        let strategy = Strategy::Random { seed: 1 };
        let knn = KnnClassifier::new(3);
        let healthy =
            prioritized_cleaning(&knn, &dirty, &oracle, &valid, &strategy, 5, 3, false).unwrap();
        // Every other oracle call fails once; one retry rides it out.
        let flaky = FlakyOracle::new(oracle.clone(), FaultSchedule::every_nth(2));
        let robust = prioritized_cleaning_robust(
            &knn,
            &dirty,
            &flaky,
            &valid,
            &strategy,
            5,
            3,
            false,
            &RunBudget::unlimited(),
            &RetryPolicy::immediate(3),
        )
        .unwrap();
        assert_eq!(robust.run, healthy);
        assert!(robust.oracle_retries > 0);
    }

    #[test]
    fn persistent_oracle_outage_is_a_typed_error() {
        use crate::oracle::FlakyOracle;
        use nde_robust::FaultSchedule;
        let (dirty, valid, oracle) = setup();
        let down = FlakyOracle::new(oracle, FaultSchedule::always());
        let err = prioritized_cleaning_robust(
            &KnnClassifier::new(3),
            &dirty,
            &down,
            &valid,
            &Strategy::Random { seed: 0 },
            5,
            3,
            false,
            &RunBudget::unlimited(),
            &RetryPolicy::immediate(4),
        )
        .unwrap_err();
        assert!(
            matches!(err, CleaningError::OracleFailed { attempts: 4, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn empty_traces_report_nan_instead_of_panicking() {
        let empty = CleaningRun {
            strategy: "hand-built",
            cleaned: vec![],
            accuracy: vec![],
        };
        assert!(empty.dirty_accuracy().is_nan());
        assert!(empty.final_accuracy().is_nan());
    }

    #[test]
    fn validates_arguments() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(1);
        let s = Strategy::Random { seed: 0 };
        assert!(prioritized_cleaning(&knn, &dirty, &oracle, &valid, &s, 0, 1, false).is_err());
        assert!(prioritized_cleaning(&knn, &dirty, &oracle, &valid, &s, 1, 0, false).is_err());
        let wrong_oracle = LabelOracle::new(vec![0; 3]);
        assert!(
            prioritized_cleaning(&knn, &dirty, &wrong_oracle, &valid, &s, 1, 1, false).is_err()
        );
    }
}
