//! The iterative prioritized-cleaning loop (the attendees' task in §3.1):
//! score → clean a batch → retrain → measure → repeat.
//!
//! Two entry points share one implementation: [`prioritized_cleaning`] is
//! the simple loop, and [`prioritized_cleaning_robust`] additionally threads
//! a [`RunBudget`] (graceful stop with [`ConvergenceDiagnostics`]) and a
//! [`RetryPolicy`] (bounded backoff against flaky oracles) through it.

use crate::oracle::{CleaningOracle, LabelOracle};
use crate::strategy::Strategy;
use crate::{CleaningError, Result};
use nde_data::json::{Json, ToJson};
use nde_ml::batch::IncrementalLabelEval;
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_pipeline::MaintenanceMode;
use nde_robust::{retry_with_backoff, ConvergenceDiagnostics, RetryPolicy, RunBudget};

/// Trace of an iterative cleaning run.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningRun {
    /// Strategy name.
    pub strategy: &'static str,
    /// Cumulative number of rows sent to the oracle after each round
    /// (first entry is 0 = the dirty baseline).
    pub cleaned: Vec<usize>,
    /// Validation accuracy after each round (aligned with `cleaned`).
    pub accuracy: Vec<f64>,
}

impl CleaningRun {
    /// Accuracy before any cleaning. `NaN` for a run with no recorded
    /// rounds (the constructors here always record the dirty baseline, so
    /// this only triggers on hand-built traces).
    pub fn dirty_accuracy(&self) -> f64 {
        self.accuracy.first().copied().unwrap_or(f64::NAN)
    }

    /// Accuracy after the final round (`NaN` on an empty trace, as for
    /// [`CleaningRun::dirty_accuracy`]).
    pub fn final_accuracy(&self) -> f64 {
        self.accuracy.last().copied().unwrap_or(f64::NAN)
    }
}

/// Durable snapshot of an interrupted cleaning loop, at **accepted-fix
/// granularity**: every completed round's repairs, trace entries, and the
/// cleaning order are captured, so
/// [`prioritized_cleaning_resumable`] continues with the next round exactly
/// as if the run had never stopped. The order must be persisted — with
/// `rescore = false` it was ranked on the *initial* dirty data, which no
/// longer exists once repairs have been applied in place.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningCheckpoint {
    /// Name of the strategy that wrote the snapshot.
    pub strategy: String,
    /// Completed cleaning rounds (budget iterations).
    pub rounds_done: u64,
    /// Cumulative logical utility calls (baseline + one per round).
    pub utility_calls: u64,
    /// Oracle retries performed beyond first attempts.
    pub oracle_retries: u64,
    /// The working labels, with every accepted fix applied.
    pub y: Vec<usize>,
    /// Which rows have been sent to the oracle.
    pub cleaned_set: Vec<bool>,
    /// The cleaning order being consumed (front to back).
    pub order: Vec<usize>,
    /// Trace: cumulative rows cleaned after each round (starts at 0).
    pub cleaned: Vec<usize>,
    /// Trace: validation accuracy after each round.
    pub accuracy: Vec<f64>,
}

impl CleaningCheckpoint {
    /// Internal consistency: aligned trace lengths, a round count matching
    /// the trace, monotone cleaned counts agreeing with the cleaned-set,
    /// an order that is a permutation, and finite accuracies.
    pub fn validate(&self) -> Result<()> {
        let n = self.y.len();
        if self.cleaned_set.len() != n || self.order.len() != n {
            return Err(CleaningError::Checkpoint(format!(
                "snapshot holds {} labels but {} cleaned flags and {} order entries",
                n,
                self.cleaned_set.len(),
                self.order.len()
            )));
        }
        let mut seen = vec![false; n];
        for &i in &self.order {
            if i >= n || seen[i] {
                return Err(CleaningError::Checkpoint(
                    "cleaning order is not a permutation of the rows".into(),
                ));
            }
            seen[i] = true;
        }
        if self.cleaned.len() != self.accuracy.len() || self.cleaned.is_empty() {
            return Err(CleaningError::Checkpoint(format!(
                "trace holds {} cleaned counts but {} accuracies",
                self.cleaned.len(),
                self.accuracy.len()
            )));
        }
        if self.rounds_done as usize != self.cleaned.len() - 1 {
            return Err(CleaningError::Checkpoint(format!(
                "{} rounds done but the trace has {} entries",
                self.rounds_done,
                self.cleaned.len()
            )));
        }
        if self.cleaned[0] != 0 || self.cleaned.windows(2).any(|w| w[1] < w[0]) {
            return Err(CleaningError::Checkpoint(
                "cleaned counts must start at 0 and be non-decreasing".into(),
            ));
        }
        let flagged = self.cleaned_set.iter().filter(|&&c| c).count();
        if *self.cleaned.last().expect("validated non-empty") != flagged {
            return Err(CleaningError::Checkpoint(format!(
                "trace claims {} rows cleaned but {flagged} are flagged",
                self.cleaned.last().expect("validated non-empty")
            )));
        }
        if let Some(i) = self.accuracy.iter().position(|a| !a.is_finite()) {
            return Err(CleaningError::Checkpoint(format!(
                "`accuracy[{i}]` is not a finite number"
            )));
        }
        Ok(())
    }

    /// Reject a snapshot that was written by a differently-shaped run.
    pub fn validate_against(&self, strategy: &str, dirty: &Dataset) -> Result<()> {
        self.validate()?;
        if self.strategy != strategy {
            return Err(CleaningError::Checkpoint(format!(
                "snapshot written by strategy `{}`, this run uses `{strategy}`",
                self.strategy
            )));
        }
        if self.y.len() != dirty.len() {
            return Err(CleaningError::Checkpoint(format!(
                "snapshot covers {} rows, dataset has {}",
                self.y.len(),
                dirty.len()
            )));
        }
        if let Some(&bad) = self.y.iter().find(|&&l| l >= dirty.n_classes) {
            return Err(CleaningError::Checkpoint(format!(
                "snapshot label {bad} outside 0..{}",
                dirty.n_classes
            )));
        }
        Ok(())
    }

    /// The snapshot as a durable-store payload.
    pub fn to_payload(&self) -> Json {
        let uints = |v: &[usize]| Json::Arr(v.iter().map(|&u| Json::UInt(u as u64)).collect());
        Json::Obj(vec![
            ("method".into(), Json::Str("prioritized-cleaning".into())),
            ("strategy".into(), Json::Str(self.strategy.clone())),
            ("rounds_done".into(), Json::UInt(self.rounds_done)),
            ("utility_calls".into(), Json::UInt(self.utility_calls)),
            ("oracle_retries".into(), Json::UInt(self.oracle_retries)),
            ("y".into(), uints(&self.y)),
            (
                "cleaned_set".into(),
                Json::Arr(self.cleaned_set.iter().map(|&b| Json::Bool(b)).collect()),
            ),
            ("order".into(), uints(&self.order)),
            ("cleaned".into(), uints(&self.cleaned)),
            ("accuracy".into(), self.accuracy.to_json()),
        ])
    }

    /// Reconstruct and validate a snapshot from a durable-store payload.
    pub fn from_payload(doc: &Json) -> Result<CleaningCheckpoint> {
        let text = |name: &str| -> Result<String> {
            doc.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| CleaningError::Checkpoint(format!("`{name}` is not a string")))
        };
        if text("method")? != "prioritized-cleaning" {
            return Err(CleaningError::Checkpoint(format!(
                "snapshot written by `{}`, expected `prioritized-cleaning`",
                text("method")?
            )));
        }
        let uint = |name: &str| -> Result<u64> {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| CleaningError::Checkpoint(format!("`{name}` is not an integer")))
        };
        let arr = |name: &str| -> Result<&[Json]> {
            doc.get(name)
                .and_then(Json::as_arr)
                .ok_or_else(|| CleaningError::Checkpoint(format!("`{name}` is not an array")))
        };
        let uints = |name: &str| -> Result<Vec<usize>> {
            arr(name)?
                .iter()
                .map(|v| {
                    v.as_u64().map(|u| u as usize).ok_or_else(|| {
                        CleaningError::Checkpoint(format!("`{name}` holds a non-integer"))
                    })
                })
                .collect()
        };
        let ckpt = CleaningCheckpoint {
            strategy: text("strategy")?,
            rounds_done: uint("rounds_done")?,
            utility_calls: uint("utility_calls")?,
            oracle_retries: uint("oracle_retries")?,
            y: uints("y")?,
            cleaned_set: arr("cleaned_set")?
                .iter()
                .map(|v| match v {
                    Json::Bool(b) => Ok(*b),
                    _ => Err(CleaningError::Checkpoint(
                        "`cleaned_set` holds a non-boolean".into(),
                    )),
                })
                .collect::<Result<Vec<bool>>>()?,
            order: uints("order")?,
            cleaned: uints("cleaned")?,
            accuracy: arr("accuracy")?
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| {
                        CleaningError::Checkpoint("`accuracy` holds a non-number".into())
                    })
                })
                .collect::<Result<Vec<f64>>>()?,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }
}

/// A [`CleaningRun`] plus how much budget it consumed and whether it was
/// cut short — the robust variant's graceful-degradation envelope.
#[derive(Debug, Clone)]
pub struct RobustCleaningRun {
    /// The (possibly partial) cleaning trace.
    pub run: CleaningRun,
    /// Budget consumption and the limit that tripped, if any.
    pub diagnostics: ConvergenceDiagnostics,
    /// Oracle retries performed beyond first attempts (0 with a healthy
    /// oracle).
    pub oracle_retries: u64,
}

/// Run the iterative cleaning loop on label-corrupted data.
///
/// Each round sends the next `batch` rows of the strategy's cleaning order
/// to the oracle, repairs their labels in place, retrains a fresh clone of
/// `template` and records validation accuracy. When `rescore` is true the
/// strategy is re-ranked after every round (scores change as data is
/// repaired); otherwise the initial ranking is consumed front to back.
///
/// `mode` selects how the post-round accuracy is maintained:
/// [`MaintenanceMode::Rerun`] refits `template` from scratch every round;
/// [`MaintenanceMode::Incremental`] asks the template for an
/// [`IncrementalLabelEval`] hook once and then patches only the labels each
/// round actually repaired. The two modes are **bit-identical** (the hook's
/// contract); models without a hook silently fall back to refitting.
#[allow(clippy::too_many_arguments)] // the loop’s knobs are individually meaningful
pub fn prioritized_cleaning<C: Classifier>(
    template: &C,
    dirty: &Dataset,
    oracle: &LabelOracle,
    valid: &Dataset,
    strategy: &Strategy,
    batch: usize,
    rounds: usize,
    rescore: bool,
    mode: MaintenanceMode,
) -> Result<CleaningRun> {
    prioritized_cleaning_robust(
        template,
        dirty,
        oracle,
        valid,
        strategy,
        batch,
        rounds,
        rescore,
        mode,
        &RunBudget::unlimited(),
        &RetryPolicy::none(),
    )
    .map(|r| r.run)
}

/// The fault-tolerant cleaning loop: [`prioritized_cleaning`] plus a
/// [`RunBudget`] and oracle retries.
///
/// * Each cleaning round counts as one budget iteration; each model
///   retrain + score counts as one utility call. When the budget trips, the
///   loop stops **between rounds** and returns the best-so-far trace with
///   [`ConvergenceDiagnostics`] saying which limit tripped — never a panic
///   or an error.
/// * Oracle calls that fail with [`CleaningError::OracleUnavailable`] are
///   retried under `retry` (exponential backoff). A call that still fails
///   after the policy's attempts becomes [`CleaningError::OracleFailed`];
///   any other oracle error propagates immediately.
#[allow(clippy::too_many_arguments)] // the loop’s knobs are individually meaningful
pub fn prioritized_cleaning_robust<C: Classifier>(
    template: &C,
    dirty: &Dataset,
    oracle: &impl CleaningOracle,
    valid: &Dataset,
    strategy: &Strategy,
    batch: usize,
    rounds: usize,
    rescore: bool,
    mode: MaintenanceMode,
    budget: &RunBudget,
    retry: &RetryPolicy,
) -> Result<RobustCleaningRun> {
    prioritized_cleaning_resumable(
        template, dirty, oracle, valid, strategy, batch, rounds, rescore, mode, budget, retry, None,
    )
    .map(|(run, _)| run)
}

/// [`prioritized_cleaning_robust`] that can also **resume** a loop cut
/// short by an earlier budget trip (or crash): pass the
/// [`CleaningCheckpoint`] the interrupted call returned and cleaning
/// continues with the next round — same repairs, same trace, same oracle
/// picks — exactly as if the run had never stopped. A snapshot from a
/// different strategy or dataset shape is rejected with
/// [`CleaningError::Checkpoint`]. Always pass the *original* dirty
/// dataset; the snapshot carries the repairs.
#[allow(clippy::too_many_arguments)] // the loop’s knobs are individually meaningful
pub fn prioritized_cleaning_resumable<C: Classifier>(
    template: &C,
    dirty: &Dataset,
    oracle: &impl CleaningOracle,
    valid: &Dataset,
    strategy: &Strategy,
    batch: usize,
    rounds: usize,
    rescore: bool,
    mode: MaintenanceMode,
    budget: &RunBudget,
    retry: &RetryPolicy,
    resume: Option<&CleaningCheckpoint>,
) -> Result<(RobustCleaningRun, CleaningCheckpoint)> {
    if batch == 0 || rounds == 0 {
        return Err(CleaningError::InvalidArgument(
            "batch and rounds must be > 0".into(),
        ));
    }
    if oracle.len() != dirty.len() {
        return Err(CleaningError::InvalidArgument(format!(
            "oracle covers {} examples, dataset has {}",
            oracle.len(),
            dirty.len()
        )));
    }
    let mut current = dirty.clone();

    let eval = |data: &Dataset| -> Result<f64> {
        let mut model = template.clone();
        model.fit(data)?;
        Ok(model.accuracy(valid))
    };

    let (mut clock, mut run, mut cleaned_set, mut order, mut cleaned_total, mut oracle_retries);
    match resume {
        Some(cp) => {
            cp.validate_against(strategy.name(), dirty)?;
            current.y = cp.y.clone();
            clock = budget.resume(cp.rounds_done, cp.utility_calls);
            run = CleaningRun {
                strategy: strategy.name(),
                cleaned: cp.cleaned.clone(),
                accuracy: cp.accuracy.clone(),
            };
            cleaned_set = cp.cleaned_set.clone();
            order = cp.order.clone();
            cleaned_total = *cp.cleaned.last().expect("validated non-empty");
            oracle_retries = cp.oracle_retries;
        }
        None => {
            clock = budget.start();
            cleaned_set = vec![false; current.len()];
            cleaned_total = 0;
            oracle_retries = 0;
            run = CleaningRun {
                strategy: strategy.name(),
                cleaned: vec![],
                accuracy: vec![],
            };
            order = strategy.rank(&current, valid)?;
        }
    }

    // Incremental maintenance: build the hook once over the working labels
    // (after any resumed repairs are applied) and patch it per round. The
    // hook's contract is that its accuracy is always bit-identical to
    // refitting `template` on the same labels, so checkpoints written by
    // either mode resume interchangeably in the other. A `None` hook
    // (model without incremental support) falls back to refitting.
    let mut incremental: Option<Box<dyn IncrementalLabelEval>> = match mode {
        MaintenanceMode::Rerun => None,
        MaintenanceMode::Incremental => template.incremental_eval(&current, valid),
    };
    if run.accuracy.is_empty() {
        // Fresh run: record the dirty baseline.
        clock.record_utility_calls(1);
        let baseline = match incremental.as_ref() {
            Some(hook) => hook.accuracy(),
            None => eval(&current)?,
        };
        run.cleaned.push(0);
        run.accuracy.push(baseline);
    }

    let start_round = run.cleaned.len() - 1;
    for _round in start_round..rounds {
        if clock.exhausted().is_some() {
            break; // budget tripped: return the best-so-far trace
        }
        if rescore {
            order = strategy.rank(&current, valid)?;
        }
        let picks: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| !cleaned_set[i])
            .take(batch)
            .collect();
        if picks.is_empty() {
            break; // everything has been cleaned
        }
        let before: Vec<usize> = picks.iter().map(|&i| current.y[i]).collect();
        let outcome = retry_with_backoff(
            retry,
            |e| matches!(e, CleaningError::OracleUnavailable { .. }),
            || oracle.repair(&mut current.y, &picks),
        );
        oracle_retries += u64::from(outcome.attempts.saturating_sub(1));
        match outcome.result {
            Ok(_) => {}
            Err(e @ CleaningError::OracleUnavailable { .. }) => {
                return Err(CleaningError::OracleFailed {
                    attempts: outcome.attempts,
                    last: e.to_string(),
                })
            }
            Err(e) => return Err(e),
        }
        for &i in &picks {
            cleaned_set[i] = true;
        }
        cleaned_total += picks.len();
        run.cleaned.push(cleaned_total);
        clock.record_utility_calls(1);
        let accuracy = match incremental.as_mut() {
            Some(hook) => {
                // Only the labels the oracle actually changed need work.
                for (&i, &old) in picks.iter().zip(&before) {
                    if current.y[i] != old {
                        hook.set_label(i, current.y[i])?;
                    }
                }
                hook.accuracy()
            }
            None => eval(&current)?,
        };
        run.accuracy.push(accuracy);
        clock.record_iteration();
    }
    let diagnostics = clock.diagnostics(None);
    let snapshot = CleaningCheckpoint {
        strategy: strategy.name().to_string(),
        rounds_done: clock.iterations(),
        utility_calls: clock.utility_calls(),
        oracle_retries,
        y: current.y.clone(),
        cleaned_set,
        order,
        cleaned: run.cleaned.clone(),
        accuracy: run.accuracy.clone(),
    };
    Ok((
        RobustCleaningRun {
            run,
            diagnostics,
            oracle_retries,
        },
        snapshot,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;
    use nde_ml::models::knn::KnnClassifier;

    fn setup() -> (Dataset, Dataset, LabelOracle) {
        let nd = two_gaussians(200, 3, 2.0, 43);
        let all = Dataset::try_from(&nd).unwrap();
        let mut train = all.subset(&(0..150).collect::<Vec<_>>());
        let valid = all.subset(&(150..200).collect::<Vec<_>>());
        let truth = train.y.clone();
        // 10% label errors.
        for f in [
            5, 17, 29, 38, 51, 66, 84, 99, 111, 120, 133, 140, 147, 148, 149,
        ] {
            train.y[f] = 1 - train.y[f];
        }
        (train, valid, LabelOracle::new(truth))
    }

    #[test]
    fn importance_cleaning_recovers_accuracy() {
        let (dirty, valid, oracle) = setup();
        let run = prioritized_cleaning(
            &KnnClassifier::new(3),
            &dirty,
            &oracle,
            &valid,
            &Strategy::KnnShapley { k: 3 },
            5,
            4,
            false,
            MaintenanceMode::Rerun,
        )
        .unwrap();
        assert_eq!(run.cleaned, vec![0, 5, 10, 15, 20]);
        assert_eq!(run.accuracy.len(), 5);
        assert!(
            run.final_accuracy() >= run.dirty_accuracy(),
            "cleaning must not hurt: {run:?}"
        );
        assert!(
            run.final_accuracy() > run.dirty_accuracy() + 0.01,
            "prioritized cleaning should visibly improve accuracy: {run:?}"
        );
    }

    #[test]
    fn beats_random_cleaning_at_same_budget() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(3);
        let smart = prioritized_cleaning(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &Strategy::KnnShapley { k: 3 },
            10,
            2,
            false,
            MaintenanceMode::Rerun,
        )
        .unwrap();
        // Average random over seeds to dodge luck.
        let mut random_final = 0.0;
        for seed in 0..4 {
            let run = prioritized_cleaning(
                &knn,
                &dirty,
                &oracle,
                &valid,
                &Strategy::Random { seed },
                10,
                2,
                false,
                MaintenanceMode::Rerun,
            )
            .unwrap();
            random_final += run.final_accuracy();
        }
        random_final /= 4.0;
        assert!(
            smart.final_accuracy() >= random_final,
            "smart {} vs random {random_final}",
            smart.final_accuracy()
        );
    }

    #[test]
    fn stops_when_everything_is_cleaned() {
        let (dirty, valid, oracle) = setup();
        let run = prioritized_cleaning(
            &KnnClassifier::new(1),
            &dirty,
            &oracle,
            &valid,
            &Strategy::Random { seed: 0 },
            100,
            10,
            false,
            MaintenanceMode::Rerun,
        )
        .unwrap();
        // 150 rows / batch 100 ⇒ two rounds, then exhaustion.
        assert_eq!(run.cleaned, vec![0, 100, 150]);
    }

    #[test]
    fn rescoring_variant_runs() {
        let (dirty, valid, oracle) = setup();
        let run = prioritized_cleaning(
            &KnnClassifier::new(1),
            &dirty,
            &oracle,
            &valid,
            &Strategy::KnnShapley { k: 1 },
            5,
            2,
            true,
            MaintenanceMode::Rerun,
        )
        .unwrap();
        assert_eq!(run.cleaned.last(), Some(&10));
    }

    #[test]
    fn robust_with_unlimited_budget_matches_plain_loop() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(3);
        let strategy = Strategy::KnnShapley { k: 3 };
        let plain = prioritized_cleaning(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &strategy,
            5,
            4,
            false,
            MaintenanceMode::Rerun,
        )
        .unwrap();
        let robust = prioritized_cleaning_robust(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &strategy,
            5,
            4,
            false,
            MaintenanceMode::Rerun,
            &RunBudget::unlimited(),
            &RetryPolicy::none(),
        )
        .unwrap();
        assert_eq!(robust.run, plain);
        assert!(robust.diagnostics.completed());
        assert_eq!(robust.diagnostics.iterations, 4);
        // Baseline + one eval per round.
        assert_eq!(robust.diagnostics.utility_calls, 5);
        assert_eq!(robust.oracle_retries, 0);
    }

    #[test]
    fn budget_exhaustion_returns_partial_trace() {
        let (dirty, valid, oracle) = setup();
        let robust = prioritized_cleaning_robust(
            &KnnClassifier::new(3),
            &dirty,
            &oracle,
            &valid,
            &Strategy::Random { seed: 0 },
            5,
            10,
            false,
            MaintenanceMode::Rerun,
            &RunBudget::unlimited().with_max_iterations(2),
            &RetryPolicy::none(),
        )
        .unwrap();
        assert_eq!(robust.run.cleaned, vec![0, 5, 10]);
        assert_eq!(
            robust.diagnostics.exhausted,
            Some(nde_robust::Exhaustion::Iterations)
        );
        assert!(robust.run.final_accuracy().is_finite());
    }

    #[test]
    fn flaky_oracle_is_ridden_out_by_retries() {
        use crate::oracle::FlakyOracle;
        use nde_robust::FaultSchedule;
        let (dirty, valid, oracle) = setup();
        let strategy = Strategy::Random { seed: 1 };
        let knn = KnnClassifier::new(3);
        let healthy = prioritized_cleaning(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &strategy,
            5,
            3,
            false,
            MaintenanceMode::Rerun,
        )
        .unwrap();
        // Every other oracle call fails once; one retry rides it out.
        let flaky = FlakyOracle::new(oracle.clone(), FaultSchedule::every_nth(2));
        let robust = prioritized_cleaning_robust(
            &knn,
            &dirty,
            &flaky,
            &valid,
            &strategy,
            5,
            3,
            false,
            MaintenanceMode::Rerun,
            &RunBudget::unlimited(),
            &RetryPolicy::immediate(3),
        )
        .unwrap();
        assert_eq!(robust.run, healthy);
        assert!(robust.oracle_retries > 0);
    }

    #[test]
    fn cut_and_resume_is_bit_identical_to_the_uncut_run() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(3);
        let strategy = Strategy::KnnShapley { k: 3 };
        let plain = prioritized_cleaning(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &strategy,
            5,
            4,
            false,
            MaintenanceMode::Rerun,
        )
        .unwrap();

        // Cut the loop after 2 of 4 rounds.
        let (partial, snap) = prioritized_cleaning_resumable(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &strategy,
            5,
            4,
            false,
            MaintenanceMode::Rerun,
            &RunBudget::unlimited().with_max_iterations(2),
            &RetryPolicy::none(),
            None,
        )
        .unwrap();
        assert_eq!(partial.run.cleaned, vec![0, 5, 10]);
        assert_eq!(snap.rounds_done, 2);
        assert_eq!(snap.utility_calls, 3);

        // Round-trip the snapshot through its durable-store payload.
        let text = snap.to_payload().to_string_pretty();
        let snap = CleaningCheckpoint::from_payload(&Json::parse(&text).unwrap()).unwrap();

        // Resume against the ORIGINAL dirty data: the snapshot carries the
        // repairs, the order, and the trace.
        let (resumed, done) = prioritized_cleaning_resumable(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &strategy,
            5,
            4,
            false,
            MaintenanceMode::Rerun,
            &RunBudget::unlimited(),
            &RetryPolicy::none(),
            Some(&snap),
        )
        .unwrap();
        assert_eq!(resumed.run, plain, "resume must be bit-identical");
        assert!(resumed.diagnostics.completed());
        assert_eq!(resumed.diagnostics.iterations, 4);
        assert_eq!(resumed.diagnostics.utility_calls, 5);
        assert_eq!(done.rounds_done, 4);
        assert_eq!(*done.cleaned.last().unwrap(), 20);

        // Resuming a finished run is a no-op that returns the same trace.
        let (idem, _) = prioritized_cleaning_resumable(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &strategy,
            5,
            4,
            false,
            MaintenanceMode::Rerun,
            &RunBudget::unlimited(),
            &RetryPolicy::none(),
            Some(&done),
        )
        .unwrap();
        assert_eq!(idem.run, plain);
    }

    #[test]
    fn snapshot_mismatches_and_torn_payloads_are_rejected() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(3);
        let strategy = Strategy::KnnShapley { k: 3 };
        let (_, snap) = prioritized_cleaning_resumable(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &strategy,
            5,
            4,
            false,
            MaintenanceMode::Rerun,
            &RunBudget::unlimited().with_max_iterations(2),
            &RetryPolicy::none(),
            None,
        )
        .unwrap();

        let reject = |snap: &CleaningCheckpoint| {
            let err = prioritized_cleaning_resumable(
                &knn,
                &dirty,
                &oracle,
                &valid,
                &strategy,
                5,
                4,
                false,
                MaintenanceMode::Rerun,
                &RunBudget::unlimited(),
                &RetryPolicy::none(),
                Some(snap),
            )
            .unwrap_err();
            assert!(matches!(err, CleaningError::Checkpoint(_)), "{err}");
        };

        // Written by a different strategy.
        let mut bad = snap.clone();
        bad.strategy = "random".into();
        reject(&bad);
        // Wrong dataset shape.
        let mut bad = snap.clone();
        bad.y.pop();
        bad.cleaned_set.pop();
        bad.order.retain(|&i| i != dirty.len() - 1);
        reject(&bad);
        // Round count disagreeing with the trace.
        let mut bad = snap.clone();
        bad.rounds_done = 99;
        reject(&bad);
        // Order that is not a permutation.
        let mut bad = snap.clone();
        bad.order[0] = bad.order[1];
        reject(&bad);
        // Label outside the class range.
        let mut bad = snap.clone();
        bad.y[0] = dirty.n_classes;
        reject(&bad);

        // Torn payload: every strict prefix must fail to parse or validate.
        let text = snap.to_payload().to_string_pretty();
        for cut in (0..text.len()).step_by(97) {
            if let Ok(doc) = Json::parse(&text[..cut]) {
                assert!(
                    CleaningCheckpoint::from_payload(&doc).is_err(),
                    "torn prefix of {cut} bytes must not validate"
                );
            }
        }
        // Non-finite accuracy smuggled through JSON (`1e999` parses to inf).
        let poisoned = text.replacen(&format!("{}", snap.accuracy[0]), "1e999", 1);
        assert!(
            CleaningCheckpoint::from_payload(&Json::parse(&poisoned).unwrap()).is_err(),
            "non-finite accuracy must be rejected"
        );
    }

    #[test]
    fn persistent_oracle_outage_is_a_typed_error() {
        use crate::oracle::FlakyOracle;
        use nde_robust::FaultSchedule;
        let (dirty, valid, oracle) = setup();
        let down = FlakyOracle::new(oracle, FaultSchedule::always());
        let err = prioritized_cleaning_robust(
            &KnnClassifier::new(3),
            &dirty,
            &down,
            &valid,
            &Strategy::Random { seed: 0 },
            5,
            3,
            false,
            MaintenanceMode::Rerun,
            &RunBudget::unlimited(),
            &RetryPolicy::immediate(4),
        )
        .unwrap_err();
        assert!(
            matches!(err, CleaningError::OracleFailed { attempts: 4, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn incremental_mode_is_bit_identical_to_rerun() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(3);
        for (strategy, rescore) in [
            (Strategy::KnnShapley { k: 3 }, false),
            (Strategy::KnnShapley { k: 3 }, true),
            (Strategy::Random { seed: 7 }, false),
        ] {
            let args = |mode| {
                prioritized_cleaning(
                    &knn, &dirty, &oracle, &valid, &strategy, 5, 4, rescore, mode,
                )
                .unwrap()
            };
            let rerun = args(MaintenanceMode::Rerun);
            let inc = args(MaintenanceMode::Incremental);
            assert_eq!(rerun.cleaned, inc.cleaned);
            for (a, b) in rerun.accuracy.iter().zip(&inc.accuracy) {
                assert_eq!(a.to_bits(), b.to_bits(), "rescore={rescore} {rerun:?}");
            }
        }
    }

    #[test]
    fn checkpoints_resume_across_maintenance_modes() {
        // A snapshot written by one mode must resume in the other and still
        // land bit-identical to the uncut Rerun loop: the hook's accuracy
        // contract makes the modes indistinguishable on disk.
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(3);
        let strategy = Strategy::KnnShapley { k: 3 };
        let uncut = prioritized_cleaning(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &strategy,
            5,
            4,
            false,
            MaintenanceMode::Rerun,
        )
        .unwrap();
        for (cut_mode, resume_mode) in [
            (MaintenanceMode::Incremental, MaintenanceMode::Rerun),
            (MaintenanceMode::Rerun, MaintenanceMode::Incremental),
        ] {
            let (_, snap) = prioritized_cleaning_resumable(
                &knn,
                &dirty,
                &oracle,
                &valid,
                &strategy,
                5,
                4,
                false,
                cut_mode,
                &RunBudget::unlimited().with_max_iterations(2),
                &RetryPolicy::none(),
                None,
            )
            .unwrap();
            let (resumed, _) = prioritized_cleaning_resumable(
                &knn,
                &dirty,
                &oracle,
                &valid,
                &strategy,
                5,
                4,
                false,
                resume_mode,
                &RunBudget::unlimited(),
                &RetryPolicy::none(),
                Some(&snap),
            )
            .unwrap();
            assert_eq!(resumed.run, uncut, "{cut_mode:?} -> {resume_mode:?}");
        }
    }

    #[test]
    fn empty_traces_report_nan_instead_of_panicking() {
        let empty = CleaningRun {
            strategy: "hand-built",
            cleaned: vec![],
            accuracy: vec![],
        };
        assert!(empty.dirty_accuracy().is_nan());
        assert!(empty.final_accuracy().is_nan());
    }

    #[test]
    fn validates_arguments() {
        let (dirty, valid, oracle) = setup();
        let knn = KnnClassifier::new(1);
        let s = Strategy::Random { seed: 0 };
        assert!(prioritized_cleaning(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &s,
            0,
            1,
            false,
            MaintenanceMode::Rerun
        )
        .is_err());
        assert!(prioritized_cleaning(
            &knn,
            &dirty,
            &oracle,
            &valid,
            &s,
            1,
            0,
            false,
            MaintenanceMode::Rerun
        )
        .is_err());
        let wrong_oracle = LabelOracle::new(vec![0; 3]);
        assert!(prioritized_cleaning(
            &knn,
            &dirty,
            &wrong_oracle,
            &valid,
            &s,
            1,
            1,
            false,
            MaintenanceMode::Rerun
        )
        .is_err());
    }
}
