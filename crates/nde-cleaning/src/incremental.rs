//! End-to-end incremental debugging: accepted fixes flow from a **source
//! table** through the captured pipeline run, the feature encoders, the
//! model evaluator, and the memoized-utility cache — without re-running
//! anything the fix did not touch.
//!
//! [`IncrementalDebugSession`] glues four incremental layers together:
//!
//! 1. [`PipelineSession`] (nde-pipeline) propagates a [`Delta`] through the
//!    relational operators and reports which **output rows** changed.
//! 2. [`FeaturePipeline::encode_rows`] re-encodes only those rows with the
//!    already-fitted encoders (row-wise, so bit-identical to a full
//!    transform).
//! 3. The model's [`IncrementalLabelEval`] hook patches the affected labels
//!    / feature rows instead of refitting (bit-identical by contract).
//! 4. [`MemoCache::invalidate_members`] evicts exactly the memoized
//!    coalition utilities whose subsets touch a changed row, so importance
//!    estimators never serve a stale score.
//!
//! Every layer is differentially guaranteed: after any sequence of fixes
//! the session's table, dataset and accuracy are bit-identical to
//! re-executing the plan over the mutated sources and re-encoding with the
//! **already-fitted** encoders (featurization is part of the model spec; a
//! debugging session never refits it per accepted fix).

use crate::{CleaningError, Result};
use nde_data::Table;
use nde_ml::batch::IncrementalLabelEval;
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_pipeline::exec::Executor;
use nde_pipeline::feature::FeaturePipeline;
use nde_pipeline::{Delta, DeltaPath, PipelineSession};
use nde_robust::par::MemoCache;

/// What one accepted fix did to the session.
#[derive(Debug, Clone)]
pub struct FixReport {
    /// The propagation path the pipeline layer took.
    pub path: DeltaPath,
    /// Output rows whose encoded content changed (ascending). After a
    /// structural fix (insert/delete/rerun) this lists every current row.
    pub affected_rows: Vec<usize>,
    /// `true` when row identity changed and the whole dataset was
    /// re-encoded (splice or rerun); `false` for an in-place cell patch.
    pub reencoded_all: bool,
    /// Memoized coalition utilities evicted by this fix.
    pub cache_evictions: usize,
    /// Validation accuracy after the fix (bit-identical to a full rebuild).
    pub accuracy: f64,
}

/// A live debugging session over a provenance-tracked pipeline run:
/// accepted source-level fixes are applied incrementally end to end.
pub struct IncrementalDebugSession<C: Classifier> {
    template: C,
    pipeline: FeaturePipeline,
    session: PipelineSession,
    valid: Dataset,
    dataset: Dataset,
    evaluator: Option<Box<dyn IncrementalLabelEval>>,
    memo: MemoCache,
    fixes_applied: usize,
    full_reencodes: usize,
    rows_reencoded: usize,
}

impl<C: Classifier> IncrementalDebugSession<C> {
    /// Fit `pipeline` on `inputs`, capture the run for delta propagation,
    /// and build the model's incremental evaluator against `valid`.
    ///
    /// Models without an [`IncrementalLabelEval`] hook still work — the
    /// accuracy falls back to refitting `template` (the pipeline and cache
    /// layers stay incremental either way).
    pub fn build(
        template: C,
        mut pipeline: FeaturePipeline,
        inputs: &[(&str, &Table)],
        valid: Dataset,
    ) -> Result<IncrementalDebugSession<C>> {
        let out = pipeline.fit_run(inputs, false)?;
        let session =
            PipelineSession::build(&Executor::new(), &pipeline.plan, pipeline.root, inputs)?;
        let evaluator = template.incremental_eval(&out.dataset, &valid);
        Ok(IncrementalDebugSession {
            template,
            pipeline,
            session,
            valid,
            dataset: out.dataset,
            evaluator,
            memo: MemoCache::new(),
            fixes_applied: 0,
            full_reencodes: 0,
            rows_reencoded: 0,
        })
    }

    /// Apply one accepted fix end to end and return what it touched.
    ///
    /// A non-structural cell fix re-encodes only the affected output rows
    /// and patches the evaluator; a structural fix (insert/delete, or a
    /// routing change that forced a rerun) re-encodes the whole dataset —
    /// row identity moved, so every downstream index is stale.
    pub fn apply_fix(&mut self, delta: &Delta) -> Result<FixReport> {
        let outcome = self.session.apply(delta)?;
        self.fixes_applied += 1;
        if outcome.path == DeltaPath::CellPatch {
            let rows = outcome.affected_rows;
            let evictions = self.patch_rows(&rows)?;
            return Ok(FixReport {
                path: outcome.path,
                affected_rows: rows,
                reencoded_all: false,
                cache_evictions: evictions,
                accuracy: self.accuracy()?,
            });
        }
        // Splice / rerun: rebuild the encoded state from the maintained
        // table. The subset fingerprints keyed into the memo cache name
        // rows by index, and those indices just moved — drop everything.
        let evictions = self.memo.len();
        self.rebuild()?;
        Ok(FixReport {
            path: outcome.path,
            affected_rows: (0..self.dataset.len()).collect(),
            reencoded_all: true,
            cache_evictions: evictions,
            accuracy: self.accuracy()?,
        })
    }

    /// Re-encode `rows` of the maintained table and push label / feature
    /// changes into the dataset, the evaluator, and the memo cache.
    fn patch_rows(&mut self, rows: &[usize]) -> Result<usize> {
        if rows.is_empty() {
            return Ok(0); // the fix never reached the output
        }
        self.rows_reencoded += rows.len();
        let (x, y) = self.pipeline.encode_rows(self.session.table(), rows)?;
        let mut feature_changed = Vec::new();
        for (j, &r) in rows.iter().enumerate() {
            if self.dataset.y[r] != y[j] {
                self.dataset.y[r] = y[j];
                if let Some(hook) = self.evaluator.as_mut() {
                    hook.set_label(r, y[j])?;
                }
            }
            let fresh = x.row(j);
            let stale = self.dataset.x.row(r);
            if fresh
                .iter()
                .zip(stale)
                .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                self.dataset.x.row_mut(r).copy_from_slice(fresh);
                feature_changed.push(r);
            }
        }
        if !feature_changed.is_empty() {
            if let Some(hook) = self.evaluator.as_mut() {
                hook.update_features(&feature_changed, &self.dataset)?;
            }
        }
        Ok(self.memo.invalidate_members(rows))
    }

    /// Full re-encode after a structural fix: fresh dataset, fresh
    /// evaluator, empty cache.
    fn rebuild(&mut self) -> Result<()> {
        self.full_reencodes += 1;
        let table = self.session.table();
        if table.n_rows() == 0 {
            return Err(CleaningError::InvalidArgument(
                "fix removed every training row".into(),
            ));
        }
        let rows: Vec<usize> = (0..table.n_rows()).collect();
        self.rows_reencoded += rows.len();
        let (x, y) = self.pipeline.encode_rows(table, &rows)?;
        let n_classes = self.pipeline.label_encoder()?.n_classes();
        self.dataset = Dataset::new(x, y, n_classes)?;
        self.evaluator = self.template.incremental_eval(&self.dataset, &self.valid);
        self.memo = MemoCache::new();
        Ok(())
    }

    /// Current validation accuracy — from the incremental evaluator when
    /// the model has one, otherwise by refitting the template.
    pub fn accuracy(&self) -> Result<f64> {
        match self.evaluator.as_ref() {
            Some(hook) => Ok(hook.accuracy()),
            None => {
                let mut model = self.template.clone();
                model.fit(&self.dataset)?;
                Ok(model.accuracy(&self.valid))
            }
        }
    }

    /// The maintained encoded training dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The maintained relational output table.
    pub fn table(&self) -> &Table {
        self.session.table()
    }

    /// The underlying pipeline session (lineage, source tables, stats).
    pub fn session(&self) -> &PipelineSession {
        &self.session
    }

    /// The memoized coalition-utility cache importance estimators should
    /// share; accepted fixes evict exactly the entries they stale.
    pub fn memo(&self) -> &MemoCache {
        &self.memo
    }

    /// `(fixes applied, full re-encodes, rows re-encoded)` — the work
    /// accounting E16 reports.
    pub fn stats(&self) -> (usize, usize, usize) {
        (self.fixes_applied, self.full_reencodes, self.rows_reencoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::hiring::HiringScenario;
    use nde_data::Value;
    use nde_importance::coalition_utility;
    use nde_ml::models::knn::KnnClassifier;

    fn inputs(s: &HiringScenario) -> Vec<(&str, &Table)> {
        vec![
            ("train_df", &s.letters),
            ("jobdetail_df", &s.job_details),
            ("social_df", &s.social),
        ]
    }

    fn valid_set(seed: u64) -> Dataset {
        // A clean hiring sample pushed through a freshly fitted pipeline
        // serves as the validation set for the session under test.
        let s = HiringScenario::generate(60, seed);
        let mut fp = FeaturePipeline::hiring(8);
        fp.fit_run(&inputs(&s), false).unwrap().dataset
    }

    /// A pipeline fitted on the original (pre-fix) sources, for ground truth.
    fn truth_pipeline(s: &HiringScenario) -> FeaturePipeline {
        let mut fp = FeaturePipeline::hiring(8);
        fp.fit_run(&inputs(s), false).unwrap();
        fp
    }

    /// The ground truth: re-execute the plan over the mutated sources and
    /// re-encode with the **originally fitted** encoders — exactly what the
    /// session maintains incrementally (featurization is part of the model
    /// spec and does not refit per accepted fix).
    fn fresh_accuracy(
        template: &KnnClassifier,
        fp: &FeaturePipeline,
        sources: &[(&str, &Table)],
        valid: &Dataset,
    ) -> (f64, Dataset) {
        let out = fp.transform_run(sources, false).unwrap();
        let mut model = template.clone();
        model.fit(&out.dataset).unwrap();
        (model.accuracy(valid), out.dataset)
    }

    fn assert_dataset_bits_eq(a: &Dataset, b: &Dataset) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.y, b.y);
        for i in 0..a.len() {
            for (p, q) in a.x.row(i).iter().zip(b.x.row(i)) {
                assert_eq!(p.to_bits(), q.to_bits(), "row {i}");
            }
        }
    }

    #[test]
    fn label_fix_patches_in_place_and_matches_full_rebuild() {
        let mut s = HiringScenario::generate(90, 11);
        let knn = KnnClassifier::new(3);
        let valid = valid_set(12);
        let truth = truth_pipeline(&s);
        let mut session = IncrementalDebugSession::build(
            knn.clone(),
            FeaturePipeline::hiring(8),
            &inputs(&s),
            valid.clone(),
        )
        .unwrap();
        // Flip the sentiment of a letter that survives the pipeline filter:
        // output row 0's person_id names its letters row.
        let out_row0 = 0usize;
        let pid = session.table().get(out_row0, "person_id").unwrap();
        let src_row = (0..s.letters.n_rows())
            .find(|&r| s.letters.get(r, "person_id").unwrap() == pid)
            .unwrap();
        let old = s.letters.get(src_row, "sentiment").unwrap();
        let flipped = if old.as_str().unwrap() == "positive" {
            "negative"
        } else {
            "positive"
        };
        let fix = Delta::Update {
            source: "train_df".into(),
            row: src_row,
            column: "sentiment".into(),
            value: Value::Str(flipped.into()),
        };
        let report = session.apply_fix(&fix).unwrap();
        assert_eq!(report.path, DeltaPath::CellPatch);
        assert!(!report.reencoded_all);
        assert!(report.affected_rows.contains(&out_row0));

        s.letters
            .set(src_row, "sentiment", Value::Str(flipped.into()))
            .unwrap();
        let (want, want_ds) = fresh_accuracy(&knn, &truth, &inputs(&s), &valid);
        assert_eq!(report.accuracy.to_bits(), want.to_bits());
        assert_dataset_bits_eq(session.dataset(), &want_ds);
        let _ = session.session().lineage(); // lineage stays materializable
    }

    #[test]
    fn feature_fix_and_structural_fix_match_full_rebuild() {
        let mut s = HiringScenario::generate(80, 21);
        let knn = KnnClassifier::new(3);
        let valid = valid_set(22);
        let truth = truth_pipeline(&s);
        let mut session = IncrementalDebugSession::build(
            knn.clone(),
            FeaturePipeline::hiring(8),
            &inputs(&s),
            valid.clone(),
        )
        .unwrap();

        // A numeric feature fix: a letter's years_experience outlier.
        let fix = Delta::Update {
            source: "train_df".into(),
            row: 3,
            column: "years_experience".into(),
            value: Value::Float(40.0),
        };
        let report = session.apply_fix(&fix).unwrap();
        s.letters
            .set(3, "years_experience", Value::Float(40.0))
            .unwrap();
        let (want, want_ds) = fresh_accuracy(&knn, &truth, &inputs(&s), &valid);
        assert_eq!(report.accuracy.to_bits(), want.to_bits());
        assert_dataset_bits_eq(session.dataset(), &want_ds);

        // A structural fix: delete a letter outright.
        let report = session
            .apply_fix(&Delta::Delete {
                source: "train_df".into(),
                row: 5,
            })
            .unwrap();
        assert!(report.reencoded_all);
        s.letters = s
            .letters
            .take(
                &(0..s.letters.n_rows())
                    .filter(|&r| r != 5)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let (want, want_ds) = fresh_accuracy(&knn, &truth, &inputs(&s), &valid);
        assert_eq!(report.accuracy.to_bits(), want.to_bits());
        assert_dataset_bits_eq(session.dataset(), &want_ds);
        let (fixes, full, rows) = session.stats();
        assert_eq!(fixes, 2);
        assert_eq!(full, 1);
        assert!(rows >= session.dataset().len());
    }

    #[test]
    fn memo_cache_serves_only_fresh_utilities_across_fixes() {
        let s = HiringScenario::generate(70, 31);
        let knn = KnnClassifier::new(3);
        let valid = valid_set(32);
        let mut session = IncrementalDebugSession::build(
            knn.clone(),
            FeaturePipeline::hiring(8),
            &inputs(&s),
            valid.clone(),
        )
        .unwrap();

        // Memoize two coalitions: one touching output row 0, one not.
        let n = session.dataset().len();
        let with_zero: Vec<usize> = (0..n.min(6)).collect();
        let without_zero: Vec<usize> = (1..n.min(7)).collect();
        for coal in [&with_zero, &without_zero] {
            coalition_utility(&knn, session.dataset(), &valid, coal, Some(session.memo())).unwrap();
        }
        assert_eq!(session.memo().len(), 2);

        // Fix whose cell patch touches output row 0 (its letter's sentiment).
        let pid = session.table().get(0, "person_id").unwrap();
        let src_row = (0..s.letters.n_rows())
            .find(|&r| s.letters.get(r, "person_id").unwrap() == pid)
            .unwrap();
        let old = s.letters.get(src_row, "sentiment").unwrap();
        let flipped = if old.as_str().unwrap() == "positive" {
            "negative"
        } else {
            "positive"
        };
        let report = session
            .apply_fix(&Delta::Update {
                source: "train_df".into(),
                row: src_row,
                column: "sentiment".into(),
                value: Value::Str(flipped.into()),
            })
            .unwrap();
        assert!(report.affected_rows.contains(&0));
        assert!(report.cache_evictions >= 1, "{report:?}");

        // Whatever survived must still be bit-correct: recompute every
        // memoized coalition from scratch and compare.
        for coal in [&with_zero, &without_zero] {
            let cached =
                coalition_utility(&knn, session.dataset(), &valid, coal, Some(session.memo()))
                    .unwrap();
            let fresh = coalition_utility(&knn, session.dataset(), &valid, coal, None).unwrap();
            assert_eq!(cached.to_bits(), fresh.to_bits());
        }
    }
}
