//! # nde-cleaning
//!
//! Prioritized data cleaning (paper §3.1, Fig. 2) and the DataPerf-style
//! **data debugging challenge** (§3.2): cleaning oracles, importance-ranked
//! cleaning strategies, the iterative cleaning loop, and a challenge harness
//! with a hidden test set and a live leaderboard.

pub mod challenge;
pub mod error;
pub mod incremental;
pub mod iterative;
pub mod oracle;
pub mod strategy;

pub use challenge::{DebugChallenge, Leaderboard, LeaderboardEntry};
pub use error::CleaningError;
pub use incremental::{FixReport, IncrementalDebugSession};
pub use iterative::{
    prioritized_cleaning, prioritized_cleaning_resumable, prioritized_cleaning_robust,
    CleaningCheckpoint, CleaningRun, RobustCleaningRun,
};
pub use nde_pipeline::MaintenanceMode;
pub use oracle::{CleaningOracle, FlakyOracle, LabelOracle, TableOracle};
pub use strategy::Strategy;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CleaningError>;
