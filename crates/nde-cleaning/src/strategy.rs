//! Cleaning strategies: who gets cleaned first?
//!
//! Each strategy produces a *cleaning order* over the training examples
//! (most suspicious first). Importance-based strategies are the tutorial's
//! core message: cleaning the lowest-valued tuples first recovers model
//! quality far faster than random cleaning (Fig. 2, §3.2).

use crate::Result;
use nde_data::rng::{permutation, seeded};
use nde_importance::aum::{aum_importance, AumConfig};
use nde_importance::confident::{confident_learning, ConfidentConfig};
use nde_importance::influence::{influence_importance, InfluenceConfig};
use nde_importance::loo::loo_importance;
use nde_importance::{
    banzhaf, beta_shapley, knn_shapley, tmc_shapley, BanzhafConfig, BanzhafParams,
    BetaShapleyConfig, BetaShapleyParams, ImportanceRun, ShapleyConfig, TmcParams,
};
use nde_ml::dataset::Dataset;
use nde_ml::models::knn::KnnClassifier;
use nde_ml::models::naive_bayes::GaussianNb;

/// A prioritized-cleaning strategy.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Uniformly random order (the baseline every importance method must beat).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// Exact KNN-Shapley with the given neighborhood size.
    KnnShapley {
        /// Number of neighbors.
        k: usize,
    },
    /// Leave-one-out with a 1-NN utility model.
    Loo,
    /// Truncated Monte-Carlo Shapley with a 1-NN utility model.
    TmcShapley(ShapleyConfig),
    /// Data Banzhaf (MSR) with a 1-NN utility model.
    Banzhaf(BanzhafConfig),
    /// Beta Shapley with a 1-NN utility model.
    BetaShapley(BetaShapleyConfig),
    /// Area-under-the-margin (logistic regression margins).
    Aum(AumConfig),
    /// Confident learning with a Gaussian naive Bayes probe model.
    ConfidentLearning(ConfidentConfig),
    /// Influence functions (binary logistic regression).
    Influence(InfluenceConfig),
}

impl Strategy {
    /// Short display name for reports and leaderboards.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Random { .. } => "random",
            Strategy::KnnShapley { .. } => "knn-shapley",
            Strategy::Loo => "loo",
            Strategy::TmcShapley(_) => "tmc-shapley",
            Strategy::Banzhaf(_) => "banzhaf",
            Strategy::BetaShapley(_) => "beta-shapley",
            Strategy::Aum(_) => "aum",
            Strategy::ConfidentLearning(_) => "confident-learning",
            Strategy::Influence(_) => "influence",
        }
    }

    /// Rank the training examples: indices in cleaning order (clean first).
    pub fn rank(&self, train: &Dataset, valid: &Dataset) -> Result<Vec<usize>> {
        let order = match self {
            Strategy::Random { seed } => {
                let mut rng = seeded(*seed);
                permutation(train.len(), &mut rng)
            }
            Strategy::KnnShapley { k } => knn_shapley(&ImportanceRun::new(0), train, valid, *k)?
                .scores
                .ascending_indices(),
            Strategy::Loo => {
                loo_importance(&KnnClassifier::new(1), train, valid)?.ascending_indices()
            }
            Strategy::TmcShapley(cfg) => {
                let run = ImportanceRun::new(cfg.seed).with_threads(cfg.threads);
                let params = TmcParams {
                    permutations: cfg.permutations,
                    truncation_tolerance: cfg.truncation_tolerance,
                };
                tmc_shapley(&run, &KnnClassifier::new(1), train, valid, &params)?
                    .scores
                    .ascending_indices()
            }
            Strategy::Banzhaf(cfg) => {
                let run = ImportanceRun::new(cfg.seed).with_threads(cfg.threads);
                let params = BanzhafParams {
                    samples: cfg.samples,
                };
                banzhaf(&run, &KnnClassifier::new(1), train, valid, &params)?
                    .scores
                    .ascending_indices()
            }
            Strategy::BetaShapley(cfg) => {
                let run = ImportanceRun::new(cfg.seed).with_threads(cfg.threads);
                let params = BetaShapleyParams {
                    alpha: cfg.alpha,
                    beta: cfg.beta,
                    samples_per_point: cfg.samples_per_point,
                };
                beta_shapley(&run, &KnnClassifier::new(1), train, valid, &params)?
                    .scores
                    .ascending_indices()
            }
            Strategy::Aum(cfg) => aum_importance(train, cfg)?.ascending_indices(),
            Strategy::ConfidentLearning(cfg) => confident_learning(&GaussianNb::new(), train, cfg)?
                .scores
                .ascending_indices(),
            Strategy::Influence(cfg) => {
                influence_importance(train, valid, cfg)?.ascending_indices()
            }
        };
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;

    fn dirty_blobs() -> (Dataset, Dataset, Vec<usize>) {
        let nd = two_gaussians(160, 3, 5.0, 31);
        let all = Dataset::try_from(&nd).unwrap();
        let mut train = all.subset(&(0..120).collect::<Vec<_>>());
        let valid = all.subset(&(120..160).collect::<Vec<_>>());
        let flips = vec![3, 19, 44, 61, 87, 102];
        for &f in &flips {
            train.y[f] = 1 - train.y[f];
        }
        (train, valid, flips)
    }

    #[test]
    fn every_strategy_returns_a_permutation() {
        let (train, valid, _) = dirty_blobs();
        let strategies = vec![
            Strategy::Random { seed: 1 },
            Strategy::KnnShapley { k: 1 },
            Strategy::Loo,
            Strategy::Aum(AumConfig::default()),
            Strategy::ConfidentLearning(ConfidentConfig::default()),
            Strategy::Influence(InfluenceConfig::default()),
            Strategy::Banzhaf(BanzhafConfig {
                samples: 50,
                seed: 2,
                threads: 1,
            }),
            Strategy::BetaShapley(BetaShapleyConfig {
                samples_per_point: 5,
                ..Default::default()
            }),
            Strategy::TmcShapley(ShapleyConfig {
                permutations: 10,
                ..Default::default()
            }),
        ];
        for s in strategies {
            let order = s.rank(&train, &valid).unwrap();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..train.len()).collect::<Vec<_>>(), "{}", s.name());
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn knn_shapley_finds_flips_faster_than_random() {
        let (train, valid, flips) = dirty_blobs();
        let hits_in_prefix =
            |order: &[usize], k: usize| order[..k].iter().filter(|i| flips.contains(i)).count();
        let shapley_order = Strategy::KnnShapley { k: 1 }.rank(&train, &valid).unwrap();
        // Average random performance over several seeds.
        let mut random_hits = 0;
        for seed in 0..5 {
            let order = Strategy::Random { seed }.rank(&train, &valid).unwrap();
            random_hits += hits_in_prefix(&order, 12);
        }
        let shapley_hits = hits_in_prefix(&shapley_order, 12);
        assert!(
            shapley_hits * 5 > random_hits,
            "shapley {shapley_hits} vs random {random_hits}/5"
        );
        assert!(
            shapley_hits >= 4,
            "shapley found only {shapley_hits}/6 flips"
        );
    }

    #[test]
    fn random_is_deterministic_by_seed() {
        let (train, valid, _) = dirty_blobs();
        let a = Strategy::Random { seed: 9 }.rank(&train, &valid).unwrap();
        let b = Strategy::Random { seed: 9 }.rank(&train, &valid).unwrap();
        let c = Strategy::Random { seed: 10 }.rank(&train, &valid).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
