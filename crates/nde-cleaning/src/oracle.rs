//! Cleaning oracles: ground-truth repair of labels or whole rows.
//!
//! The hands-on session hands attendees an "oracle" function that repairs
//! the tuples they select (paper §3.1–3.2). The oracle owns the clean ground
//! truth; callers only see the effect of their chosen repairs.

use crate::{CleaningError, Result};
use nde_data::Table;
use nde_robust::FaultSchedule;
use std::cell::Cell;

/// Anything that can repair class labels for selected rows.
///
/// Abstracts over the in-process [`LabelOracle`] and failure-injecting
/// wrappers like [`FlakyOracle`], so the cleaning loop can be exercised
/// against unreliable oracles without changing its code.
pub trait CleaningOracle {
    /// Number of examples covered.
    fn len(&self) -> usize;

    /// `true` if the oracle covers no examples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Repair the labels at `rows` in place; returns how many actually
    /// changed (i.e. were dirty).
    fn repair(&self, labels: &mut [usize], rows: &[usize]) -> Result<usize>;
}

/// Repairs class labels against a ground-truth label vector.
#[derive(Debug, Clone)]
pub struct LabelOracle {
    truth: Vec<usize>,
}

impl LabelOracle {
    /// Create an oracle from the true labels.
    pub fn new(truth: Vec<usize>) -> LabelOracle {
        LabelOracle { truth }
    }

    /// Number of examples covered.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// `true` if the oracle covers no examples.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Repair the labels at `rows` in place; returns how many actually
    /// changed (i.e. were dirty).
    pub fn repair(&self, labels: &mut [usize], rows: &[usize]) -> Result<usize> {
        if labels.len() != self.truth.len() {
            return Err(CleaningError::InvalidArgument(format!(
                "oracle covers {} examples, got {}",
                self.truth.len(),
                labels.len()
            )));
        }
        let mut changed = 0;
        for &r in rows {
            if r >= labels.len() {
                return Err(CleaningError::InvalidArgument(format!(
                    "row {r} out of bounds"
                )));
            }
            if labels[r] != self.truth[r] {
                labels[r] = self.truth[r];
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// How many of the given labels currently disagree with the truth.
    pub fn dirty_count(&self, labels: &[usize]) -> usize {
        labels
            .iter()
            .zip(&self.truth)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl CleaningOracle for LabelOracle {
    fn len(&self) -> usize {
        LabelOracle::len(self)
    }

    fn repair(&self, labels: &mut [usize], rows: &[usize]) -> Result<usize> {
        LabelOracle::repair(self, labels, rows)
    }
}

/// A [`CleaningOracle`] that fails on a deterministic
/// [`FaultSchedule`] — the cleaning-side chaos hook.
///
/// Scheduled failures return [`CleaningError::OracleUnavailable`] *before*
/// touching any labels, modelling a dependency outage rather than a partial
/// write. Pair with [`nde_robust::retry_with_backoff`] (see
/// `prioritized_cleaning_robust`) to ride out transient outages.
#[derive(Debug, Clone)]
pub struct FlakyOracle<O> {
    inner: O,
    schedule: FaultSchedule,
    calls: Cell<u64>,
}

impl<O: CleaningOracle> FlakyOracle<O> {
    /// Wrap `inner`, failing the calls picked by `schedule`.
    pub fn new(inner: O, schedule: FaultSchedule) -> FlakyOracle<O> {
        FlakyOracle {
            inner,
            schedule,
            calls: Cell::new(0),
        }
    }

    /// Total repair calls observed so far (successful or failed).
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }
}

impl<O: CleaningOracle> CleaningOracle for FlakyOracle<O> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn repair(&self, labels: &mut [usize], rows: &[usize]) -> Result<usize> {
        let call = self.calls.get();
        self.calls.set(call + 1);
        if self.schedule.should_fail(call) {
            return Err(CleaningError::OracleUnavailable { call });
        }
        self.inner.repair(labels, rows)
    }
}

/// Repairs whole rows of a table against a clean ground-truth copy
/// (for pipeline scenarios where errors live in source tables).
#[derive(Debug, Clone)]
pub struct TableOracle {
    clean: Table,
}

impl TableOracle {
    /// Create an oracle holding the clean table.
    pub fn new(clean: Table) -> TableOracle {
        TableOracle { clean }
    }

    /// Replace the given rows of `dirty` with their clean versions; returns
    /// how many actually changed. Schemas and row counts must match.
    pub fn repair_rows(&self, dirty: &mut Table, rows: &[usize]) -> Result<usize> {
        if dirty.schema() != self.clean.schema() || dirty.n_rows() != self.clean.n_rows() {
            return Err(CleaningError::InvalidArgument(
                "dirty table does not match the oracle's schema/shape".into(),
            ));
        }
        let mut changed = 0;
        let names: Vec<String> = dirty
            .schema()
            .names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        for &r in rows {
            let clean_row = self.clean.row(r)?;
            let dirty_row = dirty.row(r)?;
            if clean_row != dirty_row {
                for (name, value) in names.iter().zip(clean_row) {
                    dirty.set(r, name, value)?;
                }
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Rows of `dirty` that differ from the clean table.
    pub fn dirty_rows(&self, dirty: &Table) -> Result<Vec<usize>> {
        if dirty.n_rows() != self.clean.n_rows() {
            return Err(CleaningError::InvalidArgument(
                "dirty table does not match the oracle's shape".into(),
            ));
        }
        let mut out = Vec::new();
        for r in 0..dirty.n_rows() {
            if dirty.row(r)? != self.clean.row(r)? {
                out.push(r);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::hiring::{HiringScenario, LABEL_COLUMN};
    use nde_data::inject::flip_labels;

    #[test]
    fn label_oracle_repairs_only_requested_rows() {
        let oracle = LabelOracle::new(vec![0, 1, 0, 1]);
        let mut labels = vec![1, 1, 1, 1]; // rows 0 and 2 dirty
        assert_eq!(oracle.dirty_count(&labels), 2);
        let changed = oracle.repair(&mut labels, &[0]).unwrap();
        assert_eq!(changed, 1);
        assert_eq!(labels, vec![0, 1, 1, 1]);
        // Repairing a clean row is a no-op.
        let changed = oracle.repair(&mut labels, &[1]).unwrap();
        assert_eq!(changed, 0);
        assert_eq!(oracle.dirty_count(&labels), 1);
    }

    #[test]
    fn label_oracle_validates() {
        let oracle = LabelOracle::new(vec![0, 1]);
        let mut labels = vec![0, 1, 0];
        assert!(oracle.repair(&mut labels, &[0]).is_err());
        let mut ok = vec![0, 1];
        assert!(oracle.repair(&mut ok, &[5]).is_err());
    }

    #[test]
    fn table_oracle_restores_flipped_rows() {
        let clean = HiringScenario::generate(60, 1).letters;
        let mut dirty = clean.clone();
        let report = flip_labels(&mut dirty, LABEL_COLUMN, 0.2, 2).unwrap();
        let oracle = TableOracle::new(clean.clone());
        assert_eq!(oracle.dirty_rows(&dirty).unwrap(), report.affected);
        let changed = oracle.repair_rows(&mut dirty, &report.affected).unwrap();
        assert_eq!(changed, report.affected.len());
        assert_eq!(dirty, clean);
        assert!(oracle.dirty_rows(&dirty).unwrap().is_empty());
    }

    #[test]
    fn flaky_oracle_fails_on_schedule_without_mutating() {
        let flaky = FlakyOracle::new(
            LabelOracle::new(vec![0, 1, 0, 1]),
            FaultSchedule::first_n(2),
        );
        let mut labels = vec![1, 1, 1, 1];
        // First two calls fail and leave the labels untouched.
        for expected_call in 0..2u64 {
            let err = CleaningOracle::repair(&flaky, &mut labels, &[0]).unwrap_err();
            assert_eq!(
                err,
                CleaningError::OracleUnavailable {
                    call: expected_call
                }
            );
            assert_eq!(labels, vec![1, 1, 1, 1]);
        }
        // Third call goes through to the inner oracle.
        assert_eq!(
            CleaningOracle::repair(&flaky, &mut labels, &[0]).unwrap(),
            1
        );
        assert_eq!(labels, vec![0, 1, 1, 1]);
        assert_eq!(flaky.calls(), 3);
        assert_eq!(CleaningOracle::len(&flaky), 4);
        assert!(!CleaningOracle::is_empty(&flaky));
    }

    #[test]
    fn table_oracle_validates_shape() {
        let clean = HiringScenario::generate(10, 3).letters;
        let oracle = TableOracle::new(clean.clone());
        let mut smaller = clean.take(&(0..5).collect::<Vec<_>>()).unwrap();
        assert!(oracle.repair_rows(&mut smaller, &[0]).is_err());
        assert!(oracle.dirty_rows(&smaller).is_err());
    }
}
