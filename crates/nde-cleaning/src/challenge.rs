//! The data debugging challenge (paper §3.2): a dirty training set, a
//! limited cleaning budget, an oracle that evaluates on a **hidden test
//! set**, and a live leaderboard.

use crate::oracle::LabelOracle;
use crate::{CleaningError, Result};
use nde_data::json::{Json, ToJson};
use nde_ml::batch::IncrementalLabelEval;
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_pipeline::MaintenanceMode;
use std::fmt;

/// One scored submission.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardEntry {
    /// Submitting participant.
    pub name: String,
    /// Hidden-test accuracy achieved.
    pub score: f64,
    /// How many rows the submission cleaned.
    pub cleaned: usize,
}

nde_data::json_struct!(LeaderboardEntry {
    name,
    score,
    cleaned
});

/// The challenge leaderboard, best score first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Leaderboard {
    entries: Vec<LeaderboardEntry>,
}

impl Leaderboard {
    /// Record a submission (re-sorts: best score, then fewest cleaned rows).
    pub fn record(&mut self, entry: LeaderboardEntry) {
        self.entries.push(entry);
        self.entries.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then(a.cleaned.cmp(&b.cleaned))
                .then(a.name.cmp(&b.name))
        });
    }

    /// Entries, best first.
    pub fn entries(&self) -> &[LeaderboardEntry] {
        &self.entries
    }

    /// The current leader, if any.
    pub fn leader(&self) -> Option<&LeaderboardEntry> {
        self.entries.first()
    }

    /// Serialize to pretty JSON (for persistence / the "live leaderboard").
    pub fn to_json(&self) -> Result<String> {
        let doc = Json::Obj(vec![("entries".into(), self.entries.to_json())]);
        Ok(doc.to_string_pretty())
    }

    /// Restore from JSON.
    pub fn from_json(json: &str) -> Result<Leaderboard> {
        let serde = |msg: String| CleaningError::Serde(msg);
        let doc = Json::parse(json).map_err(|e| serde(e.to_string()))?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| serde("missing `entries` array".into()))?
            .iter()
            .map(|e| {
                Some(LeaderboardEntry {
                    name: e.get("name")?.as_str()?.to_owned(),
                    score: e.get("score")?.as_f64()?,
                    cleaned: e.get("cleaned")?.as_usize()?,
                })
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| serde("malformed leaderboard entry".into()))?;
        Ok(Leaderboard { entries })
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from("rank | name                 | score  | cleaned\n");
        out.push_str("-----+----------------------+--------+--------\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "{:>4} | {:<20} | {:.4} | {:>7}\n",
                i + 1,
                e.name,
                e.score,
                e.cleaned
            ));
        }
        out
    }
}

/// The challenge harness: owns the dirty data, the hidden test set, the
/// ground-truth oracle and the budget. Participants see only validation data
/// and submission feedback.
pub struct DebugChallenge<C: Classifier> {
    template: C,
    dirty: Dataset,
    hidden_test: Dataset,
    oracle: LabelOracle,
    budget: usize,
    leaderboard: Leaderboard,
    maintenance: MaintenanceMode,
    /// Lazily-built incremental evaluator over the *pristine* dirty labels;
    /// every submission applies its fixes, reads the score, and reverts
    /// them, so submissions stay independent exactly as in rerun mode.
    evaluator: Option<Box<dyn IncrementalLabelEval>>,
}

impl<C: Classifier + fmt::Debug> fmt::Debug for DebugChallenge<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DebugChallenge")
            .field("template", &self.template)
            .field("dirty", &self.dirty)
            .field("hidden_test", &self.hidden_test)
            .field("oracle", &self.oracle)
            .field("budget", &self.budget)
            .field("leaderboard", &self.leaderboard)
            .field("maintenance", &self.maintenance)
            .field("evaluator", &self.evaluator.as_ref().map(|_| "<built>"))
            .finish()
    }
}

impl<C: Classifier> Clone for DebugChallenge<C> {
    fn clone(&self) -> Self {
        DebugChallenge {
            template: self.template.clone(),
            dirty: self.dirty.clone(),
            hidden_test: self.hidden_test.clone(),
            oracle: self.oracle.clone(),
            budget: self.budget,
            leaderboard: self.leaderboard.clone(),
            maintenance: self.maintenance,
            // The evaluator is a cache; the clone rebuilds it on demand.
            evaluator: None,
        }
    }
}

impl<C: Classifier> DebugChallenge<C> {
    /// Set up a challenge.
    pub fn new(
        template: C,
        dirty: Dataset,
        oracle: LabelOracle,
        hidden_test: Dataset,
        budget: usize,
    ) -> Result<DebugChallenge<C>> {
        if oracle.len() != dirty.len() {
            return Err(CleaningError::InvalidArgument(
                "oracle does not cover the dirty dataset".into(),
            ));
        }
        if budget == 0 {
            return Err(CleaningError::InvalidArgument("budget must be > 0".into()));
        }
        Ok(DebugChallenge {
            template,
            dirty,
            hidden_test,
            oracle,
            budget,
            leaderboard: Leaderboard::default(),
            maintenance: MaintenanceMode::Rerun,
            evaluator: None,
        })
    }

    /// Select how submissions are scored: [`MaintenanceMode::Rerun`] refits
    /// the template per submission; [`MaintenanceMode::Incremental`] keeps
    /// one incremental evaluator and patches only the submitted labels
    /// (apply → score → revert). Scores are **bit-identical** either way;
    /// models without an incremental hook silently fall back to refitting.
    pub fn with_maintenance(mut self, mode: MaintenanceMode) -> DebugChallenge<C> {
        self.maintenance = mode;
        self
    }

    /// The active maintenance mode.
    pub fn maintenance(&self) -> MaintenanceMode {
        self.maintenance
    }

    /// The cleaning budget per submission.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// A participant's view of the dirty training data (labels included —
    /// they just may be wrong).
    pub fn dirty_data(&self) -> &Dataset {
        &self.dirty
    }

    /// Baseline hidden-test accuracy with no cleaning at all.
    pub fn baseline(&self) -> Result<f64> {
        let mut model = self.template.clone();
        model.fit(&self.dirty)?;
        Ok(model.accuracy(&self.hidden_test))
    }

    /// Submit up to `budget` row ids to clean. The oracle repairs them, the
    /// model is retrained on the partially-cleaned data, and the hidden-test
    /// accuracy is returned and recorded on the leaderboard. The challenge's
    /// own dirty data is *not* mutated — every submission starts fresh.
    pub fn submit(&mut self, name: &str, rows: &[usize]) -> Result<f64> {
        if rows.len() > self.budget {
            return Err(CleaningError::BudgetExceeded {
                requested: rows.len(),
                budget: self.budget,
            });
        }
        let mut repaired_y = self.dirty.y.clone();
        self.oracle.repair(&mut repaired_y, rows)?;
        let score = match self.incremental_score(&repaired_y, rows)? {
            Some(score) => score,
            None => {
                let mut repaired = self.dirty.clone();
                repaired.y = repaired_y;
                let mut model = self.template.clone();
                model.fit(&repaired)?;
                model.accuracy(&self.hidden_test)
            }
        };
        self.leaderboard.record(LeaderboardEntry {
            name: name.to_owned(),
            score,
            cleaned: rows.len(),
        });
        Ok(score)
    }

    /// Score a submission through the incremental evaluator: apply the
    /// changed labels, read the accuracy, revert. Returns `None` when the
    /// rerun path must be used (mode off, or no hook for this model).
    fn incremental_score(&mut self, repaired_y: &[usize], rows: &[usize]) -> Result<Option<f64>> {
        if self.maintenance != MaintenanceMode::Incremental {
            return Ok(None);
        }
        if self.evaluator.is_none() {
            self.evaluator = self
                .template
                .incremental_eval(&self.dirty, &self.hidden_test);
        }
        if self.evaluator.is_none() {
            return Ok(None);
        }
        let changed: Vec<usize> = rows
            .iter()
            .copied()
            .filter(|&i| repaired_y[i] != self.dirty.y[i])
            .collect();
        let scored = (|| -> Result<f64> {
            let hook = self.evaluator.as_mut().expect("checked above");
            for &i in &changed {
                hook.set_label(i, repaired_y[i])?;
            }
            let score = hook.accuracy();
            for &i in &changed {
                hook.set_label(i, self.dirty.y[i])?;
            }
            Ok(score)
        })();
        match scored {
            Ok(score) => Ok(Some(score)),
            Err(e) => {
                // A failed patch leaves the hook half-applied; drop it so
                // the next submission rebuilds from the pristine labels.
                self.evaluator = None;
                Err(e)
            }
        }
    }

    /// The live leaderboard.
    pub fn leaderboard(&self) -> &Leaderboard {
        &self.leaderboard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;
    use nde_importance::{knn_shapley, ImportanceRun};
    use nde_ml::models::knn::KnnClassifier;

    fn challenge() -> (DebugChallenge<KnnClassifier>, Vec<usize>, Dataset) {
        let nd = two_gaussians(260, 3, 5.0, 51);
        let all = Dataset::try_from(&nd).unwrap();
        let mut train = all.subset(&(0..180).collect::<Vec<_>>());
        let valid = all.subset(&(180..220).collect::<Vec<_>>());
        let test = all.subset(&(220..260).collect::<Vec<_>>());
        let truth = train.y.clone();
        let flips: Vec<usize> = vec![
            2, 9, 25, 31, 47, 58, 72, 88, 95, 104, 119, 127, 142, 155, 166, 171, 13, 64, 99, 150,
        ];
        for &f in &flips {
            train.y[f] = 1 - train.y[f];
        }
        let ch = DebugChallenge::new(
            KnnClassifier::new(3),
            train,
            LabelOracle::new(truth),
            test,
            25,
        )
        .unwrap();
        (ch, flips, valid)
    }

    #[test]
    fn good_submission_beats_baseline_and_random() {
        let (mut ch, _flips, valid) = challenge();
        let baseline = ch.baseline().unwrap();
        // Importance-guided submission within budget.
        let scores = knn_shapley(&ImportanceRun::new(0), ch.dirty_data(), &valid, 3)
            .unwrap()
            .scores;
        let picks = scores.bottom_k(25);
        let smart = ch.submit("smart", &picks).unwrap();
        // Random submission.
        let random_picks: Vec<usize> = (0..25).map(|i| i * 7 % 180).collect();
        let random = ch.submit("random", &random_picks).unwrap();
        assert!(smart >= baseline, "smart {smart} vs baseline {baseline}");
        assert!(smart >= random, "smart {smart} vs random {random}");
        // Leaderboard ordered best-first.
        let lb = ch.leaderboard();
        assert_eq!(lb.entries().len(), 2);
        assert!(lb.leader().unwrap().score >= lb.entries()[1].score);
    }

    #[test]
    fn budget_enforced_and_submissions_independent() {
        let (mut ch, _, _) = challenge();
        let too_many: Vec<usize> = (0..26).collect();
        assert!(matches!(
            ch.submit("greedy", &too_many),
            Err(CleaningError::BudgetExceeded { .. })
        ));
        // Two identical submissions give identical scores (no state leaks).
        let picks: Vec<usize> = (0..25).collect();
        let a = ch.submit("a", &picks).unwrap();
        let b = ch.submit("b", &picks).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_submissions_match_rerun_bit_for_bit() {
        let (ch, flips, valid) = challenge();
        let mut rerun = ch.clone();
        let mut inc = ch.with_maintenance(MaintenanceMode::Incremental);
        assert_eq!(inc.maintenance(), MaintenanceMode::Incremental);
        let scores = knn_shapley(&ImportanceRun::new(0), inc.dirty_data(), &valid, 3)
            .unwrap()
            .scores;
        let submissions: Vec<Vec<usize>> = vec![
            scores.bottom_k(25),
            (0..25).map(|i| i * 7 % 180).collect(),
            flips.iter().copied().take(20).collect(),
            vec![],              // empty submission
            scores.bottom_k(25), // repeat: must be independent
            vec![3, 3, 3],       // duplicate rows
        ];
        for (s, rows) in submissions.iter().enumerate() {
            let a = rerun.submit(&format!("s{s}"), rows).unwrap();
            let b = inc.submit(&format!("s{s}"), rows).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "submission {s}");
        }
        assert_eq!(rerun.leaderboard(), inc.leaderboard());
        // Cloning resets the cached evaluator but not the semantics.
        let mut cloned = inc.clone();
        let a = cloned.submit("clone", &submissions[0]).unwrap();
        let b = inc.submit("clone", &submissions[0]).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn leaderboard_json_roundtrip_and_render() {
        let mut lb = Leaderboard::default();
        lb.record(LeaderboardEntry {
            name: "ada".into(),
            score: 0.91,
            cleaned: 20,
        });
        lb.record(LeaderboardEntry {
            name: "bob".into(),
            score: 0.95,
            cleaned: 25,
        });
        lb.record(LeaderboardEntry {
            name: "eve".into(),
            score: 0.95,
            cleaned: 10,
        });
        assert_eq!(lb.leader().unwrap().name, "eve"); // same score, fewer rows
        let json = lb.to_json().unwrap();
        let back = Leaderboard::from_json(&json).unwrap();
        assert_eq!(back, lb);
        let rendered = lb.render();
        assert!(rendered.contains("eve"));
        assert!(rendered.lines().count() >= 5);
        assert!(Leaderboard::from_json("not json").is_err());
    }

    #[test]
    fn construction_validated() {
        let nd = two_gaussians(20, 2, 3.0, 52);
        let data = Dataset::try_from(&nd).unwrap();
        let bad_oracle = LabelOracle::new(vec![0; 3]);
        assert!(DebugChallenge::new(
            KnnClassifier::new(1),
            data.clone(),
            bad_oracle,
            data.clone(),
            10
        )
        .is_err());
        let oracle = LabelOracle::new(data.y.clone());
        assert!(DebugChallenge::new(KnnClassifier::new(1), data.clone(), oracle, data, 0).is_err());
    }
}
