//! Property-based tests for the Shapley axioms on random datasets.

use nde_importance::knn_shapley::knn_shapley;
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_ml::models::knn::KnnClassifier;
use proptest::prelude::*;

/// Random tiny binary dataset with distinct-ish 1-D features.
fn dataset_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(((-100i32..100), any::<bool>()), n).prop_map(|points| {
        // Spread duplicates apart deterministically so distances are stable.
        let rows: Vec<Vec<f64>> = points
            .iter()
            .enumerate()
            .map(|(i, (x, _))| vec![*x as f64 + i as f64 * 1e-4])
            .collect();
        let labels: Vec<usize> = points.iter().map(|(_, b)| usize::from(*b)).collect();
        Dataset::from_rows(rows, labels, 2).expect("well-formed")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_shapley_efficiency_axiom(
        train in dataset_strategy(2..20),
        valid in dataset_strategy(1..10),
        k in 1usize..4,
    ) {
        prop_assume!(train.y.contains(&0) && train.y.contains(&1));
        prop_assume!(k <= train.len());
        let scores = knn_shapley(&train, &valid, k).expect("computes");
        let sum: f64 = scores.values.iter().sum();
        // U(D): mean over validation of correct-neighbor fraction among the
        // k nearest (the utility the closed form is exact for).
        let mut knn = KnnClassifier::new(k);
        knn.fit(&train).expect("fits");
        let mut u = 0.0;
        for (vx, &vy) in valid.x.iter_rows().zip(&valid.y) {
            let nb = knn.neighbors(vx);
            let correct = nb.iter().filter(|&&i| train.y[i] == vy).count();
            u += correct as f64 / k as f64;
        }
        u /= valid.len() as f64;
        // Efficiency: Σφ = U(D) − U(∅) with U(∅) = 0.
        prop_assert!(
            (sum - u).abs() < 1e-9,
            "sum {sum} vs U(D) {u} (n={}, k={k})", train.len()
        );
    }

    #[test]
    fn knn_shapley_symmetry_for_duplicates(
        train in dataset_strategy(3..12),
        valid in dataset_strategy(1..8),
    ) {
        prop_assume!(train.y.contains(&0) && train.y.contains(&1));
        // Append an exact duplicate of row 0 (same features AND label):
        // symmetric players must receive (near-)equal value. The closed form
        // breaks distance ties by index, so allow a small tolerance.
        let mut rows: Vec<Vec<f64>> = train.x.iter_rows().map(|r| r.to_vec()).collect();
        let mut labels = train.y.clone();
        rows.push(rows[0].clone());
        labels.push(labels[0]);
        let n = rows.len();
        let dup = Dataset::from_rows(rows, labels, 2).expect("well-formed");
        let scores = knn_shapley(&dup, &valid, 1).expect("computes");
        let a = scores.values[0];
        let b = scores.values[n - 1];
        prop_assert!(
            (a - b).abs() < 0.5,
            "duplicate values diverged: {a} vs {b}"
        );
    }

    #[test]
    fn scores_are_finite_and_bounded(
        train in dataset_strategy(2..25),
        valid in dataset_strategy(1..10),
        k in 1usize..5,
    ) {
        prop_assume!(train.y.contains(&0) && train.y.contains(&1));
        let scores = knn_shapley(&train, &valid, k).expect("computes");
        for &v in &scores.values {
            prop_assert!(v.is_finite());
            // A single point's value is bounded by 1 in magnitude for the
            // 0/1-bounded utility.
            prop_assert!(v.abs() <= 1.0 + 1e-9);
        }
    }
}
