//! Randomized-property tests for the Shapley axioms on random datasets,
//! driven by the in-tree seeded PRNG so failures reproduce exactly.

use nde_data::rng::{seeded, Rng, StdRng};
use nde_importance::{knn_shapley, ImportanceRun};
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_ml::models::knn::KnnClassifier;

const CASES: usize = 64;

/// Random tiny binary dataset with distinct-ish 1-D features and both
/// labels present.
fn random_dataset(rng: &mut StdRng, lo: usize, hi: usize) -> Dataset {
    let n = rng.gen_range(lo..hi).max(2);
    // Spread duplicates apart deterministically so distances are stable.
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![rng.gen_range(-100..100i32) as f64 + i as f64 * 1e-4])
        .collect();
    let mut labels: Vec<usize> = (0..n).map(|_| usize::from(rng.gen_bool(0.5))).collect();
    // Force both classes to appear.
    labels[0] = 0;
    labels[n - 1] = 1;
    Dataset::from_rows(rows, labels, 2).expect("well-formed")
}

#[test]
fn knn_shapley_efficiency_axiom() {
    let mut rng = seeded(41);
    for _ in 0..CASES {
        let train = random_dataset(&mut rng, 2, 20);
        let valid = random_dataset(&mut rng, 2, 10);
        let k = rng.gen_range(1..4usize).min(train.len());
        let scores = knn_shapley(&ImportanceRun::new(0), &train, &valid, k)
            .expect("computes")
            .scores;
        let sum: f64 = scores.values.iter().sum();
        // U(D): mean over validation of correct-neighbor fraction among the
        // k nearest (the utility the closed form is exact for).
        let mut knn = KnnClassifier::new(k);
        knn.fit(&train).expect("fits");
        let mut u = 0.0;
        for (vx, &vy) in valid.x.iter_rows().zip(&valid.y) {
            let nb = knn.neighbors(vx);
            let correct = nb.iter().filter(|&&i| train.y[i] == vy).count();
            u += correct as f64 / k as f64;
        }
        u /= valid.len() as f64;
        // Efficiency: Σφ = U(D) − U(∅) with U(∅) = 0.
        assert!(
            (sum - u).abs() < 1e-9,
            "sum {sum} vs U(D) {u} (n={}, k={k})",
            train.len()
        );
    }
}

#[test]
fn knn_shapley_symmetry_for_duplicates() {
    let mut rng = seeded(42);
    for _ in 0..CASES {
        let train = random_dataset(&mut rng, 3, 12);
        let valid = random_dataset(&mut rng, 2, 8);
        // Append an exact duplicate of row 0 (same features AND label):
        // symmetric players must receive (near-)equal value. The closed form
        // breaks distance ties by index, so allow a small tolerance.
        let mut rows: Vec<Vec<f64>> = train.x.iter_rows().map(|r| r.to_vec()).collect();
        let mut labels = train.y.clone();
        rows.push(rows[0].clone());
        labels.push(labels[0]);
        let n = rows.len();
        let dup = Dataset::from_rows(rows, labels, 2).expect("well-formed");
        let scores = knn_shapley(&ImportanceRun::new(0), &dup, &valid, 1)
            .expect("computes")
            .scores;
        let a = scores.values[0];
        let b = scores.values[n - 1];
        assert!((a - b).abs() < 0.5, "duplicate values diverged: {a} vs {b}");
    }
}

#[test]
fn scores_are_finite_and_bounded() {
    let mut rng = seeded(43);
    for _ in 0..CASES {
        let train = random_dataset(&mut rng, 2, 25);
        let valid = random_dataset(&mut rng, 2, 10);
        let k = rng.gen_range(1..5usize).min(train.len());
        let scores = knn_shapley(&ImportanceRun::new(0), &train, &valid, k)
            .expect("computes")
            .scores;
        for &v in &scores.values {
            assert!(v.is_finite());
            // A single point's value is bounded by 1 in magnitude for the
            // 0/1-bounded utility.
            assert!(v.abs() <= 1.0 + 1e-9);
        }
    }
}
