//! Influence functions for binary logistic regression (Koh & Liang, ICML'17).
//!
//! The influence of up-weighting a training point `z` on the validation loss
//! is `I(z) = −∇_θ L_valid · H⁻¹ ∇_θ ℓ(z)`. Removing a harmful point
//! *reduces* validation loss, so harmful points get *negative* importance
//! under the sign convention used here (importance = −I, higher = helpful).

use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_ml::dataset::Dataset;
use nde_ml::linalg::{dot, solve, Matrix};

/// Configuration for the influence-function computation.
#[derive(Debug, Clone)]
pub struct InfluenceConfig {
    /// L2 regularization used for training and as Hessian damping.
    pub l2: f64,
    /// Full-batch gradient-descent steps for the internal trainer.
    pub train_steps: usize,
    /// Learning rate of the internal trainer.
    pub learning_rate: f64,
}

impl Default for InfluenceConfig {
    fn default() -> Self {
        InfluenceConfig {
            l2: 1e-3,
            train_steps: 500,
            learning_rate: 0.5,
        }
    }
}

/// Influence-based importance of every training example for binary
/// classification (labels 0/1). Returns `−I(z)` so that, consistently with
/// the other methods, *higher is more helpful*.
pub fn influence_importance(
    train: &Dataset,
    valid: &Dataset,
    config: &InfluenceConfig,
) -> Result<ImportanceScores> {
    if train.n_classes != 2 {
        return Err(ImportanceError::Unsupported(
            "influence functions implemented for binary classification".into(),
        ));
    }
    if train.is_empty() || valid.is_empty() {
        return Err(ImportanceError::InvalidArgument(
            "train and valid must be non-empty".into(),
        ));
    }
    let n = train.len();
    let d = train.dim() + 1; // weights + bias

    // --- Train binary logistic regression by full-batch GD (deterministic).
    let mut theta = vec![0.0; d];
    for _ in 0..config.train_steps {
        let mut grad = vec![0.0; d];
        for (x, &y) in train.x.iter_rows().zip(&train.y) {
            let p = sigmoid(margin(&theta, x));
            let err = p - y as f64;
            for (g, xi) in grad.iter_mut().zip(x) {
                *g += err * xi;
            }
            grad[d - 1] += err;
        }
        for (j, g) in grad.iter_mut().enumerate() {
            *g = *g / n as f64 + config.l2 * theta[j];
        }
        for (t, g) in theta.iter_mut().zip(&grad) {
            *t -= config.learning_rate * g;
        }
    }

    // --- Hessian of the (mean) training loss at theta, plus damping.
    // H = 1/n Σ p(1−p) x̃ x̃ᵀ + l2 I, with x̃ = [x; 1].
    let mut h = Matrix::zeros(d, d);
    let mut xt = vec![0.0; d];
    for x in train.x.iter_rows() {
        xt[..d - 1].copy_from_slice(x);
        xt[d - 1] = 1.0;
        let p = sigmoid(margin(&theta, x));
        let w = p * (1.0 - p);
        for a in 0..d {
            let wa = w * xt[a];
            if wa == 0.0 {
                continue;
            }
            let row = h.row_mut(a);
            for (b, &xb) in xt.iter().enumerate() {
                row[b] += wa * xb;
            }
        }
    }
    for a in 0..d {
        for b in 0..d {
            let v = h.get(a, b) / n as f64;
            h.set(a, b, v);
        }
        let v = h.get(a, a) + config.l2;
        h.set(a, a, v);
    }

    // --- Validation-loss gradient.
    let mut gv = vec![0.0; d];
    for (x, &y) in valid.x.iter_rows().zip(&valid.y) {
        let p = sigmoid(margin(&theta, x));
        let err = p - y as f64;
        for (g, xi) in gv.iter_mut().zip(x) {
            *g += err * xi;
        }
        gv[d - 1] += err;
    }
    for g in &mut gv {
        *g /= valid.len() as f64;
    }

    // --- s = H⁻¹ g_valid (one solve, reused for all points).
    let s = solve(&h, &gv).map_err(|e| ImportanceError::Ml(e.to_string()))?;

    // --- Per-point influence: I(z) = −s · ∇ℓ(z); importance = −I = s · ∇ℓ(z).
    let mut values = Vec::with_capacity(n);
    for (x, &y) in train.x.iter_rows().zip(&train.y) {
        let p = sigmoid(margin(&theta, x));
        let err = p - y as f64;
        // ∇ℓ(z) = err * x̃ (per-example loss gradient, ignoring the shared L2
        // term which is constant across examples).
        let mut dot_sx = 0.0;
        for (si, xi) in s.iter().take(d - 1).zip(x) {
            dot_sx += si * xi;
        }
        dot_sx += s[d - 1];
        // Importance = −I(z) = −(−s·∇ℓ) = s·∇ℓ... with the convention that
        // removing a point changes loss by +I(z)/n; harmful points have
        // s·∇ℓ < 0.
        values.push(err * dot_sx);
    }
    Ok(ImportanceScores::new("influence", values))
}

#[inline]
fn margin(theta: &[f64], x: &[f64]) -> f64 {
    dot(&theta[..x.len()], x) + theta[x.len()]
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;

    fn blobs_with_flips(n: usize, flips: &[usize]) -> (Dataset, Dataset, Vec<usize>) {
        let nd = two_gaussians(n + 60, 2, 4.0, 11);
        let all = Dataset::try_from(&nd).unwrap();
        let mut train = all.subset(&(0..n).collect::<Vec<_>>());
        let valid = all.subset(&(n..n + 60).collect::<Vec<_>>());
        for &f in flips {
            train.y[f] = 1 - train.y[f];
        }
        (train, valid, flips.to_vec())
    }

    #[test]
    fn flipped_labels_get_lowest_influence_importance() {
        let flips = vec![3, 17, 42];
        let (train, valid, truth) = blobs_with_flips(80, &flips);
        let scores = influence_importance(&train, &valid, &InfluenceConfig::default()).unwrap();
        let bottom = scores.bottom_k(3);
        let hits = bottom.iter().filter(|i| truth.contains(i)).count();
        assert!(hits >= 2, "bottom={bottom:?} truth={truth:?}");
    }

    #[test]
    fn clean_data_has_mostly_positive_scores() {
        let (train, valid, _) = blobs_with_flips(60, &[]);
        let scores = influence_importance(&train, &valid, &InfluenceConfig::default()).unwrap();
        let negative = scores.values.iter().filter(|&&v| v < -1e-6).count();
        assert!(
            negative < 30,
            "{negative} strongly negative scores on clean data"
        );
    }

    #[test]
    fn multiclass_rejected() {
        let train =
            Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![0, 1, 2], 3).unwrap();
        let valid = train.clone();
        assert!(matches!(
            influence_importance(&train, &valid, &InfluenceConfig::default()),
            Err(ImportanceError::Unsupported(_))
        ));
    }

    #[test]
    fn deterministic() {
        let (train, valid, _) = blobs_with_flips(40, &[5]);
        let a = influence_importance(&train, &valid, &InfluenceConfig::default()).unwrap();
        let b = influence_importance(&train, &valid, &InfluenceConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
