//! Exact, closed-form KNN-Shapley (Jia et al., VLDB'19).
//!
//! For a K-nearest-neighbor utility, the Shapley value of every training
//! point has a closed form computable in `O(n log n)` per validation point —
//! the efficiency trick highlighted in §2.1 of the paper and the workhorse
//! of the Fig. 2 hands-on demo.

use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_ml::dataset::Dataset;
use nde_ml::linalg::squared_distance;

/// Exact KNN-Shapley values of all training examples with respect to the
/// K-NN utility (probability of the correct label among the K neighbors),
/// averaged over all validation points.
///
/// The per-validation-point recursion (training points sorted by distance,
/// nearest first, 1-indexed):
///
/// ```text
/// s[n]   = 1[y_n = y] / n
/// s[i]   = s[i+1] + (1[y_i = y] − 1[y_{i+1} = y]) / K · min(K, i) / i
/// ```
pub fn knn_shapley(train: &Dataset, valid: &Dataset, k: usize) -> Result<ImportanceScores> {
    if k == 0 {
        return Err(ImportanceError::InvalidArgument("k must be >= 1".into()));
    }
    if train.is_empty() || valid.is_empty() {
        return Err(ImportanceError::InvalidArgument(
            "train and valid must be non-empty".into(),
        ));
    }
    if train.dim() != valid.dim() {
        return Err(ImportanceError::InvalidArgument(format!(
            "dimension mismatch: train {} vs valid {}",
            train.dim(),
            valid.dim()
        )));
    }
    let n = train.len();
    let kf = k as f64;
    let mut totals = vec![0.0; n];
    let mut order: Vec<usize> = (0..n).collect();
    let mut dists: Vec<f64> = vec![0.0; n];
    let mut s = vec![0.0; n];

    for (vx, &vy) in valid.x.iter_rows().zip(&valid.y) {
        for (i, tx) in train.x.iter_rows().enumerate() {
            dists[i] = squared_distance(tx, vx);
        }
        order.sort_by(|&a, &b| {
            dists[a]
                .partial_cmp(&dists[b])
                .expect("finite distances")
                .then(a.cmp(&b))
        });
        // Recursion over the sorted order (position p is 1-indexed as p+1).
        let matches = |p: usize| -> f64 {
            if train.y[order[p]] == vy {
                1.0
            } else {
                0.0
            }
        };
        s[n - 1] = matches(n - 1) / n as f64;
        for p in (0..n - 1).rev() {
            let i = (p + 1) as f64; // 1-indexed position of this element
            s[p] = s[p + 1] + (matches(p) - matches(p + 1)) / kf * kf.min(i) / i;
        }
        for p in 0..n {
            totals[order[p]] += s[p];
        }
    }

    let m = valid.len() as f64;
    let values = totals.into_iter().map(|v| v / m).collect();
    Ok(ImportanceScores::new("knn-shapley", values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley_mc::{tmc_shapley, ShapleyConfig};
    use nde_data::generate::blobs::two_gaussians;
    use nde_ml::models::knn::KnnClassifier;

    fn toy() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1], // mislabelled
            ],
            vec![0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.12], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn efficiency_axiom_exact() {
        // Shapley values must sum to U(D) − U(∅). For the KNN utility used
        // here, U(D) is the mean correct-neighbor fraction and U(∅) = 0.
        let (train, valid) = toy();
        let k = 2;
        let scores = knn_shapley(&train, &valid, k).unwrap();
        let sum: f64 = scores.values.iter().sum();
        // Compute U(D) directly: mean over valid of (#correct among k nn)/k.
        let mut knn = KnnClassifier::new(k);
        use nde_ml::model::Classifier;
        knn.fit(&train).unwrap();
        let mut u = 0.0;
        for (vx, &vy) in valid.x.iter_rows().zip(&valid.y) {
            let nb = knn.neighbors(vx);
            let correct = nb.iter().filter(|&&i| train.y[i] == vy).count();
            u += correct as f64 / k as f64;
        }
        u /= valid.len() as f64;
        assert!((sum - u).abs() < 1e-9, "sum={sum} u={u}");
    }

    #[test]
    fn mislabelled_point_ranked_last() {
        let (train, valid) = toy();
        let scores = knn_shapley(&train, &valid, 1).unwrap();
        assert_eq!(scores.bottom_k(1), vec![4]);
        assert!(scores.values[4] < 0.0);
    }

    #[test]
    fn agrees_with_monte_carlo_on_ranking() {
        // TMC-Shapley with a 1-NN model should produce a similar ranking.
        let (train, valid) = toy();
        let exact = knn_shapley(&train, &valid, 1).unwrap();
        let cfg = ShapleyConfig {
            permutations: 400,
            truncation_tolerance: 0.0,
            seed: 5,
            threads: 1,
        };
        let mc = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let corr = exact.rank_correlation(&mc);
        assert!(corr > 0.6, "rank correlation {corr}");
    }

    #[test]
    fn scales_to_moderate_data() {
        let nd = two_gaussians(600, 4, 4.0, 9);
        let all = Dataset::try_from(&nd).unwrap();
        let train = all.subset(&(0..500).collect::<Vec<_>>());
        let valid = all.subset(&(500..600).collect::<Vec<_>>());
        let scores = knn_shapley(&train, &valid, 5).unwrap();
        assert_eq!(scores.len(), 500);
        assert!(scores.values.iter().all(|v| v.is_finite()));
        // Average value should be positive (data is clean and useful).
        let mean: f64 = scores.values.iter().sum::<f64>() / 500.0;
        assert!(mean > 0.0);
    }

    #[test]
    fn validates_arguments() {
        let (train, valid) = toy();
        assert!(knn_shapley(&train, &valid, 0).is_err());
        let empty = train.subset(&[]);
        assert!(knn_shapley(&empty, &valid, 1).is_err());
        assert!(knn_shapley(&train, &empty, 1).is_err());
        let wrong_dim = Dataset::from_rows(vec![vec![0.0, 1.0]], vec![0], 2).unwrap();
        assert!(knn_shapley(&train, &wrong_dim, 1).is_err());
    }

    #[test]
    fn k_equal_n_still_finite() {
        let (train, valid) = toy();
        let scores = knn_shapley(&train, &valid, train.len()).unwrap();
        assert!(scores.values.iter().all(|v| v.is_finite()));
    }
}
