//! Exact, closed-form KNN-Shapley (Jia et al., VLDB'19).
//!
//! For a K-nearest-neighbor utility, the Shapley value of every training
//! point has a closed form computable in `O(n log n)` per validation point —
//! the efficiency trick highlighted in §2.1 of the paper and the workhorse
//! of the Fig. 2 hands-on demo.

use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_ml::batch::DistanceTable;
use nde_ml::dataset::Dataset;
use nde_robust::par::{CostHint, WorkerFailure, WorkerPool};
use std::sync::atomic::AtomicBool;

/// Validation points are processed in fixed-size chunks whose partial sums
/// are folded in chunk order — the chunking (and therefore the float
/// accumulation tree) is independent of the thread count, so scores are
/// bit-identical for every `threads` value.
const VALID_CHUNK: usize = 32;

/// Per-worker reusable buffers (ordering, recursion values) — allocated
/// once per worker instead of once per validation point. Distances live in
/// the run-wide shared [`DistanceTable`], so workers no longer carry a
/// per-chunk distance buffer.
struct KnnScratch {
    order: Vec<usize>,
    s: Vec<f64>,
}

/// The closed-form KNN-Shapley engine behind the
/// [`knn_shapley()`](crate::run::knn_shapley) entry point: exact values of
/// all training examples with respect to the K-NN utility (probability of
/// the correct label among the K neighbors), averaged over all validation
/// points.
///
/// The per-validation-point recursion (training points sorted by distance,
/// nearest first, 1-indexed):
///
/// ```text
/// s[n]   = 1[y_n = y] / n
/// s[i]   = s[i+1] + (1[y_i = y] − 1[y_{i+1} = y]) / K · min(K, i) / i
/// ```
///
/// The train→valid squared distances are computed **once per run** into a
/// shared [`DistanceTable`] (the same matrix the batched KNN utility
/// scorer uses); worker chunks borrow their rows instead of recomputing
/// distances into per-worker buffers. Per validation point, the distance
/// ordering uses `select_nth_unstable` to split the training points at the
/// k-boundary first and then orders the two partitions — an in-place
/// partial ordering instead of the allocating stable sort, with the
/// identical final order (the comparator is total, ties broken by index).
pub(crate) fn knn_engine(
    train: &Dataset,
    valid: &Dataset,
    k: usize,
    threads: usize,
    pool: &WorkerPool,
) -> Result<ImportanceScores> {
    if k == 0 {
        return Err(ImportanceError::InvalidArgument("k must be >= 1".into()));
    }
    if train.is_empty() || valid.is_empty() {
        return Err(ImportanceError::InvalidArgument(
            "train and valid must be non-empty".into(),
        ));
    }
    if train.dim() != valid.dim() {
        return Err(ImportanceError::InvalidArgument(format!(
            "dimension mismatch: train {} vs valid {}",
            train.dim(),
            valid.dim()
        )));
    }
    let n = train.len();
    let m = valid.len();
    let kf = k as f64;
    let chunks = m.div_ceil(VALID_CHUNK) as u64;
    let stop = AtomicBool::new(false);
    // One chunk ranks every training row for VALID_CHUNK validation points.
    let cost = CostHint::PerItemNanos((VALID_CHUNK * n.max(1)) as u64 * 100);
    // One distance matrix for the whole run, shared read-only by every
    // worker (row floats are exactly `squared_distance`'s, so the ordering
    // is unchanged from the per-chunk computation this replaces).
    let table = DistanceTable::new(train, valid);

    let chunk_totals = pool
        .map_indexed_scratch(
            threads,
            0..chunks,
            &stop,
            cost,
            || KnnScratch {
                order: Vec::with_capacity(n),
                s: vec![0.0; n],
            },
            |scratch, c| {
                let mut totals = vec![0.0; n];
                let start = c as usize * VALID_CHUNK;
                let end = (start + VALID_CHUNK).min(m);
                for v in start..end {
                    let vy = valid.y[v];
                    let dists = table.row(v);
                    let by_distance = |&a: &usize, &b: &usize| {
                        dists[a]
                            .partial_cmp(&dists[b])
                            .expect("finite distances")
                            .then(a.cmp(&b))
                    };
                    scratch.order.clear();
                    scratch.order.extend(0..n);
                    if k < n {
                        // Partition at the k-boundary, then order each side.
                        let (near, _, far) = scratch.order.select_nth_unstable_by(k, by_distance);
                        near.sort_unstable_by(by_distance);
                        far.sort_unstable_by(by_distance);
                    } else {
                        scratch.order.sort_unstable_by(by_distance);
                    }
                    // Recursion over the sorted order (position p is 1-indexed
                    // as p+1).
                    let order = &scratch.order;
                    let matches = |p: usize| -> f64 {
                        if train.y[order[p]] == vy {
                            1.0
                        } else {
                            0.0
                        }
                    };
                    scratch.s[n - 1] = matches(n - 1) / n as f64;
                    for p in (0..n - 1).rev() {
                        let i = (p + 1) as f64; // 1-indexed position
                        scratch.s[p] =
                            scratch.s[p + 1] + (matches(p) - matches(p + 1)) / kf * kf.min(i) / i;
                    }
                    for p in 0..n {
                        totals[order[p]] += scratch.s[p];
                    }
                }
                Ok::<_, ImportanceError>(totals)
            },
        )
        .map_err(|fail| match fail {
            WorkerFailure::Err(_, e) => e,
            WorkerFailure::Panic(_, msg) => ImportanceError::WorkerPanic(msg),
        })?;

    // Fold partial sums in chunk order (schedule-independent).
    let mut totals = vec![0.0; n];
    for (_, chunk) in &chunk_totals {
        for (t, v) in totals.iter_mut().zip(chunk) {
            *t += v;
        }
    }
    let values = totals.into_iter().map(|v| v / m as f64).collect();
    Ok(ImportanceScores::new("knn-shapley", values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{tmc_shapley, ImportanceRun, TmcParams};
    use nde_data::generate::blobs::two_gaussians;
    use nde_ml::models::knn::KnnClassifier;

    // The behavioral suite pins the engine through a thin wrapper matching
    // the removed free functions' signature.
    fn knn_shapley(train: &Dataset, valid: &Dataset, k: usize) -> Result<ImportanceScores> {
        knn_engine(train, valid, k, 1, &WorkerPool::shared())
    }

    fn toy() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1], // mislabelled
            ],
            vec![0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.12], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn efficiency_axiom_exact() {
        // Shapley values must sum to U(D) − U(∅). For the KNN utility used
        // here, U(D) is the mean correct-neighbor fraction and U(∅) = 0.
        let (train, valid) = toy();
        let k = 2;
        let scores = knn_shapley(&train, &valid, k).unwrap();
        let sum: f64 = scores.values.iter().sum();
        // Compute U(D) directly: mean over valid of (#correct among k nn)/k.
        let mut knn = KnnClassifier::new(k);
        use nde_ml::model::Classifier;
        knn.fit(&train).unwrap();
        let mut u = 0.0;
        for (vx, &vy) in valid.x.iter_rows().zip(&valid.y) {
            let nb = knn.neighbors(vx);
            let correct = nb.iter().filter(|&&i| train.y[i] == vy).count();
            u += correct as f64 / k as f64;
        }
        u /= valid.len() as f64;
        assert!((sum - u).abs() < 1e-9, "sum={sum} u={u}");
    }

    #[test]
    fn mislabelled_point_ranked_last() {
        let (train, valid) = toy();
        let scores = knn_shapley(&train, &valid, 1).unwrap();
        assert_eq!(scores.bottom_k(1), vec![4]);
        assert!(scores.values[4] < 0.0);
    }

    #[test]
    fn agrees_with_monte_carlo_on_ranking() {
        // TMC-Shapley with a 1-NN model should produce a similar ranking.
        let (train, valid) = toy();
        let exact = knn_shapley(&train, &valid, 1).unwrap();
        let mc = tmc_shapley(
            &ImportanceRun::new(5),
            &KnnClassifier::new(1),
            &train,
            &valid,
            &TmcParams {
                permutations: 400,
                truncation_tolerance: 0.0,
            },
        )
        .unwrap()
        .scores;
        let corr = exact.rank_correlation(&mc);
        assert!(corr > 0.6, "rank correlation {corr}");
    }

    #[test]
    fn scales_to_moderate_data() {
        let nd = two_gaussians(600, 4, 4.0, 9);
        let all = Dataset::try_from(&nd).unwrap();
        let train = all.subset(&(0..500).collect::<Vec<_>>());
        let valid = all.subset(&(500..600).collect::<Vec<_>>());
        let scores = knn_shapley(&train, &valid, 5).unwrap();
        assert_eq!(scores.len(), 500);
        assert!(scores.values.iter().all(|v| v.is_finite()));
        // Average value should be positive (data is clean and useful).
        let mean: f64 = scores.values.iter().sum::<f64>() / 500.0;
        assert!(mean > 0.0);
    }

    #[test]
    fn validates_arguments() {
        let (train, valid) = toy();
        assert!(knn_shapley(&train, &valid, 0).is_err());
        let empty = train.subset(&[]);
        assert!(knn_shapley(&empty, &valid, 1).is_err());
        assert!(knn_shapley(&train, &empty, 1).is_err());
        let wrong_dim = Dataset::from_rows(vec![vec![0.0, 1.0]], vec![0], 2).unwrap();
        assert!(knn_shapley(&train, &wrong_dim, 1).is_err());
    }

    #[test]
    fn k_equal_n_still_finite() {
        let (train, valid) = toy();
        let scores = knn_shapley(&train, &valid, train.len()).unwrap();
        assert!(scores.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        // More validation points than one chunk, so several chunks race.
        let nd = two_gaussians(300, 3, 3.0, 17);
        let all = Dataset::try_from(&nd).unwrap();
        let train = all.subset(&(0..150).collect::<Vec<_>>());
        let valid = all.subset(&(150..300).collect::<Vec<_>>());
        let seq = knn_shapley(&train, &valid, 5).unwrap();
        for threads in [2, 4, 7] {
            let par = knn_engine(&train, &valid, 5, threads, &WorkerPool::shared()).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }
}
