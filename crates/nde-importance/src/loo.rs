//! Leave-one-out (LOO) importance: the simplest data valuation.

use crate::common::ImportanceScores;
use crate::Result;
use nde_ml::dataset::Dataset;
use nde_ml::model::{utility, Classifier};

/// LOO importance of every training example:
/// `score(i) = U(train) − U(train \ {i})`, where `U` is validation accuracy
/// of a fresh clone of `template` trained on the given subset.
///
/// Positive scores mean the example helps; harmful (e.g. mislabelled)
/// examples get negative scores. Cost: `n + 1` retrainings.
pub fn loo_importance<C: Classifier>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
) -> Result<ImportanceScores> {
    let full = utility(template, train, valid)?;
    let mut values = Vec::with_capacity(train.len());
    for i in 0..train.len() {
        let without = train.without(i);
        let u = if without.is_empty() {
            0.0
        } else {
            utility(template, &without, valid)?
        };
        values.push(full - u);
    }
    Ok(ImportanceScores::new("loo", values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_ml::models::knn::KnnClassifier;

    /// A tiny dataset where one training point is clearly mislabelled.
    fn toy_with_error() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![0.4],
                vec![10.0],
                vec![10.2],
                vec![0.3], // mislabelled: sits in the class-0 cluster
            ],
            vec![0, 0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.26], vec![9.93], vec![10.13]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn mislabelled_point_gets_lowest_score() {
        let (train, valid) = toy_with_error();
        let scores = loo_importance(&KnnClassifier::new(1), &train, &valid).unwrap();
        assert_eq!(scores.len(), 6);
        assert_eq!(scores.bottom_k(1), vec![5]);
        assert!(scores.values[5] < 0.0);
    }

    #[test]
    fn clean_redundant_points_score_near_zero() {
        let (train, valid) = toy_with_error();
        let scores = loo_importance(&KnnClassifier::new(1), &train, &valid).unwrap();
        // Points 0..3 are redundant cluster members; removing one changes little.
        for i in 0..3 {
            assert!(scores.values[i].abs() <= 0.25, "i={i} {:?}", scores.values);
        }
    }

    #[test]
    fn works_with_single_example_train() {
        let train = Dataset::from_rows(vec![vec![0.0], vec![5.0]], vec![0, 1], 2).unwrap();
        let valid = Dataset::from_rows(vec![vec![0.0]], vec![0], 2).unwrap();
        let scores = loo_importance(&KnnClassifier::new(1), &train, &valid).unwrap();
        assert_eq!(scores.len(), 2);
        assert!(scores.values.iter().all(|v| v.is_finite()));
    }
}
