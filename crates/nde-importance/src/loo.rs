//! Leave-one-out (LOO) importance: the simplest data valuation.

use crate::batch::{BatchPolicy, BatchStats, UtilityBatcher};
use crate::common::ImportanceScores;
use crate::Result;
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_robust::par::MemoCache;

/// LOO importance of every training example:
/// `score(i) = U(train) − U(train \ {i})`, where `U` is validation accuracy
/// of a fresh clone of `template` trained on the given subset.
///
/// Positive scores mean the example helps; harmful (e.g. mislabelled)
/// examples get negative scores. Cost: `n + 1` utility evaluations — for
/// utilities with a batched [`nde_ml::batch::CoalitionScorer`] (KNN) all
/// `n + 1` coalitions are scored against one shared distance matrix.
pub fn loo_importance<C: Classifier + Send + Sync>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
) -> Result<ImportanceScores> {
    let (scores, _) = loo_engine(template, train, valid, None, BatchPolicy::default())?;
    Ok(scores)
}

/// The batch-capable LOO engine. All `n + 1` coalitions (the full set plus
/// every leave-one-out subset) are pushed through one [`UtilityBatcher`];
/// scores are bit-identical for every [`BatchPolicy`] because coalition
/// utilities are pure values and the subtraction order is fixed.
pub(crate) fn loo_engine<C: Classifier + Send + Sync>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    cache: Option<&MemoCache>,
    policy: BatchPolicy,
) -> Result<(ImportanceScores, BatchStats)> {
    let n = train.len();
    let batcher = UtilityBatcher::new(template, train, valid, cache, policy);
    let all: Vec<usize> = (0..n).collect();
    let full = batcher.eval_one(&all)?;
    let mut values = Vec::with_capacity(n);
    let mut wave: Vec<Vec<usize>> = Vec::with_capacity(batcher.width());
    let mut start = 0usize;
    while start < n {
        let end = (start + batcher.width()).min(n);
        wave.clear();
        for i in start..end {
            let mut without = all.clone();
            without.remove(i);
            wave.push(without);
        }
        let utilities = batcher.eval_batch(&wave)?;
        values.extend(utilities.into_iter().map(|u| full - u));
        start = end;
    }
    Ok((ImportanceScores::new("loo", values), batcher.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_ml::models::knn::KnnClassifier;

    /// A tiny dataset where one training point is clearly mislabelled.
    fn toy_with_error() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![0.4],
                vec![10.0],
                vec![10.2],
                vec![0.3], // mislabelled: sits in the class-0 cluster
            ],
            vec![0, 0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.26], vec![9.93], vec![10.13]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn mislabelled_point_gets_lowest_score() {
        let (train, valid) = toy_with_error();
        let scores = loo_importance(&KnnClassifier::new(1), &train, &valid).unwrap();
        assert_eq!(scores.len(), 6);
        assert_eq!(scores.bottom_k(1), vec![5]);
        assert!(scores.values[5] < 0.0);
    }

    #[test]
    fn clean_redundant_points_score_near_zero() {
        let (train, valid) = toy_with_error();
        let scores = loo_importance(&KnnClassifier::new(1), &train, &valid).unwrap();
        // Points 0..3 are redundant cluster members; removing one changes little.
        for i in 0..3 {
            assert!(scores.values[i].abs() <= 0.25, "i={i} {:?}", scores.values);
        }
    }

    #[test]
    fn works_with_single_example_train() {
        let train = Dataset::from_rows(vec![vec![0.0], vec![5.0]], vec![0, 1], 2).unwrap();
        let valid = Dataset::from_rows(vec![vec![0.0]], vec![0], 2).unwrap();
        let scores = loo_importance(&KnnClassifier::new(1), &train, &valid).unwrap();
        assert_eq!(scores.len(), 2);
        assert!(scores.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn batched_matches_unbatched_bit_for_bit() {
        let (train, valid) = toy_with_error();
        let knn = KnnClassifier::new(1);
        let (plain, _) = loo_engine(&knn, &train, &valid, None, BatchPolicy::Unbatched).unwrap();
        for size in [1, 2, 4, 100] {
            let (batched, stats) =
                loo_engine(&knn, &train, &valid, None, BatchPolicy::Grouped { size }).unwrap();
            assert_eq!(plain, batched, "size={size}");
            assert!(stats.batched_evals > 0);
            // n + 1 coalitions, all non-empty here.
            assert_eq!(stats.evals(), 7);
        }
    }
}
