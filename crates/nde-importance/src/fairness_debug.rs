//! Gopher-style fairness debugging (Pradhan, Zhu, Glavic & Salimi,
//! SIGMOD'22): *interpretable, data-based explanations* for fairness
//! violations.
//!
//! Instead of scoring individual tuples, Gopher searches for **predicates**
//! over the training table (e.g. `annotator = c AND degree = phd`) whose
//! matching subset, when removed, most reduces a group-fairness violation of
//! the retrained model. The output is a ranked list of human-readable
//! explanations — "this slice of your data is responsible for the bias".

use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_data::{DataType, Table, Value};
use nde_ml::dataset::Dataset;
use nde_ml::metrics::equalized_odds;
use nde_ml::model::Classifier;

/// One equality condition of a pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Table column the condition tests.
    pub column: String,
    /// Value the column must equal (numeric columns are bucketed to
    /// `Bool`: above/below median, encoded as `Value::Bool`).
    pub value: Value,
}

impl Condition {
    fn describe(&self) -> String {
        format!("{} = {}", self.column, self.value)
    }
}

/// A conjunctive pattern over the training table.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// All conditions must hold (conjunction).
    pub conditions: Vec<Condition>,
}

impl Pattern {
    /// Human-readable rendering, e.g. `degree = phd AND sector = tech`.
    pub fn describe(&self) -> String {
        self.conditions
            .iter()
            .map(Condition::describe)
            .collect::<Vec<_>>()
            .join(" AND ")
    }
}

/// One ranked explanation: a pattern and its effect on the violation.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The responsible data slice.
    pub pattern: Pattern,
    /// Number of training rows the pattern matches.
    pub support: usize,
    /// Fairness violation (1 − equalized-odds score) with all data.
    pub violation_before: f64,
    /// Violation after removing the matching rows and retraining.
    pub violation_after: f64,
}

impl Explanation {
    /// Improvement from removing the slice (positive = fairer).
    pub fn improvement(&self) -> f64 {
        self.violation_before - self.violation_after
    }
}

/// Configuration of the pattern search.
#[derive(Debug, Clone)]
pub struct FairnessDebugConfig {
    /// Columns of the table to build conditions from (categorical strings,
    /// booleans, or numerics — numerics are bucketed at their median).
    pub pattern_columns: Vec<String>,
    /// Maximum conditions per pattern (1 = single conditions, 2 = pairs).
    pub max_conditions: usize,
    /// Minimum matching rows for a pattern to be considered.
    pub min_support: usize,
    /// Maximum fraction of the training data a pattern may cover.
    pub max_support_fraction: f64,
    /// How many top explanations to return.
    pub top_k: usize,
}

impl Default for FairnessDebugConfig {
    fn default() -> Self {
        FairnessDebugConfig {
            pattern_columns: Vec::new(),
            max_conditions: 2,
            min_support: 3,
            max_support_fraction: 0.5,
            top_k: 5,
        }
    }
}

/// Find the training-data slices most responsible for an equalized-odds
/// violation.
///
/// * `table` — the raw training table patterns are built over;
/// * `train` — the encoded dataset, **row-aligned** with `table`;
/// * `valid`, `valid_groups` — labeled evaluation data with sensitive-group
///   assignments, on which the violation is measured.
pub fn fairness_explanations<C: Classifier>(
    template: &C,
    table: &Table,
    train: &Dataset,
    valid: &Dataset,
    valid_groups: &[usize],
    config: &FairnessDebugConfig,
) -> Result<Vec<Explanation>> {
    if table.n_rows() != train.len() {
        return Err(ImportanceError::InvalidArgument(format!(
            "table has {} rows but dataset has {}",
            table.n_rows(),
            train.len()
        )));
    }
    if config.pattern_columns.is_empty() {
        return Err(ImportanceError::InvalidArgument(
            "no pattern columns configured".into(),
        ));
    }
    if !(1..=2).contains(&config.max_conditions) {
        return Err(ImportanceError::InvalidArgument(
            "max_conditions must be 1 or 2".into(),
        ));
    }

    let violation = |data: &Dataset| -> Result<f64> {
        let mut model = template.clone();
        model.fit(data)?;
        let preds: Vec<usize> = valid.x.iter_rows().map(|r| model.predict_one(r)).collect();
        Ok(1.0 - equalized_odds(&valid.y, &preds, valid_groups)?)
    };
    let violation_before = violation(train)?;

    // Candidate single conditions with their matching row sets.
    let singles = candidate_conditions(table, &config.pattern_columns)?;

    // Enumerate patterns: singles, then pairs of compatible singles.
    let n = table.n_rows();
    let max_rows = (n as f64 * config.max_support_fraction) as usize;
    let mut explanations: Vec<Explanation> = Vec::new();
    let mut consider = |conditions: Vec<Condition>, rows: Vec<usize>| -> Result<()> {
        if rows.len() < config.min_support || rows.len() > max_rows {
            return Ok(());
        }
        let keep: Vec<usize> = (0..n).filter(|i| !rows.contains(i)).collect();
        let violation_after = violation(&train.subset(&keep))?;
        explanations.push(Explanation {
            pattern: Pattern { conditions },
            support: rows.len(),
            violation_before,
            violation_after,
        });
        Ok(())
    };

    for (cond, rows) in &singles {
        consider(vec![cond.clone()], rows.clone())?;
    }
    if config.max_conditions >= 2 {
        for i in 0..singles.len() {
            for j in i + 1..singles.len() {
                let (ca, ra) = &singles[i];
                let (cb, rb) = &singles[j];
                if ca.column == cb.column {
                    continue; // same-column equality conjunction is empty
                }
                let rb_set: std::collections::HashSet<usize> = rb.iter().copied().collect();
                let rows: Vec<usize> = ra.iter().copied().filter(|r| rb_set.contains(r)).collect();
                consider(vec![ca.clone(), cb.clone()], rows)?;
            }
        }
    }

    explanations.sort_by(|a, b| {
        b.improvement()
            .partial_cmp(&a.improvement())
            .expect("finite improvements")
            .then(a.support.cmp(&b.support))
    });
    explanations.truncate(config.top_k);
    Ok(explanations)
}

/// All single equality conditions over the chosen columns, with row sets.
fn candidate_conditions(table: &Table, columns: &[String]) -> Result<Vec<(Condition, Vec<usize>)>> {
    let mut out = Vec::new();
    for col_name in columns {
        let field = table.schema().field(col_name)?;
        match field.dtype {
            DataType::Str | DataType::Bool | DataType::Int => {
                for (value, _) in table.value_counts(col_name)? {
                    if value.is_null() {
                        continue;
                    }
                    let rows: Vec<usize> = (0..table.n_rows())
                        .filter(|&r| {
                            table
                                .get(r, col_name)
                                .map(|v| {
                                    v.total_cmp(&value) == std::cmp::Ordering::Equal
                                        && v.data_type() == value.data_type()
                                })
                                .unwrap_or(false)
                        })
                        .collect();
                    out.push((
                        Condition {
                            column: col_name.clone(),
                            value,
                        },
                        rows,
                    ));
                }
            }
            DataType::Float => {
                // Bucket numerics at the median: two boolean conditions.
                let values = table.column(col_name)?.to_f64_vec();
                let mut present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
                if present.is_empty() {
                    continue;
                }
                present.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let median = present[present.len() / 2];
                for above in [true, false] {
                    let rows: Vec<usize> = values
                        .iter()
                        .enumerate()
                        .filter_map(|(r, v)| v.and_then(|x| ((x > median) == above).then_some(r)))
                        .collect();
                    out.push((
                        Condition {
                            column: format!("{col_name} > median"),
                            value: Value::Bool(above),
                        },
                        rows,
                    ));
                }
            }
        }
    }
    Ok(out)
}

/// Distribute an explanation's improvement over its member tuples — lets the
/// Gopher view interoperate with per-tuple rankers and cleaning strategies.
#[allow(clippy::needless_range_loop)] // membership recomputed per table row
pub fn explanation_scores(
    table_rows: usize,
    explanations: &[Explanation],
    table: &Table,
) -> ImportanceScores {
    let mut values = vec![0.0; table_rows];
    for e in explanations {
        // Recompute membership from the pattern (equality conditions only).
        for r in 0..table_rows {
            let matches = e.pattern.conditions.iter().all(|c| {
                if let Ok(v) = table.get(r, &c.column) {
                    v.total_cmp(&c.value) == std::cmp::Ordering::Equal
                        && v.data_type() == c.value.data_type()
                } else {
                    false
                }
            });
            if matches && e.support > 0 {
                // Harmful slices (positive improvement on removal) push
                // their members' scores down.
                values[r] -= e.improvement() / e.support as f64;
            }
        }
    }
    ImportanceScores::new("gopher", values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::{Field, Schema};
    use nde_ml::models::knn::KnnClassifier;

    /// Two sensitive groups at feature ranges [0,10] and [20,30]; training
    /// rows annotated by `annotator`; annotator "c" systematically flips
    /// group-1 labels, creating an equalized-odds violation.
    fn biased_scenario() -> (Table, Dataset, Dataset, Vec<usize>) {
        let mut table = Table::empty(
            "train",
            Schema::new(vec![
                Field::new("annotator", DataType::Str),
                Field::new("batch", DataType::Int),
            ])
            .unwrap(),
        );
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        // 48 training points: 24 per group, half per class.
        for i in 0..48 {
            let group = i % 2; // 0 or 1
            let class = (i / 2) % 2;
            let base = group as f64 * 20.0 + class as f64 * 10.0;
            let x = base + (i as f64 * 0.13) % 2.0;
            let annotator = match i % 3 {
                0 => "a",
                1 => "b",
                _ => "c",
            };
            let mut label = class;
            if annotator == "c" && group == 1 {
                label = 1 - label; // the biased annotator
            }
            table
                .push_row(vec![annotator.into(), ((i / 12) as i64).into()])
                .unwrap();
            rows.push(vec![x]);
            labels.push(label);
        }
        let train = Dataset::from_rows(rows, labels, 2).unwrap();

        // Clean validation data with group assignments.
        let mut vx = Vec::new();
        let mut vy = Vec::new();
        let mut groups = Vec::new();
        for i in 0..40 {
            let group = i % 2;
            let class = (i / 2) % 2;
            let base = group as f64 * 20.0 + class as f64 * 10.0;
            vx.push(vec![base + 0.5 + (i as f64 * 0.07) % 1.0]);
            vy.push(class);
            groups.push(group);
        }
        let valid = Dataset::from_rows(vx, vy, 2).unwrap();
        (table, train, valid, groups)
    }

    #[test]
    fn finds_the_biased_annotator() {
        let (table, train, valid, groups) = biased_scenario();
        let cfg = FairnessDebugConfig {
            pattern_columns: vec!["annotator".into(), "batch".into()],
            max_conditions: 1,
            min_support: 3,
            max_support_fraction: 0.5,
            top_k: 3,
        };
        let explanations = fairness_explanations(
            &KnnClassifier::new(1),
            &table,
            &train,
            &valid,
            &groups,
            &cfg,
        )
        .unwrap();
        assert!(!explanations.is_empty());
        let top = &explanations[0];
        assert!(
            top.violation_before > 0.2,
            "no violation to explain: {top:?}"
        );
        assert_eq!(top.pattern.describe(), "annotator = c");
        assert!(top.improvement() > 0.2, "{top:?}");
        assert!(top.violation_after < top.violation_before);
    }

    #[test]
    fn pairs_are_searched_and_described() {
        let (table, train, valid, groups) = biased_scenario();
        let cfg = FairnessDebugConfig {
            pattern_columns: vec!["annotator".into(), "batch".into()],
            max_conditions: 2,
            min_support: 2,
            max_support_fraction: 0.5,
            top_k: 10,
        };
        let explanations = fairness_explanations(
            &KnnClassifier::new(1),
            &table,
            &train,
            &valid,
            &groups,
            &cfg,
        )
        .unwrap();
        assert!(explanations.iter().any(|e| e.pattern.conditions.len() == 2));
        let pair = explanations
            .iter()
            .find(|e| e.pattern.conditions.len() == 2)
            .unwrap();
        assert!(pair.pattern.describe().contains(" AND "));
        // The single-condition "annotator = c" should still be on top (or
        // tied with a pair subsuming most of it).
        assert!(explanations[0].improvement() >= pair.improvement() - 1e-9);
    }

    #[test]
    fn scores_push_members_down() {
        let (table, train, valid, groups) = biased_scenario();
        let cfg = FairnessDebugConfig {
            pattern_columns: vec!["annotator".into()],
            max_conditions: 1,
            min_support: 3,
            max_support_fraction: 0.5,
            top_k: 1,
        };
        let explanations = fairness_explanations(
            &KnnClassifier::new(1),
            &table,
            &train,
            &valid,
            &groups,
            &cfg,
        )
        .unwrap();
        let scores = explanation_scores(train.len(), &explanations, &table);
        // The bottom-ranked tuples are exactly annotator-c rows.
        let bottom = scores.bottom_k(5);
        for &r in &bottom {
            assert_eq!(
                table.get(r, "annotator").unwrap(),
                Value::Str("c".into()),
                "non-member ranked among the worst"
            );
        }
    }

    #[test]
    fn validates_arguments() {
        let (table, train, valid, groups) = biased_scenario();
        let knn = KnnClassifier::new(1);
        let mut cfg = FairnessDebugConfig {
            pattern_columns: vec![],
            ..Default::default()
        };
        assert!(fairness_explanations(&knn, &table, &train, &valid, &groups, &cfg).is_err());
        cfg.pattern_columns = vec!["annotator".into()];
        cfg.max_conditions = 3;
        assert!(fairness_explanations(&knn, &table, &train, &valid, &groups, &cfg).is_err());
        cfg.max_conditions = 1;
        let short = train.subset(&[0, 1]);
        assert!(fairness_explanations(&knn, &table, &short, &valid, &groups, &cfg).is_err());
    }
}
