//! Resumable snapshots for the non-TMC Monte-Carlo estimators.
//!
//! [`McCheckpoint`] covers the permutation-walk
//! state of TMC-Shapley; Banzhaf MSR and Beta Shapley accumulate different
//! partial state (subset-sample sums, per-point values). These types give
//! them the same durable form: a validated struct that converts to and from
//! a [`Json`] payload so every estimator checkpoints through the same
//! [`RunStore`](nde_robust::RunStore) records.
//!
//! All float fields round-trip bit-identically (shortest-round-trip
//! serialization via [`nde_data::json`]) and are rejected when non-finite —
//! the same hardening contract as `McCheckpoint`: a `1e999` smuggled into a
//! running sum must fail parsing, never poison a resumed fold.

use crate::banzhaf::BanzhafConfig;
use crate::beta_shapley::BetaShapleyConfig;
use crate::{ImportanceError, Result};
use nde_data::json::{Json, ToJson};
use nde_robust::McCheckpoint;

fn field<'a>(doc: &'a Json, name: &str) -> Result<&'a Json> {
    doc.get(name)
        .ok_or_else(|| ImportanceError::Checkpoint(format!("missing field `{name}`")))
}

fn uint(doc: &Json, name: &str) -> Result<u64> {
    field(doc, name)?
        .as_u64()
        .ok_or_else(|| ImportanceError::Checkpoint(format!("`{name}` is not an integer")))
}

fn finite(doc: &Json, name: &str) -> Result<f64> {
    let v = field(doc, name)?
        .as_f64()
        .ok_or_else(|| ImportanceError::Checkpoint(format!("`{name}` is not a number")))?;
    if !v.is_finite() {
        return Err(ImportanceError::Checkpoint(format!(
            "`{name}` is not a finite number"
        )));
    }
    Ok(v)
}

fn finite_vec(doc: &Json, name: &str) -> Result<Vec<f64>> {
    let arr = field(doc, name)?
        .as_arr()
        .ok_or_else(|| ImportanceError::Checkpoint(format!("`{name}` is not an array")))?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, v) in arr.iter().enumerate() {
        let v = v
            .as_f64()
            .ok_or_else(|| ImportanceError::Checkpoint(format!("`{name}[{i}]` is not a number")))?;
        if !v.is_finite() {
            return Err(ImportanceError::Checkpoint(format!(
                "`{name}[{i}]` is not a finite number"
            )));
        }
        out.push(v);
    }
    Ok(out)
}

fn uint_vec(doc: &Json, name: &str) -> Result<Vec<u64>> {
    field(doc, name)?
        .as_arr()
        .ok_or_else(|| ImportanceError::Checkpoint(format!("`{name}` is not an array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| ImportanceError::Checkpoint(format!("`{name}` holds a non-integer")))
        })
        .collect()
}

fn check_method(doc: &Json, expected: &str) -> Result<()> {
    let method = field(doc, "method")?
        .as_str()
        .ok_or_else(|| ImportanceError::Checkpoint("`method` is not a string".into()))?;
    if method != expected {
        return Err(ImportanceError::Checkpoint(format!(
            "snapshot written by `{method}`, expected `{expected}`"
        )));
    }
    Ok(())
}

/// Partial state of a Banzhaf MSR estimation: subset samples `0..cursor`
/// folded into the conditional sums. Resume continues the fold at `cursor`,
/// so an interrupted run is **bit-identical** to an uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct BanzhafCheckpoint {
    /// Base seed; sample `s` draws from `child_seed(seed, s)`.
    pub seed: u64,
    /// Number of scored training examples.
    pub n: usize,
    /// Configured total subset samples.
    pub samples: u64,
    /// Next subset-sample index to fold.
    pub cursor: u64,
    /// Cumulative logical utility calls across all segments.
    pub utility_calls: u64,
    /// Sum of `U(S)` over samples containing each point.
    pub with_sum: Vec<f64>,
    /// Number of samples containing each point.
    pub with_count: Vec<u64>,
    /// Sum of `U(S)` over samples excluding each point.
    pub without_sum: Vec<f64>,
    /// Number of samples excluding each point.
    pub without_count: Vec<u64>,
}

impl BanzhafCheckpoint {
    /// A zeroed snapshot at sample 0 for this run shape.
    pub fn fresh(config: &BanzhafConfig, n: usize) -> BanzhafCheckpoint {
        BanzhafCheckpoint {
            seed: config.seed,
            n,
            samples: config.samples as u64,
            cursor: 0,
            utility_calls: 0,
            with_sum: vec![0.0; n],
            with_count: vec![0; n],
            without_sum: vec![0.0; n],
            without_count: vec![0; n],
        }
    }

    /// Internal consistency: vector lengths, cursor bounds, finite floats,
    /// and per-point counts summing to the cursor.
    pub fn validate(&self) -> Result<()> {
        let lens = [
            self.with_sum.len(),
            self.with_count.len(),
            self.without_sum.len(),
            self.without_count.len(),
        ];
        if lens.iter().any(|&l| l != self.n) {
            return Err(ImportanceError::Checkpoint(format!(
                "snapshot claims n={} but holds sum/count vectors of lengths {lens:?}",
                self.n
            )));
        }
        if self.cursor > self.samples {
            return Err(ImportanceError::Checkpoint(format!(
                "cursor {} exceeds configured samples {}",
                self.cursor, self.samples
            )));
        }
        for (name, values) in [
            ("with_sum", &self.with_sum),
            ("without_sum", &self.without_sum),
        ] {
            if let Some(i) = values.iter().position(|v| !v.is_finite()) {
                return Err(ImportanceError::Checkpoint(format!(
                    "`{name}[{i}]` is not a finite number"
                )));
            }
        }
        for i in 0..self.n {
            if self.with_count[i] + self.without_count[i] != self.cursor {
                return Err(ImportanceError::Checkpoint(format!(
                    "point {i} counts {} + {} do not sum to cursor {}",
                    self.with_count[i], self.without_count[i], self.cursor
                )));
            }
        }
        Ok(())
    }

    /// Reject a snapshot that was written by a differently-shaped run.
    pub fn validate_against(&self, config: &BanzhafConfig, n: usize) -> Result<()> {
        self.validate()?;
        if self.seed != config.seed || self.samples != config.samples as u64 || self.n != n {
            return Err(ImportanceError::Checkpoint(format!(
                "snapshot (seed={}, samples={}, n={}) does not match run \
                 (seed={}, samples={}, n={n})",
                self.seed, self.samples, self.n, config.seed, config.samples
            )));
        }
        Ok(())
    }

    /// Best-so-far Banzhaf values from the folded samples:
    /// `mean(U | i ∈ S) − mean(U | i ∉ S)` (0 for an unseen side).
    pub fn values(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| {
                let w = if self.with_count[i] > 0 {
                    self.with_sum[i] / self.with_count[i] as f64
                } else {
                    0.0
                };
                let wo = if self.without_count[i] > 0 {
                    self.without_sum[i] / self.without_count[i] as f64
                } else {
                    0.0
                };
                w - wo
            })
            .collect()
    }

    /// The snapshot as a durable-store payload.
    pub fn to_payload(&self) -> Json {
        Json::Obj(vec![
            ("method".into(), Json::Str("banzhaf".into())),
            ("seed".into(), Json::UInt(self.seed)),
            ("n".into(), Json::UInt(self.n as u64)),
            ("samples".into(), Json::UInt(self.samples)),
            ("cursor".into(), Json::UInt(self.cursor)),
            ("utility_calls".into(), Json::UInt(self.utility_calls)),
            ("with_sum".into(), self.with_sum.to_json()),
            (
                "with_count".into(),
                Json::Arr(self.with_count.iter().map(|&c| Json::UInt(c)).collect()),
            ),
            ("without_sum".into(), self.without_sum.to_json()),
            (
                "without_count".into(),
                Json::Arr(self.without_count.iter().map(|&c| Json::UInt(c)).collect()),
            ),
        ])
    }

    /// Reconstruct and validate a snapshot from a durable-store payload.
    pub fn from_payload(doc: &Json) -> Result<BanzhafCheckpoint> {
        check_method(doc, "banzhaf")?;
        let ckpt = BanzhafCheckpoint {
            seed: uint(doc, "seed")?,
            n: uint(doc, "n")? as usize,
            samples: uint(doc, "samples")?,
            cursor: uint(doc, "cursor")?,
            utility_calls: uint(doc, "utility_calls")?,
            with_sum: finite_vec(doc, "with_sum")?,
            with_count: uint_vec(doc, "with_count")?,
            without_sum: finite_vec(doc, "without_sum")?,
            without_count: uint_vec(doc, "without_count")?,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }
}

/// Partial state of a Beta Shapley estimation: points `0..cursor` fully
/// scored (each point's samples are an independent RNG stream, so resume is
/// point-granular and **bit-identical**). Values of unscored points are 0.
#[derive(Debug, Clone, PartialEq)]
pub struct BetaShapleyCheckpoint {
    /// Beta α parameter of the run that wrote the snapshot.
    pub alpha: f64,
    /// Beta β parameter of the run that wrote the snapshot.
    pub beta: f64,
    /// Configured Monte-Carlo samples per point.
    pub samples_per_point: u64,
    /// Base seed; point `i` draws from `child_seed(seed, i)`.
    pub seed: u64,
    /// Number of scored training examples.
    pub n: usize,
    /// Next point index to score.
    pub cursor: u64,
    /// Cumulative logical utility calls across all segments.
    pub utility_calls: u64,
    /// Per-point values (0 for points at or beyond `cursor`).
    pub values: Vec<f64>,
}

impl BetaShapleyCheckpoint {
    /// A zeroed snapshot at point 0 for this run shape.
    pub fn fresh(config: &BetaShapleyConfig, n: usize) -> BetaShapleyCheckpoint {
        BetaShapleyCheckpoint {
            alpha: config.alpha,
            beta: config.beta,
            samples_per_point: config.samples_per_point as u64,
            seed: config.seed,
            n,
            cursor: 0,
            utility_calls: 0,
            values: vec![0.0; n],
        }
    }

    /// Internal consistency: vector length, cursor bounds, finite floats.
    pub fn validate(&self) -> Result<()> {
        if self.values.len() != self.n {
            return Err(ImportanceError::Checkpoint(format!(
                "snapshot claims n={} but holds {} values",
                self.n,
                self.values.len()
            )));
        }
        if self.cursor as usize > self.n {
            return Err(ImportanceError::Checkpoint(format!(
                "cursor {} exceeds n={}",
                self.cursor, self.n
            )));
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0 && self.beta.is_finite() && self.beta > 0.0)
        {
            return Err(ImportanceError::Checkpoint(format!(
                "alpha={} / beta={} outside (0, ∞)",
                self.alpha, self.beta
            )));
        }
        if let Some(i) = self.values.iter().position(|v| !v.is_finite()) {
            return Err(ImportanceError::Checkpoint(format!(
                "`values[{i}]` is not a finite number"
            )));
        }
        Ok(())
    }

    /// Reject a snapshot that was written by a differently-shaped run.
    /// α/β are compared bit-exactly: any difference changes the size
    /// distribution and therefore every RNG draw.
    pub fn validate_against(&self, config: &BetaShapleyConfig, n: usize) -> Result<()> {
        self.validate()?;
        if self.seed != config.seed
            || self.samples_per_point != config.samples_per_point as u64
            || self.n != n
            || self.alpha.to_bits() != config.alpha.to_bits()
            || self.beta.to_bits() != config.beta.to_bits()
        {
            return Err(ImportanceError::Checkpoint(format!(
                "snapshot (seed={}, spp={}, n={}, alpha={}, beta={}) does not match run \
                 (seed={}, spp={}, n={n}, alpha={}, beta={})",
                self.seed,
                self.samples_per_point,
                self.n,
                self.alpha,
                self.beta,
                config.seed,
                config.samples_per_point,
                config.alpha,
                config.beta
            )));
        }
        Ok(())
    }

    /// The snapshot as a durable-store payload.
    pub fn to_payload(&self) -> Json {
        Json::Obj(vec![
            ("method".into(), Json::Str("beta-shapley".into())),
            ("alpha".into(), self.alpha.to_json()),
            ("beta".into(), self.beta.to_json()),
            (
                "samples_per_point".into(),
                Json::UInt(self.samples_per_point),
            ),
            ("seed".into(), Json::UInt(self.seed)),
            ("n".into(), Json::UInt(self.n as u64)),
            ("cursor".into(), Json::UInt(self.cursor)),
            ("utility_calls".into(), Json::UInt(self.utility_calls)),
            ("values".into(), self.values.to_json()),
        ])
    }

    /// Reconstruct and validate a snapshot from a durable-store payload.
    pub fn from_payload(doc: &Json) -> Result<BetaShapleyCheckpoint> {
        check_method(doc, "beta-shapley")?;
        let ckpt = BetaShapleyCheckpoint {
            alpha: finite(doc, "alpha")?,
            beta: finite(doc, "beta")?,
            samples_per_point: uint(doc, "samples_per_point")?,
            seed: uint(doc, "seed")?,
            n: uint(doc, "n")? as usize,
            cursor: uint(doc, "cursor")?,
            utility_calls: uint(doc, "utility_calls")?,
            values: finite_vec(doc, "values")?,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }
}

/// A snapshot from any of the resumable Monte-Carlo estimators — the
/// method-erased form the run API and durable store traffic in. The
/// `method` tag inside each payload selects the variant on parse, so a
/// record can never be resumed into the wrong estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorCheckpoint {
    /// TMC-Shapley permutation-walk state.
    Tmc(McCheckpoint),
    /// Banzhaf MSR conditional-sum state.
    Banzhaf(BanzhafCheckpoint),
    /// Beta Shapley per-point state.
    BetaShapley(BetaShapleyCheckpoint),
}

impl EstimatorCheckpoint {
    /// The method tag carried in the payload.
    pub fn method(&self) -> &'static str {
        match self {
            EstimatorCheckpoint::Tmc(_) => "tmc-shapley",
            EstimatorCheckpoint::Banzhaf(_) => "banzhaf",
            EstimatorCheckpoint::BetaShapley(_) => "beta-shapley",
        }
    }

    /// Monotone progress step (the estimator's cursor).
    pub fn step(&self) -> u64 {
        match self {
            EstimatorCheckpoint::Tmc(c) => c.cursor,
            EstimatorCheckpoint::Banzhaf(c) => c.cursor,
            EstimatorCheckpoint::BetaShapley(c) => c.cursor,
        }
    }

    /// Cumulative logical utility calls recorded by the snapshot.
    pub fn utility_calls(&self) -> u64 {
        match self {
            EstimatorCheckpoint::Tmc(c) => c.utility_calls,
            EstimatorCheckpoint::Banzhaf(c) => c.utility_calls,
            EstimatorCheckpoint::BetaShapley(c) => c.utility_calls,
        }
    }

    /// The snapshot as a durable-store payload.
    pub fn to_payload(&self) -> Json {
        match self {
            EstimatorCheckpoint::Tmc(c) => c.to_payload(),
            EstimatorCheckpoint::Banzhaf(c) => c.to_payload(),
            EstimatorCheckpoint::BetaShapley(c) => c.to_payload(),
        }
    }

    /// Reconstruct from a durable-store payload, dispatching on the
    /// payload's `method` tag.
    pub fn from_payload(doc: &Json) -> Result<EstimatorCheckpoint> {
        let method = field(doc, "method")?
            .as_str()
            .ok_or_else(|| ImportanceError::Checkpoint("`method` is not a string".into()))?;
        match method {
            "tmc-shapley" => Ok(EstimatorCheckpoint::Tmc(McCheckpoint::from_payload(doc)?)),
            "banzhaf" => Ok(EstimatorCheckpoint::Banzhaf(
                BanzhafCheckpoint::from_payload(doc)?,
            )),
            "beta-shapley" => Ok(EstimatorCheckpoint::BetaShapley(
                BetaShapleyCheckpoint::from_payload(doc)?,
            )),
            other => Err(ImportanceError::Checkpoint(format!(
                "unknown estimator snapshot method `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banzhaf_sample() -> BanzhafCheckpoint {
        BanzhafCheckpoint {
            seed: u64::MAX - 1,
            n: 3,
            samples: 10,
            cursor: 4,
            utility_calls: 7,
            with_sum: vec![0.1 + 0.2, -1.5e-13, 0.625],
            with_count: vec![2, 1, 3],
            without_sum: vec![0.5, 1.0 / 3.0, -0.25],
            without_count: vec![2, 3, 1],
        }
    }

    fn beta_sample() -> BetaShapleyCheckpoint {
        BetaShapleyCheckpoint {
            alpha: 1.0,
            beta: 16.0,
            samples_per_point: 30,
            seed: 11,
            n: 4,
            cursor: 2,
            utility_calls: 120,
            values: vec![0.1 + 0.2, -0.125, 0.0, 0.0],
        }
    }

    #[test]
    fn banzhaf_payload_roundtrip_is_bit_identical() {
        let ckpt = banzhaf_sample();
        let text = ckpt.to_payload().to_string_pretty();
        let back = BanzhafCheckpoint::from_payload(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ckpt);
        for (a, b) in ckpt.with_sum.iter().zip(&back.with_sum) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn beta_payload_roundtrip_is_bit_identical() {
        let ckpt = beta_sample();
        let text = ckpt.to_payload().to_string_pretty();
        let back = BetaShapleyCheckpoint::from_payload(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ckpt);
        for (a, b) in ckpt.values.iter().zip(&back.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn method_tags_are_enforced() {
        let banzhaf = banzhaf_sample().to_payload();
        assert!(matches!(
            BetaShapleyCheckpoint::from_payload(&banzhaf),
            Err(ImportanceError::Checkpoint(_))
        ));
        let beta = beta_sample().to_payload();
        assert!(matches!(
            BanzhafCheckpoint::from_payload(&beta),
            Err(ImportanceError::Checkpoint(_))
        ));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Torn text, non-finite floats, inconsistent counts: all rejected.
        let text = banzhaf_sample().to_payload().to_string_pretty();
        for cut in 0..text.len() {
            assert!(Json::parse(&text[..cut])
                .map(|doc| BanzhafCheckpoint::from_payload(&doc))
                .map_or(true, |r| r.is_err()));
        }
        let inf = text.replacen("0.30000000000000004", "1e999", 1);
        assert_ne!(inf, text);
        assert!(BanzhafCheckpoint::from_payload(&Json::parse(&inf).unwrap()).is_err());
        let mut bad = banzhaf_sample();
        bad.with_count[0] += 1;
        assert!(bad.validate().is_err());
        let mut bad = beta_sample();
        bad.values[1] = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = beta_sample();
        bad.cursor = 99;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn estimator_checkpoint_dispatches_on_method_tag() {
        let tmc = McCheckpoint::fresh("tmc-shapley", 5, 3);
        for ckpt in [
            EstimatorCheckpoint::Tmc(tmc),
            EstimatorCheckpoint::Banzhaf(banzhaf_sample()),
            EstimatorCheckpoint::BetaShapley(beta_sample()),
        ] {
            let back = EstimatorCheckpoint::from_payload(&ckpt.to_payload()).unwrap();
            assert_eq!(back, ckpt);
            assert_eq!(back.method(), ckpt.method());
        }
        let unknown = Json::Obj(vec![("method".into(), Json::Str("zorro".into()))]);
        assert!(matches!(
            EstimatorCheckpoint::from_payload(&unknown),
            Err(ImportanceError::Checkpoint(_))
        ));
    }

    #[test]
    fn shape_mismatches_are_rejected_on_resume() {
        let cfg = BanzhafConfig {
            samples: 10,
            seed: u64::MAX - 1,
            threads: 1,
        };
        assert!(banzhaf_sample().validate_against(&cfg, 3).is_ok());
        assert!(banzhaf_sample().validate_against(&cfg, 4).is_err());
        let other = BanzhafConfig { seed: 0, ..cfg };
        assert!(banzhaf_sample().validate_against(&other, 3).is_err());

        let cfg = BetaShapleyConfig {
            alpha: 1.0,
            beta: 16.0,
            samples_per_point: 30,
            seed: 11,
            threads: 1,
        };
        assert!(beta_sample().validate_against(&cfg, 4).is_ok());
        let other = BetaShapleyConfig {
            beta: 16.0 + 1e-12,
            ..cfg
        };
        assert!(beta_sample().validate_against(&other, 4).is_err());
    }
}
