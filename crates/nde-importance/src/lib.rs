//! # nde-importance
//!
//! Data-importance methods for identifying harmful training examples
//! (paper §2.1), plus the pipeline-aware Datascope method (§2.2).
//!
//! Implemented methods:
//!
//! * [`loo`] — leave-one-out scores;
//! * [`shapley_mc`] — truncated Monte-Carlo Data Shapley (Ghorbani & Zou '19);
//! * [`mod@knn_shapley`] — exact, closed-form KNN-Shapley (Jia et al. '19);
//! * [`mod@banzhaf`] — Data Banzhaf with the maximum-sample-reuse estimator
//!   (Wang & Jia '23);
//! * [`mod@beta_shapley`] — Beta(α,β)-weighted semivalues (Kwon & Zou '21);
//! * [`influence`] — influence functions for logistic regression
//!   (Koh & Liang '17);
//! * [`aum`] — area-under-the-margin mislabel detection (Pleiss et al. '20);
//! * [`confident`] — confident learning (Northcutt et al. '21);
//! * [`group`] — group Shapley over data partitions;
//! * [`datascope`] — KNN-Shapley over ML pipelines, pushed back to pipeline
//!   *source* tuples via provenance (Karlaš et al. '23);
//! * [`fairness_debug`] — Gopher-style interpretable fairness explanations
//!   (Pradhan et al. '22).
//!
//! Scores follow one convention throughout: **higher = more valuable**;
//! injected errors concentrate at the *bottom* of the ranking.
//!
//! # The unified run API
//!
//! The Monte-Carlo and closed-form valuation methods share one entry-point
//! shape (see [`run`]): build an [`ImportanceRun`] with the run-wide
//! options (seed, threads, budget, memo cache, resume checkpoint, batch
//! policy), then call [`tmc_shapley`], [`banzhaf()`](run::banzhaf),
//! [`beta_shapley()`](run::beta_shapley) or
//! [`knn_shapley()`](run::knn_shapley) with the method-specific
//! parameters. Each returns [`ImportanceOutcome`]: scores plus a uniform
//! [`RunReport`]. The run API is the only entry point — the legacy free
//! functions (`tmc_shapley_budgeted`, `banzhaf_msr`, `knn_shapley_par`, …)
//! went through one deprecation cycle and have been removed.
//!
//! Coalition evaluations funnel through the batched utility engine
//! ([`batch::UtilityBatcher`]): with the KNN utility the train→valid
//! distance matrix is computed once per run and whole waves of coalitions
//! are scored against it in one validation pass. Batching is purely
//! physical — scores, budget trip points and checkpoints are bit-identical
//! under every [`BatchPolicy`], every thread count, and across
//! checkpoint/resume cycles.

pub mod aum;
pub mod banzhaf;
pub mod batch;
pub mod beta_shapley;
pub mod common;
pub mod confident;
pub mod datascope;
pub mod fairness_debug;
pub mod group;
pub mod influence;
pub mod knn_shapley;
pub mod loo;
pub mod run;
pub mod shapley_mc;
pub mod snapshot;

pub use banzhaf::BanzhafConfig;
pub use batch::{BatchPolicy, BatchStats};
pub use beta_shapley::BetaShapleyConfig;
pub use common::{
    bottom_k, coalition_utility, detection_precision_at_k, ImportanceError, ImportanceScores,
};
pub use run::{
    banzhaf, beta_shapley, knn_shapley, tmc_shapley, BanzhafParams, BetaShapleyParams,
    ImportanceOutcome, ImportanceRun, RunReport, TmcParams,
};
pub use shapley_mc::{BudgetedShapley, ShapleyConfig};
pub use snapshot::{BanzhafCheckpoint, BetaShapleyCheckpoint, EstimatorCheckpoint};

/// Everything needed to run an importance method, in one import.
pub mod prelude {
    pub use crate::batch::{BatchPolicy, BatchStats};
    pub use crate::common::{
        bottom_k, coalition_utility, detection_precision_at_k, ImportanceError, ImportanceScores,
    };
    pub use crate::loo::loo_importance;
    pub use crate::run::{
        banzhaf, beta_shapley, knn_shapley, tmc_shapley, BanzhafParams, BetaShapleyParams,
        ImportanceOutcome, ImportanceRun, RunReport, TmcParams,
    };
    pub use crate::snapshot::EstimatorCheckpoint;
    pub use crate::{BanzhafConfig, BetaShapleyConfig, BudgetedShapley, Result, ShapleyConfig};
    pub use nde_robust::par::MemoCache;
    pub use nde_robust::{
        ConvergenceDiagnostics, McCheckpoint, RunBudget, RunFingerprint, RunStore,
    };
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ImportanceError>;
