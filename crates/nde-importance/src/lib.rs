//! # nde-importance
//!
//! Data-importance methods for identifying harmful training examples
//! (paper §2.1), plus the pipeline-aware Datascope method (§2.2).
//!
//! Implemented methods:
//!
//! * [`loo`] — leave-one-out scores;
//! * [`shapley_mc`] — truncated Monte-Carlo Data Shapley (Ghorbani & Zou '19);
//! * [`knn_shapley`] — exact, closed-form KNN-Shapley (Jia et al. '19);
//! * [`banzhaf`] — Data Banzhaf with the maximum-sample-reuse estimator
//!   (Wang & Jia '23);
//! * [`beta_shapley`] — Beta(α,β)-weighted semivalues (Kwon & Zou '21);
//! * [`influence`] — influence functions for logistic regression
//!   (Koh & Liang '17);
//! * [`aum`] — area-under-the-margin mislabel detection (Pleiss et al. '20);
//! * [`confident`] — confident learning (Northcutt et al. '21);
//! * [`group`] — group Shapley over data partitions;
//! * [`datascope`] — KNN-Shapley over ML pipelines, pushed back to pipeline
//!   *source* tuples via provenance (Karlaš et al. '23);
//! * [`fairness_debug`] — Gopher-style interpretable fairness explanations
//!   (Pradhan et al. '22).
//!
//! Scores follow one convention throughout: **higher = more valuable**;
//! injected errors concentrate at the *bottom* of the ranking.

pub mod aum;
pub mod banzhaf;
pub mod beta_shapley;
pub mod common;
pub mod confident;
pub mod datascope;
pub mod fairness_debug;
pub mod group;
pub mod influence;
pub mod knn_shapley;
pub mod loo;
pub mod shapley_mc;

pub use banzhaf::{banzhaf_msr, banzhaf_msr_cached, BanzhafConfig};
pub use beta_shapley::{beta_shapley, beta_shapley_cached, BetaShapleyConfig};
pub use common::{
    bottom_k, coalition_utility, detection_precision_at_k, ImportanceError, ImportanceScores,
};
pub use knn_shapley::{knn_shapley, knn_shapley_par};
pub use shapley_mc::{
    tmc_shapley, tmc_shapley_budgeted, tmc_shapley_budgeted_cached, BudgetedShapley, ShapleyConfig,
};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ImportanceError>;
