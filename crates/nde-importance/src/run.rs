//! The unified importance-run entry point.
//!
//! Every Monte-Carlo and closed-form importance method used to grow its own
//! cross-product of free-function variants (`*_budgeted`, `*_cached`,
//! `*_par`, …). [`ImportanceRun`] collapses that explosion: one options
//! struct carries the run-wide knobs (seed, threads, budget, memo cache,
//! resume checkpoint, batch policy) and each method exposes exactly one
//! entry point taking `&ImportanceRun` plus its method-specific parameters:
//!
//! ```
//! use nde_importance::prelude::*;
//! use nde_ml::dataset::Dataset;
//! use nde_ml::models::knn::KnnClassifier;
//!
//! let train = Dataset::from_rows(
//!     vec![vec![0.0], vec![0.2], vec![10.0], vec![10.2]],
//!     vec![0, 0, 1, 1],
//!     2,
//! )
//! .unwrap();
//! let valid = train.clone();
//!
//! let run = ImportanceRun::new(42).with_threads(2);
//! let exact = knn_shapley(&run, &train, &valid, 1).unwrap();
//! let mc = tmc_shapley(
//!     &run,
//!     &KnnClassifier::new(1),
//!     &train,
//!     &valid,
//!     &TmcParams::default(),
//! )
//! .unwrap();
//! assert_eq!(exact.scores.len(), train.len());
//! assert!(exact.scores.values.iter().all(|v| *v >= 0.0));
//! assert_eq!(mc.scores.len(), train.len());
//! assert!(mc.report.utility_calls > 0);
//! ```
//!
//! All entry points return an [`ImportanceOutcome`]: the scores plus a
//! [`RunReport`] with uniform accounting (logical utility calls, cache
//! hits, batches formed, convergence diagnostics and a resume checkpoint
//! where the method supports them).
//!
//! Each entry point delegates to its method module's crate-private engine
//! (`tmc_engine`, `banzhaf_engine`, `beta_shapley_engine`, `knn_engine`);
//! the run API is the only public surface.

use crate::banzhaf::{banzhaf_engine, BanzhafConfig};
use crate::batch::{BatchPolicy, BatchStats};
use crate::beta_shapley::{beta_shapley_engine, BetaShapleyConfig};
use crate::common::ImportanceScores;
use crate::knn_shapley::knn_engine;
use crate::shapley_mc::{tmc_engine, ShapleyConfig};
use crate::{ImportanceError, Result};
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_robust::par::MemoCache;
use nde_robust::{ConvergenceDiagnostics, McCheckpoint, RunBudget};

/// Run-wide options shared by every importance method.
///
/// Construct with [`ImportanceRun::new`] and chain `with_*` builders; the
/// defaults (single thread, no budget, no cache, no checkpoint, the default
/// grouped [`BatchPolicy`]) suit one-shot runs.
///
/// Methods that cannot honor an option reject the run with
/// [`ImportanceError::Unsupported`] instead of silently ignoring it
/// (budgets and checkpoints are TMC-only for now); see each entry point.
#[derive(Debug, Clone, Default)]
pub struct ImportanceRun<'a> {
    /// Base seed; methods derive per-permutation/per-sample child seeds.
    pub seed: u64,
    /// Worker threads (0 or 1 = sequential). Scores are bit-identical for
    /// every thread count.
    pub threads: usize,
    /// Optional resource budget (TMC-Shapley only).
    pub budget: Option<RunBudget>,
    /// Optional utility memo cache, dedicated to one
    /// `(model, train, valid)` triple. Hits still count as logical utility
    /// calls, so budget trip points are cache-independent.
    pub cache: Option<&'a MemoCache>,
    /// Optional checkpoint to resume from (TMC-Shapley only).
    pub checkpoint: Option<&'a McCheckpoint>,
    /// How coalition evaluations are grouped into batches. Purely physical:
    /// scores are bit-identical under every policy.
    pub batch: BatchPolicy,
}

impl<'a> ImportanceRun<'a> {
    /// A fresh single-threaded, unbudgeted run with the default batch
    /// policy.
    pub fn new(seed: u64) -> ImportanceRun<'a> {
        ImportanceRun {
            seed,
            threads: 1,
            budget: None,
            cache: None,
            checkpoint: None,
            batch: BatchPolicy::default(),
        }
    }

    /// Set the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> ImportanceRun<'a> {
        self.threads = threads;
        self
    }

    /// Set a resource budget (TMC-Shapley only).
    pub fn with_budget(mut self, budget: RunBudget) -> ImportanceRun<'a> {
        self.budget = Some(budget);
        self
    }

    /// Attach a utility memo cache.
    pub fn with_cache(mut self, cache: &'a MemoCache) -> ImportanceRun<'a> {
        self.cache = Some(cache);
        self
    }

    /// Resume from a checkpoint of an earlier, interrupted run
    /// (TMC-Shapley only). Resuming is bit-identical to never stopping.
    pub fn with_checkpoint(mut self, checkpoint: &'a McCheckpoint) -> ImportanceRun<'a> {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Set the batch policy ([`BatchPolicy::Unbatched`] restores the
    /// legacy one-coalition-at-a-time physical behavior).
    pub fn with_batch(mut self, batch: BatchPolicy) -> ImportanceRun<'a> {
        self.batch = batch;
        self
    }

    fn reject_budgeting(&self, method: &str) -> Result<()> {
        if self.budget.is_some() {
            return Err(ImportanceError::Unsupported(format!(
                "{method} does not support budgets; only tmc_shapley does"
            )));
        }
        if self.checkpoint.is_some() {
            return Err(ImportanceError::Unsupported(format!(
                "{method} does not support checkpoint resume; only tmc_shapley does"
            )));
        }
        Ok(())
    }
}

/// Uniform accounting attached to every [`ImportanceOutcome`].
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Logical utility evaluations the estimate is built from (cache hits
    /// included; for budgeted TMC this is the authoritative clock count,
    /// for closed-form methods it is 0).
    pub utility_calls: u64,
    /// Coalitions answered from the memo cache (physical count).
    pub cache_hits: u64,
    /// Grouped passes submitted to the batched scorer.
    pub batches_formed: u64,
    /// Coalitions evaluated through the batched scorer.
    pub batched_evals: u64,
    /// Coalitions evaluated through per-coalition retraining.
    pub fallback_evals: u64,
    /// Convergence diagnostics (methods with a budget clock).
    pub diagnostics: Option<ConvergenceDiagnostics>,
    /// Snapshot to pass to [`ImportanceRun::with_checkpoint`] to continue
    /// this estimation (resumable methods only).
    pub checkpoint: Option<McCheckpoint>,
}

impl RunReport {
    fn from_stats(utility_calls: u64, stats: BatchStats) -> RunReport {
        RunReport {
            utility_calls,
            cache_hits: stats.cache_hits,
            batches_formed: stats.batches_formed,
            batched_evals: stats.batched_evals,
            fallback_evals: stats.fallback_evals,
            diagnostics: None,
            checkpoint: None,
        }
    }
}

/// What every importance entry point returns: the scores plus a uniform
/// [`RunReport`].
#[derive(Debug, Clone)]
pub struct ImportanceOutcome {
    /// Importance estimates (higher = more valuable).
    pub scores: ImportanceScores,
    /// How the run got there.
    pub report: RunReport,
}

/// Method parameters for TMC-Shapley (run-wide knobs live on
/// [`ImportanceRun`]).
#[derive(Debug, Clone)]
pub struct TmcParams {
    /// Number of sampled permutations.
    pub permutations: usize,
    /// Truncate a permutation once `|U(prefix) − U(full)|` falls below this.
    pub truncation_tolerance: f64,
}

impl Default for TmcParams {
    fn default() -> Self {
        let d = ShapleyConfig::default();
        TmcParams {
            permutations: d.permutations,
            truncation_tolerance: d.truncation_tolerance,
        }
    }
}

/// Method parameters for the Banzhaf MSR estimator.
#[derive(Debug, Clone)]
pub struct BanzhafParams {
    /// Number of sampled subsets (each point included with probability 1/2).
    pub samples: usize,
}

impl Default for BanzhafParams {
    fn default() -> Self {
        BanzhafParams {
            samples: BanzhafConfig::default().samples,
        }
    }
}

/// Method parameters for the Beta(α, β) semivalue estimator.
#[derive(Debug, Clone)]
pub struct BetaShapleyParams {
    /// Beta distribution α parameter (> 0).
    pub alpha: f64,
    /// Beta distribution β parameter (> 0). β > α emphasizes small
    /// coalitions.
    pub beta: f64,
    /// Monte-Carlo samples *per training example*.
    pub samples_per_point: usize,
}

impl Default for BetaShapleyParams {
    fn default() -> Self {
        let d = BetaShapleyConfig::default();
        BetaShapleyParams {
            alpha: d.alpha,
            beta: d.beta,
            samples_per_point: d.samples_per_point,
        }
    }
}

/// Truncated Monte-Carlo Data Shapley through the unified run options.
///
/// Honors every [`ImportanceRun`] option: budgets stop the run per utility
/// call, `report.checkpoint` resumes it bit-identically, and
/// `report.diagnostics` carries the authoritative clock counters.
pub fn tmc_shapley<C>(
    run: &ImportanceRun,
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    params: &TmcParams,
) -> Result<ImportanceOutcome>
where
    C: Classifier + Send + Sync,
{
    let config = ShapleyConfig {
        permutations: params.permutations,
        truncation_tolerance: params.truncation_tolerance,
        seed: run.seed,
        threads: run.threads,
    };
    let unlimited = RunBudget::unlimited();
    let budget = run.budget.as_ref().unwrap_or(&unlimited);
    let (result, stats) = tmc_engine(
        template,
        train,
        valid,
        &config,
        budget,
        run.checkpoint,
        run.cache,
        run.batch,
    )?;
    let mut report = RunReport::from_stats(result.diagnostics.utility_calls, stats);
    report.diagnostics = Some(result.diagnostics);
    report.checkpoint = Some(result.checkpoint);
    Ok(ImportanceOutcome {
        scores: result.scores,
        report,
    })
}

/// Data Banzhaf (maximum-sample-reuse estimator) through the unified run
/// options. Budgets and checkpoints are not supported yet
/// ([`ImportanceError::Unsupported`]).
pub fn banzhaf<C>(
    run: &ImportanceRun,
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    params: &BanzhafParams,
) -> Result<ImportanceOutcome>
where
    C: Classifier + Send + Sync,
{
    run.reject_budgeting("banzhaf")?;
    let config = BanzhafConfig {
        samples: params.samples,
        seed: run.seed,
        threads: run.threads,
    };
    let (scores, stats) = banzhaf_engine(template, train, valid, &config, run.cache, run.batch)?;
    Ok(ImportanceOutcome {
        scores,
        report: RunReport::from_stats(stats.evals(), stats),
    })
}

/// Beta(α, β) semivalues through the unified run options. Budgets and
/// checkpoints are not supported yet ([`ImportanceError::Unsupported`]).
pub fn beta_shapley<C>(
    run: &ImportanceRun,
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    params: &BetaShapleyParams,
) -> Result<ImportanceOutcome>
where
    C: Classifier + Send + Sync,
{
    run.reject_budgeting("beta_shapley")?;
    let config = BetaShapleyConfig {
        alpha: params.alpha,
        beta: params.beta,
        samples_per_point: params.samples_per_point,
        seed: run.seed,
        threads: run.threads,
    };
    let (scores, stats) =
        beta_shapley_engine(template, train, valid, &config, run.cache, run.batch)?;
    Ok(ImportanceOutcome {
        scores,
        report: RunReport::from_stats(stats.evals(), stats),
    })
}

/// Exact, closed-form KNN-Shapley through the unified run options.
///
/// Closed-form: no utility calls are made, so `run.cache`, `run.batch` and
/// `run.seed` are irrelevant (the result is deterministic); only
/// `run.threads` matters. Budgets and checkpoints are rejected with
/// [`ImportanceError::Unsupported`].
pub fn knn_shapley(
    run: &ImportanceRun,
    train: &Dataset,
    valid: &Dataset,
    k: usize,
) -> Result<ImportanceOutcome> {
    run.reject_budgeting("knn_shapley")?;
    let scores = knn_engine(train, valid, k, run.threads.max(1))?;
    Ok(ImportanceOutcome {
        scores,
        report: RunReport::default(),
    })
}

#[cfg(test)]
mod tests {
    // The equivalence tests pin the entry points against the engines they
    // delegate to: the run API must match the engine output bit-for-bit.
    use super::*;
    use crate::shapley_mc::tmc_engine;
    use nde_ml::models::knn::KnnClassifier;

    fn toy() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1], // mislabelled
            ],
            vec![0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.12], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn tmc_matches_engine_bit_for_bit() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let cfg = ShapleyConfig {
            permutations: 40,
            truncation_tolerance: 0.0,
            seed: 9,
            threads: 4,
        };
        let (legacy, _) = tmc_engine(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            None,
            None,
            BatchPolicy::Unbatched,
        )
        .unwrap();
        let run = ImportanceRun::new(9).with_threads(4);
        let unified = tmc_shapley(
            &run,
            &knn,
            &train,
            &valid,
            &TmcParams {
                permutations: 40,
                truncation_tolerance: 0.0,
            },
        )
        .unwrap();
        assert_eq!(unified.scores, legacy.scores);
        assert_eq!(
            unified.report.utility_calls,
            legacy.diagnostics.utility_calls
        );
        assert_eq!(unified.report.checkpoint.unwrap(), legacy.checkpoint);
    }

    #[test]
    fn tmc_budget_and_resume_through_run_options() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let params = TmcParams {
            permutations: 12,
            truncation_tolerance: 0.0,
        };
        let full = tmc_shapley(&ImportanceRun::new(3), &knn, &train, &valid, &params).unwrap();
        let cut = tmc_shapley(
            &ImportanceRun::new(3).with_budget(RunBudget::unlimited().with_max_utility_calls(17)),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        assert_eq!(cut.report.utility_calls, 17);
        let ckpt = cut.report.checkpoint.unwrap();
        let resumed = tmc_shapley(
            &ImportanceRun::new(3).with_checkpoint(&ckpt),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        assert_eq!(resumed.scores, full.scores);
    }

    #[test]
    fn banzhaf_and_beta_match_engine_and_reject_budgets() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let run = ImportanceRun::new(7).with_threads(2);

        let (legacy, _) = crate::banzhaf::banzhaf_engine(
            &knn,
            &train,
            &valid,
            &BanzhafConfig {
                samples: 100,
                seed: 7,
                threads: 2,
            },
            None,
            BatchPolicy::Unbatched,
        )
        .unwrap();
        let unified = banzhaf(&run, &knn, &train, &valid, &BanzhafParams { samples: 100 }).unwrap();
        assert_eq!(unified.scores, legacy);
        assert!(unified.report.utility_calls > 0);

        let (legacy, _) = crate::beta_shapley::beta_shapley_engine(
            &knn,
            &train,
            &valid,
            &BetaShapleyConfig {
                samples_per_point: 20,
                seed: 7,
                threads: 2,
                ..BetaShapleyConfig::default()
            },
            None,
            BatchPolicy::Unbatched,
        )
        .unwrap();
        let unified = beta_shapley(
            &run,
            &knn,
            &train,
            &valid,
            &BetaShapleyParams {
                samples_per_point: 20,
                ..BetaShapleyParams::default()
            },
        )
        .unwrap();
        assert_eq!(unified.scores, legacy);

        let budgeted = ImportanceRun::new(0).with_budget(RunBudget::unlimited());
        assert!(matches!(
            banzhaf(&budgeted, &knn, &train, &valid, &BanzhafParams::default()),
            Err(ImportanceError::Unsupported(_))
        ));
        assert!(matches!(
            beta_shapley(
                &budgeted,
                &knn,
                &train,
                &valid,
                &BetaShapleyParams::default()
            ),
            Err(ImportanceError::Unsupported(_))
        ));
    }

    #[test]
    fn knn_matches_engine_and_reports_no_calls() {
        let (train, valid) = toy();
        let legacy = crate::knn_shapley::knn_engine(&train, &valid, 2, 3).unwrap();
        let unified =
            knn_shapley(&ImportanceRun::new(0).with_threads(3), &train, &valid, 2).unwrap();
        assert_eq!(unified.scores, legacy);
        assert_eq!(unified.report.utility_calls, 0);
        assert!(unified.report.checkpoint.is_none());

        let ckpt = McCheckpoint::fresh("tmc-shapley", 0, train.len());
        let resuming = ImportanceRun::new(0).with_checkpoint(&ckpt);
        assert!(matches!(
            knn_shapley(&resuming, &train, &valid, 2),
            Err(ImportanceError::Unsupported(_))
        ));
    }

    #[test]
    fn cache_is_shared_across_methods_through_the_run() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let cache = MemoCache::new();
        let run = ImportanceRun::new(11).with_cache(&cache);
        let plain = banzhaf(
            &ImportanceRun::new(11),
            &knn,
            &train,
            &valid,
            &BanzhafParams { samples: 120 },
        )
        .unwrap();
        let warm = banzhaf(&run, &knn, &train, &valid, &BanzhafParams { samples: 120 }).unwrap();
        let rerun = banzhaf(&run, &knn, &train, &valid, &BanzhafParams { samples: 120 }).unwrap();
        assert_eq!(plain.scores, warm.scores);
        assert_eq!(warm.scores, rerun.scores);
        // Second pass answers everything from the cache.
        assert_eq!(rerun.report.cache_hits, rerun.report.utility_calls);
        assert_eq!(rerun.report.batched_evals + rerun.report.fallback_evals, 0);
    }
}
