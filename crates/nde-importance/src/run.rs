//! The unified importance-run entry point.
//!
//! Every Monte-Carlo and closed-form importance method used to grow its own
//! cross-product of free-function variants (`*_budgeted`, `*_cached`,
//! `*_par`, …). [`ImportanceRun`] collapses that explosion: one options
//! struct carries the run-wide knobs (seed, threads, budget, memo cache,
//! resume snapshot, durable store, batch policy) and each method exposes
//! exactly one entry point taking `&ImportanceRun` plus its method-specific
//! parameters:
//!
//! ```
//! use nde_importance::prelude::*;
//! use nde_ml::dataset::Dataset;
//! use nde_ml::models::knn::KnnClassifier;
//!
//! let train = Dataset::from_rows(
//!     vec![vec![0.0], vec![0.2], vec![10.0], vec![10.2]],
//!     vec![0, 0, 1, 1],
//!     2,
//! )
//! .unwrap();
//! let valid = train.clone();
//!
//! let run = ImportanceRun::new(42).with_threads(2);
//! let exact = knn_shapley(&run, &train, &valid, 1).unwrap();
//! let mc = tmc_shapley(
//!     &run,
//!     &KnnClassifier::new(1),
//!     &train,
//!     &valid,
//!     &TmcParams::default(),
//! )
//! .unwrap();
//! assert_eq!(exact.scores.len(), train.len());
//! assert!(exact.scores.values.iter().all(|v| *v >= 0.0));
//! assert_eq!(mc.scores.len(), train.len());
//! assert!(mc.report.utility_calls > 0);
//! ```
//!
//! All entry points return an [`ImportanceOutcome`]: the scores plus a
//! [`RunReport`] with uniform accounting (logical utility calls, cache
//! hits, batches formed, convergence diagnostics and a resume snapshot
//! where the method supports them).
//!
//! # Budgets, resume, and the durable store
//!
//! The three Monte-Carlo methods (TMC-Shapley, Banzhaf, Beta Shapley) all
//! honor [`with_budget`](ImportanceRun::with_budget) and resume
//! bit-identically from the [`EstimatorCheckpoint`] returned in
//! `report.snapshot` (pass it back via
//! [`with_resume`](ImportanceRun::with_resume)). Attaching a
//! [`RunStore`] via [`with_store`](ImportanceRun::with_store) makes the
//! run *crash-safe*: checkpoints are written as checksummed on-disk records
//! keyed by the run's [`RunFingerprint`] (method, seed, config, data), and
//! a re-run with the same options silently resumes from the latest valid
//! record — after a crash, a torn write, or a corrupted record, whatever
//! state survives validation is picked up and the rest is recomputed,
//! bit-identically. [`with_auto_checkpoint`](ImportanceRun::with_auto_checkpoint)
//! sets how many estimator steps may elapse between records.
//!
//! Each entry point delegates to its method module's crate-private engine
//! (`tmc_engine`, `banzhaf_engine_budgeted`, `beta_shapley_engine_budgeted`,
//! `knn_engine`); the run API is the only public surface.

use crate::banzhaf::{banzhaf_engine_budgeted, BanzhafConfig};
use crate::batch::{BatchPolicy, BatchStats};
use crate::beta_shapley::{beta_shapley_engine_budgeted, BetaShapleyConfig};
use crate::common::ImportanceScores;
use crate::knn_shapley::knn_engine;
use crate::shapley_mc::{tmc_engine, ShapleyConfig, TMC_METHOD};
use crate::snapshot::EstimatorCheckpoint;
use crate::{ImportanceError, Result};
use nde_data::fxhash::FxHasher;
use nde_data::json::Json;
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_robust::par::{MemoCache, WorkerPool};
use nde_robust::{
    ConvergenceDiagnostics, Exhaustion, McCheckpoint, RunBudget, RunFingerprint, RunStore,
};
use std::hash::Hasher;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run-wide options shared by every importance method.
///
/// Construct with [`ImportanceRun::new`] and chain `with_*` builders; the
/// defaults (single thread, no budget, no cache, no resume state, no store,
/// the default grouped [`BatchPolicy`]) suit one-shot runs.
///
/// Methods that cannot honor an option reject the run with
/// [`ImportanceError::Unsupported`] instead of silently ignoring it; the
/// only such method is the closed-form `knn_shapley`, which has no
/// Monte-Carlo state to budget, checkpoint, or persist.
#[derive(Debug, Clone, Default)]
pub struct ImportanceRun<'a> {
    /// Base seed; methods derive per-permutation/per-sample child seeds.
    pub seed: u64,
    /// Worker threads (0 or 1 = sequential). Scores are bit-identical for
    /// every thread count.
    pub threads: usize,
    /// Optional resource budget. Budget trip points are deterministic:
    /// independent of caching, batching, and thread count.
    pub budget: Option<RunBudget>,
    /// Optional utility memo cache, dedicated to one
    /// `(model, train, valid)` triple. Hits still count as logical utility
    /// calls, so budget trip points are cache-independent.
    pub cache: Option<&'a MemoCache>,
    /// Optional TMC-Shapley checkpoint to resume from. Kept as typed sugar
    /// for TMC callers; the method-erased [`ImportanceRun::resume`] covers
    /// every resumable method. Takes precedence over `resume`.
    pub checkpoint: Option<&'a McCheckpoint>,
    /// Optional method-erased snapshot to resume from (any Monte-Carlo
    /// method). Resuming is bit-identical to never stopping.
    pub resume: Option<&'a EstimatorCheckpoint>,
    /// Optional durable store. When set, checkpoints are persisted as
    /// crash-safe records under the run's [`RunFingerprint`] and the run
    /// auto-resumes from the latest valid record (unless an explicit
    /// `checkpoint`/`resume` is given, which wins).
    pub store: Option<&'a RunStore>,
    /// With a store attached: write a record every this-many estimator
    /// steps (permutations / subset samples / points). `None` writes one
    /// record when the run finishes or its budget trips.
    pub auto_checkpoint_every: Option<u64>,
    /// How coalition evaluations are grouped into batches. Purely physical:
    /// scores are bit-identical under every policy.
    pub batch: BatchPolicy,
    /// Worker pool the engines run on; `None` uses the resident
    /// process-wide pool ([`WorkerPool::shared`]). Purely physical:
    /// scores are bit-identical under every pool.
    pub pool: Option<Arc<WorkerPool>>,
}

impl<'a> ImportanceRun<'a> {
    /// A fresh single-threaded, unbudgeted run with the default batch
    /// policy.
    pub fn new(seed: u64) -> ImportanceRun<'a> {
        ImportanceRun {
            seed,
            threads: 1,
            budget: None,
            cache: None,
            checkpoint: None,
            resume: None,
            store: None,
            auto_checkpoint_every: None,
            batch: BatchPolicy::default(),
            pool: None,
        }
    }

    /// Set the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> ImportanceRun<'a> {
        self.threads = threads;
        self
    }

    /// Run the engines on a dedicated [`WorkerPool`] instead of the
    /// process-wide shared one. Scheduling only — scores are bit-identical
    /// under every pool.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> ImportanceRun<'a> {
        self.pool = Some(pool);
        self
    }

    /// The pool this run's engines execute on.
    pub(crate) fn pool_handle(&self) -> Arc<WorkerPool> {
        self.pool.clone().unwrap_or_else(WorkerPool::shared)
    }

    /// Set a resource budget.
    pub fn with_budget(mut self, budget: RunBudget) -> ImportanceRun<'a> {
        self.budget = Some(budget);
        self
    }

    /// Attach a utility memo cache.
    pub fn with_cache(mut self, cache: &'a MemoCache) -> ImportanceRun<'a> {
        self.cache = Some(cache);
        self
    }

    /// Resume from a TMC-Shapley checkpoint of an earlier, interrupted run.
    /// Resuming is bit-identical to never stopping. Non-TMC methods reject
    /// this with a checkpoint-mismatch error; use
    /// [`with_resume`](ImportanceRun::with_resume) for them.
    pub fn with_checkpoint(mut self, checkpoint: &'a McCheckpoint) -> ImportanceRun<'a> {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Resume from the method-erased snapshot of an earlier, interrupted
    /// run (`report.snapshot`). Resuming is bit-identical to never
    /// stopping; a snapshot written by a different method or run shape is
    /// rejected with [`ImportanceError::Checkpoint`].
    pub fn with_resume(mut self, snapshot: &'a EstimatorCheckpoint) -> ImportanceRun<'a> {
        self.resume = Some(snapshot);
        self
    }

    /// Attach a durable on-disk store: checkpoints (and the memo cache, if
    /// any) persist across processes, and the run auto-resumes from the
    /// latest valid record.
    pub fn with_store(mut self, store: &'a RunStore) -> ImportanceRun<'a> {
        self.store = Some(store);
        self
    }

    /// Write a durable record every `every` estimator steps (clamped to at
    /// least 1). Only meaningful together with
    /// [`with_store`](ImportanceRun::with_store).
    pub fn with_auto_checkpoint(mut self, every: u64) -> ImportanceRun<'a> {
        self.auto_checkpoint_every = Some(every.max(1));
        self
    }

    /// Set the batch policy ([`BatchPolicy::Unbatched`] restores the
    /// legacy one-coalition-at-a-time physical behavior).
    pub fn with_batch(mut self, batch: BatchPolicy) -> ImportanceRun<'a> {
        self.batch = batch;
        self
    }

    fn reject_resumability(&self, method: &str) -> Result<()> {
        let offending = if self.budget.is_some() {
            Some("budgets")
        } else if self.checkpoint.is_some() || self.resume.is_some() {
            Some("checkpoint resume")
        } else if self.store.is_some() || self.auto_checkpoint_every.is_some() {
            Some("a durable store")
        } else {
            None
        };
        match offending {
            Some(option) => Err(ImportanceError::Unsupported(format!(
                "{method} is closed-form and does not support {option}"
            ))),
            None => Ok(()),
        }
    }
}

/// Uniform accounting attached to every [`ImportanceOutcome`].
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Logical utility evaluations the estimate is built from (cache hits
    /// included; for the Monte-Carlo methods this is the authoritative
    /// budget-clock count, for closed-form methods it is 0).
    pub utility_calls: u64,
    /// Coalitions answered from the memo cache (physical count).
    pub cache_hits: u64,
    /// Grouped passes submitted to the batched scorer.
    pub batches_formed: u64,
    /// Coalitions evaluated through the batched scorer.
    pub batched_evals: u64,
    /// Coalitions evaluated through per-coalition retraining.
    pub fallback_evals: u64,
    /// Convergence diagnostics (methods with a budget clock).
    pub diagnostics: Option<ConvergenceDiagnostics>,
    /// TMC-Shapley snapshot to pass to [`ImportanceRun::with_checkpoint`]
    /// (TMC runs only; other methods report through `snapshot`).
    pub checkpoint: Option<McCheckpoint>,
    /// Method-erased snapshot to pass to [`ImportanceRun::with_resume`] to
    /// continue this estimation (every Monte-Carlo method).
    pub snapshot: Option<EstimatorCheckpoint>,
    /// Identity the durable records were stored under (runs with a store).
    pub fingerprint: Option<RunFingerprint>,
}

impl RunReport {
    fn from_stats(utility_calls: u64, stats: BatchStats) -> RunReport {
        RunReport {
            utility_calls,
            cache_hits: stats.cache_hits,
            batches_formed: stats.batches_formed,
            batched_evals: stats.batched_evals,
            fallback_evals: stats.fallback_evals,
            diagnostics: None,
            checkpoint: None,
            snapshot: None,
            fingerprint: None,
        }
    }
}

/// What every importance entry point returns: the scores plus a uniform
/// [`RunReport`].
#[derive(Debug, Clone)]
pub struct ImportanceOutcome {
    /// Importance estimates (higher = more valuable).
    pub scores: ImportanceScores,
    /// How the run got there.
    pub report: RunReport,
}

/// Method parameters for TMC-Shapley (run-wide knobs live on
/// [`ImportanceRun`]).
#[derive(Debug, Clone)]
pub struct TmcParams {
    /// Number of sampled permutations.
    pub permutations: usize,
    /// Truncate a permutation once `|U(prefix) − U(full)|` falls below this.
    pub truncation_tolerance: f64,
}

impl Default for TmcParams {
    fn default() -> Self {
        let d = ShapleyConfig::default();
        TmcParams {
            permutations: d.permutations,
            truncation_tolerance: d.truncation_tolerance,
        }
    }
}

/// Method parameters for the Banzhaf MSR estimator.
#[derive(Debug, Clone)]
pub struct BanzhafParams {
    /// Number of sampled subsets (each point included with probability 1/2).
    pub samples: usize,
}

impl Default for BanzhafParams {
    fn default() -> Self {
        BanzhafParams {
            samples: BanzhafConfig::default().samples,
        }
    }
}

/// Method parameters for the Beta(α, β) semivalue estimator.
#[derive(Debug, Clone)]
pub struct BetaShapleyParams {
    /// Beta distribution α parameter (> 0).
    pub alpha: f64,
    /// Beta distribution β parameter (> 0). β > α emphasizes small
    /// coalitions.
    pub beta: f64,
    /// Monte-Carlo samples *per training example*.
    pub samples_per_point: usize,
}

impl Default for BetaShapleyParams {
    fn default() -> Self {
        let d = BetaShapleyConfig::default();
        BetaShapleyParams {
            alpha: d.alpha,
            beta: d.beta,
            samples_per_point: d.samples_per_point,
        }
    }
}

/// 64-bit identity of the run's input data: both datasets' fingerprints
/// folded together. Part of the [`RunFingerprint`] store key.
fn data_fingerprint(train: &Dataset, valid: &Dataset) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(train.fingerprint());
    h.write_u64(valid.fingerprint());
    h.finish()
}

/// Resolve what the run resumes from, in precedence order: the typed TMC
/// checkpoint, the method-erased snapshot, then the store's latest valid
/// record. A snapshot written by a different method is a typed
/// [`ImportanceError::Checkpoint`] — never silently ignored.
fn resolve_resume(
    run: &ImportanceRun,
    fingerprint: Option<&RunFingerprint>,
    method: &str,
) -> Result<Option<EstimatorCheckpoint>> {
    if let Some(cp) = run.checkpoint {
        if method != TMC_METHOD {
            return Err(ImportanceError::Checkpoint(format!(
                "`with_checkpoint` carries a `{TMC_METHOD}` checkpoint but this run is \
                 `{method}`; resume it with `with_resume`"
            )));
        }
        return Ok(Some(EstimatorCheckpoint::Tmc(cp.clone())));
    }
    if let Some(snap) = run.resume {
        if snap.method() != method {
            return Err(ImportanceError::Checkpoint(format!(
                "resume snapshot was written by `{}` but this run is `{method}`",
                snap.method()
            )));
        }
        return Ok(Some(snap.clone()));
    }
    let (Some(store), Some(fp)) = (run.store, fingerprint) else {
        return Ok(None);
    };
    let Some(record) = store.latest_valid(fp)? else {
        return Ok(None);
    };
    let snap = EstimatorCheckpoint::from_payload(&record.payload)?;
    if snap.method() != method {
        return Err(ImportanceError::Checkpoint(format!(
            "store record at step {} was written by `{}` but this run is `{method}`",
            record.step,
            snap.method()
        )));
    }
    Ok(Some(snap))
}

/// Warm the memo cache from the store's persisted copy (corrupt or missing
/// copies degrade to a cold cache inside [`RunStore::load_memo`]).
fn preload_memo(run: &ImportanceRun, fingerprint: Option<&RunFingerprint>) -> Result<()> {
    if let (Some(store), Some(cache), Some(fp)) = (run.store, run.cache, fingerprint) {
        store.load_memo(fp, cache)?;
    }
    Ok(())
}

/// Which *base*-budget limit, if any, the run has hit — segment-clamped
/// clocks can report a trip that only reflects the auto-checkpoint cadence,
/// so the caller-visible exhaustion is recomputed against the caller's
/// budget. Checks in the same order as `BudgetClock::exhausted`.
fn base_exhaustion(
    base: &RunBudget,
    diagnostics: &ConvergenceDiagnostics,
    elapsed: Duration,
) -> Option<Exhaustion> {
    if let Some(m) = base.max_iterations {
        if diagnostics.iterations >= m {
            return Some(Exhaustion::Iterations);
        }
    }
    if let Some(m) = base.max_utility_calls {
        if diagnostics.utility_calls >= m {
            return Some(Exhaustion::UtilityCalls);
        }
    }
    if let Some(w) = base.wall_clock {
        if elapsed >= w {
            return Some(Exhaustion::Deadline);
        }
    }
    None
}

/// Drive an engine to completion in durable segments.
///
/// Each segment runs the engine under the caller's budget — clamped to
/// `auto_checkpoint_every` additional iterations — then persists the
/// returned state (and memo cache) to the store before starting the next
/// segment. Without a cadence the engine runs once and the final state is
/// persisted; without a store the segments merely bound how much work a
/// budget overshoot can lose. Termination: every segment either advances
/// the cursor by at least one step or trips a base-budget limit, and both
/// paths exit the loop.
#[allow(clippy::too_many_arguments)] // one slot per engine-surface concern
fn drive<S, F>(
    run: &ImportanceRun,
    fingerprint: Option<&RunFingerprint>,
    total: u64,
    cursor_of: impl Fn(&S) -> u64,
    payload_of: impl Fn(&S) -> Json,
    mut resume: Option<S>,
    mut segment: F,
) -> Result<(ImportanceScores, ConvergenceDiagnostics, S, BatchStats)>
where
    F: FnMut(
        &RunBudget,
        Option<&S>,
    ) -> Result<(ImportanceScores, ConvergenceDiagnostics, S, BatchStats)>,
{
    let unlimited = RunBudget::unlimited();
    let base = run.budget.as_ref().unwrap_or(&unlimited);
    let started = Instant::now();
    let mut stats_total = BatchStats::default();
    loop {
        let done = resume.as_ref().map_or(0, &cursor_of);
        let mut seg_budget = base.clone();
        if let Some(every) = run.auto_checkpoint_every {
            let cap = done.saturating_add(every.max(1));
            seg_budget.max_iterations = Some(base.max_iterations.map_or(cap, |m| m.min(cap)));
        }
        if let Some(wall) = base.wall_clock {
            seg_budget.wall_clock = Some(wall.saturating_sub(started.elapsed()));
        }
        let (scores, mut diagnostics, state, stats) = segment(&seg_budget, resume.as_ref())?;
        stats_total.merge(&stats);
        if let (Some(store), Some(fp)) = (run.store, fingerprint) {
            store.save_checkpoint(fp, cursor_of(&state), &payload_of(&state))?;
            if let Some(cache) = run.cache {
                store.save_memo(fp, cache)?;
            }
        }
        let finished = cursor_of(&state) >= total;
        let tripped = base_exhaustion(base, &diagnostics, started.elapsed());
        if finished || tripped.is_some() || run.auto_checkpoint_every.is_none() {
            if run.auto_checkpoint_every.is_some() {
                // The last segment's clock saw a clamped budget and only its
                // own slice of wall time; report against the caller's budget.
                diagnostics.exhausted = tripped;
                diagnostics.elapsed = started.elapsed();
            }
            return Ok((scores, diagnostics, state, stats_total));
        }
        resume = Some(state);
    }
}

/// Truncated Monte-Carlo Data Shapley through the unified run options.
///
/// Honors every [`ImportanceRun`] option: budgets stop the run per utility
/// call, `report.checkpoint`/`report.snapshot` resume it bit-identically,
/// a store makes it crash-safe, and `report.diagnostics` carries the
/// authoritative clock counters.
pub fn tmc_shapley<C>(
    run: &ImportanceRun,
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    params: &TmcParams,
) -> Result<ImportanceOutcome>
where
    C: Classifier + Send + Sync,
{
    let config = ShapleyConfig {
        permutations: params.permutations,
        truncation_tolerance: params.truncation_tolerance,
        seed: run.seed,
        threads: run.threads,
    };
    let fp = run.store.map(|_| {
        RunFingerprint::new(
            TMC_METHOD,
            run.seed,
            format!(
                "permutations={};truncation_tolerance={}",
                params.permutations, params.truncation_tolerance
            ),
            data_fingerprint(train, valid),
        )
    });
    let resume = match resolve_resume(run, fp.as_ref(), TMC_METHOD)? {
        Some(EstimatorCheckpoint::Tmc(c)) => Some(c),
        Some(other) => {
            return Err(ImportanceError::Checkpoint(format!(
                "resume snapshot was written by `{}` but this run is `{TMC_METHOD}`",
                other.method()
            )))
        }
        None => None,
    };
    preload_memo(run, fp.as_ref())?;
    let (scores, diagnostics, state, stats) = drive(
        run,
        fp.as_ref(),
        params.permutations as u64,
        |s: &McCheckpoint| s.cursor,
        McCheckpoint::to_payload,
        resume,
        |budget, resume| {
            let (result, stats) = tmc_engine(
                template,
                train,
                valid,
                &config,
                budget,
                resume,
                run.cache,
                run.batch,
                &run.pool_handle(),
            )?;
            Ok((result.scores, result.diagnostics, result.checkpoint, stats))
        },
    )?;
    let mut report = RunReport::from_stats(diagnostics.utility_calls, stats);
    report.diagnostics = Some(diagnostics);
    report.checkpoint = Some(state.clone());
    report.snapshot = Some(EstimatorCheckpoint::Tmc(state));
    report.fingerprint = fp;
    Ok(ImportanceOutcome { scores, report })
}

/// Data Banzhaf (maximum-sample-reuse estimator) through the unified run
/// options. Budgets stop the run at sample granularity, `report.snapshot`
/// resumes it bit-identically, and a store makes it crash-safe.
pub fn banzhaf<C>(
    run: &ImportanceRun,
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    params: &BanzhafParams,
) -> Result<ImportanceOutcome>
where
    C: Classifier + Send + Sync,
{
    let config = BanzhafConfig {
        samples: params.samples,
        seed: run.seed,
        threads: run.threads,
    };
    let fp = run.store.map(|_| {
        RunFingerprint::new(
            "banzhaf",
            run.seed,
            format!("samples={}", params.samples),
            data_fingerprint(train, valid),
        )
    });
    let resume = match resolve_resume(run, fp.as_ref(), "banzhaf")? {
        Some(EstimatorCheckpoint::Banzhaf(c)) => Some(c),
        Some(other) => {
            return Err(ImportanceError::Checkpoint(format!(
                "resume snapshot was written by `{}` but this run is `banzhaf`",
                other.method()
            )))
        }
        None => None,
    };
    preload_memo(run, fp.as_ref())?;
    let (scores, diagnostics, state, stats) = drive(
        run,
        fp.as_ref(),
        params.samples as u64,
        |s: &crate::snapshot::BanzhafCheckpoint| s.cursor,
        crate::snapshot::BanzhafCheckpoint::to_payload,
        resume,
        |budget, resume| {
            let (result, stats) = banzhaf_engine_budgeted(
                template,
                train,
                valid,
                &config,
                budget,
                resume,
                run.cache,
                run.batch,
                &run.pool_handle(),
            )?;
            Ok((result.scores, result.diagnostics, result.checkpoint, stats))
        },
    )?;
    let mut report = RunReport::from_stats(diagnostics.utility_calls, stats);
    report.diagnostics = Some(diagnostics);
    report.snapshot = Some(EstimatorCheckpoint::Banzhaf(state));
    report.fingerprint = fp;
    Ok(ImportanceOutcome { scores, report })
}

/// Beta(α, β) semivalues through the unified run options. Budgets stop the
/// run at point granularity, `report.snapshot` resumes it bit-identically,
/// and a store makes it crash-safe.
pub fn beta_shapley<C>(
    run: &ImportanceRun,
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    params: &BetaShapleyParams,
) -> Result<ImportanceOutcome>
where
    C: Classifier + Send + Sync,
{
    let config = BetaShapleyConfig {
        alpha: params.alpha,
        beta: params.beta,
        samples_per_point: params.samples_per_point,
        seed: run.seed,
        threads: run.threads,
    };
    let fp = run.store.map(|_| {
        RunFingerprint::new(
            "beta-shapley",
            run.seed,
            format!(
                "alpha={};beta={};samples_per_point={}",
                params.alpha, params.beta, params.samples_per_point
            ),
            data_fingerprint(train, valid),
        )
    });
    let resume = match resolve_resume(run, fp.as_ref(), "beta-shapley")? {
        Some(EstimatorCheckpoint::BetaShapley(c)) => Some(c),
        Some(other) => {
            return Err(ImportanceError::Checkpoint(format!(
                "resume snapshot was written by `{}` but this run is `beta-shapley`",
                other.method()
            )))
        }
        None => None,
    };
    preload_memo(run, fp.as_ref())?;
    let (scores, diagnostics, state, stats) = drive(
        run,
        fp.as_ref(),
        train.len() as u64,
        |s: &crate::snapshot::BetaShapleyCheckpoint| s.cursor,
        crate::snapshot::BetaShapleyCheckpoint::to_payload,
        resume,
        |budget, resume| {
            let (result, stats) = beta_shapley_engine_budgeted(
                template,
                train,
                valid,
                &config,
                budget,
                resume,
                run.cache,
                run.batch,
                &run.pool_handle(),
            )?;
            Ok((result.scores, result.diagnostics, result.checkpoint, stats))
        },
    )?;
    let mut report = RunReport::from_stats(diagnostics.utility_calls, stats);
    report.diagnostics = Some(diagnostics);
    report.snapshot = Some(EstimatorCheckpoint::BetaShapley(state));
    report.fingerprint = fp;
    Ok(ImportanceOutcome { scores, report })
}

/// Exact, closed-form KNN-Shapley through the unified run options.
///
/// Closed-form: no utility calls are made, so `run.cache`, `run.batch` and
/// `run.seed` are irrelevant (the result is deterministic); only
/// `run.threads` matters. Budgets, resume state, and durable stores are
/// rejected with [`ImportanceError::Unsupported`] — there is no
/// Monte-Carlo state to stop, checkpoint, or persist.
pub fn knn_shapley(
    run: &ImportanceRun,
    train: &Dataset,
    valid: &Dataset,
    k: usize,
) -> Result<ImportanceOutcome> {
    run.reject_resumability("knn_shapley")?;
    let scores = knn_engine(train, valid, k, run.threads.max(1), &run.pool_handle())?;
    Ok(ImportanceOutcome {
        scores,
        report: RunReport::default(),
    })
}

#[cfg(test)]
mod tests {
    // The equivalence tests pin the entry points against the engines they
    // delegate to: the run API must match the engine output bit-for-bit.
    use super::*;
    use crate::shapley_mc::tmc_engine;
    use nde_ml::models::knn::KnnClassifier;

    fn toy() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1], // mislabelled
            ],
            vec![0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.12], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    fn temp_store(tag: &str) -> RunStore {
        let dir = std::env::temp_dir().join(format!("nde-run-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        RunStore::open(dir).unwrap()
    }

    #[test]
    fn tmc_matches_engine_bit_for_bit() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let cfg = ShapleyConfig {
            permutations: 40,
            truncation_tolerance: 0.0,
            seed: 9,
            threads: 4,
        };
        let (legacy, _) = tmc_engine(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            None,
            None,
            BatchPolicy::Unbatched,
            &WorkerPool::shared(),
        )
        .unwrap();
        let run = ImportanceRun::new(9).with_threads(4);
        let unified = tmc_shapley(
            &run,
            &knn,
            &train,
            &valid,
            &TmcParams {
                permutations: 40,
                truncation_tolerance: 0.0,
            },
        )
        .unwrap();
        assert_eq!(unified.scores, legacy.scores);
        assert_eq!(
            unified.report.utility_calls,
            legacy.diagnostics.utility_calls
        );
        assert_eq!(unified.report.checkpoint.unwrap(), legacy.checkpoint);
    }

    #[test]
    fn tmc_budget_and_resume_through_run_options() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let params = TmcParams {
            permutations: 12,
            truncation_tolerance: 0.0,
        };
        let full = tmc_shapley(&ImportanceRun::new(3), &knn, &train, &valid, &params).unwrap();
        let cut = tmc_shapley(
            &ImportanceRun::new(3).with_budget(RunBudget::unlimited().with_max_utility_calls(17)),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        assert_eq!(cut.report.utility_calls, 17);
        let ckpt = cut.report.checkpoint.unwrap();
        let resumed = tmc_shapley(
            &ImportanceRun::new(3).with_checkpoint(&ckpt),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        assert_eq!(resumed.scores, full.scores);
        // The method-erased snapshot resumes identically.
        let snap = cut.report.snapshot.unwrap();
        let resumed = tmc_shapley(
            &ImportanceRun::new(3).with_resume(&snap),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        assert_eq!(resumed.scores, full.scores);
    }

    #[test]
    fn banzhaf_and_beta_budget_and_resume_through_run_options() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let run = ImportanceRun::new(7).with_threads(2);

        let (legacy, _) = crate::banzhaf::banzhaf_engine(
            &knn,
            &train,
            &valid,
            &BanzhafConfig {
                samples: 100,
                seed: 7,
                threads: 2,
            },
            None,
            BatchPolicy::Unbatched,
            &WorkerPool::shared(),
        )
        .unwrap();
        let params = BanzhafParams { samples: 100 };
        let full = banzhaf(&run, &knn, &train, &valid, &params).unwrap();
        assert_eq!(full.scores, legacy);
        assert!(full.report.utility_calls > 0);
        // Budget cut: Banzhaf's unit cost is 0/1 per sample, so the trip
        // point is exact; resuming from the snapshot is bit-identical.
        let cut = banzhaf(
            &run.clone()
                .with_budget(RunBudget::unlimited().with_max_utility_calls(40)),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        assert_eq!(cut.report.utility_calls, 40);
        let snap = cut.report.snapshot.unwrap();
        assert!(snap.step() < 100);
        let resumed = banzhaf(
            &run.clone().with_resume(&snap),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        assert_eq!(resumed.scores, full.scores);

        let (legacy, _) = crate::beta_shapley::beta_shapley_engine(
            &knn,
            &train,
            &valid,
            &BetaShapleyConfig {
                samples_per_point: 20,
                seed: 7,
                threads: 2,
                ..BetaShapleyConfig::default()
            },
            None,
            BatchPolicy::Unbatched,
            &WorkerPool::shared(),
        )
        .unwrap();
        let params = BetaShapleyParams {
            samples_per_point: 20,
            ..BetaShapleyParams::default()
        };
        let full = beta_shapley(&run, &knn, &train, &valid, &params).unwrap();
        assert_eq!(full.scores, legacy);
        // Point-granular cut after 2 of 5 points, then a bit-identical
        // resume through the method-erased snapshot.
        let cut = beta_shapley(
            &run.clone()
                .with_budget(RunBudget::unlimited().with_max_iterations(2)),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        let snap = cut.report.snapshot.unwrap();
        assert_eq!(snap.step(), 2);
        let resumed = beta_shapley(
            &run.clone().with_resume(&snap),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        assert_eq!(resumed.scores, full.scores);

        // A snapshot can never cross methods: the Banzhaf run's snapshot is
        // rejected by beta_shapley, and a TMC `with_checkpoint` by banzhaf.
        let banzhaf_snap = full_banzhaf_snapshot(&run, &knn, &train, &valid);
        assert!(matches!(
            beta_shapley(
                &run.clone().with_resume(&banzhaf_snap),
                &knn,
                &train,
                &valid,
                &params
            ),
            Err(ImportanceError::Checkpoint(_))
        ));
        let tmc = McCheckpoint::fresh(TMC_METHOD, 7, train.len());
        assert!(matches!(
            banzhaf(
                &run.clone().with_checkpoint(&tmc),
                &knn,
                &train,
                &valid,
                &BanzhafParams { samples: 100 }
            ),
            Err(ImportanceError::Checkpoint(_))
        ));
    }

    fn full_banzhaf_snapshot(
        run: &ImportanceRun,
        knn: &KnnClassifier,
        train: &Dataset,
        valid: &Dataset,
    ) -> EstimatorCheckpoint {
        banzhaf(run, knn, train, valid, &BanzhafParams { samples: 100 })
            .unwrap()
            .report
            .snapshot
            .unwrap()
    }

    #[test]
    fn store_persists_and_auto_resumes_runs() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let store = temp_store("auto-resume");
        let params = TmcParams {
            permutations: 12,
            truncation_tolerance: 0.0,
        };
        let full = tmc_shapley(&ImportanceRun::new(5), &knn, &train, &valid, &params).unwrap();

        // Segmented, budget-cut run: records land every 3 permutations.
        let cut = tmc_shapley(
            &ImportanceRun::new(5)
                .with_store(&store)
                .with_auto_checkpoint(3)
                .with_budget(RunBudget::unlimited().with_max_iterations(7)),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        let fp = cut.report.fingerprint.clone().unwrap();
        assert_eq!(fp.method, TMC_METHOD);
        assert!(cut.report.diagnostics.as_ref().unwrap().iterations < 12);
        assert!(!store.record_paths(&fp).unwrap().is_empty());

        // Same options, no explicit resume: picks up the latest record and
        // finishes bit-identically to the uninterrupted run.
        let resumed = tmc_shapley(
            &ImportanceRun::new(5).with_store(&store),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        assert_eq!(resumed.scores, full.scores);
        assert_eq!(resumed.report.diagnostics.unwrap().iterations, 12);

        // Banzhaf shares the store root under its own fingerprint, and a
        // fully segmented run still matches the one-shot scores bit-for-bit.
        let plain = banzhaf(
            &ImportanceRun::new(5),
            &knn,
            &train,
            &valid,
            &BanzhafParams { samples: 50 },
        )
        .unwrap();
        let segmented = banzhaf(
            &ImportanceRun::new(5)
                .with_store(&store)
                .with_auto_checkpoint(10),
            &knn,
            &train,
            &valid,
            &BanzhafParams { samples: 50 },
        )
        .unwrap();
        assert_eq!(segmented.scores, plain.scores);
        let bfp = segmented.report.fingerprint.unwrap();
        assert_ne!(bfp.key(), fp.key());
        assert!(!store.record_paths(&bfp).unwrap().is_empty());

        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn store_persists_the_memo_cache_across_runs() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let store = temp_store("memo");
        let params = BanzhafParams { samples: 60 };

        let warm_cache = MemoCache::new();
        let first = banzhaf(
            &ImportanceRun::new(2)
                .with_store(&store)
                .with_cache(&warm_cache),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        // The first run retrains for real (repeat subsets may hit in-run).
        assert!(first.report.batched_evals + first.report.fallback_evals > 0);

        // Simulate a crash that wiped the checkpoint records but left the
        // memo file: the re-run recomputes every sample, yet a fresh cache
        // in the "new process" is preloaded from the store, so every
        // logical call is answered without retraining.
        let fp = first.report.fingerprint.unwrap();
        for (_, path) in store.record_paths(&fp).unwrap() {
            std::fs::remove_file(path).unwrap();
        }
        let cold_cache = MemoCache::new();
        let second = banzhaf(
            &ImportanceRun::new(2)
                .with_store(&store)
                .with_cache(&cold_cache),
            &knn,
            &train,
            &valid,
            &params,
        )
        .unwrap();
        assert_eq!(second.scores, first.scores);
        assert_eq!(second.report.cache_hits, second.report.utility_calls);
        assert_eq!(
            second.report.batched_evals + second.report.fallback_evals,
            0
        );

        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn knn_matches_engine_and_reports_no_calls() {
        let (train, valid) = toy();
        let legacy =
            crate::knn_shapley::knn_engine(&train, &valid, 2, 3, &WorkerPool::shared()).unwrap();
        let unified =
            knn_shapley(&ImportanceRun::new(0).with_threads(3), &train, &valid, 2).unwrap();
        assert_eq!(unified.scores, legacy);
        assert_eq!(unified.report.utility_calls, 0);
        assert!(unified.report.checkpoint.is_none());
        assert!(unified.report.snapshot.is_none());

        let ckpt = McCheckpoint::fresh("tmc-shapley", 0, train.len());
        let resuming = ImportanceRun::new(0).with_checkpoint(&ckpt);
        assert!(matches!(
            knn_shapley(&resuming, &train, &valid, 2),
            Err(ImportanceError::Unsupported(_))
        ));
        let store = temp_store("knn-reject");
        let stored = ImportanceRun::new(0).with_store(&store);
        assert!(matches!(
            knn_shapley(&stored, &train, &valid, 2),
            Err(ImportanceError::Unsupported(_))
        ));
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn cache_is_shared_across_methods_through_the_run() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let cache = MemoCache::new();
        let run = ImportanceRun::new(11).with_cache(&cache);
        let plain = banzhaf(
            &ImportanceRun::new(11),
            &knn,
            &train,
            &valid,
            &BanzhafParams { samples: 120 },
        )
        .unwrap();
        let warm = banzhaf(&run, &knn, &train, &valid, &BanzhafParams { samples: 120 }).unwrap();
        let rerun = banzhaf(&run, &knn, &train, &valid, &BanzhafParams { samples: 120 }).unwrap();
        assert_eq!(plain.scores, warm.scores);
        assert_eq!(warm.scores, rerun.scores);
        // Second pass answers everything from the cache.
        assert_eq!(rerun.report.cache_hits, rerun.report.utility_calls);
        assert_eq!(rerun.report.batched_evals + rerun.report.fallback_evals, 0);
    }
}
