//! The batched utility evaluation engine.
//!
//! [`UtilityBatcher`] is the funnel every Monte-Carlo estimator pushes its
//! coalition evaluations through. It groups pending coalitions (a
//! permutation wave in TMC, a block of subset samples in Banzhaf, a point's
//! draws in Beta-Shapley) and evaluates the whole group against the
//! validation set in **one pass** when the model offers a batched scorer
//! ([`nde_ml::batch::CoalitionScorer`] — the KNN utility does, via its
//! shared train→valid distance matrix). Generic classifiers fall back to
//! per-coalition retraining behind the same interface.
//!
//! # Contract
//!
//! Batching is a *physical* optimization with no logical surface:
//!
//! - **Values** — for every coalition, the batcher returns exactly the
//!   `f64` that [`coalition_utility`] would (`U(∅) = 0` included), so an
//!   estimator's scores are bit-identical for every [`BatchPolicy`].
//! - **Cache first** — batch lookups consult the [`MemoCache`] before
//!   evaluating; hits still count as logical budget calls (the caller's
//!   clock accounting never consults the cache), so budget trip points are
//!   cache-independent.
//! - **Budgets** — callers clamp wave width with
//!   [`nde_robust::BudgetClock::remaining_utility_calls`]; the batcher
//!   itself never makes stopping decisions.
//!
//! The batcher is `Sync` (atomic counters only), so speculative parallel
//! workers share one instance — and one distance matrix — per run.

use crate::common::{coalition_utility, ImportanceError};
use nde_ml::batch::CoalitionScorer;
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_robust::par::{subset_fingerprint_sorted, MemoCache};
use std::sync::atomic::{AtomicU64, Ordering};

/// How an estimator groups coalition evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Evaluate coalitions one at a time (the legacy physical behavior).
    Unbatched,
    /// Group up to `size` pending coalitions and score them in one
    /// validation pass when the model supports it.
    Grouped {
        /// Maximum coalitions per batch (≥ 1; 1 behaves like `Unbatched`
        /// scheduling but still uses the shared-state scorer).
        size: usize,
    },
}

impl BatchPolicy {
    /// The default grouped width: big enough to amortize a validation pass,
    /// small enough that budget-clamped waves rarely shrink it.
    pub const DEFAULT_GROUP: usize = 32;

    /// Maximum number of coalitions an estimator should queue per wave.
    pub fn width(&self) -> usize {
        match self {
            BatchPolicy::Unbatched => 1,
            BatchPolicy::Grouped { size } => (*size).max(1),
        }
    }

    /// Whether the shared-state batched scorer may be used at all.
    pub fn batched(&self) -> bool {
        matches!(self, BatchPolicy::Grouped { .. })
    }
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy::Grouped {
            size: BatchPolicy::DEFAULT_GROUP,
        }
    }
}

/// Counters describing what a batcher physically did during a run.
///
/// These describe *physical* evaluation work, not logical budget
/// accounting: under speculative parallel execution a coalition can be
/// evaluated (or hit the cache) more than once before the sequential
/// settlement pass decides which results count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Grouped passes submitted to the batched scorer.
    pub batches_formed: u64,
    /// Coalitions evaluated through the batched scorer.
    pub batched_evals: u64,
    /// Coalitions evaluated through per-coalition retraining.
    pub fallback_evals: u64,
    /// Coalitions served from the memo cache.
    pub cache_hits: u64,
}

impl BatchStats {
    /// Total coalition evaluations answered (cache hits included).
    pub fn evals(&self) -> u64 {
        self.batched_evals + self.fallback_evals + self.cache_hits
    }

    /// Accumulate another segment's counters into this one (used when a
    /// run is driven in auto-checkpointed segments).
    pub fn merge(&mut self, other: &BatchStats) {
        self.batches_formed += other.batches_formed;
        self.batched_evals += other.batched_evals;
        self.fallback_evals += other.fallback_evals;
        self.cache_hits += other.cache_hits;
    }
}

/// Groups coalition evaluations and answers them cache-first, batched when
/// the model supports it, per-coalition otherwise.
///
/// Built once per estimator run; shared by reference across worker threads.
pub struct UtilityBatcher<'a, C: Classifier> {
    template: &'a C,
    train: &'a Dataset,
    valid: &'a Dataset,
    cache: Option<&'a MemoCache>,
    scorer: Option<Box<dyn CoalitionScorer>>,
    policy: BatchPolicy,
    batches_formed: AtomicU64,
    batched_evals: AtomicU64,
    fallback_evals: AtomicU64,
    cache_hits: AtomicU64,
}

impl<'a, C: Classifier> UtilityBatcher<'a, C> {
    /// Prepare a batcher for one `(template, train, valid)` triple.
    ///
    /// Under a [`BatchPolicy::Grouped`] policy this asks the model for its
    /// batched scorer once — for KNN that computes the shared distance
    /// matrix here, up front.
    pub fn new(
        template: &'a C,
        train: &'a Dataset,
        valid: &'a Dataset,
        cache: Option<&'a MemoCache>,
        policy: BatchPolicy,
    ) -> UtilityBatcher<'a, C> {
        let scorer = if policy.batched() {
            template.coalition_scorer(train, valid)
        } else {
            None
        };
        UtilityBatcher {
            template,
            train,
            valid,
            cache,
            scorer,
            policy,
            batches_formed: AtomicU64::new(0),
            batched_evals: AtomicU64::new(0),
            fallback_evals: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// The maximum wave width estimators should queue before evaluating.
    pub fn width(&self) -> usize {
        self.policy.width()
    }

    /// Number of training examples coalitions index into.
    pub fn train_len(&self) -> usize {
        self.train.len()
    }

    /// Snapshot the physical-work counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            batches_formed: self.batches_formed.load(Ordering::Relaxed),
            batched_evals: self.batched_evals.load(Ordering::Relaxed),
            fallback_evals: self.fallback_evals.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Utility of a single **sorted** coalition (`U(∅) = 0`).
    pub fn eval_one(&self, sorted: &[usize]) -> Result<f64, ImportanceError> {
        Ok(self.eval_batch(std::slice::from_ref(&sorted))?[0])
    }

    /// Utilities of a wave of **sorted** coalitions, in order.
    ///
    /// Cache hits are filled first; the misses go to the batched scorer in
    /// one pass (or the per-coalition fallback) and are inserted into the
    /// cache afterwards. Values are bit-identical to calling
    /// [`coalition_utility`] on each coalition separately.
    pub fn eval_batch<S: AsRef<[usize]>>(
        &self,
        coalitions: &[S],
    ) -> Result<Vec<f64>, ImportanceError> {
        let mut out = vec![0.0; coalitions.len()];
        let mut miss_slots: Vec<usize> = Vec::new();
        let mut miss_keys: Vec<u64> = Vec::new();
        let mut misses: Vec<&[usize]> = Vec::new();
        for (slot, c) in coalitions.iter().enumerate() {
            let c = c.as_ref();
            if c.is_empty() {
                // U(∅) = 0 by convention, never evaluated or cached.
                continue;
            }
            if let Some(cache) = self.cache {
                let key = subset_fingerprint_sorted(c);
                if let Some(v) = cache.get(key) {
                    out[slot] = v;
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                miss_keys.push(key);
            }
            miss_slots.push(slot);
            misses.push(c);
        }
        if misses.is_empty() {
            return Ok(out);
        }
        let values: Vec<f64> = match &self.scorer {
            Some(scorer) => {
                self.batches_formed.fetch_add(1, Ordering::Relaxed);
                self.batched_evals
                    .fetch_add(misses.len() as u64, Ordering::Relaxed);
                scorer.score_batch(&misses)
            }
            None => {
                self.fallback_evals
                    .fetch_add(misses.len() as u64, Ordering::Relaxed);
                misses
                    .iter()
                    .map(|c| coalition_utility(self.template, self.train, self.valid, c, None))
                    .collect::<Result<_, _>>()?
            }
        };
        for (pos, (&slot, &v)) in miss_slots.iter().zip(&values).enumerate() {
            out[slot] = v;
            if let Some(cache) = self.cache {
                // Membership-tagged, so cleaning fixes can invalidate only
                // the coalitions that contain a repaired row.
                cache.insert_with_members(miss_keys[pos], v, misses[pos]);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;
    use nde_ml::models::knn::KnnClassifier;
    use nde_ml::models::majority::MajorityClassifier;

    fn workload(n: usize, m: usize, seed: u64) -> (Dataset, Dataset) {
        let nd = two_gaussians(n + m, 3, 3.0, seed);
        let all = Dataset::try_from(&nd).unwrap();
        let train = all.subset(&(0..n).collect::<Vec<_>>());
        let valid = all.subset(&(n..n + m).collect::<Vec<_>>());
        (train, valid)
    }

    fn coalitions(n: usize) -> Vec<Vec<usize>> {
        vec![
            vec![],
            vec![0],
            vec![1, 3, 5],
            (0..n).collect(),
            vec![2, 4],
            vec![1, 3, 5],
        ]
    }

    #[test]
    fn batched_matches_coalition_utility_exactly() {
        let (train, valid) = workload(14, 7, 1);
        let knn = KnnClassifier::new(3);
        for policy in [
            BatchPolicy::Unbatched,
            BatchPolicy::Grouped { size: 4 },
            BatchPolicy::default(),
        ] {
            let batcher = UtilityBatcher::new(&knn, &train, &valid, None, policy);
            let got = batcher.eval_batch(&coalitions(14)).unwrap();
            for (c, &g) in coalitions(14).iter().zip(&got) {
                let want = coalition_utility(&knn, &train, &valid, c, None).unwrap();
                assert_eq!(g, want, "policy={policy:?} coalition={c:?}");
            }
        }
    }

    #[test]
    fn grouped_policy_uses_the_batched_scorer() {
        let (train, valid) = workload(10, 5, 2);
        let knn = KnnClassifier::new(1);
        let batcher =
            UtilityBatcher::new(&knn, &train, &valid, None, BatchPolicy::Grouped { size: 8 });
        batcher.eval_batch(&coalitions(10)).unwrap();
        let stats = batcher.stats();
        assert_eq!(stats.batches_formed, 1);
        assert_eq!(stats.batched_evals, 5, "empty coalition never evaluated");
        assert_eq!(stats.fallback_evals, 0);
    }

    #[test]
    fn unbatched_policy_never_builds_a_scorer() {
        let (train, valid) = workload(10, 5, 2);
        let knn = KnnClassifier::new(1);
        let batcher = UtilityBatcher::new(&knn, &train, &valid, None, BatchPolicy::Unbatched);
        batcher.eval_batch(&coalitions(10)).unwrap();
        let stats = batcher.stats();
        assert_eq!(stats.batches_formed, 0);
        assert_eq!(stats.batched_evals, 0);
        assert_eq!(stats.fallback_evals, 5);
        assert_eq!(batcher.width(), 1);
    }

    #[test]
    fn generic_classifiers_fall_back_per_coalition() {
        let (train, valid) = workload(10, 5, 3);
        let majority = MajorityClassifier::new();
        let batcher = UtilityBatcher::new(&majority, &train, &valid, None, BatchPolicy::default());
        let got = batcher.eval_batch(&coalitions(10)).unwrap();
        for (c, &g) in coalitions(10).iter().zip(&got) {
            let want = coalition_utility(&majority, &train, &valid, c, None).unwrap();
            assert_eq!(g, want);
        }
        assert_eq!(batcher.stats().fallback_evals, 5);
        assert_eq!(batcher.stats().batches_formed, 0);
    }

    #[test]
    fn cache_is_consulted_first_and_filled_after() {
        let (train, valid) = workload(12, 6, 4);
        let knn = KnnClassifier::new(1);
        let cache = MemoCache::new();
        let batcher = UtilityBatcher::new(
            &knn,
            &train,
            &valid,
            Some(&cache),
            BatchPolicy::Grouped { size: 8 },
        );
        let first = batcher.eval_batch(&coalitions(12)).unwrap();
        // The duplicate coalition [1,3,5] appears twice in one wave: the
        // second occurrence misses (both were queued before insertion) but
        // the whole wave is still one batch.
        let after_first = batcher.stats();
        assert_eq!(after_first.batches_formed, 1);
        let second = batcher.eval_batch(&coalitions(12)).unwrap();
        assert_eq!(first, second);
        let after_second = batcher.stats();
        // Second wave: all five non-empty coalitions hit.
        assert_eq!(after_second.cache_hits - after_first.cache_hits, 5);
        assert_eq!(after_second.batched_evals, after_first.batched_evals);
        assert_eq!(cache.len(), 4, "four distinct non-empty coalitions");
    }

    #[test]
    fn eval_one_matches_batch_of_one() {
        let (train, valid) = workload(9, 4, 5);
        let knn = KnnClassifier::new(2);
        let batcher = UtilityBatcher::new(&knn, &train, &valid, None, BatchPolicy::default());
        assert_eq!(batcher.eval_one(&[]).unwrap(), 0.0);
        let v = batcher.eval_one(&[0, 4, 8]).unwrap();
        let want = coalition_utility(&knn, &train, &valid, &[0, 4, 8], None).unwrap();
        assert_eq!(v, want);
    }
}
