//! Truncated Monte-Carlo Data Shapley (Ghorbani & Zou, ICML'19).
//!
//! Samples random permutations of the training data and accumulates the
//! marginal utility of adding each example to the prefix before it.
//! Truncation skips the tail of a permutation once the prefix utility is
//! within `truncation_tolerance` of the full-data utility (the marginal
//! contributions there are ≈ 0). Permutations are distributed over worker
//! threads; determinism is preserved via per-permutation child seeds.

use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_data::rng::SliceRandom;
use nde_data::rng::{child_seed, seeded};
use nde_ml::dataset::Dataset;
use nde_ml::model::{utility, Classifier};
use nde_robust::{ConvergenceDiagnostics, McCheckpoint, RunBudget};

/// Configuration for the TMC-Shapley estimator.
#[derive(Debug, Clone)]
pub struct ShapleyConfig {
    /// Number of sampled permutations.
    pub permutations: usize,
    /// Truncate a permutation once `|U(prefix) − U(full)|` falls below this.
    pub truncation_tolerance: f64,
    /// Base seed (each permutation uses a derived child seed).
    pub seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for ShapleyConfig {
    fn default() -> Self {
        ShapleyConfig {
            permutations: 100,
            truncation_tolerance: 0.01,
            seed: 0,
            threads: 1,
        }
    }
}

/// TMC-Shapley values of all training examples, with utility = accuracy of a
/// fresh `template` clone on `valid`.
pub fn tmc_shapley<C>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    config: &ShapleyConfig,
) -> Result<ImportanceScores>
where
    C: Classifier + Send + Sync,
{
    if config.permutations == 0 {
        return Err(ImportanceError::InvalidArgument(
            "need at least one permutation".into(),
        ));
    }
    if train.is_empty() {
        return Err(ImportanceError::InvalidArgument(
            "empty training set".into(),
        ));
    }
    let n = train.len();
    let full_utility = utility(template, train, valid)?;
    let threads = config.threads.max(1).min(config.permutations);

    // Partition permutation indices across workers.
    let totals: Vec<f64> = if threads == 1 {
        run_permutations(
            template,
            train,
            valid,
            full_utility,
            config,
            0,
            config.permutations,
        )?
    } else {
        let chunk = config.permutations.div_ceil(threads);
        let results: Vec<Result<Vec<f64>>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(config.permutations);
                if start >= end {
                    break;
                }
                handles.push(scope.spawn(move || {
                    run_permutations(template, train, valid, full_utility, config, start, end)
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        Err(ImportanceError::WorkerPanic(msg))
                    })
                })
                .collect()
        });
        let mut acc = vec![0.0; n];
        for r in results {
            for (a, v) in acc.iter_mut().zip(r?) {
                *a += v;
            }
        }
        acc
    };

    let values = totals
        .into_iter()
        .map(|v| v / config.permutations as f64)
        .collect();
    Ok(ImportanceScores::new("tmc-shapley", values))
}

/// Result of a budget-aware TMC-Shapley run: the (possibly best-so-far)
/// scores, how far the run got, and a checkpoint to resume from.
#[derive(Debug, Clone)]
pub struct BudgetedShapley {
    /// Shapley estimates, averaged over the permutations completed so far.
    pub scores: ImportanceScores,
    /// How much work was done and whether a budget limit stopped the run.
    pub diagnostics: ConvergenceDiagnostics,
    /// Snapshot to pass back as `resume` to continue the same estimation.
    /// Resuming an interrupted run is bit-identical to never interrupting.
    pub checkpoint: McCheckpoint,
}

/// Method tag used in budgeted TMC-Shapley checkpoints.
const TMC_METHOD: &str = "tmc-shapley";

/// Budget-aware, resumable TMC-Shapley.
///
/// Runs permutations sequentially, checking the budget at permutation
/// boundaries. On exhaustion it **degrades gracefully**: the scores
/// averaged over the permutations finished so far are returned, tagged with
/// [`ConvergenceDiagnostics`] (including the largest per-example marginal
/// standard error) and a [`McCheckpoint`] that a later call can `resume`
/// from. Because permutation `p` draws from `child_seed(config.seed, p)`,
/// an interrupted-and-resumed run produces bit-identical scores to an
/// uninterrupted one.
pub fn tmc_shapley_budgeted<C: Classifier>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    config: &ShapleyConfig,
    budget: &RunBudget,
    resume: Option<&McCheckpoint>,
) -> Result<BudgetedShapley> {
    if config.permutations == 0 {
        return Err(ImportanceError::InvalidArgument(
            "need at least one permutation".into(),
        ));
    }
    if train.is_empty() {
        return Err(ImportanceError::InvalidArgument(
            "empty training set".into(),
        ));
    }
    // Corrupt features would silently poison every marginal; fail with the
    // offending cell before spending any budget.
    for (name, data) in [("training", train), ("validation", valid)] {
        if let Some((row, col)) = data.first_non_finite() {
            return Err(ImportanceError::Ml(format!(
                "{name} data holds a non-finite feature at row {row}, column {col}"
            )));
        }
    }
    let n = train.len();
    let mut state = match resume {
        Some(cp) => {
            cp.validate()
                .map_err(|e| ImportanceError::Checkpoint(e.to_string()))?;
            if cp.method != TMC_METHOD {
                return Err(ImportanceError::Checkpoint(format!(
                    "checkpoint is for method `{}`, not `{TMC_METHOD}`",
                    cp.method
                )));
            }
            if cp.seed != config.seed || cp.n != n {
                return Err(ImportanceError::Checkpoint(format!(
                    "checkpoint (seed {}, n {}) does not match run (seed {}, n {n})",
                    cp.seed, cp.n, config.seed
                )));
            }
            if cp.cursor > config.permutations as u64 {
                return Err(ImportanceError::Checkpoint(format!(
                    "checkpoint cursor {} exceeds configured permutations {}",
                    cp.cursor, config.permutations
                )));
            }
            cp.clone()
        }
        None => McCheckpoint::fresh(TMC_METHOD, config.seed, n),
    };

    let mut clock = budget.resume(state.cursor, state.utility_calls);
    let full_utility = utility(template, train, valid)?;
    clock.record_utility_calls(1);

    while state.cursor < config.permutations as u64 {
        if clock.exhausted().is_some() {
            break;
        }
        let (marginals, calls) =
            one_permutation(template, train, valid, full_utility, config, state.cursor)?;
        // Fold the finished permutation in whole, so a checkpoint taken here
        // resumes bit-identically.
        for (i, &m) in marginals.iter().enumerate().take(n) {
            state.totals[i] += m;
            state.totals_sq[i] += m * m;
        }
        state.cursor += 1;
        clock.record_iteration();
        clock.record_utility_calls(calls);
    }
    state.utility_calls = clock.utility_calls();

    let done = state.cursor;
    let values: Vec<f64> = if done == 0 {
        vec![0.0; n]
    } else {
        state.totals.iter().map(|t| t / done as f64).collect()
    };
    let max_se = if done == 0 {
        None
    } else {
        let p = done as f64;
        state
            .totals
            .iter()
            .zip(&state.totals_sq)
            .map(|(&t, &sq)| {
                let mean = t / p;
                let var = (sq / p - mean * mean).max(0.0);
                (var / p).sqrt()
            })
            .fold(None, |acc: Option<f64>, se| {
                Some(acc.map_or(se, |a| a.max(se)))
            })
    };

    Ok(BudgetedShapley {
        scores: ImportanceScores::new(TMC_METHOD, values),
        diagnostics: clock.diagnostics(max_se),
        checkpoint: state,
    })
}

/// Marginal contributions of one permutation, plus how many utility calls
/// it spent. Permutation `p` depends only on `child_seed(config.seed, p)`.
fn one_permutation<C: Classifier>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    full_utility: f64,
    config: &ShapleyConfig,
    p: u64,
) -> Result<(Vec<f64>, u64)> {
    let n = train.len();
    let mut marginals = vec![0.0; n];
    let mut rng = seeded(child_seed(config.seed, p));
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    let mut prev_u = 0.0;
    let mut calls = 0u64;
    for &i in &order {
        prefix.push(i);
        let subset = train.subset(&prefix);
        let u = utility(template, &subset, valid)?;
        calls += 1;
        marginals[i] = u - prev_u;
        prev_u = u;
        if (full_utility - u).abs() < config.truncation_tolerance {
            break; // remaining marginals stay 0
        }
    }
    Ok((marginals, calls))
}

/// Accumulate marginal contributions over permutations `[start, end)`.
fn run_permutations<C: Classifier>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    full_utility: f64,
    config: &ShapleyConfig,
    start: usize,
    end: usize,
) -> Result<Vec<f64>> {
    let n = train.len();
    let mut totals = vec![0.0; n];
    let mut order: Vec<usize> = (0..n).collect();
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    for p in start..end {
        let mut rng = seeded(child_seed(config.seed, p as u64));
        // Reset to the identity before shuffling so permutation `p` depends
        // only on its child seed — not on which worker ran the previous one.
        for (slot, v) in order.iter_mut().enumerate() {
            *v = slot;
        }
        order.shuffle(&mut rng);
        prefix.clear();
        // Empty-prefix utility: majority prediction is undefined with zero
        // data; use 0 utility, matching the convention U(∅) = 0.
        let mut prev_u = 0.0;
        let mut truncated = false;
        for &i in &order {
            if truncated {
                // Marginal contribution treated as 0.
                continue;
            }
            prefix.push(i);
            let subset = train.subset(&prefix);
            let u = utility(template, &subset, valid)?;
            totals[i] += u - prev_u;
            prev_u = u;
            if (full_utility - u).abs() < config.truncation_tolerance {
                truncated = true;
            }
        }
    }
    Ok(totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_ml::models::knn::KnnClassifier;

    fn toy() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1], // mislabelled
            ],
            vec![0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.12], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn mislabelled_point_has_lowest_shapley_value() {
        let (train, valid) = toy();
        let cfg = ShapleyConfig {
            permutations: 200,
            truncation_tolerance: 0.0,
            seed: 1,
            threads: 1,
        };
        let scores = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(scores.bottom_k(1), vec![4]);
        assert!(scores.values[4] < 0.0);
        // Clean points have positive value.
        assert!(scores.values[0] > 0.0);
        assert!(scores.values[2] > 0.0);
    }

    #[test]
    fn efficiency_axiom_approximately_holds() {
        // Sum of Shapley values = U(full) − U(∅) = U(full).
        let (train, valid) = toy();
        let cfg = ShapleyConfig {
            permutations: 500,
            truncation_tolerance: 0.0,
            seed: 2,
            threads: 1,
        };
        let scores = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let sum: f64 = scores.values.iter().sum();
        let full = utility(&KnnClassifier::new(1), &train, &valid).unwrap();
        // With no truncation, every permutation's marginals telescope to
        // exactly U(full), so this holds to floating-point error.
        assert!((sum - full).abs() < 1e-9, "sum={sum} full={full}");
    }

    #[test]
    fn deterministic_and_parallel_consistent() {
        let (train, valid) = toy();
        let mut cfg = ShapleyConfig {
            permutations: 60,
            truncation_tolerance: 0.0,
            seed: 3,
            threads: 1,
        };
        let a = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let b = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(a, b);
        // Same result regardless of thread count (work is seed-partitioned).
        cfg.threads = 4;
        let c = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        for (x, y) in a.values.iter().zip(&c.values) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn truncation_reduces_no_worse_than_tolerance() {
        let (train, valid) = toy();
        let exact_cfg = ShapleyConfig {
            permutations: 300,
            truncation_tolerance: 0.0,
            seed: 4,
            threads: 1,
        };
        let trunc_cfg = ShapleyConfig {
            truncation_tolerance: 0.05,
            ..exact_cfg.clone()
        };
        let exact = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &exact_cfg).unwrap();
        let trunc = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &trunc_cfg).unwrap();
        // Rankings agree on the harmful point.
        assert_eq!(exact.bottom_k(1), trunc.bottom_k(1));
    }

    #[test]
    fn validates_arguments() {
        let (train, valid) = toy();
        let cfg = ShapleyConfig {
            permutations: 0,
            ..Default::default()
        };
        assert!(tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).is_err());
        let empty = train.subset(&[]);
        assert!(tmc_shapley(
            &KnnClassifier::new(1),
            &empty,
            &valid,
            &ShapleyConfig::default()
        )
        .is_err());
    }

    fn budget_cfg(permutations: usize) -> ShapleyConfig {
        ShapleyConfig {
            permutations,
            truncation_tolerance: 0.0,
            seed: 7,
            threads: 1,
        }
    }

    #[test]
    fn budgeted_with_unlimited_budget_matches_plain_tmc() {
        let (train, valid) = toy();
        let cfg = budget_cfg(40);
        let knn = KnnClassifier::new(1);
        let plain = tmc_shapley(&knn, &train, &valid, &cfg).unwrap();
        let run = tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &RunBudget::unlimited(), None)
            .unwrap();
        assert_eq!(run.scores.values, plain.values);
        assert!(run.diagnostics.completed());
        assert_eq!(run.diagnostics.iterations, 40);
        assert_eq!(run.checkpoint.cursor, 40);
        assert!(run.diagnostics.max_marginal_std_error.unwrap() >= 0.0);
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        let (train, valid) = toy();
        let cfg = budget_cfg(50);
        let knn = KnnClassifier::new(1);
        let budget = RunBudget::unlimited().with_max_iterations(5);
        let run = tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &budget, None).unwrap();
        assert!(!run.diagnostics.completed());
        assert_eq!(
            run.diagnostics.exhausted,
            Some(nde_robust::Exhaustion::Iterations)
        );
        assert_eq!(run.checkpoint.cursor, 5);
        // Best-so-far estimate is still a usable average.
        assert!(run.scores.values.iter().all(|v| v.is_finite()));
        let budget = RunBudget::unlimited().with_max_utility_calls(8);
        let run = tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &budget, None).unwrap();
        assert_eq!(
            run.diagnostics.exhausted,
            Some(nde_robust::Exhaustion::UtilityCalls)
        );
        assert!(run.checkpoint.cursor < 50);
    }

    #[test]
    fn interrupted_plus_resumed_is_bit_identical_to_uninterrupted() {
        let (train, valid) = toy();
        let cfg = budget_cfg(30);
        let knn = KnnClassifier::new(1);
        let uninterrupted =
            tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &RunBudget::unlimited(), None)
                .unwrap();
        // Stop after 11 permutations, round-trip the checkpoint through
        // JSON, then finish the remaining 19.
        let first = tmc_shapley_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited().with_max_iterations(11),
            None,
        )
        .unwrap();
        assert_eq!(first.checkpoint.cursor, 11);
        let restored = McCheckpoint::from_json(&first.checkpoint.to_json()).unwrap();
        assert_eq!(restored, first.checkpoint);
        let resumed = tmc_shapley_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            Some(&restored),
        )
        .unwrap();
        assert_eq!(resumed.scores.values, uninterrupted.scores.values);
        assert_eq!(resumed.checkpoint.cursor, uninterrupted.checkpoint.cursor);
        assert_eq!(resumed.checkpoint.totals, uninterrupted.checkpoint.totals);
        assert_eq!(
            resumed.checkpoint.totals_sq,
            uninterrupted.checkpoint.totals_sq
        );
        // Resuming re-primes the full-utility value, so the resumed run
        // honestly accounts one extra utility call.
        assert_eq!(
            resumed.checkpoint.utility_calls,
            uninterrupted.checkpoint.utility_calls + 1
        );
    }

    #[test]
    fn rejects_mismatched_checkpoints_and_corrupt_features() {
        let (train, valid) = toy();
        let cfg = budget_cfg(10);
        let knn = KnnClassifier::new(1);
        let other = McCheckpoint::fresh("tmc-shapley", 999, train.len());
        let err = tmc_shapley_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            Some(&other),
        );
        assert!(matches!(err, Err(ImportanceError::Checkpoint(_))));
        let wrong_method = McCheckpoint::fresh("zorro", cfg.seed, train.len());
        assert!(matches!(
            tmc_shapley_budgeted(
                &knn,
                &train,
                &valid,
                &cfg,
                &RunBudget::unlimited(),
                Some(&wrong_method)
            ),
            Err(ImportanceError::Checkpoint(_))
        ));
        let mut poisoned = train.clone();
        poisoned.x.set(1, 0, f64::NAN);
        let err =
            tmc_shapley_budgeted(&knn, &poisoned, &valid, &cfg, &RunBudget::unlimited(), None);
        assert!(matches!(err, Err(ImportanceError::Ml(m)) if m.contains("row 1")));
    }
}
