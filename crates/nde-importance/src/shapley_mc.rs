//! Truncated Monte-Carlo Data Shapley (Ghorbani & Zou, ICML'19).
//!
//! Samples random permutations of the training data and accumulates the
//! marginal utility of adding each example to the prefix before it.
//! Truncation skips the tail of a permutation once the prefix utility is
//! within `truncation_tolerance` of the full-data utility (the marginal
//! contributions there are ≈ 0).
//!
//! # Determinism
//!
//! Permutation `p` depends only on `child_seed(config.seed, p)`, and every
//! coalition is evaluated in **sorted index order**, so its utility is a
//! pure function of the index set. Parallel runs go through the
//! speculative-execution + sequential-settlement scheme of
//! [`nde_robust::par`]: workers evaluate permutations out of order, then
//! the results are folded front-to-back under the authoritative
//! [`BudgetClock`]. The folded scores, diagnostics counters, and
//! checkpoints are therefore bit-identical for every thread count,
//! with or without a tripped budget, and across checkpoint/resume cycles.
//!
//! # Batched waves
//!
//! A permutation walk queues up to [`BatchPolicy::width`] consecutive
//! prefix coalitions as one *wave* and evaluates them through the
//! [`UtilityBatcher`] in a single validation pass (for the KNN utility this
//! reuses one shared train→valid distance matrix per run). The wave is then
//! folded **sequentially**: the truncation rule and the per-call budget
//! accounting fire in exactly the order the unbatched walk would, so
//! batching changes physical cost only — scores, trip points and
//! checkpoints are bit-identical under every policy. A wave past a
//! truncation point may physically evaluate (and cache) a few coalitions
//! the logical walk discards; values are pure, so this is unobservable in
//! the results.
//!
//! # Budget granularity
//!
//! The utility-call budget is enforced **per call**: a run can stop partway
//! through a permutation, recording an [`InflightPermutation`] in its
//! checkpoint so resume continues the walk mid-permutation instead of
//! redoing it. Budget-enforced walks clamp their wave width to
//! [`BudgetClock::remaining_utility_calls`] so a tripping budget never pays
//! for evaluations the stopping rule will discard. Iteration and wall-clock
//! budgets stop at permutation boundaries (a wall-clock cut is inherently
//! schedule-dependent, so it is never allowed to decide a mid-permutation
//! split).

use crate::batch::{BatchPolicy, BatchStats, UtilityBatcher};
use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_data::rng::SliceRandom;
use nde_data::rng::{child_seed, seeded};
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_robust::par::{AtomicBudgetClock, CostHint, MemoCache, WorkerFailure, WorkerPool};
use nde_robust::{
    BudgetClock, ConvergenceDiagnostics, InflightPermutation, McCheckpoint, RunBudget,
};
use std::sync::atomic::AtomicBool;

/// Configuration for the TMC-Shapley estimator.
#[derive(Debug, Clone)]
pub struct ShapleyConfig {
    /// Number of sampled permutations.
    pub permutations: usize,
    /// Truncate a permutation once `|U(prefix) − U(full)|` falls below this.
    pub truncation_tolerance: f64,
    /// Base seed (each permutation uses a derived child seed).
    pub seed: u64,
    /// Worker threads (1 = sequential; results are identical either way).
    pub threads: usize,
}

impl Default for ShapleyConfig {
    fn default() -> Self {
        ShapleyConfig {
            permutations: 100,
            truncation_tolerance: 0.01,
            seed: 0,
            threads: 1,
        }
    }
}

/// Result of a budget-aware TMC-Shapley run: the (possibly best-so-far)
/// scores, how far the run got, and a checkpoint to resume from.
#[derive(Debug, Clone)]
pub struct BudgetedShapley {
    /// Shapley estimates, averaged over the permutations completed so far.
    pub scores: ImportanceScores,
    /// How much work was done and whether a budget limit stopped the run.
    pub diagnostics: ConvergenceDiagnostics,
    /// Snapshot to pass back as `resume` to continue the same estimation.
    /// Resuming an interrupted run is bit-identical to never interrupting.
    pub checkpoint: McCheckpoint,
}

/// Method tag used in budgeted TMC-Shapley checkpoints.
pub(crate) const TMC_METHOD: &str = "tmc-shapley";

/// The budget-aware, resumable, batch-capable TMC-Shapley engine behind
/// the [`tmc_shapley()`](crate::run::tmc_shapley) entry point.
///
/// On exhaustion it **degrades gracefully**: the scores averaged over the
/// permutations finished so far are returned, tagged with
/// [`ConvergenceDiagnostics`] (including the largest per-example marginal
/// standard error) and a [`McCheckpoint`] that a later call can resume
/// from — including mid-permutation, via the checkpoint's in-flight state.
///
/// Cache hits still count as (logical) utility calls against the budget, so
/// a cached run trips its budget at exactly the same point as an uncached
/// one and stays bit-identical to it — the cache only removes *physical*
/// model retrains. The cache must be dedicated to this
/// `(template, train, valid)` triple.
#[allow(clippy::too_many_arguments)]
pub(crate) fn tmc_engine<C>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    config: &ShapleyConfig,
    budget: &RunBudget,
    resume: Option<&McCheckpoint>,
    cache: Option<&MemoCache>,
    policy: BatchPolicy,
    pool: &WorkerPool,
) -> Result<(BudgetedShapley, BatchStats)>
where
    C: Classifier + Send + Sync,
{
    if config.permutations == 0 {
        return Err(ImportanceError::InvalidArgument(
            "need at least one permutation".into(),
        ));
    }
    if train.is_empty() {
        return Err(ImportanceError::InvalidArgument(
            "empty training set".into(),
        ));
    }
    // Corrupt features would silently poison every marginal; fail with the
    // offending cell before spending any budget.
    for (name, data) in [("training", train), ("validation", valid)] {
        if let Some((row, col)) = data.first_non_finite() {
            return Err(ImportanceError::Ml(format!(
                "{name} data holds a non-finite feature at row {row}, column {col}"
            )));
        }
    }
    let n = train.len();
    let total = config.permutations as u64;
    let mut state = match resume {
        Some(cp) => {
            cp.validate()
                .map_err(|e| ImportanceError::Checkpoint(e.to_string()))?;
            if cp.method != TMC_METHOD {
                return Err(ImportanceError::Checkpoint(format!(
                    "checkpoint is for method `{}`, not `{TMC_METHOD}`",
                    cp.method
                )));
            }
            if cp.seed != config.seed || cp.n != n {
                return Err(ImportanceError::Checkpoint(format!(
                    "checkpoint (seed {}, n {}) does not match run (seed {}, n {n})",
                    cp.seed, cp.n, config.seed
                )));
            }
            if cp.cursor > total || (cp.cursor == total && cp.inflight.is_some()) {
                return Err(ImportanceError::Checkpoint(format!(
                    "checkpoint cursor {} exceeds configured permutations {}",
                    cp.cursor, config.permutations
                )));
            }
            cp.clone()
        }
        None => McCheckpoint::fresh(TMC_METHOD, config.seed, n),
    };

    let batcher = UtilityBatcher::new(template, train, valid, cache, policy);
    let mut clock = budget.resume(state.cursor, state.utility_calls);
    if clock.exhausted().is_none() {
        // Re-prime the full-data utility (one honestly-accounted call; a
        // cache hit on resume still counts).
        let all: Vec<usize> = (0..n).collect();
        let full_utility = batcher.eval_one(&all)?;
        clock.record_utility_calls(1);
        let mut scratch = WalkScratch::new(n);

        // Finish an interrupted permutation walk before anything else.
        if let Some(inflight) = state.inflight.take() {
            let expected_rng = state.rng_state.take();
            let outcome = walk_permutation(
                &batcher,
                full_utility,
                config,
                state.cursor,
                &mut scratch,
                Some(&inflight),
                expected_rng,
                Some(&mut clock),
            )?;
            settle(&mut state, &mut clock, outcome);
        }

        // Speculative parallel rounds + authoritative sequential settlement.
        // A permutation walk retrains a model per coalition: firmly past
        // the sequential cutoff, so hint "expensive" instead of probing.
        let cost = CostHint::PerItemNanos(1_000_000);
        while state.inflight.is_none() && state.cursor < total && clock.exhausted().is_none() {
            let shared =
                AtomicBudgetClock::resume(budget, clock.iterations(), clock.utility_calls());
            let stop = AtomicBool::new(false);
            let round = pool
                .map_indexed_scratch(
                    config.threads,
                    state.cursor..total,
                    &stop,
                    cost,
                    || WalkScratch::new(n),
                    |ws, p| -> Result<(Vec<f64>, u64)> {
                        let outcome = walk_permutation(
                            &batcher,
                            full_utility,
                            config,
                            p,
                            ws,
                            None,
                            None,
                            None,
                        )?;
                        match outcome {
                            WalkOutcome::Complete { marginals, calls } => {
                                shared.record_iteration();
                                shared.record_utility_calls(calls);
                                shared.arm_stop(&stop);
                                Ok((marginals, calls))
                            }
                            WalkOutcome::Tripped { .. } => {
                                unreachable!("speculative walks run without a clock")
                            }
                        }
                    },
                )
                .map_err(|fail| match fail {
                    WorkerFailure::Err(_, e) => e,
                    WorkerFailure::Panic(_, msg) => ImportanceError::WorkerPanic(msg),
                })?;

            for (p, (marginals, calls)) in round {
                if p != state.cursor || clock.exhausted().is_some() {
                    // A gap after an early stop (the next round re-claims
                    // it), or a boundary-granular budget stop.
                    break;
                }
                if clock.would_exceed_utility(calls) {
                    // The deterministic stopping point is inside this
                    // permutation: re-walk it under the authoritative clock
                    // to construct the exact mid-permutation state (served
                    // from cache when one is attached).
                    let outcome = walk_permutation(
                        &batcher,
                        full_utility,
                        config,
                        p,
                        &mut scratch,
                        None,
                        None,
                        Some(&mut clock),
                    )?;
                    settle(&mut state, &mut clock, outcome);
                    break;
                }
                fold_marginals(&mut state, &marginals);
                state.cursor += 1;
                clock.record_iteration();
                clock.record_utility_calls(calls);
            }
        }
    }
    state.utility_calls = clock.utility_calls();

    // Scores average only fully-folded permutations; in-flight partial
    // marginals live solely in the checkpoint.
    let done = state.cursor;
    let values: Vec<f64> = if done == 0 {
        vec![0.0; n]
    } else {
        state.totals.iter().map(|t| t / done as f64).collect()
    };
    let max_se = if done == 0 {
        None
    } else {
        let p = done as f64;
        state
            .totals
            .iter()
            .zip(&state.totals_sq)
            .map(|(&t, &sq)| {
                let mean = t / p;
                let var = (sq / p - mean * mean).max(0.0);
                (var / p).sqrt()
            })
            .fold(None, |acc: Option<f64>, se| {
                Some(acc.map_or(se, |a| a.max(se)))
            })
    };

    let stats = batcher.stats();
    Ok((
        BudgetedShapley {
            scores: ImportanceScores::new(TMC_METHOD, values),
            diagnostics: clock.diagnostics(max_se),
            checkpoint: state,
        },
        stats,
    ))
}

/// Fold one permutation's marginals into the running checkpoint sums.
fn fold_marginals(state: &mut McCheckpoint, marginals: &[f64]) {
    for (i, &m) in marginals.iter().enumerate() {
        state.totals[i] += m;
        state.totals_sq[i] += m * m;
    }
}

/// Apply a budget-enforced walk's outcome to the checkpoint state.
fn settle(state: &mut McCheckpoint, clock: &mut BudgetClock, outcome: WalkOutcome) {
    match outcome {
        WalkOutcome::Complete { marginals, .. } => {
            // Per-call walks already recorded their utility calls.
            fold_marginals(state, &marginals);
            state.cursor += 1;
            clock.record_iteration();
        }
        WalkOutcome::Tripped {
            inflight,
            rng_state,
        } => {
            state.inflight = Some(inflight);
            state.rng_state = Some(rng_state);
        }
    }
}

/// Per-worker reusable buffers for permutation walks.
struct WalkScratch {
    order: Vec<usize>,
    prefix: Vec<usize>,
    /// Sorted prefix copies queued as one batched wave.
    wave: Vec<Vec<usize>>,
}

impl WalkScratch {
    fn new(n: usize) -> WalkScratch {
        WalkScratch {
            order: Vec::with_capacity(n),
            prefix: Vec::with_capacity(n),
            wave: Vec::new(),
        }
    }
}

/// How a permutation walk ended.
enum WalkOutcome {
    /// All positions folded (or truncated); `calls` utility evaluations.
    Complete { marginals: Vec<f64>, calls: u64 },
    /// The per-call utility budget tripped mid-walk.
    Tripped {
        inflight: InflightPermutation,
        rng_state: [u64; 4],
    },
}

/// Walk one permutation's prefix chain, from scratch or resumed from an
/// in-flight snapshot. Permutation `p` depends only on
/// `child_seed(config.seed, p)`; coalitions are evaluated in sorted index
/// order, queued in waves of up to `batcher.width()` consecutive prefixes
/// and scored per wave. Waves are *folded* strictly sequentially, so
/// truncation and budget enforcement behave exactly as in a one-at-a-time
/// walk. With `clock` attached, the utility-call budget is enforced before
/// every logical evaluation (wave width is clamped to the remaining budget)
/// and consumed calls are recorded on the spot; without it, the walk runs
/// to completion and reports its call count.
#[allow(clippy::too_many_arguments)]
fn walk_permutation<C: Classifier>(
    batcher: &UtilityBatcher<'_, C>,
    full_utility: f64,
    config: &ShapleyConfig,
    p: u64,
    scratch: &mut WalkScratch,
    resume_from: Option<&InflightPermutation>,
    expected_rng: Option<[u64; 4]>,
    mut clock: Option<&mut BudgetClock>,
) -> Result<WalkOutcome> {
    let n = batcher.train_len();
    let mut rng = seeded(child_seed(config.seed, p));
    scratch.order.clear();
    scratch.order.extend(0..n);
    scratch.order.shuffle(&mut rng);
    let rng_state = rng.state();
    if let Some(expected) = expected_rng {
        if expected != rng_state {
            return Err(ImportanceError::Checkpoint(format!(
                "checkpoint rng_state does not match permutation {p} of seed {}",
                config.seed
            )));
        }
    }
    let (start, mut prev_u, mut marginals) = match resume_from {
        Some(inflight) => (
            inflight.pos as usize,
            inflight.prev_u,
            inflight.marginals.clone(),
        ),
        None => (0, 0.0, vec![0.0; n]),
    };
    scratch.prefix.clear();
    scratch.prefix.extend_from_slice(&scratch.order[..start]);
    scratch.prefix.sort_unstable();
    let mut calls = 0u64;
    let mut pos = start;
    while pos < n {
        if let Some(clock) = clock.as_deref_mut() {
            if clock.would_exceed_utility(1) {
                return Ok(WalkOutcome::Tripped {
                    inflight: InflightPermutation {
                        pos: pos as u64,
                        prev_u,
                        marginals,
                    },
                    rng_state,
                });
            }
        }
        // Queue the next wave of prefix coalitions. A budget-enforced walk
        // clamps the wave to the calls the budget can still pay for (≥ 1
        // here, since the pre-check above passed).
        let mut width = batcher.width().min(n - pos);
        if let Some(clock) = clock.as_deref() {
            if let Some(remaining) = clock.remaining_utility_calls() {
                width = width.min(remaining.max(1) as usize);
            }
        }
        for j in 0..width {
            let i = scratch.order[pos + j];
            let at = scratch.prefix.partition_point(|&x| x < i);
            scratch.prefix.insert(at, i);
            if scratch.wave.len() <= j {
                scratch.wave.push(Vec::with_capacity(n));
            }
            scratch.wave[j].clear();
            scratch.wave[j].extend_from_slice(&scratch.prefix);
        }
        let utilities = batcher.eval_batch(&scratch.wave[..width])?;
        // Fold the wave sequentially: logical call order, truncation and
        // budget accounting are exactly the unbatched walk's.
        for (j, &u) in utilities.iter().enumerate() {
            let i = scratch.order[pos + j];
            calls += 1;
            if let Some(clock) = clock.as_deref_mut() {
                clock.record_utility_calls(1);
            }
            marginals[i] = u - prev_u;
            prev_u = u;
            if (full_utility - u).abs() < config.truncation_tolerance {
                // Remaining marginals stay 0; any already-evaluated wave
                // tail is discarded (its values are pure, so the physical
                // overshoot is unobservable).
                return Ok(WalkOutcome::Complete { marginals, calls });
            }
        }
        pos += width;
    }
    Ok(WalkOutcome::Complete { marginals, calls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_ml::models::knn::KnnClassifier;

    // The long-standing behavioral suite pins the engine through thin
    // one-at-a-time wrappers (the physical behavior of the removed legacy
    // free functions).
    fn tmc_shapley<C: Classifier + Send + Sync>(
        template: &C,
        train: &Dataset,
        valid: &Dataset,
        config: &ShapleyConfig,
    ) -> Result<ImportanceScores> {
        tmc_shapley_budgeted(
            template,
            train,
            valid,
            config,
            &RunBudget::unlimited(),
            None,
        )
        .map(|run| run.scores)
    }

    fn tmc_shapley_budgeted<C: Classifier + Send + Sync>(
        template: &C,
        train: &Dataset,
        valid: &Dataset,
        config: &ShapleyConfig,
        budget: &RunBudget,
        resume: Option<&McCheckpoint>,
    ) -> Result<BudgetedShapley> {
        tmc_shapley_budgeted_cached(template, train, valid, config, budget, resume, None)
    }

    #[allow(clippy::too_many_arguments)]
    fn tmc_shapley_budgeted_cached<C: Classifier + Send + Sync>(
        template: &C,
        train: &Dataset,
        valid: &Dataset,
        config: &ShapleyConfig,
        budget: &RunBudget,
        resume: Option<&McCheckpoint>,
        cache: Option<&MemoCache>,
    ) -> Result<BudgetedShapley> {
        tmc_engine(
            template,
            train,
            valid,
            config,
            budget,
            resume,
            cache,
            BatchPolicy::Unbatched,
            &WorkerPool::shared(),
        )
        .map(|(run, _)| run)
    }

    fn toy() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1], // mislabelled
            ],
            vec![0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.12], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn mislabelled_point_has_lowest_shapley_value() {
        let (train, valid) = toy();
        let cfg = ShapleyConfig {
            permutations: 200,
            truncation_tolerance: 0.0,
            seed: 1,
            threads: 1,
        };
        let scores = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(scores.bottom_k(1), vec![4]);
        assert!(scores.values[4] < 0.0);
        // Clean points have positive value.
        assert!(scores.values[0] > 0.0);
        assert!(scores.values[2] > 0.0);
    }

    #[test]
    fn efficiency_axiom_approximately_holds() {
        // Sum of Shapley values = U(full) − U(∅) = U(full).
        let (train, valid) = toy();
        let cfg = ShapleyConfig {
            permutations: 500,
            truncation_tolerance: 0.0,
            seed: 2,
            threads: 1,
        };
        let scores = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let sum: f64 = scores.values.iter().sum();
        let full = nde_ml::model::utility(&KnnClassifier::new(1), &train, &valid).unwrap();
        // With no truncation, every permutation's marginals telescope to
        // exactly U(full), so this holds to floating-point error.
        assert!((sum - full).abs() < 1e-9, "sum={sum} full={full}");
    }

    #[test]
    fn deterministic_and_parallel_bit_identical() {
        let (train, valid) = toy();
        let mut cfg = ShapleyConfig {
            permutations: 60,
            truncation_tolerance: 0.0,
            seed: 3,
            threads: 1,
        };
        let a = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let b = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(a, b);
        // Bit-identical regardless of thread count (work is seed-partitioned
        // and settled in index order).
        cfg.threads = 4;
        let c = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn batched_waves_are_bit_identical_to_unbatched() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let cfg = ShapleyConfig {
            permutations: 40,
            truncation_tolerance: 0.02, // exercise mid-wave truncation
            seed: 9,
            threads: 1,
        };
        let (plain, plain_stats) = tmc_engine(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            None,
            None,
            BatchPolicy::Unbatched,
            &WorkerPool::shared(),
        )
        .unwrap();
        assert_eq!(plain_stats.batched_evals, 0);
        for size in [1, 2, 3, 8, 64] {
            let (batched, stats) = tmc_engine(
                &knn,
                &train,
                &valid,
                &cfg,
                &RunBudget::unlimited(),
                None,
                None,
                BatchPolicy::Grouped { size },
                &WorkerPool::shared(),
            )
            .unwrap();
            assert_eq!(batched.scores, plain.scores, "size={size}");
            assert_eq!(batched.checkpoint, plain.checkpoint, "size={size}");
            assert_eq!(
                batched.diagnostics.utility_calls, plain.diagnostics.utility_calls,
                "size={size}"
            );
            assert!(stats.batched_evals > 0, "size={size} must use the scorer");
        }
    }

    #[test]
    fn truncation_reduces_no_worse_than_tolerance() {
        let (train, valid) = toy();
        let exact_cfg = ShapleyConfig {
            permutations: 300,
            truncation_tolerance: 0.0,
            seed: 4,
            threads: 1,
        };
        let trunc_cfg = ShapleyConfig {
            truncation_tolerance: 0.05,
            ..exact_cfg.clone()
        };
        let exact = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &exact_cfg).unwrap();
        let trunc = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &trunc_cfg).unwrap();
        // Rankings agree on the harmful point.
        assert_eq!(exact.bottom_k(1), trunc.bottom_k(1));
    }

    #[test]
    fn validates_arguments() {
        let (train, valid) = toy();
        let cfg = ShapleyConfig {
            permutations: 0,
            ..Default::default()
        };
        assert!(tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).is_err());
        let empty = train.subset(&[]);
        assert!(tmc_shapley(
            &KnnClassifier::new(1),
            &empty,
            &valid,
            &ShapleyConfig::default()
        )
        .is_err());
    }

    fn budget_cfg(permutations: usize) -> ShapleyConfig {
        ShapleyConfig {
            permutations,
            truncation_tolerance: 0.0,
            seed: 7,
            threads: 1,
        }
    }

    #[test]
    fn budgeted_with_unlimited_budget_matches_plain_tmc() {
        let (train, valid) = toy();
        let cfg = budget_cfg(40);
        let knn = KnnClassifier::new(1);
        let plain = tmc_shapley(&knn, &train, &valid, &cfg).unwrap();
        let run = tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &RunBudget::unlimited(), None)
            .unwrap();
        assert_eq!(run.scores.values, plain.values);
        assert!(run.diagnostics.completed());
        assert_eq!(run.diagnostics.iterations, 40);
        assert_eq!(run.checkpoint.cursor, 40);
        assert!(run.checkpoint.inflight.is_none());
        assert!(run.diagnostics.max_marginal_std_error.unwrap() >= 0.0);
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        let (train, valid) = toy();
        let cfg = budget_cfg(50);
        let knn = KnnClassifier::new(1);
        let budget = RunBudget::unlimited().with_max_iterations(5);
        let run = tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &budget, None).unwrap();
        assert!(!run.diagnostics.completed());
        assert_eq!(
            run.diagnostics.exhausted,
            Some(nde_robust::Exhaustion::Iterations)
        );
        assert_eq!(run.checkpoint.cursor, 5);
        // Iteration budgets stop on permutation boundaries.
        assert!(run.checkpoint.inflight.is_none());
        // Best-so-far estimate is still a usable average.
        assert!(run.scores.values.iter().all(|v| v.is_finite()));
        let budget = RunBudget::unlimited().with_max_utility_calls(8);
        let run = tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &budget, None).unwrap();
        assert_eq!(
            run.diagnostics.exhausted,
            Some(nde_robust::Exhaustion::UtilityCalls)
        );
        assert!(run.checkpoint.cursor < 50);
        assert_eq!(run.checkpoint.utility_calls, 8);
        // n=5 per permutation: 1 (full) + 5 (perm 0) + 2 = 8 calls puts the
        // deterministic stopping point two positions into permutation 1.
        assert_eq!(run.checkpoint.cursor, 1);
        let inflight = run.checkpoint.inflight.as_ref().unwrap();
        assert_eq!(inflight.pos, 2);
        assert!(run.checkpoint.rng_state.is_some());
    }

    #[test]
    fn interrupted_plus_resumed_is_bit_identical_to_uninterrupted() {
        let (train, valid) = toy();
        let cfg = budget_cfg(30);
        let knn = KnnClassifier::new(1);
        let uninterrupted =
            tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &RunBudget::unlimited(), None)
                .unwrap();
        // Stop after 11 permutations, round-trip the checkpoint through
        // JSON, then finish the remaining 19.
        let first = tmc_shapley_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited().with_max_iterations(11),
            None,
        )
        .unwrap();
        assert_eq!(first.checkpoint.cursor, 11);
        let restored = McCheckpoint::from_json(&first.checkpoint.to_json()).unwrap();
        assert_eq!(restored, first.checkpoint);
        let resumed = tmc_shapley_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            Some(&restored),
        )
        .unwrap();
        assert_eq!(resumed.scores.values, uninterrupted.scores.values);
        assert_eq!(resumed.checkpoint.cursor, uninterrupted.checkpoint.cursor);
        assert_eq!(resumed.checkpoint.totals, uninterrupted.checkpoint.totals);
        assert_eq!(
            resumed.checkpoint.totals_sq,
            uninterrupted.checkpoint.totals_sq
        );
        // Resuming re-primes the full-utility value, so the resumed run
        // honestly accounts one extra utility call.
        assert_eq!(
            resumed.checkpoint.utility_calls,
            uninterrupted.checkpoint.utility_calls + 1
        );
    }

    #[test]
    fn mid_permutation_resume_is_bit_identical() {
        let (train, valid) = toy();
        let cfg = budget_cfg(12);
        let knn = KnnClassifier::new(1);
        let uninterrupted =
            tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &RunBudget::unlimited(), None)
                .unwrap();
        let full_calls = uninterrupted.checkpoint.utility_calls;
        // Trip the utility budget at every possible call count; each stop
        // lands at a different mid-permutation position. Resume must always
        // reconverge to the exact uninterrupted floats.
        for max_calls in 2..full_calls {
            let partial = tmc_shapley_budgeted(
                &knn,
                &train,
                &valid,
                &cfg,
                &RunBudget::unlimited().with_max_utility_calls(max_calls),
                None,
            )
            .unwrap();
            assert_eq!(partial.checkpoint.utility_calls, max_calls);
            let restored = McCheckpoint::from_json(&partial.checkpoint.to_json()).unwrap();
            let resumed = tmc_shapley_budgeted(
                &knn,
                &train,
                &valid,
                &cfg,
                &RunBudget::unlimited(),
                Some(&restored),
            )
            .unwrap();
            assert_eq!(
                resumed.scores.values, uninterrupted.scores.values,
                "resume after {max_calls} utility calls must be bit-identical"
            );
            assert_eq!(resumed.checkpoint.totals, uninterrupted.checkpoint.totals);
            assert_eq!(
                resumed.checkpoint.totals_sq,
                uninterrupted.checkpoint.totals_sq
            );
            assert!(resumed.checkpoint.inflight.is_none());
        }
    }

    #[test]
    fn batched_budget_trips_at_the_same_call_counts() {
        // The wave engine must reproduce the unbatched trip points exactly:
        // same checkpoint cursor, same in-flight position, same floats.
        let (train, valid) = toy();
        let cfg = budget_cfg(6);
        let knn = KnnClassifier::new(1);
        let (uninterrupted, _) = tmc_engine(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            None,
            None,
            BatchPolicy::Unbatched,
            &WorkerPool::shared(),
        )
        .unwrap();
        let full_calls = uninterrupted.checkpoint.utility_calls;
        for max_calls in 2..full_calls {
            let budget = RunBudget::unlimited().with_max_utility_calls(max_calls);
            let (plain, _) = tmc_engine(
                &knn,
                &train,
                &valid,
                &cfg,
                &budget,
                None,
                None,
                BatchPolicy::Unbatched,
                &WorkerPool::shared(),
            )
            .unwrap();
            let (batched, _) = tmc_engine(
                &knn,
                &train,
                &valid,
                &cfg,
                &budget,
                None,
                None,
                BatchPolicy::Grouped { size: 4 },
                &WorkerPool::shared(),
            )
            .unwrap();
            assert_eq!(
                batched.checkpoint, plain.checkpoint,
                "trip state at max_calls={max_calls}"
            );
            assert_eq!(batched.scores, plain.scores);
        }
    }

    #[test]
    fn memoized_run_is_bit_identical_and_hits() {
        let (train, valid) = toy();
        let cfg = budget_cfg(25);
        let knn = KnnClassifier::new(1);
        let plain = tmc_shapley_budgeted(&knn, &train, &valid, &cfg, &RunBudget::unlimited(), None)
            .unwrap();
        let cache = MemoCache::new();
        let cached = tmc_shapley_budgeted_cached(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            None,
            Some(&cache),
        )
        .unwrap();
        assert_eq!(cached.scores.values, plain.scores.values);
        // Logical budget accounting is cache-independent.
        assert_eq!(
            cached.checkpoint.utility_calls,
            plain.checkpoint.utility_calls
        );
        // 25 permutations over 5 examples revisit coalitions constantly.
        assert!(cache.hits() > 0, "expected repeated coalitions to hit");
        assert!(cache.len() as u64 <= plain.checkpoint.utility_calls);
    }

    #[test]
    fn rejects_mismatched_checkpoints_and_corrupt_features() {
        let (train, valid) = toy();
        let cfg = budget_cfg(10);
        let knn = KnnClassifier::new(1);
        let other = McCheckpoint::fresh("tmc-shapley", 999, train.len());
        let err = tmc_shapley_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            Some(&other),
        );
        assert!(matches!(err, Err(ImportanceError::Checkpoint(_))));
        let wrong_method = McCheckpoint::fresh("zorro", cfg.seed, train.len());
        assert!(matches!(
            tmc_shapley_budgeted(
                &knn,
                &train,
                &valid,
                &cfg,
                &RunBudget::unlimited(),
                Some(&wrong_method)
            ),
            Err(ImportanceError::Checkpoint(_))
        ));
        // An in-flight snapshot whose rng_state does not belong to the run's
        // seed is refused instead of silently corrupting the estimate.
        let trip = tmc_shapley_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited().with_max_utility_calls(8),
            None,
        )
        .unwrap();
        let mut forged = trip.checkpoint.clone();
        forged.rng_state = Some([1, 2, 3, 4]);
        assert!(matches!(
            tmc_shapley_budgeted(
                &knn,
                &train,
                &valid,
                &cfg,
                &RunBudget::unlimited(),
                Some(&forged)
            ),
            Err(ImportanceError::Checkpoint(_))
        ));
        let mut poisoned = train.clone();
        poisoned.x.set(1, 0, f64::NAN);
        let err =
            tmc_shapley_budgeted(&knn, &poisoned, &valid, &cfg, &RunBudget::unlimited(), None);
        assert!(matches!(err, Err(ImportanceError::Ml(m)) if m.contains("row 1")));
    }
}
