//! Truncated Monte-Carlo Data Shapley (Ghorbani & Zou, ICML'19).
//!
//! Samples random permutations of the training data and accumulates the
//! marginal utility of adding each example to the prefix before it.
//! Truncation skips the tail of a permutation once the prefix utility is
//! within `truncation_tolerance` of the full-data utility (the marginal
//! contributions there are ≈ 0). Permutations are distributed over worker
//! threads; determinism is preserved via per-permutation child seeds.

use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_data::rng::{child_seed, seeded};
use nde_ml::dataset::Dataset;
use nde_ml::model::{utility, Classifier};
use rand::seq::SliceRandom;

/// Configuration for the TMC-Shapley estimator.
#[derive(Debug, Clone)]
pub struct ShapleyConfig {
    /// Number of sampled permutations.
    pub permutations: usize,
    /// Truncate a permutation once `|U(prefix) − U(full)|` falls below this.
    pub truncation_tolerance: f64,
    /// Base seed (each permutation uses a derived child seed).
    pub seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for ShapleyConfig {
    fn default() -> Self {
        ShapleyConfig {
            permutations: 100,
            truncation_tolerance: 0.01,
            seed: 0,
            threads: 1,
        }
    }
}

/// TMC-Shapley values of all training examples, with utility = accuracy of a
/// fresh `template` clone on `valid`.
pub fn tmc_shapley<C>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    config: &ShapleyConfig,
) -> Result<ImportanceScores>
where
    C: Classifier + Send + Sync,
{
    if config.permutations == 0 {
        return Err(ImportanceError::InvalidArgument(
            "need at least one permutation".into(),
        ));
    }
    if train.is_empty() {
        return Err(ImportanceError::InvalidArgument("empty training set".into()));
    }
    let n = train.len();
    let full_utility = utility(template, train, valid)?;
    let threads = config.threads.max(1).min(config.permutations);

    // Partition permutation indices across workers.
    let totals: Vec<f64> = if threads == 1 {
        run_permutations(
            template,
            train,
            valid,
            full_utility,
            config,
            0,
            config.permutations,
        )?
    } else {
        let chunk = config.permutations.div_ceil(threads);
        let results: Vec<Result<Vec<f64>>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(config.permutations);
                if start >= end {
                    break;
                }
                handles.push(scope.spawn(move || {
                    run_permutations(template, train, valid, full_utility, config, start, end)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut acc = vec![0.0; n];
        for r in results {
            for (a, v) in acc.iter_mut().zip(r?) {
                *a += v;
            }
        }
        acc
    };

    let values = totals
        .into_iter()
        .map(|v| v / config.permutations as f64)
        .collect();
    Ok(ImportanceScores::new("tmc-shapley", values))
}

/// Accumulate marginal contributions over permutations `[start, end)`.
fn run_permutations<C: Classifier>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    full_utility: f64,
    config: &ShapleyConfig,
    start: usize,
    end: usize,
) -> Result<Vec<f64>> {
    let n = train.len();
    let mut totals = vec![0.0; n];
    let mut order: Vec<usize> = (0..n).collect();
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    for p in start..end {
        let mut rng = seeded(child_seed(config.seed, p as u64));
        // Reset to the identity before shuffling so permutation `p` depends
        // only on its child seed — not on which worker ran the previous one.
        for (slot, v) in order.iter_mut().enumerate() {
            *v = slot;
        }
        order.shuffle(&mut rng);
        prefix.clear();
        // Empty-prefix utility: majority prediction is undefined with zero
        // data; use 0 utility, matching the convention U(∅) = 0.
        let mut prev_u = 0.0;
        let mut truncated = false;
        for &i in &order {
            if truncated {
                // Marginal contribution treated as 0.
                continue;
            }
            prefix.push(i);
            let subset = train.subset(&prefix);
            let u = utility(template, &subset, valid)?;
            totals[i] += u - prev_u;
            prev_u = u;
            if (full_utility - u).abs() < config.truncation_tolerance {
                truncated = true;
            }
        }
    }
    Ok(totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_ml::models::knn::KnnClassifier;

    fn toy() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1], // mislabelled
            ],
            vec![0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.12], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn mislabelled_point_has_lowest_shapley_value() {
        let (train, valid) = toy();
        let cfg = ShapleyConfig {
            permutations: 200,
            truncation_tolerance: 0.0,
            seed: 1,
            threads: 1,
        };
        let scores = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(scores.bottom_k(1), vec![4]);
        assert!(scores.values[4] < 0.0);
        // Clean points have positive value.
        assert!(scores.values[0] > 0.0);
        assert!(scores.values[2] > 0.0);
    }

    #[test]
    fn efficiency_axiom_approximately_holds() {
        // Sum of Shapley values = U(full) − U(∅) = U(full).
        let (train, valid) = toy();
        let cfg = ShapleyConfig {
            permutations: 500,
            truncation_tolerance: 0.0,
            seed: 2,
            threads: 1,
        };
        let scores = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let sum: f64 = scores.values.iter().sum();
        let full = utility(&KnnClassifier::new(1), &train, &valid).unwrap();
        // With no truncation, every permutation's marginals telescope to
        // exactly U(full), so this holds to floating-point error.
        assert!((sum - full).abs() < 1e-9, "sum={sum} full={full}");
    }

    #[test]
    fn deterministic_and_parallel_consistent() {
        let (train, valid) = toy();
        let mut cfg = ShapleyConfig {
            permutations: 60,
            truncation_tolerance: 0.0,
            seed: 3,
            threads: 1,
        };
        let a = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let b = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(a, b);
        // Same result regardless of thread count (work is seed-partitioned).
        cfg.threads = 4;
        let c = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        for (x, y) in a.values.iter().zip(&c.values) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn truncation_reduces_no_worse_than_tolerance() {
        let (train, valid) = toy();
        let exact_cfg = ShapleyConfig {
            permutations: 300,
            truncation_tolerance: 0.0,
            seed: 4,
            threads: 1,
        };
        let trunc_cfg = ShapleyConfig {
            truncation_tolerance: 0.05,
            ..exact_cfg.clone()
        };
        let exact = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &exact_cfg).unwrap();
        let trunc = tmc_shapley(&KnnClassifier::new(1), &train, &valid, &trunc_cfg).unwrap();
        // Rankings agree on the harmful point.
        assert_eq!(exact.bottom_k(1), trunc.bottom_k(1));
    }

    #[test]
    fn validates_arguments() {
        let (train, valid) = toy();
        let cfg = ShapleyConfig {
            permutations: 0,
            ..Default::default()
        };
        assert!(tmc_shapley(&KnnClassifier::new(1), &train, &valid, &cfg).is_err());
        let empty = train.subset(&[]);
        assert!(tmc_shapley(
            &KnnClassifier::new(1),
            &empty,
            &valid,
            &ShapleyConfig::default()
        )
        .is_err());
    }
}
