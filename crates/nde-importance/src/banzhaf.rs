//! Data Banzhaf values via the Maximum-Sample-Reuse estimator
//! (Wang & Jia, AISTATS'23).
//!
//! The Banzhaf value weighs all subsets equally, which makes it provably more
//! robust to noisy utility functions than the Shapley value. The MSR
//! estimator reuses every sampled subset for *all* points:
//! `φ_i = mean(U(S) | i ∈ S) − mean(U(S) | i ∉ S)`.
//!
//! Subset sample `s` is drawn from `child_seed(config.seed, s)` and samples
//! are folded in index order, so scores are bit-identical for every thread
//! count (the [`nde_robust::par`] determinism contract). Under a grouped
//! [`BatchPolicy`] the samples are evaluated in **blocks**: each worker
//! claims a block of consecutive sample indices and scores the whole block
//! through the [`UtilityBatcher`] in one validation pass — block
//! boundaries are a pure function of the sample index, so the fold order
//! (and therefore every float) is unchanged.

use crate::batch::{BatchPolicy, BatchStats, UtilityBatcher};
use crate::common::ImportanceScores;
use crate::snapshot::BanzhafCheckpoint;
use crate::{ImportanceError, Result};
use nde_data::rng::Rng;
use nde_data::rng::{child_seed, seeded};
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;
use nde_robust::par::{CostHint, MemoCache, WorkerFailure, WorkerPool};
use nde_robust::{ConvergenceDiagnostics, RunBudget};
use std::sync::atomic::AtomicBool;

/// Configuration for the Banzhaf MSR estimator.
#[derive(Debug, Clone)]
pub struct BanzhafConfig {
    /// Number of sampled subsets (each point included with probability 1/2).
    pub samples: usize,
    /// Base seed (each subset sample uses a derived child seed).
    pub seed: u64,
    /// Worker threads (1 = sequential; results are identical either way).
    pub threads: usize,
}

impl Default for BanzhafConfig {
    fn default() -> Self {
        BanzhafConfig {
            samples: 200,
            seed: 0,
            threads: 1,
        }
    }
}

/// The batch-capable Banzhaf MSR engine behind the
/// [`banzhaf()`](crate::run::banzhaf) entry point. Empty sampled subsets
/// have utility 0 by convention.
#[cfg_attr(not(test), allow(dead_code))] // exercised by the equivalence tests
pub(crate) fn banzhaf_engine<C>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    config: &BanzhafConfig,
    cache: Option<&MemoCache>,
    policy: BatchPolicy,
    pool: &WorkerPool,
) -> Result<(ImportanceScores, BatchStats)>
where
    C: Classifier + Send + Sync,
{
    banzhaf_engine_budgeted(
        template,
        train,
        valid,
        config,
        &RunBudget::unlimited(),
        None,
        cache,
        policy,
        pool,
    )
    .map(|(run, stats)| (run.scores, stats))
}

/// Output of [`banzhaf_engine_budgeted`]: best-so-far scores, how far the
/// budget let the run get, and a resumable snapshot.
pub(crate) struct BanzhafRun {
    pub scores: ImportanceScores,
    pub diagnostics: ConvergenceDiagnostics,
    pub checkpoint: BanzhafCheckpoint,
}

/// One sample's logical utility cost: 1 unless the sampled subset is empty
/// (`U(∅) = 0` is a convention, not an evaluation). A pure RNG replay, so
/// budget trip points are independent of caching, batching, and threads.
fn sample_cost(seed: u64, s: u64, n: usize) -> u64 {
    let mut rng = seeded(child_seed(seed, s));
    u64::from((0..n).any(|_| rng.gen::<bool>()))
}

/// The budget- and resume-capable Banzhaf MSR engine.
///
/// Budgeting is **sample-granular**: whole subset samples are folded until a
/// limit trips (one iteration = one sample; the wall clock is consulted at
/// the same boundaries), and the returned [`BanzhafCheckpoint`] restores the
/// exact conditional sums, so continuing a tripped run — in this process or
/// after a crash — is bit-identical to never having stopped.
#[allow(clippy::too_many_arguments)] // mirrors tmc_engine's run surface
pub(crate) fn banzhaf_engine_budgeted<C>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    config: &BanzhafConfig,
    budget: &RunBudget,
    resume: Option<&BanzhafCheckpoint>,
    cache: Option<&MemoCache>,
    policy: BatchPolicy,
    pool: &WorkerPool,
) -> Result<(BanzhafRun, BatchStats)>
where
    C: Classifier + Send + Sync,
{
    if config.samples == 0 {
        return Err(ImportanceError::InvalidArgument(
            "need at least one sample".into(),
        ));
    }
    if train.is_empty() {
        return Err(ImportanceError::InvalidArgument(
            "empty training set".into(),
        ));
    }
    let n = train.len();
    let total = config.samples as u64;
    let mut state = match resume {
        Some(ckpt) => {
            ckpt.validate_against(config, n)?;
            ckpt.clone()
        }
        None => BanzhafCheckpoint::fresh(config, n),
    };
    let mut clock = budget.resume(state.cursor, state.utility_calls);
    // Plan the segment deterministically before evaluating anything: walk
    // whole samples, charging each sample's replayed cost, until a limit
    // trips or the run completes.
    let start = state.cursor;
    let mut end = start;
    while end < total && clock.exhausted().is_none() {
        clock.record_iteration();
        clock.record_utility_calls(sample_cost(config.seed, end, n));
        end += 1;
    }
    let batcher = UtilityBatcher::new(template, train, valid, cache, policy);
    if end > start {
        let width = batcher.width() as u64;
        let blocks = (end - start).div_ceil(width);
        let stop = AtomicBool::new(false);
        // Every block evaluates whole subset utilities (model retrains).
        let cost = CostHint::PerItemNanos(1_000_000);
        // Subset sample `s` is a pure function of `child_seed(seed, s)`;
        // members come out already sorted, so the utility cache key is
        // ready-made. Block `b` covers samples [start + b·width,
        // start + (b+1)·width): also schedule-independent.
        let sample_blocks = pool
            .map_indexed(config.threads, 0..blocks, &stop, cost, |b| {
                let lo = start + b * width;
                let hi = (start + (b + 1) * width).min(end);
                let mut block: Vec<Vec<usize>> = Vec::with_capacity((hi - lo) as usize);
                for s in lo..hi {
                    let mut rng = seeded(child_seed(config.seed, s));
                    let mut members: Vec<usize> = Vec::with_capacity(n);
                    for i in 0..n {
                        if rng.gen::<bool>() {
                            members.push(i);
                        }
                    }
                    block.push(members);
                }
                let utilities = batcher.eval_batch(&block)?;
                Ok::<_, ImportanceError>((block, utilities))
            })
            .map_err(|fail| match fail {
                WorkerFailure::Err(_, e) => e,
                WorkerFailure::Panic(_, msg) => ImportanceError::WorkerPanic(msg),
            })?;

        // Fold in sample-index order (blocks are index-sorted, samples are
        // in order within a block) — float sums independent of the schedule.
        for (_, (block, utilities)) in &sample_blocks {
            for (members, &u) in block.iter().zip(utilities) {
                let mut next = members.iter().peekable();
                for i in 0..n {
                    if next.peek() == Some(&&i) {
                        next.next();
                        state.with_sum[i] += u;
                        state.with_count[i] += 1;
                    } else {
                        state.without_sum[i] += u;
                        state.without_count[i] += 1;
                    }
                }
            }
        }
        state.cursor = end;
        state.utility_calls = clock.utility_calls();
    }
    Ok((
        BanzhafRun {
            scores: ImportanceScores::new("banzhaf", state.values()),
            diagnostics: clock.diagnostics(None),
            checkpoint: state,
        },
        batcher.stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_ml::models::knn::KnnClassifier;

    // The behavioral suite pins the engine through thin one-at-a-time
    // wrappers (the physical behavior of the removed free functions).
    fn banzhaf_msr<C: Classifier + Send + Sync>(
        template: &C,
        train: &Dataset,
        valid: &Dataset,
        config: &BanzhafConfig,
    ) -> Result<ImportanceScores> {
        banzhaf_msr_cached(template, train, valid, config, None)
    }

    fn banzhaf_msr_cached<C: Classifier + Send + Sync>(
        template: &C,
        train: &Dataset,
        valid: &Dataset,
        config: &BanzhafConfig,
        cache: Option<&MemoCache>,
    ) -> Result<ImportanceScores> {
        banzhaf_engine(
            template,
            train,
            valid,
            config,
            cache,
            BatchPolicy::Unbatched,
            &WorkerPool::shared(),
        )
        .map(|(scores, _)| scores)
    }

    fn toy() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1], // mislabelled
            ],
            vec![0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.12], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn mislabelled_point_has_lowest_banzhaf_value() {
        let (train, valid) = toy();
        let cfg = BanzhafConfig {
            samples: 600,
            seed: 1,
            threads: 1,
        };
        let scores = banzhaf_msr(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(scores.bottom_k(1), vec![4]);
        assert!(scores.values[4] < 0.0);
        assert!(scores.values[0] > 0.0);
    }

    #[test]
    fn deterministic_by_seed_and_thread_invariant() {
        let (train, valid) = toy();
        let mut cfg = BanzhafConfig {
            samples: 100,
            seed: 7,
            threads: 1,
        };
        let a = banzhaf_msr(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let b = banzhaf_msr(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(a, b);
        cfg.threads = 4;
        let c = banzhaf_msr(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn batched_blocks_are_bit_identical_to_unbatched() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        for threads in [1, 4] {
            let cfg = BanzhafConfig {
                samples: 150,
                seed: 5,
                threads,
            };
            let (plain, _) = banzhaf_engine(
                &knn,
                &train,
                &valid,
                &cfg,
                None,
                BatchPolicy::Unbatched,
                &WorkerPool::shared(),
            )
            .unwrap();
            for size in [1, 2, 7, 32, 1000] {
                let (batched, stats) = banzhaf_engine(
                    &knn,
                    &train,
                    &valid,
                    &cfg,
                    None,
                    BatchPolicy::Grouped { size },
                    &WorkerPool::shared(),
                )
                .unwrap();
                assert_eq!(batched, plain, "threads={threads} size={size}");
                assert!(stats.batched_evals > 0);
                // Every non-empty sample is answered exactly once.
                assert_eq!(stats.evals(), 150 - empty_samples(&cfg));
            }
        }
    }

    fn empty_samples(cfg: &BanzhafConfig) -> u64 {
        (0..cfg.samples as u64)
            .filter(|&s| {
                let mut rng = seeded(child_seed(cfg.seed, s));
                (0..5).all(|_| !rng.gen::<bool>())
            })
            .count() as u64
    }

    #[test]
    fn memoized_run_is_bit_identical_and_hits() {
        let (train, valid) = toy();
        let cfg = BanzhafConfig {
            samples: 200,
            seed: 3,
            threads: 2,
        };
        let plain = banzhaf_msr(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let cache = MemoCache::new();
        let cached =
            banzhaf_msr_cached(&KnnClassifier::new(1), &train, &valid, &cfg, Some(&cache)).unwrap();
        assert_eq!(plain, cached);
        // Only 2^5 possible coalitions over 5 points: 200 samples must hit.
        assert!(cache.hits() > 0);
        assert!(cache.len() <= 31, "at most 2^5 - 1 non-empty coalitions");
    }

    #[test]
    fn budgeted_cut_and_resume_is_bit_identical() {
        let (train, valid) = toy();
        let knn = KnnClassifier::new(1);
        let cfg = BanzhafConfig {
            samples: 60,
            seed: 9,
            threads: 2,
        };
        let (full, _) = banzhaf_engine(
            &knn,
            &train,
            &valid,
            &cfg,
            None,
            BatchPolicy::default(),
            &WorkerPool::shared(),
        )
        .unwrap();
        // Trip the utility budget mid-run, then resume without limits.
        let budget = RunBudget::unlimited().with_max_utility_calls(25);
        let (cut, _) = banzhaf_engine_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &budget,
            None,
            None,
            BatchPolicy::default(),
            &WorkerPool::shared(),
        )
        .unwrap();
        assert!(!cut.diagnostics.completed());
        assert_eq!(cut.checkpoint.utility_calls, 25);
        assert!(cut.checkpoint.cursor < 60);
        let (resumed, _) = banzhaf_engine_budgeted(
            &knn,
            &train,
            &valid,
            &cfg,
            &RunBudget::unlimited(),
            Some(&cut.checkpoint),
            None,
            BatchPolicy::default(),
            &WorkerPool::shared(),
        )
        .unwrap();
        assert!(resumed.diagnostics.completed());
        assert_eq!(resumed.checkpoint.cursor, 60);
        for (a, b) in full.values.iter().zip(&resumed.scores.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A checkpoint from a different run shape is refused.
        let other = BanzhafConfig { seed: 10, ..cfg };
        assert!(banzhaf_engine_budgeted(
            &knn,
            &train,
            &valid,
            &other,
            &RunBudget::unlimited(),
            Some(&cut.checkpoint),
            None,
            BatchPolicy::default(),
            &WorkerPool::shared(),
        )
        .is_err());
    }

    #[test]
    fn validates_arguments() {
        let (train, valid) = toy();
        let zero = BanzhafConfig {
            samples: 0,
            seed: 0,
            threads: 1,
        };
        assert!(banzhaf_msr(&KnnClassifier::new(1), &train, &valid, &zero).is_err());
        let empty = train.subset(&[]);
        assert!(banzhaf_msr(
            &KnnClassifier::new(1),
            &empty,
            &valid,
            &BanzhafConfig::default()
        )
        .is_err());
    }
}
