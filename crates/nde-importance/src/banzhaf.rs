//! Data Banzhaf values via the Maximum-Sample-Reuse estimator
//! (Wang & Jia, AISTATS'23).
//!
//! The Banzhaf value weighs all subsets equally, which makes it provably more
//! robust to noisy utility functions than the Shapley value. The MSR
//! estimator reuses every sampled subset for *all* points:
//! `φ_i = mean(U(S) | i ∈ S) − mean(U(S) | i ∉ S)`.

use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_data::rng::seeded;
use nde_data::rng::Rng;
use nde_ml::dataset::Dataset;
use nde_ml::model::{utility, Classifier};

/// Configuration for the Banzhaf MSR estimator.
#[derive(Debug, Clone)]
pub struct BanzhafConfig {
    /// Number of sampled subsets (each point included with probability 1/2).
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BanzhafConfig {
    fn default() -> Self {
        BanzhafConfig {
            samples: 200,
            seed: 0,
        }
    }
}

/// Data Banzhaf values of all training examples (utility = validation
/// accuracy of a fresh `template` clone). Empty sampled subsets have
/// utility 0 by convention.
pub fn banzhaf_msr<C: Classifier>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    config: &BanzhafConfig,
) -> Result<ImportanceScores> {
    if config.samples == 0 {
        return Err(ImportanceError::InvalidArgument(
            "need at least one sample".into(),
        ));
    }
    if train.is_empty() {
        return Err(ImportanceError::InvalidArgument(
            "empty training set".into(),
        ));
    }
    let n = train.len();
    let mut rng = seeded(config.seed);
    let mut with_sum = vec![0.0; n];
    let mut with_count = vec![0usize; n];
    let mut without_sum = vec![0.0; n];
    let mut without_count = vec![0usize; n];
    let mut members: Vec<usize> = Vec::with_capacity(n);
    let mut mask = vec![false; n];

    for _ in 0..config.samples {
        members.clear();
        for (i, m) in mask.iter_mut().enumerate() {
            *m = rng.gen::<bool>();
            if *m {
                members.push(i);
            }
        }
        let u = if members.is_empty() {
            0.0
        } else {
            let subset = train.subset(&members);
            utility(template, &subset, valid)?
        };
        for i in 0..n {
            if mask[i] {
                with_sum[i] += u;
                with_count[i] += 1;
            } else {
                without_sum[i] += u;
                without_count[i] += 1;
            }
        }
    }

    let values = (0..n)
        .map(|i| {
            let w = if with_count[i] > 0 {
                with_sum[i] / with_count[i] as f64
            } else {
                0.0
            };
            let wo = if without_count[i] > 0 {
                without_sum[i] / without_count[i] as f64
            } else {
                0.0
            };
            w - wo
        })
        .collect();
    Ok(ImportanceScores::new("banzhaf", values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_ml::models::knn::KnnClassifier;

    fn toy() -> (Dataset, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1], // mislabelled
            ],
            vec![0, 0, 1, 1, 1],
            2,
        )
        .unwrap();
        let valid = Dataset::from_rows(
            vec![vec![0.04], vec![0.12], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, valid)
    }

    #[test]
    fn mislabelled_point_has_lowest_banzhaf_value() {
        let (train, valid) = toy();
        let cfg = BanzhafConfig {
            samples: 600,
            seed: 1,
        };
        let scores = banzhaf_msr(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(scores.bottom_k(1), vec![4]);
        assert!(scores.values[4] < 0.0);
        assert!(scores.values[0] > 0.0);
    }

    #[test]
    fn deterministic_by_seed() {
        let (train, valid) = toy();
        let cfg = BanzhafConfig {
            samples: 100,
            seed: 7,
        };
        let a = banzhaf_msr(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        let b = banzhaf_msr(&KnnClassifier::new(1), &train, &valid, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validates_arguments() {
        let (train, valid) = toy();
        let zero = BanzhafConfig {
            samples: 0,
            seed: 0,
        };
        assert!(banzhaf_msr(&KnnClassifier::new(1), &train, &valid, &zero).is_err());
        let empty = train.subset(&[]);
        assert!(banzhaf_msr(
            &KnnClassifier::new(1),
            &empty,
            &valid,
            &BanzhafConfig::default()
        )
        .is_err());
    }
}
