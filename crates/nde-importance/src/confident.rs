//! Confident learning (Northcutt, Jiang & Chuang, JAIR'21).
//!
//! Estimates which examples carry label errors from *out-of-sample* predicted
//! probabilities: class thresholds are the mean self-confidence of examples
//! assigned to each class; an example is flagged when it is confidently
//! predicted to belong to a different class than its given label.

use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_data::generate::splits::k_fold;
use nde_ml::dataset::Dataset;
use nde_ml::model::Classifier;

/// Configuration for confident learning.
#[derive(Debug, Clone)]
pub struct ConfidentConfig {
    /// Cross-validation folds for out-of-sample probabilities.
    pub folds: usize,
    /// Seed controlling the fold split.
    pub seed: u64,
}

impl Default for ConfidentConfig {
    fn default() -> Self {
        ConfidentConfig { folds: 4, seed: 0 }
    }
}

/// Result of confident learning: per-example scores plus the flagged set.
#[derive(Debug, Clone)]
pub struct ConfidentResult {
    /// Importance-style scores (self-confidence minus the strongest
    /// confident off-label probability): low = likely mislabeled.
    pub scores: ImportanceScores,
    /// Indices the confident-joint rule flags as label errors.
    pub flagged: Vec<usize>,
    /// Per-class confidence thresholds `t_j`.
    pub thresholds: Vec<f64>,
}

/// Run confident learning with cross-validated probabilities from `template`.
pub fn confident_learning<C: Classifier>(
    template: &C,
    train: &Dataset,
    config: &ConfidentConfig,
) -> Result<ConfidentResult> {
    if config.folds < 2 {
        return Err(ImportanceError::InvalidArgument("need >= 2 folds".into()));
    }
    if train.len() < config.folds {
        return Err(ImportanceError::InvalidArgument(
            "fewer examples than folds".into(),
        ));
    }
    let n = train.len();
    let k = train.n_classes;

    // Out-of-sample probabilities via k-fold CV.
    let mut probas = vec![vec![0.0; k]; n];
    let folds = k_fold(n, config.folds, config.seed)
        .map_err(|e| ImportanceError::InvalidArgument(e.to_string()))?;
    for (fold_train, held) in folds {
        let mut model = template.clone();
        model.fit(&train.subset(&fold_train))?;
        for &i in &held {
            probas[i] = model.predict_proba_one(train.x.row(i));
        }
    }

    // Class thresholds: mean self-confidence of examples labeled j.
    let mut sums = vec![0.0; k];
    let mut counts = vec![0usize; k];
    for (i, &y) in train.y.iter().enumerate() {
        sums[y] += probas[i][y];
        counts[y] += 1;
    }
    let thresholds: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { f64::INFINITY })
        .collect();

    // Scores and flags.
    let mut flagged = Vec::new();
    let mut values = Vec::with_capacity(n);
    for (i, &y) in train.y.iter().enumerate() {
        let self_conf = probas[i][y];
        let mut best_off = 0.0f64;
        let mut confident_elsewhere = false;
        for j in 0..k {
            if j == y {
                continue;
            }
            if probas[i][j] >= thresholds[j] {
                confident_elsewhere = true;
                best_off = best_off.max(probas[i][j]);
            }
        }
        if confident_elsewhere && best_off > self_conf {
            flagged.push(i);
        }
        // Low score = suspicious. Subtract only confident off-label mass so
        // borderline-but-consistent examples are not penalized.
        values.push(self_conf - best_off);
    }

    Ok(ConfidentResult {
        scores: ImportanceScores::new("confident-learning", values),
        flagged,
        thresholds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::blobs::two_gaussians;
    use nde_ml::models::naive_bayes::GaussianNb;

    fn train_with_flips(n: usize, flips: &[usize]) -> Dataset {
        let nd = two_gaussians(n, 3, 5.0, 17);
        let mut train = Dataset::try_from(&nd).unwrap();
        for &f in flips {
            train.y[f] = 1 - train.y[f];
        }
        train
    }

    #[test]
    fn flags_flipped_labels() {
        let flips = vec![4, 21, 55, 68];
        let train = train_with_flips(120, &flips);
        let result =
            confident_learning(&GaussianNb::new(), &train, &ConfidentConfig::default()).unwrap();
        // All injected flips are flagged...
        for f in &flips {
            assert!(result.flagged.contains(f), "flip {f} not flagged");
        }
        // ...and false positives are few on well-separated blobs.
        assert!(
            result.flagged.len() <= flips.len() + 6,
            "{:?}",
            result.flagged
        );
        // Scores rank the flips at the bottom.
        let bottom = result.scores.bottom_k(4);
        let hits = bottom.iter().filter(|i| flips.contains(i)).count();
        assert!(hits >= 3, "bottom={bottom:?}");
    }

    #[test]
    fn clean_data_flags_little() {
        let train = train_with_flips(100, &[]);
        let result =
            confident_learning(&GaussianNb::new(), &train, &ConfidentConfig::default()).unwrap();
        assert!(result.flagged.len() <= 5, "{:?}", result.flagged);
    }

    #[test]
    fn thresholds_are_mean_self_confidence() {
        let train = train_with_flips(60, &[]);
        let result =
            confident_learning(&GaussianNb::new(), &train, &ConfidentConfig::default()).unwrap();
        assert_eq!(result.thresholds.len(), 2);
        for t in &result.thresholds {
            assert!((0.0..=1.0).contains(t));
        }
    }

    #[test]
    fn validates_arguments() {
        let train = train_with_flips(10, &[]);
        let bad = ConfidentConfig { folds: 1, seed: 0 };
        assert!(confident_learning(&GaussianNb::new(), &train, &bad).is_err());
        let too_many = ConfidentConfig { folds: 50, seed: 0 };
        assert!(confident_learning(&GaussianNb::new(), &train, &too_many).is_err());
    }

    #[test]
    fn deterministic() {
        let train = train_with_flips(50, &[3]);
        let a =
            confident_learning(&GaussianNb::new(), &train, &ConfidentConfig::default()).unwrap();
        let b =
            confident_learning(&GaussianNb::new(), &train, &ConfidentConfig::default()).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.flagged, b.flagged);
    }
}
