//! Group Shapley: valuing *partitions* of the training data.
//!
//! When individual-point valuation is too expensive or too noisy, data can be
//! valued at the granularity of groups (data sources, batches, annotators).
//! With `g ≪ n` groups, exact enumeration over all `2^g` coalitions is often
//! feasible; otherwise permutations sample the same quantity.

use crate::common::ImportanceScores;
use crate::{ImportanceError, Result};
use nde_ml::dataset::Dataset;
use nde_ml::model::{utility, Classifier};

/// Exact group Shapley values by enumerating all `2^g` coalitions
/// (requires `g <= 20`). Returns one value per group.
#[allow(clippy::needless_range_loop)] // bitmask arithmetic over coalition ids
pub fn group_shapley_exact<C: Classifier>(
    template: &C,
    train: &Dataset,
    groups: &[usize],
    valid: &Dataset,
) -> Result<ImportanceScores> {
    if groups.len() != train.len() {
        return Err(ImportanceError::InvalidArgument(format!(
            "groups has {} entries for {} examples",
            groups.len(),
            train.len()
        )));
    }
    let g = groups.iter().copied().max().map_or(0, |m| m + 1);
    if g == 0 {
        return Err(ImportanceError::InvalidArgument("no groups given".into()));
    }
    if g > 20 {
        return Err(ImportanceError::InvalidArgument(format!(
            "exact enumeration supports at most 20 groups, got {g}"
        )));
    }
    // Member lists per group.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); g];
    for (i, &grp) in groups.iter().enumerate() {
        members[grp].push(i);
    }

    // Utility of every coalition (bitmask over groups).
    #[allow(clippy::needless_range_loop)] // masks are arithmetic, not iterable
    let n_masks = 1usize << g;
    let mut u = vec![0.0; n_masks];
    let mut rows: Vec<usize> = Vec::with_capacity(train.len());
    for mask in 1..n_masks {
        rows.clear();
        for (grp, m) in members.iter().enumerate() {
            if mask & (1 << grp) != 0 {
                rows.extend_from_slice(m);
            }
        }
        u[mask] = if rows.is_empty() {
            0.0
        } else {
            utility(template, &train.subset(&rows), valid)?
        };
    }

    // Shapley over groups: φ_g = Σ_S |S|!(g−|S|−1)!/g! (u(S∪g) − u(S)).
    let fact: Vec<f64> = {
        let mut f = vec![1.0; g + 1];
        for i in 1..=g {
            f[i] = f[i - 1] * i as f64;
        }
        f
    };
    let mut values = vec![0.0; g];
    for (grp, value) in values.iter_mut().enumerate() {
        let bit = 1usize << grp;
        for mask in 0..n_masks {
            if mask & bit != 0 {
                continue;
            }
            let s = (mask as u32).count_ones() as usize;
            let weight = fact[s] * fact[g - s - 1] / fact[g];
            *value += weight * (u[mask | bit] - u[mask]);
        }
    }
    Ok(ImportanceScores::new("group-shapley", values))
}

/// Spread group values back onto individual examples (each member gets the
/// group value divided by the group size), for use with per-example rankers.
pub fn distribute_to_members(group_values: &[f64], groups: &[usize]) -> Vec<f64> {
    let g = group_values.len();
    let mut sizes = vec![0usize; g];
    for &grp in groups {
        if grp < g {
            sizes[grp] += 1;
        }
    }
    groups
        .iter()
        .map(|&grp| {
            if grp < g && sizes[grp] > 0 {
                group_values[grp] / sizes[grp] as f64
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_ml::models::knn::KnnClassifier;

    /// Three groups: two clean clusters and one group of mislabelled points.
    fn grouped() -> (Dataset, Vec<usize>, Dataset) {
        let train = Dataset::from_rows(
            vec![
                vec![0.0],
                vec![0.2],
                vec![10.0],
                vec![10.2],
                vec![0.1],
                vec![0.3],
            ],
            vec![0, 0, 1, 1, 1, 1], // last two mislabelled
            2,
        )
        .unwrap();
        let groups = vec![0, 0, 1, 1, 2, 2];
        let valid = Dataset::from_rows(
            vec![vec![0.12], vec![0.28], vec![10.14], vec![9.93]],
            vec![0, 0, 1, 1],
            2,
        )
        .unwrap();
        (train, groups, valid)
    }

    #[test]
    fn bad_group_has_lowest_value() {
        let (train, groups, valid) = grouped();
        let scores = group_shapley_exact(&KnnClassifier::new(1), &train, &groups, &valid).unwrap();
        assert_eq!(scores.len(), 3);
        assert_eq!(scores.bottom_k(1), vec![2]);
        // With the U(∅) = 0 convention even a harmful group earns credit for
        // lifting the empty coalition off zero, so we assert the *ranking*:
        // the mislabelled group is clearly below both clean groups.
        assert!(scores.values[2] < scores.values[0] - 0.1);
        assert!(scores.values[2] < scores.values[1] - 0.1);
    }

    #[test]
    fn efficiency_axiom_exact() {
        let (train, groups, valid) = grouped();
        let scores = group_shapley_exact(&KnnClassifier::new(1), &train, &groups, &valid).unwrap();
        let sum: f64 = scores.values.iter().sum();
        let full = utility(&KnnClassifier::new(1), &train, &valid).unwrap();
        assert!((sum - full).abs() < 1e-9);
    }

    #[test]
    fn distribute_divides_by_group_size() {
        let groups = vec![0, 0, 1];
        let spread = distribute_to_members(&[1.0, -0.5], &groups);
        assert_eq!(spread, vec![0.5, 0.5, -0.5]);
    }

    #[test]
    fn validates_arguments() {
        let (train, _, valid) = grouped();
        assert!(group_shapley_exact(&KnnClassifier::new(1), &train, &[0, 1], &valid).is_err());
        let too_many: Vec<usize> = (0..train.len()).map(|i| i + 30).collect();
        assert!(group_shapley_exact(&KnnClassifier::new(1), &train, &too_many, &valid).is_err());
    }
}
