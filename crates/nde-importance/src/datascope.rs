//! Datascope: data importance *over ML pipelines* (Karlaš et al., ICLR'23).
//!
//! Importance methods score the rows of the *encoded training matrix* — but
//! errors live in the pipeline's *source tables*, upstream of joins, filters
//! and encoders (paper §2.2, Fig. 3). Datascope bridges the gap: compute
//! KNN-Shapley over the pipeline output, then push the scores back through
//! the provenance mapping. For map/filter/join pipelines (the "canonical
//! pipelines" of the Datascope paper) each output row descends from exactly
//! one tuple per source, and source-tuple importance is the sum of the
//! importances of the output rows it contributed to.

use crate::common::ImportanceScores;
use crate::knn_shapley::knn_engine;
use crate::{ImportanceError, Result};
use nde_ml::dataset::Dataset;
use nde_pipeline::feature::FeatureOutput;
use nde_robust::par::WorkerPool;

/// Importance of the rows of source table `source_name`, computed by
/// KNN-Shapley over the pipeline output and pushed back via provenance.
///
/// * `train_output` — the training-side pipeline output **with lineage**
///   (run the pipeline with provenance tracking enabled);
/// * `valid` — encoded validation data (same feature space);
/// * `source_name` — which source table to attribute to (e.g. `"train_df"`);
/// * `source_len` — number of rows in that source table;
/// * `k` — the KNN-Shapley neighborhood size.
///
/// Source rows that never reach the pipeline output (dropped by filters or
/// unmatched joins) get importance 0 — removing them cannot change the model.
pub fn datascope_importance(
    train_output: &FeatureOutput,
    valid: &Dataset,
    source_name: &str,
    source_len: usize,
    k: usize,
) -> Result<ImportanceScores> {
    let lineage = train_output.lineage.as_ref().ok_or_else(|| {
        ImportanceError::InvalidArgument(
            "pipeline output has no lineage; run with provenance tracking".into(),
        )
    })?;
    let source_idx = lineage.source_index(source_name).ok_or_else(|| {
        ImportanceError::InvalidArgument(format!(
            "source `{source_name}` not found in lineage (sources: {:?})",
            lineage.sources
        ))
    })?;
    let output_scores = knn_engine(&train_output.dataset, valid, k, 1, &WorkerPool::shared())?;
    debug_assert_eq!(output_scores.len(), lineage.rows.len());

    let index = lineage.outputs_per_source_row(source_idx, source_len);
    let values: Vec<f64> = index
        .iter()
        .map(|outs| outs.iter().map(|&o| output_scores.values[o]).sum())
        .collect();
    Ok(ImportanceScores::new("datascope", values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nde_data::generate::hiring::{HiringScenario, LABEL_COLUMN};
    use nde_data::inject::flip_labels;
    use nde_data::Table;
    use nde_pipeline::feature::FeaturePipeline;

    fn inputs(s: &HiringScenario) -> Vec<(&str, &Table)> {
        vec![
            ("train_df", &s.letters),
            ("jobdetail_df", &s.job_details),
            ("social_df", &s.social),
        ]
    }

    #[test]
    fn source_rows_dropped_by_filter_get_zero() {
        let s = HiringScenario::generate(150, 21);
        let valid_s = HiringScenario::generate(60, 22);
        let mut fp = FeaturePipeline::hiring(16);
        let train_out = fp.fit_run(&inputs(&s), true).unwrap();
        let valid_out = fp.transform_run(&inputs(&valid_s), false).unwrap();
        let scores = datascope_importance(
            &train_out,
            &valid_out.dataset,
            "train_df",
            s.letters.n_rows(),
            1,
        )
        .unwrap();
        assert_eq!(scores.len(), s.letters.n_rows());
        // Letters whose job is not healthcare never reach the output.
        let lineage = train_out.lineage.as_ref().unwrap();
        let src = lineage.source_index("train_df").unwrap();
        let reached: std::collections::HashSet<u32> = (0..lineage.n_rows())
            .flat_map(|row| lineage.row_tuples(row))
            .filter(|t| t.source == src)
            .map(|t| t.row)
            .collect();
        for row in 0..s.letters.n_rows() {
            if !reached.contains(&(row as u32)) {
                assert_eq!(scores.values[row], 0.0, "dropped row {row} must score 0");
            }
        }
        // At least one reached row has nonzero importance.
        assert!(scores.values.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn flipped_source_labels_rank_low() {
        let clean = HiringScenario::generate(200, 23);
        let valid_s = HiringScenario::generate(80, 24);
        let mut dirty = clean.letters.clone();
        let report = flip_labels(&mut dirty, LABEL_COLUMN, 0.1, 25).unwrap();
        let dirty_scenario = HiringScenario {
            letters: dirty,
            job_details: clean.job_details.clone(),
            social: clean.social.clone(),
        };
        let mut fp = FeaturePipeline::hiring(24);
        let train_out = fp.fit_run(&inputs(&dirty_scenario), true).unwrap();
        let valid_out = fp.transform_run(&inputs(&valid_s), false).unwrap();
        let scores = datascope_importance(
            &train_out,
            &valid_out.dataset,
            "train_df",
            dirty_scenario.letters.n_rows(),
            1,
        )
        .unwrap();
        // Among flipped rows that actually reached the output, most should
        // score below the median of reached rows.
        let lineage = train_out.lineage.as_ref().unwrap();
        let src = lineage.source_index("train_df").unwrap();
        let reached: std::collections::HashSet<usize> = (0..lineage.n_rows())
            .flat_map(|row| lineage.row_tuples(row))
            .filter(|t| t.source == src)
            .map(|t| t.row as usize)
            .collect();
        let mut reached_scores: Vec<f64> = reached.iter().map(|&r| scores.values[r]).collect();
        reached_scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = reached_scores[reached_scores.len() / 2];
        let flipped_reached: Vec<usize> = report
            .affected
            .iter()
            .copied()
            .filter(|r| reached.contains(r))
            .collect();
        assert!(!flipped_reached.is_empty());
        let below = flipped_reached
            .iter()
            .filter(|&&r| scores.values[r] <= median)
            .count();
        assert!(
            below * 10 >= flipped_reached.len() * 6,
            "{below}/{} flipped rows below median",
            flipped_reached.len()
        );
    }

    #[test]
    fn requires_lineage_and_known_source() {
        let s = HiringScenario::generate(60, 26);
        let mut fp = FeaturePipeline::hiring(8);
        let no_lineage = fp.fit_run(&inputs(&s), false).unwrap();
        let valid = no_lineage.dataset.clone();
        assert!(datascope_importance(&no_lineage, &valid, "train_df", 60, 1).is_err());
        let with_lineage = fp.fit_run(&inputs(&s), true).unwrap();
        assert!(datascope_importance(&with_lineage, &valid, "no_such_source", 60, 1).is_err());
    }

    #[test]
    fn side_table_importance_also_computable() {
        let s = HiringScenario::generate(100, 27);
        let valid_s = HiringScenario::generate(50, 28);
        let mut fp = FeaturePipeline::hiring(8);
        let train_out = fp.fit_run(&inputs(&s), true).unwrap();
        let valid_out = fp.transform_run(&inputs(&valid_s), false).unwrap();
        // Importance of jobdetail rows: a job hosting many letters aggregates
        // the importance of all of them.
        let scores = datascope_importance(
            &train_out,
            &valid_out.dataset,
            "jobdetail_df",
            s.job_details.n_rows(),
            1,
        )
        .unwrap();
        assert_eq!(scores.len(), s.job_details.n_rows());
        assert!(scores.values.iter().any(|&v| v != 0.0));
    }
}
