//! Shared types: scores, rankings, detection-quality evaluation, and the
//! memoized coalition-utility evaluator every estimator goes through.

use nde_ml::dataset::Dataset;
use nde_ml::model::{utility, Classifier};
use nde_robust::par::{subset_fingerprint_sorted, MemoCache};
use std::fmt;

/// Utility of the coalition named by a **sorted** index set, optionally
/// served from a [`MemoCache`].
///
/// The convention `U(∅) = 0` is applied without an evaluation. The cache is
/// keyed by [`subset_fingerprint_sorted`], so the same coalition reached
/// from a TMC permutation prefix, a Banzhaf subset sample, or a
/// Beta-Shapley draw hits the same entry — which is only sound because the
/// subset is always *evaluated* in sorted order too, making the utility a
/// pure function of the index set. A cache must only ever see one
/// `(template, train, valid)` triple (see [`MemoCache`]).
pub fn coalition_utility<C: Classifier>(
    template: &C,
    train: &Dataset,
    valid: &Dataset,
    sorted: &[usize],
    cache: Option<&MemoCache>,
) -> Result<f64, ImportanceError> {
    if sorted.is_empty() {
        return Ok(0.0);
    }
    let evaluate = || -> Result<f64, ImportanceError> {
        if sorted.len() == train.len() {
            // The full coalition: skip the subset materialization.
            Ok(utility(template, train, valid)?)
        } else {
            Ok(utility(template, &train.subset(sorted), valid)?)
        }
    };
    let Some(cache) = cache else {
        return evaluate();
    };
    let key = subset_fingerprint_sorted(sorted);
    if let Some(v) = cache.get(key) {
        return Ok(v);
    }
    let v = evaluate()?;
    // Tag the entry with its coalition so an accepted cleaning fix can
    // evict exactly the utilities it stales (MemoCache::invalidate_members).
    cache.insert_with_members(key, v, sorted);
    Ok(v)
}

/// Errors from importance computations.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportanceError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// A wrapped ML-substrate error.
    Ml(String),
    /// A wrapped data-substrate error.
    Data(String),
    /// A wrapped pipeline error.
    Pipeline(String),
    /// The method's preconditions were not met (e.g. needs binary labels).
    Unsupported(String),
    /// A worker thread panicked; the panic payload is preserved.
    WorkerPanic(String),
    /// A checkpoint did not match the run it was resumed into.
    Checkpoint(String),
    /// A durable run-store operation failed (filesystem or record layer).
    Store(String),
}

impl fmt::Display for ImportanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportanceError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            ImportanceError::Ml(m) => write!(f, "ml error: {m}"),
            ImportanceError::Data(m) => write!(f, "data error: {m}"),
            ImportanceError::Pipeline(m) => write!(f, "pipeline error: {m}"),
            ImportanceError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ImportanceError::WorkerPanic(m) => write!(f, "worker thread panicked: {m}"),
            ImportanceError::Checkpoint(m) => write!(f, "checkpoint mismatch: {m}"),
            ImportanceError::Store(m) => write!(f, "durable store error: {m}"),
        }
    }
}

impl std::error::Error for ImportanceError {}

impl From<nde_ml::MlError> for ImportanceError {
    fn from(e: nde_ml::MlError) -> Self {
        ImportanceError::Ml(e.to_string())
    }
}

impl From<nde_data::DataError> for ImportanceError {
    fn from(e: nde_data::DataError) -> Self {
        ImportanceError::Data(e.to_string())
    }
}

impl From<nde_pipeline::PipelineError> for ImportanceError {
    fn from(e: nde_pipeline::PipelineError) -> Self {
        ImportanceError::Pipeline(e.to_string())
    }
}

impl From<nde_robust::RobustError> for ImportanceError {
    fn from(e: nde_robust::RobustError) -> Self {
        match e {
            nde_robust::RobustError::Checkpoint(m) => ImportanceError::Checkpoint(m),
            nde_robust::RobustError::Crash(m) => ImportanceError::WorkerPanic(m),
            nde_robust::RobustError::Io(m) => ImportanceError::Store(m),
            nde_robust::RobustError::InvalidArgument(m) => ImportanceError::InvalidArgument(m),
        }
    }
}

/// Per-example importance values (higher = more valuable) tagged with the
/// method that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceScores {
    /// Name of the producing method (for reports and plots).
    pub method: &'static str,
    /// One value per training example.
    pub values: Vec<f64>,
}

impl ImportanceScores {
    /// Wrap raw values.
    pub fn new(method: &'static str, values: Vec<f64>) -> ImportanceScores {
        ImportanceScores { method, values }
    }

    /// Number of scored examples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no examples were scored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Indices sorted by ascending value (most harmful first).
    pub fn ascending_indices(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.sort_by(|&a, &b| {
            self.values[a]
                .partial_cmp(&self.values[b])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });
        idx
    }

    /// The `k` lowest-scored (most suspicious) example indices.
    pub fn bottom_k(&self, k: usize) -> Vec<usize> {
        let mut idx = self.ascending_indices();
        idx.truncate(k);
        idx
    }

    /// Spearman-style agreement with another scoring (rank correlation).
    pub fn rank_correlation(&self, other: &ImportanceScores) -> f64 {
        assert_eq!(self.len(), other.len(), "score lengths must match");
        let n = self.len();
        if n < 2 {
            return 1.0;
        }
        let rank = |s: &ImportanceScores| -> Vec<f64> {
            let order = s.ascending_indices();
            let mut r = vec![0.0; n];
            for (pos, &i) in order.iter().enumerate() {
                r[i] = pos as f64;
            }
            r
        };
        let ra = rank(self);
        let rb = rank(other);
        let mean = (n as f64 - 1.0) / 2.0;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for i in 0..n {
            let a = ra[i] - mean;
            let b = rb[i] - mean;
            num += a * b;
            da += a * a;
            db += b * b;
        }
        if da == 0.0 || db == 0.0 {
            return 0.0;
        }
        num / (da * db).sqrt()
    }
}

/// The `k` lowest values' indices of a raw score vector.
pub fn bottom_k(values: &[f64], k: usize) -> Vec<usize> {
    ImportanceScores::new("adhoc", values.to_vec()).bottom_k(k)
}

/// Detection precision@k: of the `k` lowest-scored examples, what fraction
/// are actually injected errors? (The ground truth comes from
/// [`nde_data::inject::InjectionReport`].)
pub fn detection_precision_at_k(scores: &ImportanceScores, truth: &[usize], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let truth_set: std::collections::HashSet<usize> = truth.iter().copied().collect();
    let picked = scores.bottom_k(k);
    let hits = picked.iter().filter(|i| truth_set.contains(i)).count();
    hits as f64 / picked.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_and_bottom_k() {
        let s = ImportanceScores::new("t", vec![0.3, -0.5, 0.1, -0.5]);
        assert_eq!(s.ascending_indices(), vec![1, 3, 2, 0]);
        assert_eq!(s.bottom_k(2), vec![1, 3]);
        assert_eq!(s.bottom_k(99).len(), 4);
    }

    #[test]
    fn precision_at_k_counts_hits() {
        let s = ImportanceScores::new("t", vec![0.9, -1.0, 0.8, -0.9, 0.7]);
        // Bottom-2 are {1, 3}; truth {1, 4}: one hit.
        assert_eq!(detection_precision_at_k(&s, &[1, 4], 2), 0.5);
        assert_eq!(detection_precision_at_k(&s, &[1, 3], 2), 1.0);
        assert_eq!(detection_precision_at_k(&s, &[], 2), 0.0);
        assert_eq!(detection_precision_at_k(&s, &[1], 0), 0.0);
    }

    #[test]
    fn rank_correlation_extremes() {
        let a = ImportanceScores::new("a", vec![1.0, 2.0, 3.0, 4.0]);
        let b = ImportanceScores::new("b", vec![10.0, 20.0, 30.0, 40.0]);
        assert!((a.rank_correlation(&b) - 1.0).abs() < 1e-12);
        let c = ImportanceScores::new("c", vec![4.0, 3.0, 2.0, 1.0]);
        assert!((a.rank_correlation(&c) + 1.0).abs() < 1e-12);
        let constant = ImportanceScores::new("d", vec![1.0, 2.0]);
        assert_eq!(constant.rank_correlation(&constant), 1.0);
    }

    #[test]
    fn error_conversions() {
        let e: ImportanceError = nde_ml::MlError::NotFitted.into();
        assert!(matches!(e, ImportanceError::Ml(_)));
        let e: ImportanceError = nde_pipeline::PipelineError::UnknownNode(3).into();
        assert!(matches!(e, ImportanceError::Pipeline(_)));
    }
}
